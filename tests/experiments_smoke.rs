//! Smoke tests of the benchmark-harness experiments: every figure/table
//! generator must run and reproduce the paper's qualitative claims.  (The
//! full-size outputs are produced by the `fig*` binaries; these tests use the
//! same code paths.)

use asv_bench::algorithms::{figure4_depth_sensitivity, nonkey_cost_table};
use asv_bench::hardware::{
    figure10_speedup_energy, figure11_deconv_opts, figure12_sensitivity, figure13_platforms,
    figure14_gans, figure3_stage_distribution, overhead_table,
};

#[test]
fn figure3_distribution_sums_to_one_per_network() {
    for dist in figure3_stage_distribution() {
        assert!((dist.total() - 1.0).abs() < 1e-6, "{dist:?}");
    }
}

#[test]
fn figure4_error_grows_with_distance_and_disparity_error() {
    let sweep = figure4_depth_sensitivity();
    for window in sweep.windows(2) {
        for d in 0..3 {
            assert!(window[1].depth_errors_m[d] >= window[0].depth_errors_m[d]);
        }
    }
}

#[test]
fn figure10_headline_numbers_have_paper_shape() {
    let rows = figure10_speedup_energy();
    let avg_speedup: f64 = rows.iter().map(|r| r.combined_speedup).sum::<f64>() / rows.len() as f64;
    let avg_energy: f64 = rows
        .iter()
        .map(|r| r.combined_energy_reduction)
        .sum::<f64>()
        / rows.len() as f64;
    // Paper: 4.9x and 85%; require the same ballpark.
    assert!(
        avg_speedup > 3.0 && avg_speedup < 10.0,
        "speedup {avg_speedup}"
    );
    assert!(avg_energy > 0.6 && avg_energy < 0.98, "energy {avg_energy}");
}

#[test]
fn figure11_three_d_networks_gain_more_from_the_transformation() {
    let rows = figure11_deconv_opts();
    let deconv_speedup = |name: &str| {
        rows.iter()
            .find(|r| r.network == name)
            .map(|r| r.deconv_speedup[2])
            .unwrap()
    };
    // Paper: 3-D networks (GC-Net, PSMNet) see larger deconv-layer speedups
    // than 2-D networks because they eliminate 8x instead of 4x zero padding.
    let three_d = (deconv_speedup("GC-Net") + deconv_speedup("PSMNet")) / 2.0;
    let two_d = (deconv_speedup("DispNet") + deconv_speedup("FlowNetC")) / 2.0;
    assert!(three_d > two_d, "3-D {three_d} vs 2-D {two_d}");
}

#[test]
fn figure12_covers_the_paper_grid() {
    let cells = figure12_sensitivity();
    assert_eq!(cells.len(), 7 * 6);
    // Every configuration benefits from DCO (speedups in the paper's 1.2-1.5x
    // band, allow a wider band here).
    assert!(cells.iter().all(|c| c.speedup >= 1.0 && c.speedup < 4.0));
}

#[test]
fn figure13_ordering_matches_paper() {
    let rows = figure13_platforms();
    let speedup = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap()
            .speedup_vs_eyeriss
    };
    assert!(speedup("ASV-DCO+ISM") > speedup("ASV-ISM"));
    assert!(speedup("ASV-ISM") > speedup("ASV-DCO"));
    assert!(speedup("ASV-DCO+ISM") > 2.0);
    assert!(speedup("GPU") < 1.0);
}

#[test]
fn figure14_average_improvements_favour_asv() {
    let rows = figure14_gans();
    let avg = |f: fn(&asv_bench::hardware::GanRow) -> f64| {
        rows.iter().map(f).sum::<f64>() / rows.len() as f64
    };
    assert!(avg(|r| r.asv_speedup) > avg(|r| r.gannx_speedup));
    assert!(avg(|r| r.asv_energy_reduction) > avg(|r| r.gannx_energy_reduction));
}

#[test]
fn overhead_and_nonkey_tables_match_claims() {
    let b = overhead_table();
    assert!(b.total_area_overhead() < 0.005);
    let rows = nonkey_cost_table();
    assert!(rows.iter().skip(1).all(|r| r.ratio_to_nonkey > 20.0));
}

/// Every `fig*` / `tab*` binary is a one-line wrapper around a report
/// function in `asv_bench::figs`; smoke-running those functions here means a
/// broken figure generator fails `cargo test` instead of rotting silently in
/// an unbuilt binary.
mod fig_binary_entry_points {
    use asv_bench::algorithms::AccuracySetup;
    use asv_bench::figs;

    /// A setup small enough that the two functional-accuracy reports stay
    /// cheap in a smoke test (the binaries use `AccuracySetup::quick`).
    fn tiny() -> AccuracySetup {
        AccuracySetup {
            width: 48,
            height: 32,
            frames: 2,
            sequences: 1,
            max_disparity: 16,
        }
    }

    #[track_caller]
    fn assert_report(report: String, must_contain: &str) {
        assert!(
            report.contains(must_contain),
            "report missing {must_contain:?}:\n{report}"
        );
        // Reports are header + rendered table: at least a title line, a
        // column-header line and one data row.
        assert!(
            report.lines().count() >= 3,
            "suspiciously short report:\n{report}"
        );
    }

    #[test]
    fn fig01_frontier_runs() {
        assert_report(figs::fig01_frontier_report(&tiny()), "Figure 1");
    }

    #[test]
    fn fig03_op_distribution_runs() {
        assert_report(figs::fig03_op_distribution_report(), "Figure 3");
    }

    #[test]
    fn fig04_depth_sensitivity_runs() {
        assert_report(figs::fig04_depth_sensitivity_report(), "Figure 4");
    }

    #[test]
    fn fig09_accuracy_runs() {
        assert_report(figs::fig09_accuracy_report(&tiny()), "Figure 9");
    }

    #[test]
    fn fig10_speedup_energy_runs() {
        assert_report(figs::fig10_speedup_energy_report(), "Figure 10");
    }

    #[test]
    fn fig11_deconv_opts_runs() {
        let report = figs::fig11_deconv_opts_report();
        assert_report(report.clone(), "Figure 11(a) deconvolution layers only");
        assert_report(report, "Figure 11(b) whole network");
    }

    #[test]
    fn fig12_sensitivity_runs() {
        let report = figs::fig12_sensitivity_report();
        assert_report(report.clone(), "Figure 12a");
        assert_report(report, "Figure 12b");
    }

    #[test]
    fn fig13_baselines_runs() {
        assert_report(figs::fig13_baselines_report(), "Figure 13");
    }

    #[test]
    fn fig14_gan_runs() {
        assert_report(figs::fig14_gan_report(), "Figure 14");
    }

    #[test]
    fn tab_nonkey_cost_runs() {
        assert_report(figs::tab_nonkey_cost_report(), "Section 3.3");
    }

    #[test]
    fn tab_overhead_runs() {
        assert_report(figs::tab_overhead_report(), "Section 7.1");
    }
}

#[test]
fn streaming_throughput_serves_concurrent_sessions() {
    // The serving-scalability experiment: 8 concurrent streams over a
    // multi-worker pool vs the serial batch baseline.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = cores.clamp(2, 8);
    let report = asv_bench::streaming::streaming_throughput(8, workers, 3);
    assert_eq!(report.sessions, 8);
    assert!(report.serial_fps > 0.0);
    assert!(report.concurrent_fps > 0.0);
    // Telemetry must be live: non-zero latency quantiles in order, and the
    // PW-4 schedule on 3 frames gives exactly one key frame per stream.
    assert!(report.p50_us > 0);
    assert!(report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);
    assert!((report.key_frame_ratio - 1.0 / 3.0).abs() < 1e-9);
    eprintln!(
        "streaming scalability recorded (cores={cores}, workers={workers}): serial {:.1} fps, concurrent {:.1} fps, speedup {:.2}x",
        report.serial_fps, report.concurrent_fps, report.speedup
    );
    // The >= 2x scaling claim is only a sound assertion when the serial
    // baseline is genuinely serial: with the `parallel` feature on, each
    // batch frame already fans out over every core, so session-level
    // concurrency cannot multiply it again.  The sequential-kernels CI
    // configuration (`--no-default-features`) runs the hard assertion on
    // hosts with enough real cores; elsewhere the numbers above record it.
    #[cfg(not(feature = "parallel"))]
    if cores >= 4 {
        assert!(
            report.speedup >= 2.0,
            "8 sessions over {workers} workers should scale >= 2x (got {:.2}x: serial {:.1} fps, concurrent {:.1} fps)",
            report.speedup,
            report.serial_fps,
            report.concurrent_fps
        );
    }
}
