//! Workspace-level property-based tests on the core invariants that the ASV
//! design relies on.

use asv_system::asv::ism::{IsmConfig, IsmPipeline, KeyFramePolicy};
use asv_system::deconv::decompose::{decompose_kernel2d, sub_kernel_shapes};
use asv_system::deconv::transform::{paper_deconv2d, transformed_deconv2d};
use asv_system::dnn::{zoo, SurrogateParams, SurrogateStereoDnn};
use asv_system::image::{gaussian_blur, Image};
use asv_system::runtime::{serve_sequences, SchedulerConfig};
use asv_system::scene::{SceneConfig, StereoSequence};
use asv_system::stereo::block_matching::BlockMatchParams;
use asv_system::stereo::triangulation::CameraRig;
use asv_system::tensor::{Shape4, Tensor4};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A small ISM pipeline over 40x30 frames for the streaming properties.
fn streaming_pipeline(window: usize, policy: KeyFramePolicy) -> IsmPipeline {
    let config = IsmConfig {
        propagation_window: window,
        key_frame_policy: policy,
        refine: BlockMatchParams {
            max_disparity: 16,
            refine_radius: 3,
            ..Default::default()
        },
        surrogate: SurrogateParams {
            max_disparity: 16,
            occlusion_handling: true,
            ..Default::default()
        },
        ..Default::default()
    };
    IsmPipeline::new(
        config,
        SurrogateStereoDnn::new(zoo::dispnet(30, 40), config.surrogate),
    )
}

fn streaming_sequence(seed: u64, frames: usize) -> StereoSequence {
    StereoSequence::generate(
        &SceneConfig::scene_flow_like(40, 30)
            .with_seed(seed)
            .with_objects(2),
        frames,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sub-kernel decomposition never loses or duplicates kernel elements,
    /// for any kernel shape up to 3 dimensions.
    #[test]
    fn decomposition_preserves_element_count(dims in proptest::collection::vec(1usize..7, 1..=3)) {
        let shapes = sub_kernel_shapes(&dims);
        prop_assert_eq!(shapes.len(), 1usize << dims.len());
        let total: usize = shapes.iter().map(|s| s.iter().product::<usize>()).sum();
        prop_assert_eq!(total, dims.iter().product::<usize>());
    }

    /// The 2-D decomposition partitions the kernel's mass: the sum of all
    /// sub-kernel elements equals the sum of the original kernel elements.
    #[test]
    fn decomposition_partitions_kernel_mass(
        kh in 1usize..6,
        kw in 1usize..6,
        co in 1usize..3,
        ci in 1usize..3,
        seed in 0u64..500,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let kernel = Tensor4::random(Shape4::new(co, ci, kh, kw), -1.0, 1.0, &mut rng);
        let grid = decompose_kernel2d(&kernel).unwrap();
        let sub_sum: f64 = grid.iter().map(|(_, k)| k.sum()).sum();
        prop_assert!((sub_sum - kernel.sum()).abs() < 1e-3);
        prop_assert_eq!(grid.total_elements(), co * ci * kh * kw);
    }

    /// The transformed deconvolution is exact (not approximate) for every
    /// shape in the range used by the stereo networks.
    #[test]
    fn transformed_deconvolution_is_exact(
        h in 1usize..5,
        w in 1usize..5,
        k in 1usize..5,
        seed in 0u64..500,
    ) {
        prop_assume!(k <= 2 * h + 1 && k <= 2 * w + 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let input = Tensor4::random(Shape4::new(1, 2, h, w), -1.0, 1.0, &mut rng);
        let kernel = Tensor4::random(Shape4::new(2, 2, k, k), -1.0, 1.0, &mut rng);
        let reference = paper_deconv2d(&input, &kernel, 0).unwrap();
        let transformed = transformed_deconv2d(&input, &kernel, 0).unwrap();
        prop_assert!(reference.max_abs_diff(&transformed).unwrap() < 1e-4);
    }

    /// Gaussian blur never changes the total image mass by more than a border
    /// effect, and never produces values outside the input range.
    #[test]
    fn gaussian_blur_is_mass_preserving_and_bounded(
        width in 8usize..24,
        height in 8usize..24,
        sigma in 0.5f32..2.5,
        seed in 0u64..500,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let img = Image::from_fn(width, height, |_, _| rand::Rng::gen_range(&mut rng, 0.0..1.0));
        let blurred = gaussian_blur(&img, sigma);
        let min = img.as_slice().iter().cloned().fold(f32::INFINITY, f32::min);
        let max = img.as_slice().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(blurred.as_slice().iter().all(|&v| v >= min - 1e-4 && v <= max + 1e-4));
        // Border clamping can only move mass towards the interior values, so
        // the mean stays within the original value range.
        prop_assert!(blurred.mean() >= min - 1e-4 && blurred.mean() <= max + 1e-4);
    }

    /// Triangulation round-trips: depth -> disparity -> depth is the identity
    /// for any positive depth and any sane rig.
    #[test]
    fn triangulation_round_trip(
        depth in 0.5f64..100.0,
        baseline_mm in 50.0f64..300.0,
        focal_mm in 1.0f64..8.0,
    ) {
        let rig = CameraRig::new(baseline_mm * 1e-3, focal_mm * 1e-3, 7.4e-6);
        let disparity = rig.disparity_pixels_from_depth(depth);
        let back = rig.depth_from_disparity_pixels(disparity);
        prop_assert!((back - depth).abs() < 1e-6 * depth.max(1.0));
        // Disparity error always inflates depth error monotonically.
        let e1 = rig.depth_error_for_disparity_error(depth, 0.1);
        let e2 = rig.depth_error_for_disparity_error(depth, 0.2);
        prop_assert!(e2 >= e1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Streaming and batch ISM are the same algorithm: driving
    /// `IsmState::step` frame-by-frame is byte-identical to
    /// `process_sequence`, for any sequence, propagation window and
    /// key-frame policy.
    #[test]
    fn streaming_step_is_byte_identical_to_batch(
        seed in 0u64..10_000,
        frames in 2usize..5,
        window in 1usize..4,
        policy_kind in 0usize..3,
        threshold in 0.0f32..2.0,
    ) {
        let policy = match policy_kind {
            0 => KeyFramePolicy::Static,
            // An adaptive policy with a sub-pixel threshold re-keys often;
            // a large one reproduces the static schedule.
            1 => KeyFramePolicy::AdaptiveMotion { max_median_motion_px: threshold },
            _ => KeyFramePolicy::AdaptiveMotion { max_median_motion_px: 1e6 },
        };
        let pipeline = streaming_pipeline(window, policy);
        let sequence = streaming_sequence(seed, frames);
        let batch = pipeline.process_sequence(&sequence).unwrap();
        let mut state = pipeline.state();
        for (i, frame) in sequence.frames().iter().enumerate() {
            let streamed = state.step(&frame.left, &frame.right).unwrap();
            prop_assert_eq!(streamed.kind, batch.frames[i].kind);
            prop_assert_eq!(&streamed.disparity, &batch.frames[i].disparity);
        }
    }

    /// The scheduler never reorders a session's frames: under concurrent
    /// load (several sessions, several workers, tiny inboxes) every
    /// session's result stream equals its order-sensitive batch result.
    #[test]
    fn scheduler_preserves_per_session_order_under_load(
        seed in 0u64..10_000,
        sessions in 2usize..4,
        frames in 2usize..5,
        workers in 2usize..5,
    ) {
        let pipeline = streaming_pipeline(2, KeyFramePolicy::Static);
        let streams: Vec<StereoSequence> = (0..sessions)
            .map(|i| streaming_sequence(seed + i as u64, frames))
            .collect();
        let outcome = serve_sequences(
            &pipeline,
            &streams,
            SchedulerConfig::per_core().with_workers(workers).with_inbox_capacity(1),
        )
        .unwrap();
        prop_assert_eq!(outcome.results.len(), sessions);
        for (stream, result) in streams.iter().zip(&outcome.results) {
            let batch = pipeline.process_sequence(stream).unwrap();
            prop_assert_eq!(batch.frames.len(), result.frames.len());
            for (b, s) in batch.frames.iter().zip(&result.frames) {
                prop_assert_eq!(b.kind, s.kind);
                prop_assert_eq!(&b.disparity, &s.disparity);
            }
        }
    }
}
