//! Cross-crate integration tests: the functional ISM pipeline against the
//! synthetic dataset, the deconvolution transformation against the tensor
//! references, and the consistency between the functional algorithms and the
//! analytical cost models.

use asv_system::asv::ism::FrameKind;
use asv_system::asv::perf::AsvVariant;
use asv_system::asv::system::{AsvConfig, AsvSystem};
use asv_system::deconv::transform::{paper_deconv2d, transformed_deconv2d};
use asv_system::dnn::zoo;
use asv_system::scene::{SceneConfig, StereoSequence};
use asv_system::stereo::triangulation::CameraRig;
use asv_system::tensor::{Shape4, Tensor4};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_sequence(seed: u64, frames: usize) -> StereoSequence {
    StereoSequence::generate(
        &SceneConfig::scene_flow_like(80, 56)
            .with_seed(seed)
            .with_objects(3),
        frames,
    )
}

#[test]
fn ism_pipeline_matches_ground_truth_on_synthetic_video() {
    let sequence = small_sequence(31, 4);
    let system = AsvSystem::new(AsvConfig {
        propagation_window: 2,
        max_disparity: 32,
        frame_width: 80,
        frame_height: 56,
        network: "DispNet".to_owned(),
        metric: asv::CostMetric::Sad,
    })
    .expect("known network");
    let result = system
        .process_sequence(&sequence)
        .expect("processing succeeds");
    assert_eq!(result.frames.len(), 4);
    assert_eq!(result.key_frame_count(), 2);
    for (frame, truth) in result.frames.iter().zip(sequence.frames()) {
        let err = frame
            .disparity
            .three_pixel_error(&truth.ground_truth)
            .unwrap();
        assert!(err < 0.25, "{:?} error {err}", frame.kind);
    }
}

#[test]
fn ism_accuracy_loss_is_small_and_speedup_is_large() {
    // The paper's headline: ~5x speedup, ~85% energy saving, ~0.02% accuracy
    // loss.  On the small synthetic setup we require the same qualitative
    // result: large speedup and energy saving with a sub-5-percentage-point
    // accuracy change.
    let sequence = small_sequence(32, 4);
    let system = AsvSystem::new(AsvConfig {
        propagation_window: 4,
        max_disparity: 32,
        frame_width: 80,
        frame_height: 56,
        network: "FlowNetC".to_owned(),
        metric: asv::CostMetric::Sad,
    })
    .expect("known network");
    let accuracy = system
        .evaluate_accuracy(&sequence)
        .expect("accuracy evaluates");
    assert!(
        accuracy.accuracy_loss.abs() < 0.05,
        "accuracy loss {}",
        accuracy.accuracy_loss
    );

    let reports = system.variant_reports();
    let full = reports
        .iter()
        .find(|r| r.variant == AsvVariant::IsmDco)
        .unwrap();
    assert!(full.speedup > 2.5, "speedup {}", full.speedup);
    assert!(
        full.energy_reduction > 0.5,
        "energy reduction {}",
        full.energy_reduction
    );
}

#[test]
fn key_and_non_key_frames_alternate_with_pw2() {
    let sequence = small_sequence(33, 5);
    let system = AsvSystem::new(AsvConfig {
        propagation_window: 2,
        max_disparity: 32,
        frame_width: 80,
        frame_height: 56,
        network: "DispNet".to_owned(),
        metric: asv::CostMetric::Sad,
    })
    .expect("known network");
    let result = system
        .process_sequence(&sequence)
        .expect("processing succeeds");
    let kinds: Vec<FrameKind> = result.frames.iter().map(|f| f.kind).collect();
    assert_eq!(
        kinds,
        vec![
            FrameKind::KeyFrame,
            FrameKind::NonKeyFrame,
            FrameKind::KeyFrame,
            FrameKind::NonKeyFrame,
            FrameKind::KeyFrame
        ]
    );
}

#[test]
fn deconvolution_transformation_is_exact_across_crates() {
    // The transformation used by the scheduler must be numerically identical
    // to the reference deconvolution of the tensor crate for the kernel
    // shapes that actually appear in the stereo networks (3x3 and 4x4).
    let mut rng = SmallRng::seed_from_u64(9);
    for k in [3usize, 4] {
        let input = Tensor4::random(Shape4::new(1, 3, 6, 7), -1.0, 1.0, &mut rng);
        let kernel = Tensor4::random(Shape4::new(2, 3, k, k), -1.0, 1.0, &mut rng);
        let reference = paper_deconv2d(&input, &kernel, 1).unwrap();
        let transformed = transformed_deconv2d(&input, &kernel, 1).unwrap();
        assert!(
            reference.max_abs_diff(&transformed).unwrap() < 1e-4,
            "kernel {k}x{k}"
        );
    }
}

#[test]
fn disparity_maps_translate_to_sensible_depths() {
    // Triangulate the ISM output of a synthetic frame with the Bumblebee2 rig
    // and check the depths are finite and positive wherever disparity is.
    let sequence = small_sequence(34, 1);
    let system = AsvSystem::new(AsvConfig {
        propagation_window: 1,
        max_disparity: 32,
        frame_width: 80,
        frame_height: 56,
        network: "DispNet".to_owned(),
        metric: asv::CostMetric::Sad,
    })
    .expect("known network");
    let result = system
        .process_sequence(&sequence)
        .expect("processing succeeds");
    let rig = CameraRig::bumblebee2();
    let map = &result.frames[0].disparity;
    let mut checked = 0;
    for y in 0..map.height() {
        for x in 0..map.width() {
            if let Some(d) = map.get(x, y) {
                if d > 0.5 {
                    let depth = rig.depth_from_disparity_pixels(d as f64);
                    assert!(depth.is_finite() && depth > 0.0);
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 100, "not enough valid disparities ({checked})");
}

#[test]
fn analytical_models_agree_with_network_structure() {
    // The deconvolution share reported by the layer statistics must be
    // consistent with what the scheduler sees: optimizing a network with more
    // deconvolution work must help at least as much as one with less.
    let accel = asv_system::accel::systolic::SystolicAccelerator::asv_default();
    let nets = zoo::suite(96, 192, 48);
    let mut shares_and_speedups: Vec<(f64, f64)> = Vec::new();
    for net in &nets {
        let baseline = accel.run_network(net, asv_system::dataflow::OptLevel::Baseline);
        let optimized = accel.run_network(net, asv_system::dataflow::OptLevel::Ilar);
        shares_and_speedups.push((net.deconv_mac_fraction(), optimized.speedup_over(&baseline)));
    }
    let (max_share_net, _) = shares_and_speedups
        .iter()
        .cloned()
        .fold((0.0f64, 0.0f64), |acc, v| if v.0 > acc.0 { v } else { acc });
    let (min_share_net, _) =
        shares_and_speedups
            .iter()
            .cloned()
            .fold(
                (1.0f64, f64::MAX),
                |acc, v| if v.0 < acc.0 { v } else { acc },
            );
    // Sanity: shares span a non-trivial range across the four networks.
    assert!(max_share_net > min_share_net);
    // And every network benefits from the optimizations.
    assert!(shares_and_speedups.iter().all(|&(_, s)| s > 1.0));
}
