//! Integration tests of the unified error layer: errors from any workspace
//! layer convert into `AsvError` through plain `?` chains, and pipeline
//! failures surface through `AsvSystem::process_sequence` as the same type.

use asv_system::asv::system::{AsvConfig, AsvSystem};
use asv_system::scene::{SceneConfig, StereoSequence};
use asv_system::tensor::{Shape4, Tensor4};
use asv_system::AsvError;
use std::error::Error;

/// A `?` chain mixing a tensor-layer failure with the system pipeline: the
/// `Tensor4` shape mismatch converts into `AsvError` by the same mechanism
/// that carries pipeline errors out of `process_sequence`.
fn chain_tensor_then_pipeline(bad_len: usize) -> Result<usize, AsvError> {
    let tensor = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![0.0; bad_len])?;
    let sequence = StereoSequence::generate(&SceneConfig::scene_flow_like(64, 48).with_seed(1), 2);
    let result = AsvSystem::new(AsvConfig::small())?.process_sequence(&sequence)?;
    Ok(result.frames.len() + tensor.shape().volume())
}

#[test]
fn tensor_shape_mismatch_surfaces_as_asv_error() {
    let err = chain_tensor_then_pipeline(3).unwrap_err();
    assert!(matches!(err, AsvError::Tensor(_)), "{err:?}");
    assert!(err.to_string().starts_with("tensor: "), "{err}");
    // The original tensor-layer error is preserved as the source.
    let source = err.source().expect("wrapped layer error");
    assert!(
        source.to_string().contains("does not match shape volume"),
        "{source}"
    );
}

#[test]
fn valid_chain_passes_through_both_layers() {
    let value = chain_tensor_then_pipeline(4).expect("valid tensor and sequence");
    assert_eq!(value, 2 + 4);
}

#[test]
fn pipeline_failure_surfaces_as_asv_error() {
    // A degenerate scene produces empty frames, which the stereo matcher
    // rejects; the failure must surface through the facade as an AsvError
    // carrying the stereo layer's error.
    let sequence = StereoSequence::generate(&SceneConfig::scene_flow_like(0, 0).with_seed(1), 1);
    let err = AsvSystem::new(AsvConfig::small())
        .expect("known network")
        .process_sequence(&sequence)
        .unwrap_err();
    assert!(matches!(err, AsvError::Stereo(_)), "{err:?}");
    assert!(err.source().is_some());
}
