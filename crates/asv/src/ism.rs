//! The invariant-based stereo matching (ISM) pipeline of Sec. 3.
//!
//! ISM exploits the *correspondence invariant*: two pixels that are
//! projections of the same scene point remain a correspondence pair in every
//! frame, even as their image locations move.  The pipeline therefore runs
//! the expensive stereo network only on key frames and, on the frames in
//! between, moves the known correspondences along the estimated motion and
//! repairs them with a cheap local search:
//!
//! 1. **DNN inference** (key frames) — the surrogate stereo estimator
//!    produces a dense disparity map.
//! 2. **Reconstruct correspondences** — every disparity-map entry is turned
//!    into a left/right pixel pair.
//! 3. **Propagate correspondences** (non-key frames) — dense optical flow in
//!    the left and right views moves both members of each pair to the new
//!    frame; their horizontal offset is the propagated disparity.
//! 4. **Refine correspondences** — block matching in a narrow window centred
//!    on the propagated disparity absorbs motion-estimation noise.
//!
//! The pipeline has two entry points sharing one implementation:
//!
//! * [`IsmState::step`] — the incremental core.  One call processes one
//!   stereo frame and carries the (previous frames, previous disparity,
//!   frames-since-key) state forward, which is what a streaming runtime
//!   (`asv-runtime`) drives one camera frame at a time.
//! * [`IsmPipeline::process_sequence`] — the batch entry point, a thin loop
//!   over a fresh [`IsmState`].  Batch and streaming results are therefore
//!   byte-identical by construction.

use crate::error::AsvError;
use crate::workspace::Workspace;
use asv_dnn::{SurrogateParams, SurrogateStereoDnn};
use asv_flow::farneback::{farneback_flow_with, FarnebackParams, FlowWorkspace};
use asv_flow::FlowField;
use asv_image::Image;
use asv_scene::StereoSequence;
use asv_stereo::block_matching::{refine_with_initial_into, BlockMatchParams};
use asv_stereo::DisparityMap;
use asv_trace::Stage;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Whether a frame was processed as a key frame (DNN) or a non-key frame
/// (propagation + refinement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameKind {
    /// Full (surrogate) DNN inference.
    KeyFrame,
    /// Correspondences propagated from the previous frame and refined.
    NonKeyFrame,
}

/// How key frames are selected.
///
/// The paper's micro-sequencer statically selects every `PW`-th frame
/// (Sec. 5.2) and notes that adaptive schemes are feasible; the adaptive
/// policy implemented here re-keys early when the estimated motion between
/// consecutive frames exceeds a threshold, bounding how stale the propagated
/// correspondences can become.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyFramePolicy {
    /// A key frame every `propagation_window` frames (the paper's default).
    Static,
    /// A key frame every `propagation_window` frames *or* as soon as the
    /// median motion magnitude (pixels/frame) of the left view exceeds the
    /// threshold, whichever comes first.
    AdaptiveMotion {
        /// Median motion magnitude (pixels) that forces a new key frame.
        max_median_motion_px: f32,
    },
}

/// Configuration of the ISM pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsmConfig {
    /// Propagation window: a key frame every `propagation_window` frames
    /// (PW-2 and PW-4 in Fig. 9).  A window of 1 degenerates to running the
    /// DNN on every frame.
    pub propagation_window: usize,
    /// Key-frame selection policy.
    pub key_frame_policy: KeyFramePolicy,
    /// Optical-flow parameters used for correspondence propagation.
    pub flow: FarnebackParams,
    /// Block-matching parameters used for correspondence refinement.
    pub refine: BlockMatchParams,
    /// Surrogate (key-frame estimator) parameters.
    pub surrogate: SurrogateParams,
}

impl Default for IsmConfig {
    fn default() -> Self {
        Self {
            propagation_window: 4,
            key_frame_policy: KeyFramePolicy::Static,
            flow: FarnebackParams::default(),
            refine: BlockMatchParams {
                max_disparity: 64,
                refine_radius: 3,
                ..Default::default()
            },
            surrogate: SurrogateParams::default(),
        }
    }
}

/// Result of processing one frame.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// How the frame was processed.
    pub kind: FrameKind,
    /// The estimated disparity map.
    pub disparity: DisparityMap,
}

/// Result of processing a whole sequence.
#[derive(Debug, Clone)]
pub struct IsmResult {
    /// Per-frame results in temporal order.
    pub frames: Vec<FrameResult>,
}

impl IsmResult {
    /// Number of key frames in the result.
    pub fn key_frame_count(&self) -> usize {
        self.frames
            .iter()
            .filter(|f| f.kind == FrameKind::KeyFrame)
            .count()
    }

    /// Number of non-key frames in the result.
    pub fn non_key_frame_count(&self) -> usize {
        self.frames.len() - self.key_frame_count()
    }
}

/// The incremental core of ISM: everything the algorithm must remember
/// between two consecutive frames of one camera stream.
///
/// A state is created fresh (no predecessor frame, so the first [`step`]
/// always runs the key-frame estimator) and then fed frames one at a time.
/// [`IsmPipeline::process_sequence`] is a thin loop over this type, and a
/// streaming runtime holds one `IsmState` per camera session — both produce
/// byte-identical disparity maps for the same frames because they execute
/// the same code.
///
/// [`step`]: IsmState::step
#[derive(Debug, Clone)]
pub struct IsmState {
    config: IsmConfig,
    surrogate: SurrogateStereoDnn,
    /// Previous left/right frames and the disparity estimated for them.
    previous: Option<(Image, Image, DisparityMap)>,
    /// Frames processed since the last key frame (1 right after a key frame).
    since_key: usize,
}

impl IsmState {
    /// Creates a fresh state (the next frame will be a key frame).
    pub fn new(config: IsmConfig, surrogate: SurrogateStereoDnn) -> Self {
        Self {
            config,
            surrogate,
            previous: None,
            since_key: 0,
        }
    }

    /// The pipeline configuration this state steps under.
    pub fn config(&self) -> &IsmConfig {
        &self.config
    }

    /// Number of frames processed since the last key frame (0 before the
    /// first frame, 1 right after a key frame).
    pub fn frames_since_key(&self) -> usize {
        self.since_key
    }

    /// Drops all carried state; the next [`IsmState::step`] runs the DNN
    /// again.  Useful after a stream discontinuity (camera seek, dropped
    /// frames).
    pub fn reset(&mut self) {
        self.previous = None;
        self.since_key = 0;
    }

    /// Switches the matching-cost metric of the key-frame estimator.  Takes
    /// effect from the next key frame; propagated non-key frames are
    /// unaffected (they refine, not re-match).
    pub fn set_cost_metric(&mut self, metric: asv_dnn::CostMetric) {
        self.config.surrogate.metric = metric;
        let mut params = *self.surrogate.params();
        params.metric = metric;
        self.surrogate.set_params(params);
    }

    /// Changes the propagation window of a live stream (clamped to at least
    /// 1).  Takes effect from the next frame: widening the window lets the
    /// current inter-key run continue longer, narrowing it may make the next
    /// frame a key frame immediately.  This is one of the accuracy-vs-compute
    /// knobs a QoS controller actuates under overload (wider window = fewer
    /// DNN key frames = cheaper stream).
    pub fn set_propagation_window(&mut self, window: usize) {
        self.config.propagation_window = window.max(1);
    }

    /// Changes the key-frame selection policy of a live stream.  Takes
    /// effect from the next frame.  Raising an
    /// [`KeyFramePolicy::AdaptiveMotion`] threshold suppresses motion-forced
    /// re-keys, trading propagation staleness for compute — the second QoS
    /// actuator next to [`IsmState::set_propagation_window`].
    pub fn set_key_frame_policy(&mut self, policy: KeyFramePolicy) {
        self.config.key_frame_policy = policy;
    }

    /// Processes one stereo frame and advances the state.
    ///
    /// This is the allocating entry point: it creates a throwaway
    /// [`Workspace`] per call.  A streaming caller should hold a workspace
    /// across frames and use [`IsmState::step_with`] instead — identical
    /// results, no steady-state allocations.
    ///
    /// # Errors
    ///
    /// Propagates flow and matcher errors (mismatched frame sizes, empty
    /// frames) as [`AsvError`], preserving the originating layer.  The state
    /// is left unchanged when the frame fails, so a caller may skip the bad
    /// frame and continue.
    pub fn step(&mut self, left: &Image, right: &Image) -> Result<FrameResult, AsvError> {
        let mut ws = Workspace::new();
        self.step_with(&mut ws, left, right)
    }

    /// [`IsmState::step`] threading a reusable per-stream [`Workspace`]:
    /// byte-identical results, and zero heap allocations in the steady state
    /// provided the caller recycles consumed result maps with
    /// [`Workspace::recycle`] (otherwise the one allocation per frame is the
    /// returned disparity map itself).
    ///
    /// # Errors
    ///
    /// Same conditions as [`IsmState::step`].
    pub fn step_with(
        &mut self,
        ws: &mut Workspace,
        left: &Image,
        right: &Image,
    ) -> Result<FrameResult, AsvError> {
        let mut out = ws.take_map(left.width(), left.height());
        match self.step_into(ws, left, right, &mut out) {
            Ok(kind) => Ok(FrameResult {
                kind,
                disparity: out,
            }),
            Err(error) => {
                ws.recycle(out);
                Err(error)
            }
        }
    }

    /// The zero-allocation core of one frame step: the caller owns both the
    /// workspace and the output map.  `out` is fully overwritten on success
    /// and unspecified on error; the state is only advanced on success.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IsmState::step`].
    pub fn step_into(
        &mut self,
        ws: &mut Workspace,
        left: &Image,
        right: &Image,
        out: &mut DisparityMap,
    ) -> Result<FrameKind, AsvError> {
        ws.tracer.frame_start();
        let window = self.config.propagation_window.max(1);
        let mut is_key = self.previous.is_none() || self.since_key >= window;
        // The adaptive policy re-keys early when the scene moves too fast
        // for propagation to stay reliable.  The left-view flow it estimates
        // is exactly the one propagation needs, so it is left in the
        // workspace and reused.
        let mut have_left_flow = false;
        if !is_key {
            if let KeyFramePolicy::AdaptiveMotion {
                max_median_motion_px,
            } = self.config.key_frame_policy
            {
                let (prev_left, _, _) = self
                    .previous
                    .as_ref()
                    .expect("non-key frames always have a predecessor");
                let flow_started = Instant::now();
                farneback_flow_with(&mut ws.flow_left, prev_left, left, &self.config.flow)?;
                ws.flow_left.timings.record(
                    Stage::FlowLeft,
                    flow_started,
                    flow_started.elapsed(),
                    0,
                );
                ws.tracer.harvest(&ws.flow_left.timings);
                let flow = ws.flow_left.flow();
                let median_u = flow.median_u_with(&mut ws.median_scratch);
                let median_v = flow.median_v_with(&mut ws.median_scratch);
                let motion = (median_u.powi(2) + median_v.powi(2)).sqrt();
                if motion > max_median_motion_px {
                    is_key = true;
                } else {
                    have_left_flow = true;
                }
            }
        }
        let kind = if is_key {
            let infer_span = ws.tracer.enter(Stage::DnnInfer);
            self.surrogate
                .infer_with(&mut ws.stereo, left, right, out)?;
            ws.tracer.exit(infer_span);
            ws.tracer.harvest(ws.stereo.timings());
            FrameKind::KeyFrame
        } else {
            let (prev_left, prev_right, prev_disparity) = self
                .previous
                .as_ref()
                .expect("non-key frames always have a predecessor");
            propagate_and_refine_into(
                &self.config,
                prev_left,
                prev_right,
                prev_disparity,
                left,
                right,
                have_left_flow,
                ws,
                out,
            )?;
            FrameKind::NonKeyFrame
        };
        // Commit only after every fallible stage succeeded.  The previous
        // frames and disparity are copied into the retained slots, reusing
        // their buffers (no allocation once the sizes match).
        self.since_key = if is_key { 1 } else { self.since_key + 1 };
        match &mut self.previous {
            Some((prev_left, prev_right, prev_disparity)) => {
                prev_left.clone_from(left);
                prev_right.clone_from(right);
                prev_disparity.clone_from(out);
            }
            slot @ None => *slot = Some((left.clone(), right.clone(), out.clone())), // lint: alloc-ok(first frame only; steady state clone_from-reuses buffers)
        }
        ws.tracer.frame_end(is_key);
        Ok(kind)
    }
}

/// The ISM pipeline: a key-frame estimator plus the propagation machinery.
#[derive(Debug, Clone)]
pub struct IsmPipeline {
    config: IsmConfig,
    surrogate: SurrogateStereoDnn,
}

impl IsmPipeline {
    /// Creates a pipeline from a configuration and the stereo network the
    /// key-frame estimator stands in for.
    pub fn new(config: IsmConfig, surrogate: SurrogateStereoDnn) -> Self {
        Self { config, surrogate }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &IsmConfig {
        &self.config
    }

    /// Creates a fresh incremental state for streaming this pipeline one
    /// frame at a time (one state per camera stream).
    pub fn state(&self) -> IsmState {
        IsmState::new(self.config, self.surrogate.clone())
    }

    /// Processes one stereo sequence.
    ///
    /// This is exactly [`IsmState::step`] applied to every frame of the
    /// sequence in order, so batch results match streaming results
    /// byte-for-byte.
    ///
    /// # Errors
    ///
    /// Propagates flow and matcher errors (mismatched frame sizes, empty
    /// frames) as [`AsvError`], preserving the originating layer.
    pub fn process_sequence(&self, sequence: &StereoSequence) -> Result<IsmResult, AsvError> {
        let mut state = self.state();
        // One workspace for the whole sequence: the batch path gets the same
        // steady-state buffer reuse as a streaming session.
        let mut ws = Workspace::new();
        let mut frames = Vec::with_capacity(sequence.len());
        for frame in sequence.frames() {
            frames.push(state.step_with(&mut ws, &frame.left, &frame.right)?);
        }
        Ok(IsmResult { frames })
    }
}

/// Steps 2–4 of the algorithm for one non-key frame, writing the refined
/// map into `out`.  When `have_left_flow` is set, `ws.flow_left` already
/// holds the left-view flow the adaptive key-frame policy estimated for this
/// exact frame pair.
#[allow(clippy::too_many_arguments)]
fn propagate_and_refine_into(
    config: &IsmConfig,
    prev_left: &Image,
    prev_right: &Image,
    prev_disparity: &DisparityMap,
    left: &Image,
    right: &Image,
    have_left_flow: bool,
    ws: &mut Workspace,
    out: &mut DisparityMap,
) -> Result<(), AsvError> {
    // Step 3: motion of both views from t to t+1 (the two flow fields are
    // independent, so the parallel build computes them concurrently unless
    // the left one is already available).
    if have_left_flow {
        let flow_started = Instant::now();
        farneback_flow_with(&mut ws.flow_right, prev_right, right, &config.flow)?;
        ws.flow_right
            .timings
            .record(Stage::FlowRight, flow_started, flow_started.elapsed(), 0);
        ws.tracer.harvest(&ws.flow_right.timings);
    } else {
        left_right_flows_with(
            prev_left,
            prev_right,
            left,
            right,
            config,
            &mut ws.flow_left,
            &mut ws.flow_right,
        )?;
        // The two flow calls stage their timings in their own workspaces
        // (they may have run on pool worker threads); fold both into the
        // calling thread's tracer.
        ws.tracer.harvest(&ws.flow_left.timings);
        ws.tracer.harvest(&ws.flow_right.timings);
    }

    // Steps 2 + 3: reconstruct each correspondence pair from the previous
    // disparity map and move both members along their view's motion.
    let propagate_span = ws.tracer.enter(Stage::Propagate);
    #[cfg(feature = "parallel")]
    propagate_correspondences_pooled(
        prev_disparity,
        ws.flow_left.flow(),
        ws.flow_right.flow(),
        &mut ws.propagation_rows,
        &mut ws.propagated,
    );
    #[cfg(not(feature = "parallel"))]
    propagate_correspondences_into(
        prev_disparity,
        ws.flow_left.flow(),
        ws.flow_right.flow(),
        &mut ws.propagated,
    );
    ws.tracer.exit(propagate_span);

    // Step 4: refine with a narrow block-matching search around the
    // propagated disparity.
    let refine_span = ws.tracer.enter(Stage::Refine);
    refine_with_initial_into(
        left,
        right,
        &ws.propagated,
        &config.refine,
        &mut ws.refine,
        out,
    )?;
    ws.tracer.exit(refine_span);
    Ok(())
}

/// Computes the left-view and right-view optical flow of one frame step
/// concurrently (the two estimations share nothing, including their
/// workspaces).
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn left_right_flows_with(
    prev_left: &Image,
    prev_right: &Image,
    left: &Image,
    right: &Image,
    config: &IsmConfig,
    ws_left: &mut FlowWorkspace,
    ws_right: &mut FlowWorkspace,
) -> Result<(), AsvError> {
    let (l, r) = rayon::join(
        || {
            let started = Instant::now();
            let result = farneback_flow_with(ws_left, prev_left, left, &config.flow);
            ws_left
                .timings
                .record(Stage::FlowLeft, started, started.elapsed(), 0);
            result
        },
        || {
            let started = Instant::now();
            let result = farneback_flow_with(ws_right, prev_right, right, &config.flow);
            ws_right
                .timings
                .record(Stage::FlowRight, started, started.elapsed(), 0);
            result
        },
    );
    l?;
    r?;
    Ok(())
}

/// Sequential fallback of the two-view flow computation.
#[cfg(not(feature = "parallel"))]
#[allow(clippy::too_many_arguments)]
fn left_right_flows_with(
    prev_left: &Image,
    prev_right: &Image,
    left: &Image,
    right: &Image,
    config: &IsmConfig,
    ws_left: &mut FlowWorkspace,
    ws_right: &mut FlowWorkspace,
) -> Result<(), AsvError> {
    let started = Instant::now();
    farneback_flow_with(ws_left, prev_left, left, &config.flow)?;
    ws_left
        .timings
        .record(Stage::FlowLeft, started, started.elapsed(), 0);
    let started = Instant::now();
    farneback_flow_with(ws_right, prev_right, right, &config.flow)?;
    ws_right
        .timings
        .record(Stage::FlowRight, started, started.elapsed(), 0);
    Ok(())
}

/// Propagated writes produced by one source row `y`: `(x, y, disparity)`
/// targets in the new frame, in source-column order, appended to a reusable
/// (cleared) write list.
#[cfg(feature = "parallel")]
fn row_writes_into(
    prev_disparity: &DisparityMap,
    flow_left: &FlowField,
    flow_right: &FlowField,
    y: usize,
    writes: &mut Vec<(usize, usize, f32)>,
) {
    let width = prev_disparity.width();
    let height = prev_disparity.height();
    writes.clear();
    for x in 0..width {
        let Some(d) = prev_disparity.get(x, y) else {
            continue;
        };
        // Left member of the pair moves with the left-view flow.
        let (ul, vl) = flow_left.at(x, y);
        let new_lx = x as f32 + ul;
        let new_ly = y as f32 + vl;
        // Right member (at x - d in the right view) moves with the
        // right-view flow.
        let rx = x as f32 - d;
        if rx < 0.0 {
            continue;
        }
        let (ur, _vr) = flow_right.sample(rx, y as f32);
        let new_rx = rx + ur;
        let new_d = new_lx - new_rx;
        let ix = new_lx.round();
        let iy = new_ly.round();
        if ix < 0.0 || iy < 0.0 || ix >= width as f32 || iy >= height as f32 || new_d < 0.0 {
            continue;
        }
        writes.push((ix as usize, iy as usize, new_d));
    }
}

/// Applies per-source-row write lists in row order into a reusable output
/// map, reproducing exactly the overwrite semantics of the reference double
/// loop (later source rows win).
#[cfg(feature = "parallel")]
fn apply_writes_into(
    width: usize,
    height: usize,
    rows: &[Vec<(usize, usize, f32)>],
    out: &mut DisparityMap,
) {
    out.reset_invalid(width, height);
    for row in rows {
        for &(x, y, d) in row {
            out.set(x, y, d);
        }
    }
    out.fill_invalid_horizontally();
}

/// Moves every correspondence pair of `prev_disparity` along the left/right
/// motion fields and rebuilds a disparity map registered to the new left
/// frame.  Pixels that receive no propagated correspondence (disocclusions,
/// pixels that moved out of the frame) are filled from their horizontal
/// neighbours.
///
/// Source rows are independent until the final scatter, so the `parallel`
/// build computes the flow sampling and target positions row-parallel and
/// then applies the writes serially in source-row order; the result is
/// identical to [`propagate_correspondences_serial`] (asserted by a
/// differential test).
pub fn propagate_correspondences(
    prev_disparity: &DisparityMap,
    flow_left: &FlowField,
    flow_right: &FlowField,
) -> DisparityMap {
    let mut out = DisparityMap::invalid(0, 0);
    propagate_correspondences_into(prev_disparity, flow_left, flow_right, &mut out);
    out
}

/// [`propagate_correspondences`] writing into a reusable output map
/// (identical values, no allocation in the sequential build once the map is
/// warm).
#[cfg(feature = "parallel")]
pub fn propagate_correspondences_into(
    prev_disparity: &DisparityMap,
    flow_left: &FlowField,
    flow_right: &FlowField,
    out: &mut DisparityMap,
) {
    let mut rows = Vec::new(); // lint: alloc-ok(compat wrapper; streaming uses the pooled variant)
    propagate_correspondences_pooled(prev_disparity, flow_left, flow_right, &mut rows, out);
}

/// [`propagate_correspondences_into`] with caller-retained per-row write
/// lists: the steady-state streaming hot path performs no allocation.  The
/// write lists are computed row-parallel, each row zipped with its own
/// retained buffer, then applied serially in source-row order (identical
/// overwrite semantics to the serial reference).
#[cfg(feature = "parallel")]
pub fn propagate_correspondences_pooled(
    prev_disparity: &DisparityMap,
    flow_left: &FlowField,
    flow_right: &FlowField,
    rows: &mut Vec<Vec<(usize, usize, f32)>>,
    out: &mut DisparityMap,
) {
    use rayon::prelude::*;
    let width = prev_disparity.width();
    let height = prev_disparity.height();
    if rows.len() < height {
        rows.resize_with(height, Vec::new);
    }
    for row in &mut rows[..height] {
        // A source row emits at most one write per column; growing up front
        // keeps the parallel fill allocation-free.
        row.clear();
        row.reserve(width);
    }
    rows[..height]
        .par_chunks_mut(1)
        .enumerate()
        .for_each(|(y, row)| {
            row_writes_into(prev_disparity, flow_left, flow_right, y, &mut row[0]);
        });
    apply_writes_into(width, height, &rows[..height], out);
}

/// Sequential build of [`propagate_correspondences_into`]: the same plain
/// double loop as the serial reference, writing into the reusable map.
#[cfg(not(feature = "parallel"))]
pub fn propagate_correspondences_into(
    prev_disparity: &DisparityMap,
    flow_left: &FlowField,
    flow_right: &FlowField,
    out: &mut DisparityMap,
) {
    propagate_serial_into(prev_disparity, flow_left, flow_right, out);
}

/// Serial reference implementation of correspondence propagation: the plain
/// double loop, deliberately *not* built from [`row_writes`]/
/// `apply_writes_into` so the differential test compares two independent
/// implementations.  Compiled in every configuration.
pub fn propagate_correspondences_serial(
    prev_disparity: &DisparityMap,
    flow_left: &FlowField,
    flow_right: &FlowField,
) -> DisparityMap {
    let mut out = DisparityMap::invalid(0, 0);
    propagate_serial_into(prev_disparity, flow_left, flow_right, &mut out);
    out
}

/// Body of the serial reference, writing into a reusable map.
fn propagate_serial_into(
    prev_disparity: &DisparityMap,
    flow_left: &FlowField,
    flow_right: &FlowField,
    propagated: &mut DisparityMap,
) {
    let width = prev_disparity.width();
    let height = prev_disparity.height();
    propagated.reset_invalid(width, height);
    for y in 0..height {
        for x in 0..width {
            let Some(d) = prev_disparity.get(x, y) else {
                continue;
            };
            // Left member of the pair moves with the left-view flow.
            let (ul, vl) = flow_left.at(x, y);
            let new_lx = x as f32 + ul;
            let new_ly = y as f32 + vl;
            // Right member (at x - d in the right view) moves with the
            // right-view flow.
            let rx = x as f32 - d;
            if rx < 0.0 {
                continue;
            }
            let (ur, _vr) = flow_right.sample(rx, y as f32);
            let new_rx = rx + ur;
            let new_d = new_lx - new_rx;
            let ix = new_lx.round();
            let iy = new_ly.round();
            if ix < 0.0 || iy < 0.0 || ix >= width as f32 || iy >= height as f32 || new_d < 0.0 {
                continue;
            }
            propagated.set(ix as usize, iy as usize, new_d);
        }
    }
    propagated.fill_invalid_horizontally();
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_dnn::zoo;
    use asv_scene::SceneConfig;

    fn pipeline(window: usize, max_disparity: usize) -> IsmPipeline {
        let config = IsmConfig {
            propagation_window: window,
            refine: BlockMatchParams {
                max_disparity,
                refine_radius: 3,
                ..Default::default()
            },
            surrogate: SurrogateParams {
                max_disparity,
                occlusion_handling: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let surrogate = SurrogateStereoDnn::new(zoo::dispnet(48, 64), config.surrogate);
        IsmPipeline::new(config, surrogate)
    }

    fn small_sequence(frames: usize, seed: u64) -> StereoSequence {
        let config = SceneConfig::scene_flow_like(64, 48)
            .with_seed(seed)
            .with_objects(3);
        StereoSequence::generate(&config, frames)
    }

    #[test]
    fn key_frame_schedule_follows_propagation_window() {
        let seq = small_sequence(6, 3);
        let result = pipeline(3, 32).process_sequence(&seq).unwrap();
        let kinds: Vec<FrameKind> = result.frames.iter().map(|f| f.kind).collect();
        assert_eq!(kinds[0], FrameKind::KeyFrame);
        assert_eq!(kinds[1], FrameKind::NonKeyFrame);
        assert_eq!(kinds[2], FrameKind::NonKeyFrame);
        assert_eq!(kinds[3], FrameKind::KeyFrame);
        assert_eq!(result.key_frame_count(), 2);
        assert_eq!(result.non_key_frame_count(), 4);
    }

    #[test]
    fn window_of_one_runs_dnn_every_frame() {
        let seq = small_sequence(3, 4);
        let result = pipeline(1, 32).process_sequence(&seq).unwrap();
        assert_eq!(result.key_frame_count(), 3);
    }

    #[test]
    fn streaming_state_matches_batch_processing() {
        // The core refactoring invariant: feeding frames one at a time
        // through IsmState::step is byte-identical to the batch loop.
        let seq = small_sequence(5, 8);
        let pipe = pipeline(3, 32);
        let batch = pipe.process_sequence(&seq).unwrap();
        let mut state = pipe.state();
        for (i, frame) in seq.frames().iter().enumerate() {
            let streamed = state.step(&frame.left, &frame.right).unwrap();
            assert_eq!(streamed.kind, batch.frames[i].kind, "frame {i}");
            assert_eq!(streamed.disparity, batch.frames[i].disparity, "frame {i}");
            assert!(state.frames_since_key() >= 1);
        }
    }

    #[test]
    fn reset_forces_a_new_key_frame() {
        let seq = small_sequence(3, 9);
        let pipe = pipeline(4, 32);
        let mut state = pipe.state();
        let f = &seq.frames()[0];
        assert_eq!(
            state.step(&f.left, &f.right).unwrap().kind,
            FrameKind::KeyFrame
        );
        let f = &seq.frames()[1];
        assert_eq!(
            state.step(&f.left, &f.right).unwrap().kind,
            FrameKind::NonKeyFrame
        );
        state.reset();
        assert_eq!(state.frames_since_key(), 0);
        let f = &seq.frames()[2];
        assert_eq!(
            state.step(&f.left, &f.right).unwrap().kind,
            FrameKind::KeyFrame
        );
    }

    #[test]
    fn non_key_frames_stay_close_to_ground_truth() {
        let seq = small_sequence(4, 5);
        let result = pipeline(4, 32).process_sequence(&seq).unwrap();
        for (frame, truth) in result.frames.iter().zip(seq.frames()) {
            let err = frame
                .disparity
                .three_pixel_error(&truth.ground_truth)
                .unwrap();
            assert!(err < 0.25, "{:?} error {err}", frame.kind);
        }
    }

    #[test]
    fn ism_accuracy_is_close_to_per_frame_dnn_accuracy() {
        // The Fig. 9 claim: propagating correspondences instead of re-running
        // the DNN costs almost no accuracy.
        let seq = small_sequence(4, 7);
        let ism = pipeline(4, 32).process_sequence(&seq).unwrap();
        let dnn = pipeline(1, 32).process_sequence(&seq).unwrap();
        let mut ism_err = 0.0;
        let mut dnn_err = 0.0;
        for ((a, b), truth) in ism.frames.iter().zip(&dnn.frames).zip(seq.frames()) {
            ism_err += a.disparity.three_pixel_error(&truth.ground_truth).unwrap();
            dnn_err += b.disparity.three_pixel_error(&truth.ground_truth).unwrap();
        }
        let n = seq.len() as f64;
        assert!(
            ism_err / n <= dnn_err / n + 0.05,
            "ISM error {} vs DNN error {}",
            ism_err / n,
            dnn_err / n
        );
    }

    #[test]
    fn propagation_shifts_disparities_with_motion() {
        // A synthetic correspondence field moved by constant flow: disparities
        // translate and (with equal flows in both views) keep their value.
        let prev = DisparityMap::constant(16, 8, 5.0);
        let flow_l = FlowField::constant(16, 8, 2.0, 0.0);
        let flow_r = FlowField::constant(16, 8, 2.0, 0.0);
        let propagated = propagate_correspondences(&prev, &flow_l, &flow_r);
        assert_eq!(propagated.get(10, 4), Some(5.0));
        // If the right view moves less than the left, disparity grows.
        let flow_r_slow = FlowField::constant(16, 8, 1.0, 0.0);
        let propagated = propagate_correspondences(&prev, &flow_l, &flow_r_slow);
        assert_eq!(propagated.get(10, 4), Some(6.0));
    }

    #[test]
    fn propagation_fills_disocclusions() {
        let mut prev = DisparityMap::constant(16, 8, 4.0);
        prev.invalidate(0, 0);
        let zero = FlowField::zeros(16, 8);
        let propagated = propagate_correspondences(&prev, &zero, &zero);
        // Every pixel valid after horizontal filling.
        assert_eq!(propagated.valid_fraction(), 1.0);
    }

    #[test]
    fn parallel_propagation_matches_serial_reference() {
        // Differential test: the row-parallel scatter must reproduce the
        // serial double loop exactly, including the overwrite order when two
        // source pixels land on the same target.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..8 {
            let width = rng.gen_range(8usize..24);
            let height = rng.gen_range(6usize..16);
            let prev = DisparityMap::from_fn(width, height, |_, _| {
                if rng.gen_range(0.0f32..1.0) < 0.1 {
                    -1.0
                } else {
                    rng.gen_range(0.0f32..12.0)
                }
            });
            let mut fl = FlowField::zeros(width, height);
            let mut fr = FlowField::zeros(width, height);
            for y in 0..height {
                for x in 0..width {
                    fl.set(
                        x,
                        y,
                        rng.gen_range(-3.0f32..3.0),
                        rng.gen_range(-2.0f32..2.0),
                    );
                    fr.set(
                        x,
                        y,
                        rng.gen_range(-3.0f32..3.0),
                        rng.gen_range(-2.0f32..2.0),
                    );
                }
            }
            let fast = propagate_correspondences(&prev, &fl, &fr);
            let reference = propagate_correspondences_serial(&prev, &fl, &fr);
            assert_eq!(fast, reference);
        }
    }

    #[test]
    fn adaptive_policy_rekeys_under_fast_motion() {
        // A zero-motion threshold forces every frame to become a key frame as
        // soon as any motion is detected; a huge threshold reproduces the
        // static schedule.
        let seq = small_sequence(6, 13);
        let base = pipeline(4, 32);
        let make = |policy| {
            let config = IsmConfig {
                key_frame_policy: policy,
                ..*base.config()
            };
            IsmPipeline::new(
                config,
                SurrogateStereoDnn::new(zoo::dispnet(48, 64), config.surrogate),
            )
        };
        let eager = make(KeyFramePolicy::AdaptiveMotion {
            max_median_motion_px: 0.0,
        })
        .process_sequence(&seq)
        .unwrap();
        let relaxed = make(KeyFramePolicy::AdaptiveMotion {
            max_median_motion_px: 1e6,
        })
        .process_sequence(&seq)
        .unwrap();
        let static_schedule = base.process_sequence(&seq).unwrap();
        assert!(eager.key_frame_count() >= static_schedule.key_frame_count());
        assert_eq!(relaxed.key_frame_count(), static_schedule.key_frame_count());
    }

    #[test]
    fn errors_propagate_from_mismatched_frames() {
        let config = IsmConfig::default();
        let surrogate = SurrogateStereoDnn::new(zoo::dispnet(48, 64), config.surrogate);
        let pipeline = IsmPipeline::new(config, surrogate);
        // Sequence with zero frames is fine (empty result).
        let empty =
            StereoSequence::generate(&SceneConfig::scene_flow_like(32, 24).with_objects(1), 0);
        let result = pipeline.process_sequence(&empty).unwrap();
        assert!(result.frames.is_empty());
    }
}
