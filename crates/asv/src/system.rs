//! [`AsvSystem`]: the top-level user-facing object combining the functional
//! ISM pipeline with the performance/energy model.

use crate::error::AsvError;
use crate::ism::{IsmConfig, IsmPipeline, IsmResult};
use crate::perf::{AsvVariant, SystemPerformanceModel, VariantReport};
use asv_accel::ism::NonKeyFrameConfig;
use asv_accel::systolic::SystolicAccelerator;
use asv_dnn::{zoo, CostMetric, NetworkSpec, SurrogateParams, SurrogateStereoDnn};
use asv_flow::farneback::FarnebackParams;
use asv_scene::StereoSequence;
use asv_stereo::block_matching::BlockMatchParams;
use serde::{Deserialize, Serialize};

/// Configuration of a complete ASV system instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsvConfig {
    /// Propagation window (PW): one key frame every `propagation_window`
    /// frames.
    pub propagation_window: usize,
    /// Largest disparity the matchers search for.
    pub max_disparity: usize,
    /// Frame width the performance model assumes.
    pub frame_width: usize,
    /// Frame height the performance model assumes.
    pub frame_height: usize,
    /// Which stereo network the key-frame estimator stands in for (used by
    /// the performance model); one of the zoo names.
    pub network: String,
    /// Matching-cost metric of the key-frame matcher ([`CostMetric::Sad`]
    /// reference quality, [`CostMetric::Census`] integer SIMD fast path).
    pub metric: CostMetric,
}

impl AsvConfig {
    /// The paper's default operating point: PW-4, qHD frames, DispNet.
    pub fn paper_default() -> Self {
        Self {
            propagation_window: 4,
            max_disparity: 64,
            frame_width: 960,
            frame_height: 540,
            network: "DispNet".to_owned(),
            metric: CostMetric::Sad,
        }
    }

    /// A small configuration suitable for tests and examples.
    pub fn small() -> Self {
        Self {
            propagation_window: 2,
            max_disparity: 32,
            frame_width: 64,
            frame_height: 48,
            network: "DispNet".to_owned(),
            metric: CostMetric::Sad,
        }
    }
}

impl Default for AsvConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Accuracy comparison between ISM and per-frame DNN processing on one
/// sequence (one pair of bars of Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Average three-pixel error rate of ISM across the sequence.
    pub ism_error_rate: f64,
    /// Average three-pixel error rate of running the estimator on every
    /// frame.
    pub dnn_error_rate: f64,
    /// `ism_error_rate − dnn_error_rate` (positive = accuracy loss).
    pub accuracy_loss: f64,
}

/// The complete ASV system: functional pipeline + performance model.
#[derive(Debug, Clone)]
pub struct AsvSystem {
    config: AsvConfig,
    pipeline: IsmPipeline,
    perf: SystemPerformanceModel,
    network: NetworkSpec,
}

impl AsvSystem {
    /// Builds a system from a configuration, using the default accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`AsvError::UnknownNetwork`] when `config.network` names no
    /// network of the zoo.
    pub fn new(config: AsvConfig) -> Result<Self, AsvError> {
        Self::with_accelerator(config, SystolicAccelerator::asv_default())
    }

    /// Builds a system with an explicit accelerator configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AsvError::UnknownNetwork`] when `config.network` names no
    /// network of the zoo.
    pub fn with_accelerator(
        config: AsvConfig,
        accelerator: SystolicAccelerator,
    ) -> Result<Self, AsvError> {
        let network = network_by_name(
            &config.network,
            config.frame_height,
            config.frame_width,
            config.max_disparity,
        )?;
        let surrogate_params = SurrogateParams {
            max_disparity: config.max_disparity,
            occlusion_handling: true,
            metric: config.metric,
        };
        let ism_config = IsmConfig {
            propagation_window: config.propagation_window,
            key_frame_policy: crate::ism::KeyFramePolicy::Static,
            flow: FarnebackParams::default(),
            refine: BlockMatchParams {
                max_disparity: config.max_disparity,
                refine_radius: 3,
                ..Default::default()
            },
            surrogate: surrogate_params,
        };
        let pipeline = IsmPipeline::new(
            ism_config,
            SurrogateStereoDnn::new(network.clone(), surrogate_params),
        );
        let nonkey = NonKeyFrameConfig::with_resolution(config.frame_width, config.frame_height);
        let perf = SystemPerformanceModel::new(accelerator, nonkey, config.propagation_window);
        Ok(Self {
            config,
            pipeline,
            perf,
            network,
        })
    }

    /// The functional ISM pipeline driving [`AsvSystem::process_sequence`];
    /// streaming runtimes call [`IsmPipeline::state`] on it to obtain one
    /// incremental state per camera stream.
    pub fn pipeline(&self) -> &IsmPipeline {
        &self.pipeline
    }

    /// The system configuration.
    pub fn config(&self) -> &AsvConfig {
        &self.config
    }

    /// The stereo network description used by the performance model.
    pub fn network(&self) -> &NetworkSpec {
        &self.network
    }

    /// The underlying performance model.
    pub fn performance_model(&self) -> &SystemPerformanceModel {
        &self.perf
    }

    /// Runs the functional ISM pipeline on a sequence.
    ///
    /// # Errors
    ///
    /// Propagates flow and matcher errors from the pipeline as the unified
    /// [`AsvError`].
    pub fn process_sequence(&self, sequence: &StereoSequence) -> Result<IsmResult, AsvError> {
        self.pipeline.process_sequence(sequence)
    }

    /// Compares ISM accuracy against per-frame estimation on a sequence with
    /// ground truth.
    ///
    /// # Errors
    ///
    /// Propagates flow and matcher errors from either pipeline as the unified
    /// [`AsvError`].
    pub fn evaluate_accuracy(&self, sequence: &StereoSequence) -> Result<AccuracyReport, AsvError> {
        let ism = self.pipeline.process_sequence(sequence)?;
        let per_frame_config = IsmConfig {
            propagation_window: 1,
            ..*self.pipeline.config()
        };
        let per_frame_pipeline = IsmPipeline::new(
            per_frame_config,
            SurrogateStereoDnn::new(self.network.clone(), per_frame_config.surrogate),
        );
        let dnn = per_frame_pipeline.process_sequence(sequence)?;

        let mut ism_err = 0.0;
        let mut dnn_err = 0.0;
        let mut count = 0usize;
        for ((a, b), truth) in ism.frames.iter().zip(&dnn.frames).zip(sequence.frames()) {
            ism_err += a.disparity.three_pixel_error(&truth.ground_truth)?;
            dnn_err += b.disparity.three_pixel_error(&truth.ground_truth)?;
            count += 1;
        }
        let n = count.max(1) as f64;
        let ism_error_rate = ism_err / n;
        let dnn_error_rate = dnn_err / n;
        Ok(AccuracyReport {
            ism_error_rate,
            dnn_error_rate,
            accuracy_loss: ism_error_rate - dnn_error_rate,
        })
    }

    /// Per-frame performance/energy of all system variants on the configured
    /// network.
    pub fn variant_reports(&self) -> Vec<VariantReport> {
        self.perf.variant_reports(&self.network)
    }

    /// Per-frame performance of one variant.
    pub fn per_frame_report(&self, variant: AsvVariant) -> asv_accel::ExecutionReport {
        self.perf.per_frame_report(&self.network, variant)
    }
}

/// Resolves a zoo network by (case-insensitive) name.
///
/// # Errors
///
/// Returns [`AsvError::UnknownNetwork`] for names outside the zoo — a
/// misconfiguration must surface instead of silently running DispNet.
fn network_by_name(
    name: &str,
    height: usize,
    width: usize,
    max_disparity: usize,
) -> Result<NetworkSpec, AsvError> {
    match name.to_ascii_lowercase().as_str() {
        "flownetc" => Ok(zoo::flownetc(height, width)),
        "gc-net" | "gcnet" => Ok(zoo::gcnet(height, width, max_disparity.max(32))),
        "psmnet" => Ok(zoo::psmnet(height, width, max_disparity.max(32))),
        "dispnet" => Ok(zoo::dispnet(height, width)),
        _ => Err(AsvError::UnknownNetwork {
            name: name.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_scene::SceneConfig;

    fn small_system() -> AsvSystem {
        AsvSystem::new(AsvConfig::small()).unwrap()
    }

    fn sequence(frames: usize) -> StereoSequence {
        StereoSequence::generate(
            &SceneConfig::scene_flow_like(64, 48)
                .with_seed(21)
                .with_objects(3),
            frames,
        )
    }

    #[test]
    fn end_to_end_processing_and_accuracy() {
        let system = small_system();
        let seq = sequence(4);
        let result = system.process_sequence(&seq).unwrap();
        assert_eq!(result.frames.len(), 4);
        let report = system.evaluate_accuracy(&seq).unwrap();
        // Fig. 9: the accuracy loss from ISM is tiny (the paper reports
        // 0.02 % at PW-4 on SceneFlow); allow a small band for the synthetic
        // dataset and surrogate estimator.
        assert!(
            report.accuracy_loss < 0.05,
            "accuracy loss {}",
            report.accuracy_loss
        );
        assert!(report.dnn_error_rate < 0.3);
    }

    #[test]
    fn variant_reports_match_paper_ordering() {
        let system = small_system();
        let reports = system.variant_reports();
        assert_eq!(reports.len(), 4);
        let speedup = |v: AsvVariant| reports.iter().find(|r| r.variant == v).unwrap().speedup;
        assert!(speedup(AsvVariant::IsmDco) >= speedup(AsvVariant::Ism));
        assert!(speedup(AsvVariant::Ism) > 1.0);
        assert!(speedup(AsvVariant::Dco) > 1.0);
    }

    #[test]
    fn network_selection_by_name() {
        for (name, expected) in [
            ("FlowNetC", "FlowNetC"),
            ("gc-net", "GC-Net"),
            ("PSMNet", "PSMNet"),
            ("DispNet", "DispNet"),
        ] {
            let config = AsvConfig {
                network: name.to_owned(),
                ..AsvConfig::small()
            };
            let system = AsvSystem::new(config).unwrap();
            assert_eq!(system.network().name, expected);
        }
    }

    #[test]
    fn unknown_network_names_are_rejected() {
        // Unknown names used to silently fall back to DispNet; they must
        // surface as a configuration error instead.
        let config = AsvConfig {
            network: "unknown".to_owned(),
            ..AsvConfig::small()
        };
        match AsvSystem::new(config) {
            Err(AsvError::UnknownNetwork { name }) => assert_eq!(name, "unknown"),
            other => panic!("expected UnknownNetwork, got {other:?}"),
        }
    }

    #[test]
    fn config_defaults() {
        assert_eq!(AsvConfig::default(), AsvConfig::paper_default());
        let system = small_system();
        assert_eq!(system.config().propagation_window, 2);
        assert_eq!(system.performance_model().propagation_window(), 2);
        assert!(system.per_frame_report(AsvVariant::Baseline).seconds > 0.0);
    }
}
