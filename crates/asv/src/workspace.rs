//! Per-session scratch for the streaming hot path.
//!
//! [`IsmState::step`] re-allocated every intermediate — two flow pyramids,
//! twelve polynomial-expansion planes, the SGM cost volume and its
//! aggregation buffers, the propagated and refined disparity maps — on every
//! frame.  A [`Workspace`] owns all of that scratch instead: the first frame
//! of a stream sizes the buffers, and every later frame reuses them, making
//! steady-state [`IsmState::step_with`] perform **zero heap allocations**
//! (asserted by the allocation-regression test in `tests/alloc.rs`).
//!
//! One workspace serves one stream: the streaming runtime gives every
//! session its own, so concurrent sessions never contend on the global
//! allocator.  A workspace carries no algorithmic state — streams may be
//! reset or re-keyed freely, and feeding differently-sized frames merely
//! re-warms the buffers.
//!
//! [`IsmState::step`]: crate::ism::IsmState::step
//! [`IsmState::step_with`]: crate::ism::IsmState::step_with

use asv_flow::farneback::FlowWorkspace;
use asv_image::Image;
use asv_mem::BufferPool;
use asv_stereo::{DisparityMap, MatchScratch, SgmWorkspace};
use asv_trace::{TraceConfig, Tracer};

/// Reusable per-stream scratch for the whole ISM frame path: optical flow
/// (one workspace per camera view, so the two estimations can run
/// concurrently), the key-frame SGM matcher, the non-key-frame refinement
/// search and a pool of frame-sized planes that backs the returned disparity
/// maps.
#[derive(Debug)]
pub struct Workspace {
    pub(crate) flow_left: FlowWorkspace,
    pub(crate) flow_right: FlowWorkspace,
    pub(crate) stereo: SgmWorkspace,
    pub(crate) refine: MatchScratch,
    pub(crate) propagated: DisparityMap,
    pub(crate) maps: BufferPool,
    /// Selection buffer of the adaptive key-frame policy's median-motion
    /// estimate.
    pub(crate) median_scratch: Vec<f32>,
    /// Per-source-row write lists of the parallel correspondence
    /// propagation, retained across frames.
    #[cfg(feature = "parallel")]
    pub(crate) propagation_rows: Vec<Vec<(usize, usize, f32)>>,
    /// Per-stage span recorder: every [`IsmState::step_with`] call traces
    /// its pipeline stages here (ring-buffered per session, governed by
    /// `ASV_TRACE`; see the `asv_trace` crate).
    ///
    /// [`IsmState::step_with`]: crate::ism::IsmState::step_with
    pub tracer: Tracer,
}

impl Workspace {
    /// Creates an empty workspace.  No heap allocation happens until the
    /// first frame is processed, so creating one per call (as the allocating
    /// [`IsmState::step`] wrapper does) costs nothing beyond losing reuse.
    ///
    /// [`IsmState::step`]: crate::ism::IsmState::step
    pub fn new() -> Self {
        Self::with_trace_config(TraceConfig::from_env())
    }

    /// [`Workspace::new`] with an explicit tracing configuration instead of
    /// the `ASV_TRACE` environment default — e.g. to force full-capture mode
    /// for one profiled session while the rest of the process stays in ring
    /// mode.  Still allocation-free until the first frame.
    pub fn with_trace_config(trace: TraceConfig) -> Self {
        Self {
            flow_left: FlowWorkspace::new(),
            flow_right: FlowWorkspace::new(),
            stereo: SgmWorkspace::new(),
            refine: MatchScratch::new(),
            propagated: DisparityMap::invalid(0, 0),
            maps: BufferPool::new(),
            median_scratch: Vec::new(),
            #[cfg(feature = "parallel")]
            propagation_rows: Vec::new(),
            tracer: Tracer::new(trace),
        }
    }

    /// Checks a `width x height` disparity map out of the plane pool
    /// (contents unspecified; every caller fully overwrites it).
    pub(crate) fn take_map(&mut self, width: usize, height: usize) -> DisparityMap {
        let data = self.maps.take_scratch(width * height);
        let image = Image::from_vec(width, height, data)
            .expect("pool buffer has exactly width * height elements");
        DisparityMap::from_image(image)
    }

    /// Returns a disparity map's plane to the pool, e.g. a
    /// [`FrameResult`](crate::ism::FrameResult) the consumer is done with.
    /// Recycling the previous frame's output before stepping the next frame
    /// is what closes the allocation loop: the pooled plane becomes the next
    /// output map.
    pub fn recycle(&mut self, map: DisparityMap) {
        self.maps.put(map.into_image().into_vec());
    }

    /// Bytes retained by the pooled planes and the SGM scratch (the flow
    /// workspaces add roughly twenty frame-sized planes on top).  Useful for
    /// capacity-planning many concurrent sessions.
    pub fn retained_bytes(&self) -> usize {
        self.maps.retained_bytes() + self.stereo.retained_bytes()
    }

    /// Releases every retained buffer — the pooled planes, the SGM scratch
    /// and the flow workspaces (e.g. when a stream goes idle); the next
    /// frame re-warms them.
    pub fn trim(&mut self) {
        *self = Workspace::with_trace_config(*self.tracer.config());
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_workspace_is_empty() {
        let ws = Workspace::new();
        assert_eq!(ws.retained_bytes(), 0);
    }

    #[test]
    fn recycled_map_backs_the_next_checkout() {
        let mut ws = Workspace::new();
        let map = ws.take_map(8, 4);
        assert_eq!((map.width(), map.height()), (8, 4));
        ws.recycle(map);
        assert!(ws.retained_bytes() >= 8 * 4 * 4);
        let again = ws.take_map(8, 4);
        assert_eq!((again.width(), again.height()), (8, 4));
        assert_eq!(ws.maps.hits(), 1);
        ws.recycle(again);
        ws.trim();
        assert_eq!(ws.retained_bytes(), 0);
    }
}
