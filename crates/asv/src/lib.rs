//! ASV: the accelerated stereo vision system (the paper's primary
//! contribution), tying together the ISM algorithm, the deconvolution
//! optimizations and the accelerator models.
//!
//! The crate exposes three layers of API:
//!
//! * [`ism`] — the invariant-based stereo matching pipeline (Sec. 3): DNN
//!   (surrogate) inference on key frames, correspondence reconstruction,
//!   propagation through dense optical flow, and block-matching refinement on
//!   non-key frames.  This is the functional algorithm that produces
//!   disparity maps from stereo video.
//! * [`perf`] — the system performance/energy model (Sec. 7): per-frame
//!   latency and energy of the four system variants the paper compares
//!   (baseline DNN accelerator, +DCO, +ISM, +both), plus the baseline
//!   hardware platforms.
//! * [`system`] — [`AsvSystem`], the top-level object a user instantiates to
//!   run both of the above with one configuration.
//!
//! # Quickstart
//!
//! ```
//! use asv::system::{AsvSystem, AsvConfig};
//! use asv_scene::{SceneConfig, StereoSequence};
//!
//! // A small synthetic stereo sequence (the dataset substitute).
//! let scene = SceneConfig::scene_flow_like(64, 48).with_seed(1);
//! let sequence = StereoSequence::generate(&scene, 4);
//!
//! // ASV with a propagation window of 2 (every other frame is a key frame).
//! let system = AsvSystem::new(AsvConfig { propagation_window: 2, ..AsvConfig::small() }).unwrap();
//! let result = system.process_sequence(&sequence).unwrap();
//! assert_eq!(result.frames.len(), 4);
//!
//! // Accuracy is measured with the three-pixel-error metric of the paper.
//! let accuracy = system.evaluate_accuracy(&sequence).unwrap();
//! assert!(accuracy.ism_error_rate <= 0.5);
//! ```

pub mod error;
pub mod ism;
pub mod perf;
pub mod system;
pub mod workspace;

pub use asv_dnn::CostMetric;
pub use asv_trace as trace;
pub use error::{AsvError, WireFault};
pub use ism::{
    FrameKind, FrameResult, IsmConfig, IsmPipeline, IsmResult, IsmState, KeyFramePolicy,
};
pub use perf::{AsvVariant, SystemPerformanceModel, VariantReport};
pub use system::{AccuracyReport, AsvConfig, AsvSystem};
pub use workspace::Workspace;
