//! System-level performance and energy model (the basis of Figs. 1, 10, 12
//! and 13).
//!
//! ASV's per-frame cost depends on which optimizations are active:
//!
//! * the **baseline** runs the stereo DNN on every frame with no
//!   deconvolution optimization;
//! * **DCO** keeps per-frame DNN inference but applies the deconvolution
//!   transformation + reuse optimizer;
//! * **ISM** keeps the unoptimized DNN but only runs it on key frames,
//!   processing the remaining frames with optical flow + block matching on
//!   the same hardware;
//! * **ISM + DCO** combines both (the full ASV system).
//!
//! Per-frame cost of the ISM variants is the steady-state average over one
//! propagation window: one key frame plus `PW − 1` non-key frames.

use asv_accel::ism::{nonkey_frame_report, NonKeyFrameConfig};
use asv_accel::systolic::SystolicAccelerator;
use asv_accel::ExecutionReport;
use asv_dataflow::OptLevel;
use asv_dnn::NetworkSpec;
use serde::{Deserialize, Serialize};

/// The four system variants compared throughout the evaluation (Sec. 6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AsvVariant {
    /// Conventional DNN accelerator, DNN on every frame.
    Baseline,
    /// Deconvolution optimizations only (DCO).
    Dco,
    /// ISM algorithm only.
    Ism,
    /// ISM plus deconvolution optimizations — the full ASV system.
    IsmDco,
}

impl AsvVariant {
    /// All variants in the order used by Fig. 10.
    pub fn all() -> [AsvVariant; 4] {
        [
            AsvVariant::Baseline,
            AsvVariant::Dco,
            AsvVariant::Ism,
            AsvVariant::IsmDco,
        ]
    }

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            AsvVariant::Baseline => "baseline",
            AsvVariant::Dco => "DCO",
            AsvVariant::Ism => "ISM",
            AsvVariant::IsmDco => "DCO+ISM",
        }
    }
}

/// Per-frame cost of one variant, plus its improvement over the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariantReport {
    /// Which variant this report describes.
    pub variant: AsvVariant,
    /// Average per-frame execution report (steady state).
    pub per_frame: ExecutionReport,
    /// Speedup over the baseline variant.
    pub speedup: f64,
    /// Fractional energy reduction over the baseline variant.
    pub energy_reduction: f64,
}

/// The system performance model: one stereo network, one accelerator, one
/// non-key-frame configuration and one propagation window.
#[derive(Debug, Clone)]
pub struct SystemPerformanceModel {
    accelerator: SystolicAccelerator,
    nonkey: NonKeyFrameConfig,
    propagation_window: usize,
}

impl SystemPerformanceModel {
    /// Creates a model.
    pub fn new(
        accelerator: SystolicAccelerator,
        nonkey: NonKeyFrameConfig,
        propagation_window: usize,
    ) -> Self {
        Self {
            accelerator,
            nonkey,
            propagation_window: propagation_window.max(1),
        }
    }

    /// The paper's default operating point: the ASV accelerator, qHD non-key
    /// frames, PW-4.
    pub fn asv_default() -> Self {
        Self::new(
            SystolicAccelerator::asv_default(),
            NonKeyFrameConfig::qhd(),
            4,
        )
    }

    /// The accelerator being modelled.
    pub fn accelerator(&self) -> &SystolicAccelerator {
        &self.accelerator
    }

    /// The propagation window.
    pub fn propagation_window(&self) -> usize {
        self.propagation_window
    }

    /// Average per-frame cost of running `network` under `variant`.
    pub fn per_frame_report(&self, network: &NetworkSpec, variant: AsvVariant) -> ExecutionReport {
        let key_level = match variant {
            AsvVariant::Baseline | AsvVariant::Ism => OptLevel::Baseline,
            AsvVariant::Dco | AsvVariant::IsmDco => OptLevel::Ilar,
        };
        let key = self.accelerator.run_network(network, key_level);
        match variant {
            AsvVariant::Baseline | AsvVariant::Dco => key,
            AsvVariant::Ism | AsvVariant::IsmDco => {
                let nonkey = nonkey_frame_report(&self.accelerator, &self.nonkey);
                let pw = self.propagation_window as f64;
                key.scaled(1.0 / pw)
                    .combine(&nonkey.scaled((pw - 1.0) / pw))
            }
        }
    }

    /// Reports for all four variants, with speedup/energy relative to the
    /// baseline (one group of bars of Fig. 10).
    pub fn variant_reports(&self, network: &NetworkSpec) -> Vec<VariantReport> {
        let baseline = self.per_frame_report(network, AsvVariant::Baseline);
        AsvVariant::all()
            .iter()
            .map(|&variant| {
                let per_frame = self.per_frame_report(network, variant);
                VariantReport {
                    variant,
                    per_frame,
                    speedup: per_frame.speedup_over(&baseline),
                    energy_reduction: per_frame.energy_reduction_vs(&baseline),
                }
            })
            .collect()
    }

    /// Returns a copy of the model with a different propagation window.
    pub fn with_propagation_window(&self, window: usize) -> Self {
        Self {
            propagation_window: window.max(1),
            ..self.clone()
        }
    }

    /// Returns a copy of the model with a different accelerator.
    pub fn with_accelerator(&self, accelerator: SystolicAccelerator) -> Self {
        Self {
            accelerator,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_dnn::zoo;

    fn model() -> SystemPerformanceModel {
        SystemPerformanceModel::new(
            SystolicAccelerator::asv_default(),
            NonKeyFrameConfig::with_resolution(192, 96),
            4,
        )
    }

    #[test]
    fn full_asv_achieves_multiple_x_speedup_and_large_energy_saving() {
        // Fig. 10: DCO+ISM averages ~4.9x speedup and ~85% energy reduction
        // over the baseline accelerator (PW-4).
        let model = model();
        let mut speedups = Vec::new();
        let mut energy_reductions = Vec::new();
        for net in zoo::suite(96, 192, 48) {
            let reports = model.variant_reports(&net);
            let full = reports
                .iter()
                .find(|r| r.variant == AsvVariant::IsmDco)
                .unwrap();
            speedups.push(full.speedup);
            energy_reductions.push(full.energy_reduction);
        }
        let avg_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
        let avg_energy = energy_reductions.iter().sum::<f64>() / energy_reductions.len() as f64;
        assert!(avg_speedup > 3.0, "average speedup {avg_speedup}");
        assert!(avg_energy > 0.6, "average energy reduction {avg_energy}");
    }

    #[test]
    fn ism_contributes_more_than_dco() {
        // The paper: ISM avoids DNN inference entirely on non-key frames, so
        // it contributes more than the deconvolution optimizations.
        let model = model();
        let net = zoo::gcnet(96, 192, 48);
        let reports = model.variant_reports(&net);
        let by = |v: AsvVariant| reports.iter().find(|r| r.variant == v).unwrap().speedup;
        assert!(by(AsvVariant::Ism) > by(AsvVariant::Dco));
        assert!(by(AsvVariant::IsmDco) >= by(AsvVariant::Ism));
        assert!((by(AsvVariant::Baseline) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn larger_propagation_window_increases_speedup() {
        let net = zoo::dispnet(96, 192);
        let pw2 = model().with_propagation_window(2);
        let pw4 = model().with_propagation_window(4);
        let s2 = pw2.variant_reports(&net).last().unwrap().speedup;
        let s4 = pw4.variant_reports(&net).last().unwrap().speedup;
        assert!(s4 > s2);
        assert_eq!(pw4.propagation_window(), 4);
    }

    #[test]
    fn variant_labels() {
        assert_eq!(AsvVariant::Baseline.label(), "baseline");
        assert_eq!(AsvVariant::IsmDco.label(), "DCO+ISM");
        assert_eq!(AsvVariant::all().len(), 4);
    }

    #[test]
    fn default_model_uses_pw4_and_qhd() {
        let m = SystemPerformanceModel::asv_default();
        assert_eq!(m.propagation_window(), 4);
        assert_eq!(m.accelerator().hw().pe_rows, 24);
    }
}
