//! The workspace-level error type.
//!
//! Every layer keeps its own focused error enum (`TensorError`, `ImageError`,
//! `FlowError`, `StereoError`) so kernels stay decoupled, but the system
//! facade surfaces exactly one type: [`AsvError`]. `From` conversions let
//! errors from any layer flow through a `?` chain into [`AsvError`], and
//! [`std::error::Error::source`] preserves the underlying layer error for
//! callers that want to inspect it.

use asv_flow::FlowError;
use asv_image::ImageError;
use asv_stereo::StereoError;
use asv_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Unified error type of the ASV system facade.
///
/// Each variant wraps the error enum of one workspace layer; [`AsvError::Config`]
/// covers system-level misconfiguration that no single layer owns.
#[derive(Debug, Clone, PartialEq)]
pub enum AsvError {
    /// An error from the tensor kernels (`asv-tensor`).
    Tensor(TensorError),
    /// An error from the image layer (`asv-image`).
    Image(ImageError),
    /// An error from optical-flow estimation (`asv-flow`).
    Flow(FlowError),
    /// An error from stereo matching (`asv-stereo`).
    Stereo(StereoError),
    /// A stereo-network name that is not in the zoo.
    UnknownNetwork {
        /// The name that failed to resolve.
        name: String,
    },
    /// A system-level configuration problem.
    Config {
        /// Human readable description.
        context: String,
    },
    /// The runtime is shutting down and no longer accepts work.
    Shutdown,
    /// Admission control rejected a frame because the target queue is full.
    Saturated {
        /// Which queue rejected the frame (session, shard or ingest queue).
        context: String,
    },
    /// A frame on the wire failed to decode (network ingest edge).
    Wire {
        /// Which structural check rejected the message.
        fault: WireFault,
        /// Human readable detail (offsets, expected vs observed values).
        context: String,
    },
    /// A network transport failure (connect, send or ack) that survived the
    /// client's retry budget.
    Transport {
        /// Human readable description of the failed operation.
        context: String,
    },
    /// The scheduler shard holding this session has failed (worker panic,
    /// poisoned lock or injected fault) and no longer accepts frames.
    ShardDown {
        /// Which shard failed and why.
        context: String,
    },
}

/// The structural check that rejected a wire message.
///
/// Every decode failure maps to exactly one fault so the transport layer can
/// count errors per kind (`asv_transport_errors_total{kind}`) without parsing
/// message strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireFault {
    /// The four magic bytes did not read `ASVF`.
    BadMagic,
    /// The header carried an unsupported format version.
    Version,
    /// The message ended before the declared length.
    Truncated,
    /// The length prefix exceeded the configured maximum frame size.
    Oversized,
    /// The frame checksum did not match the message body.
    Crc,
    /// The session key was not valid UTF-8.
    Key,
    /// The declared lengths were internally inconsistent (length prefix vs
    /// key length and plane dimensions).
    Length,
    /// A frame arrived with a sequence number ahead of the expected one
    /// (frames were lost or reordered on the wire).
    Gap,
}

impl WireFault {
    /// Stable lower-case name, used as the `kind` label of
    /// `asv_transport_errors_total`.
    pub fn name(self) -> &'static str {
        match self {
            WireFault::BadMagic => "bad_magic",
            WireFault::Version => "version",
            WireFault::Truncated => "truncated",
            WireFault::Oversized => "oversized",
            WireFault::Crc => "crc",
            WireFault::Key => "key",
            WireFault::Length => "length",
            WireFault::Gap => "gap",
        }
    }
}

impl fmt::Display for WireFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl AsvError {
    /// Builds an [`AsvError::Config`] from anything displayable.
    pub fn config(context: impl fmt::Display) -> Self {
        AsvError::Config {
            context: context.to_string(),
        }
    }

    /// Builds an [`AsvError::Saturated`] naming the rejecting queue.
    pub fn saturated(context: impl fmt::Display) -> Self {
        AsvError::Saturated {
            context: context.to_string(), // lint: alloc-ok(error path)
        }
    }

    /// Builds an [`AsvError::Wire`] for one structural decode fault.
    pub fn wire(fault: WireFault, context: impl fmt::Display) -> Self {
        AsvError::Wire {
            fault,
            context: context.to_string(), // lint: alloc-ok(error path)
        }
    }

    /// Builds an [`AsvError::Transport`] from anything displayable.
    pub fn transport(context: impl fmt::Display) -> Self {
        AsvError::Transport {
            context: context.to_string(),
        }
    }

    /// Builds an [`AsvError::ShardDown`] naming the failed shard.
    pub fn shard_down(context: impl fmt::Display) -> Self {
        AsvError::ShardDown {
            context: context.to_string(), // lint: alloc-ok(error path)
        }
    }
}

impl fmt::Display for AsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsvError::Tensor(e) => write!(f, "tensor: {e}"),
            AsvError::Image(e) => write!(f, "image: {e}"),
            AsvError::Flow(e) => write!(f, "flow: {e}"),
            AsvError::Stereo(e) => write!(f, "stereo: {e}"),
            AsvError::UnknownNetwork { name } => {
                write!(f, "unknown stereo network {name:?} (expected one of the zoo names: DispNet, FlowNetC, GC-Net, PSMNet)")
            }
            AsvError::Config { context } => write!(f, "configuration: {context}"),
            AsvError::Shutdown => write!(f, "runtime is shut down"),
            AsvError::Saturated { context } => {
                write!(f, "admission control rejected the frame: {context} is full")
            }
            AsvError::Wire { fault, context } => {
                write!(f, "wire decode failed ({fault}): {context}")
            }
            AsvError::Transport { context } => write!(f, "transport: {context}"),
            AsvError::ShardDown { context } => write!(f, "shard down: {context}"),
        }
    }
}

impl Error for AsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AsvError::Tensor(e) => Some(e),
            AsvError::Image(e) => Some(e),
            AsvError::Flow(e) => Some(e),
            AsvError::Stereo(e) => Some(e),
            AsvError::UnknownNetwork { .. }
            | AsvError::Config { .. }
            | AsvError::Shutdown
            | AsvError::Saturated { .. }
            | AsvError::Wire { .. }
            | AsvError::Transport { .. }
            | AsvError::ShardDown { .. } => None,
        }
    }
}

impl From<TensorError> for AsvError {
    fn from(e: TensorError) -> Self {
        AsvError::Tensor(e)
    }
}

impl From<ImageError> for AsvError {
    fn from(e: ImageError) -> Self {
        AsvError::Image(e)
    }
}

impl From<FlowError> for AsvError {
    fn from(e: FlowError) -> Self {
        AsvError::Flow(e)
    }
}

impl From<StereoError> for AsvError {
    fn from(e: StereoError) -> Self {
        AsvError::Stereo(e)
    }
}

/// Convenience alias for results carrying an [`AsvError`].
pub type Result<T> = std::result::Result<T, AsvError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_tensor_error_preserves_source() {
        let inner = TensorError::shape_mismatch("kernel channels 3 vs ifmap channels 2");
        let e: AsvError = inner.clone().into();
        assert_eq!(e, AsvError::Tensor(inner.clone()));
        assert!(e.to_string().starts_with("tensor: "));
        assert_eq!(e.source().unwrap().to_string(), inner.to_string());
    }

    #[test]
    fn from_image_error_preserves_source() {
        let inner = ImageError::dimension_mismatch("4x4 vs 2x2");
        let e: AsvError = inner.clone().into();
        assert_eq!(e, AsvError::Image(inner.clone()));
        assert!(e.to_string().starts_with("image: "));
        assert_eq!(e.source().unwrap().to_string(), inner.to_string());
    }

    #[test]
    fn from_flow_error_preserves_source() {
        let inner = FlowError::frame_mismatch("8x8 vs 8x6");
        let e: AsvError = inner.clone().into();
        assert_eq!(e, AsvError::Flow(inner.clone()));
        assert!(e.to_string().starts_with("flow: "));
        assert_eq!(e.source().unwrap().to_string(), inner.to_string());
    }

    #[test]
    fn from_stereo_error_preserves_source() {
        let inner = StereoError::invalid_parameter("max_disparity must be non-zero");
        let e: AsvError = inner.clone().into();
        assert_eq!(e, AsvError::Stereo(inner.clone()));
        assert!(e.to_string().starts_with("stereo: "));
        assert_eq!(e.source().unwrap().to_string(), inner.to_string());
    }

    #[test]
    fn unknown_network_errors_name_the_offender() {
        let e = AsvError::UnknownNetwork {
            name: "ResNet".to_owned(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("\"ResNet\""));
        assert!(e.to_string().contains("DispNet"));
    }

    #[test]
    fn runtime_errors_have_no_source_and_name_the_queue() {
        let e = AsvError::Shutdown;
        assert!(e.source().is_none());
        assert!(e.to_string().contains("shut down"));
        let e = AsvError::saturated("session-3 inbox");
        assert!(e.source().is_none());
        assert_eq!(
            e,
            AsvError::Saturated {
                context: "session-3 inbox".to_owned()
            }
        );
        assert!(e.to_string().contains("session-3 inbox"));
    }

    #[test]
    fn wire_errors_carry_the_fault_and_a_stable_kind_name() {
        let e = AsvError::wire(WireFault::Crc, "checksum 0xDEAD vs 0xBEEF");
        assert!(e.source().is_none());
        assert_eq!(
            e,
            AsvError::Wire {
                fault: WireFault::Crc,
                context: "checksum 0xDEAD vs 0xBEEF".to_owned()
            }
        );
        assert!(e.to_string().contains("(crc)"));
        assert!(e.to_string().contains("0xDEAD"));
        // The metric label names are a stable contract.
        let names: Vec<_> = [
            WireFault::BadMagic,
            WireFault::Version,
            WireFault::Truncated,
            WireFault::Oversized,
            WireFault::Crc,
            WireFault::Key,
            WireFault::Length,
            WireFault::Gap,
        ]
        .iter()
        .map(|f| f.name())
        .collect();
        assert_eq!(
            names,
            [
                "bad_magic",
                "version",
                "truncated",
                "oversized",
                "crc",
                "key",
                "length",
                "gap"
            ]
        );
    }

    #[test]
    fn transport_and_shard_down_errors_name_the_failure() {
        let e = AsvError::transport("connect to 10.0.0.1:9000 failed after 5 retries");
        assert!(e.source().is_none());
        assert!(e.to_string().contains("transport:"));
        assert!(e.to_string().contains("5 retries"));
        let e = AsvError::shard_down("shard 1: worker panicked");
        assert!(e.source().is_none());
        assert!(e.to_string().contains("shard down"));
        assert!(e.to_string().contains("shard 1"));
    }

    #[test]
    fn config_errors_have_no_source() {
        let e = AsvError::config("propagation window must be positive");
        assert!(e.source().is_none());
        assert!(e.to_string().contains("propagation window"));
    }

    #[test]
    fn error_trait_is_object_safe_and_sendable() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<AsvError>();
        let boxed: Box<dyn Error> = Box::new(AsvError::config("x"));
        assert!(boxed.to_string().contains("configuration"));
    }
}
