//! Structural invariants of the span trees `IsmState::step_with` records.
//!
//! Locked properties, under proptest-generated scenes, frame sizes and
//! key-frame windows:
//! * every span lies inside its frame (`end_ns <= total_ns`);
//! * span trees are well-nested: every depth-`d` span (`d >= 2`) is
//!   temporally contained in some depth-`d-1` span of the same frame
//!   (harvested kernel spans may *precede* their parent in recording
//!   order — a kernel stages its sub-spans before the caller stamps the
//!   enclosing stage — so containment is checked against all candidates);
//! * in the sequential build, top-level stages are disjoint in time, so
//!   their durations sum to at most the frame's total latency (the
//!   parallel build runs the two flows concurrently, where the sum can
//!   legitimately exceed wall-clock time);
//! * the recorded stages match the frame kind: key frames carry the
//!   surrogate-DNN stages, non-key frames the flow/propagate/refine
//!   stages.

use asv::ism::{IsmConfig, IsmPipeline};
use asv::trace::{FrameTrace, Stage, TraceConfig, TraceMode};
use asv::Workspace;
use asv_dnn::{zoo, SurrogateParams, SurrogateStereoDnn};
use asv_scene::{SceneConfig, StereoSequence};
use asv_stereo::block_matching::BlockMatchParams;
use proptest::prelude::*;

fn pipeline(width: usize, height: usize, window: usize) -> IsmPipeline {
    let config = IsmConfig {
        propagation_window: window,
        refine: BlockMatchParams {
            max_disparity: 16,
            refine_radius: 3,
            ..Default::default()
        },
        surrogate: SurrogateParams {
            max_disparity: 16,
            ..Default::default()
        },
        ..Default::default()
    };
    IsmPipeline::new(
        config,
        SurrogateStereoDnn::new(zoo::dispnet(height, width), config.surrogate),
    )
}

fn assert_frame_invariants(frame: &FrameTrace) -> Result<(), TestCaseError> {
    prop_assert!(!frame.spans.is_empty(), "a frame records at least one span");
    for span in &frame.spans {
        prop_assert!(span.depth >= 1, "depths are 1-based");
        prop_assert!(
            span.end_ns() <= frame.total_ns,
            "span {:?} [{}, {}] escapes frame total {}",
            span.stage,
            span.start_ns,
            span.end_ns(),
            frame.total_ns
        );
    }
    // Well-nestedness: every nested span fits inside some span one level up.
    for span in frame.spans.iter().filter(|s| s.depth >= 2) {
        let contained = frame.spans.iter().any(|parent| {
            parent.depth == span.depth - 1
                && parent.start_ns <= span.start_ns
                && span.end_ns() <= parent.end_ns()
        });
        prop_assert!(
            contained,
            "depth-{} span {:?} [{}, {}] has no containing depth-{} span in {:?}",
            span.depth,
            span.stage,
            span.start_ns,
            span.end_ns(),
            span.depth - 1,
            frame.spans
        );
    }
    // In the sequential build every top-level stage runs one after another,
    // so their durations cannot sum past the frame's wall-clock total.  The
    // parallel build overlaps the two flow estimations, voiding the bound.
    #[cfg(not(feature = "parallel"))]
    {
        let top_level: u64 = frame
            .spans
            .iter()
            .filter(|s| s.depth == 1)
            .map(|s| s.dur_ns)
            .sum();
        prop_assert!(
            top_level <= frame.total_ns,
            "top-level stage durations {} exceed frame total {}",
            top_level,
            frame.total_ns
        );
    }
    // Stage composition follows the frame kind.
    let has = |stage: Stage| frame.spans.iter().any(|s| s.stage == stage);
    if frame.key_frame {
        prop_assert!(has(Stage::DnnInfer), "key frame runs the surrogate DNN");
        prop_assert!(has(Stage::CostFill), "key frame fills the cost volume");
        prop_assert!(has(Stage::SgmAggregate), "key frame aggregates");
        prop_assert!(!has(Stage::Propagate), "key frame does not propagate");
    } else {
        for stage in [
            Stage::FlowLeft,
            Stage::FlowRight,
            Stage::Propagate,
            Stage::Refine,
        ] {
            prop_assert!(has(stage), "non-key frame runs {:?}", stage);
        }
        prop_assert!(!has(Stage::DnnInfer), "non-key frame skips the DNN");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every frame of a generated stream yields a well-formed span tree.
    #[test]
    fn span_trees_are_well_nested_and_bounded_by_the_frame(
        seed in 0u64..1_000,
        frames in 3usize..6,
        window in 2usize..4,
        width in 28usize..48,
        height in 20usize..32,
    ) {
        let pipe = pipeline(width, height, window);
        let scene = SceneConfig::scene_flow_like(width, height)
            .with_seed(seed)
            .with_objects(2);
        let seq = StereoSequence::generate(&scene, frames);
        let mut state = pipe.state();
        let mut ws = Workspace::with_trace_config(TraceConfig {
            mode: TraceMode::Ring,
            ring_frames: frames,
            ..TraceConfig::default()
        });
        for (i, frame) in seq.frames().iter().enumerate() {
            let result = state.step_with(&mut ws, &frame.left, &frame.right).unwrap();
            ws.recycle(result.disparity);
            let trace = ws.tracer.last_frame().expect("frame was recorded");
            prop_assert_eq!(trace.frame_index, i as u64);
            prop_assert_eq!(trace.key_frame, i % window == 0, "frame {} kind", i);
            assert_frame_invariants(trace)?;
        }
        prop_assert_eq!(ws.tracer.frames_recorded(), frames as u64);
        prop_assert_eq!(ws.tracer.dropped_spans(), 0);
        // The whole ring (not just the last frame) holds the invariants.
        for trace in ws.tracer.frames() {
            assert_frame_invariants(trace)?;
        }
    }
}
