//! Allocation-regression and batch-vs-workspace differential tests.
//!
//! Locked properties:
//! * steady-state `IsmState::step_with` (frames 2..N of a stream, with a
//!   per-stream [`Workspace`] and result-map recycling) performs **zero**
//!   heap allocations — in both feature configurations: the sequential
//!   build always had this, and the persistent worker pool in the offline
//!   rayon shim (tasks published into static slots, no per-region heap
//!   traffic) extends it to the parallel build;
//! * the guarantee covers both cost metrics: the SAD separable fill and
//!   the census/Hamming integer path both run entirely out of pooled
//!   workspace buffers;
//! * the allocating entry points ([`IsmState::step`], which builds a
//!   throwaway workspace per call) and the workspace path produce
//!   byte-identical disparity maps under proptest-generated scenes, window
//!   sizes and frame sizes — buffer reuse can never leak one frame's data
//!   into the next.

use asv::ism::{FrameKind, IsmConfig, IsmPipeline};
use asv::Workspace;
use asv_dnn::{zoo, CostMetric, SurrogateParams, SurrogateStereoDnn};
use asv_mem::alloc_count::{self, CountingAllocator};
use asv_scene::{SceneConfig, StereoSequence};
use asv_stereo::block_matching::BlockMatchParams;
use proptest::prelude::*;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator::new();

fn pipeline(width: usize, height: usize, window: usize, max_disparity: usize) -> IsmPipeline {
    pipeline_with_metric(width, height, window, max_disparity, CostMetric::Sad)
}

fn pipeline_with_metric(
    width: usize,
    height: usize,
    window: usize,
    max_disparity: usize,
    metric: CostMetric,
) -> IsmPipeline {
    let config = IsmConfig {
        propagation_window: window,
        refine: BlockMatchParams {
            max_disparity,
            refine_radius: 3,
            ..Default::default()
        },
        surrogate: SurrogateParams {
            max_disparity,
            occlusion_handling: true,
            metric,
        },
        ..Default::default()
    };
    let surrogate = SurrogateStereoDnn::new(zoo::dispnet(height, width), config.surrogate);
    IsmPipeline::new(config, surrogate)
}

fn sequence(width: usize, height: usize, frames: usize, seed: u64) -> StereoSequence {
    let scene = SceneConfig::scene_flow_like(width, height)
        .with_seed(seed)
        .with_objects(3);
    StereoSequence::generate(&scene, frames)
}

/// Runs frames 2..N of `seq` through `state`/`ws` (frames 0 and 1 warm the
/// key-frame and non-key-frame paths respectively) and returns the number of
/// allocation events the steady-state frames performed.  Result maps are
/// recycled, as a steady-state streaming consumer would.
fn steady_state_allocations(seq: &StereoSequence, pipe: &IsmPipeline) -> u64 {
    let mut state = pipe.state();
    let mut ws = Workspace::new();
    for frame in &seq.frames()[..2] {
        let result = state.step_with(&mut ws, &frame.left, &frame.right).unwrap();
        ws.recycle(result.disparity);
    }
    let before = alloc_count::allocations();
    for frame in &seq.frames()[2..] {
        let result = state.step_with(&mut ws, &frame.left, &frame.right).unwrap();
        ws.recycle(result.disparity);
    }
    alloc_count::allocations() - before
}

/// The same steady-state frames through the allocating entry point (a
/// throwaway workspace per call — the pre-workspace allocation profile).
fn steady_state_allocations_baseline(seq: &StereoSequence, pipe: &IsmPipeline) -> u64 {
    let mut state = pipe.state();
    for frame in &seq.frames()[..2] {
        state.step(&frame.left, &frame.right).unwrap();
    }
    let before = alloc_count::allocations();
    for frame in &seq.frames()[2..] {
        state.step(&frame.left, &frame.right).unwrap();
    }
    alloc_count::allocations() - before
}

/// The tentpole guarantee: with a warm per-stream workspace, a steady-state
/// step allocates nothing.  Frames 2..10 of a window-4 stream cover both
/// non-key frames and re-keyed key frames (frames 4 and 8).  In the
/// parallel build this additionally locks the rayon shim's persistent
/// worker pool: parallel regions publish into static task slots and must
/// not touch the heap.
#[test]
fn steady_state_step_performs_zero_allocations() {
    let pipe = pipeline(64, 48, 4, 32);
    let seq = sequence(64, 48, 10, 21);
    let allocs = steady_state_allocations(&seq, &pipe);
    assert_eq!(
        allocs, 0,
        "steady-state IsmState::step_with allocated {allocs} times over 8 frames"
    );
}

/// The zero-allocation guarantee also covers the adaptive key-frame
/// policy, whose per-frame median-motion estimate runs through the
/// workspace's selection buffer.
#[test]
fn adaptive_policy_steady_state_is_also_zero_allocation() {
    let base = pipeline(64, 48, 4, 32);
    let config = IsmConfig {
        key_frame_policy: asv::KeyFramePolicy::AdaptiveMotion {
            max_median_motion_px: 1e6,
        },
        ..*base.config()
    };
    let pipe = IsmPipeline::new(
        config,
        SurrogateStereoDnn::new(zoo::dispnet(48, 64), config.surrogate),
    );
    let seq = sequence(64, 48, 10, 21);
    let allocs = steady_state_allocations(&seq, &pipe);
    assert_eq!(
        allocs, 0,
        "adaptive-policy steady state allocated {allocs} times over 8 frames"
    );
}

/// The census/Hamming key-frame metric runs entirely out of the pooled
/// descriptor grids, u8 cost volume and u16 aggregation scratch — its
/// steady state (including the re-keyed census key frames at frames 4 and
/// 8) allocates nothing either.
#[test]
fn census_metric_steady_state_is_also_zero_allocation() {
    let pipe = pipeline_with_metric(64, 48, 4, 32, CostMetric::Census);
    let seq = sequence(64, 48, 10, 21);
    let allocs = steady_state_allocations(&seq, &pipe);
    assert_eq!(
        allocs, 0,
        "census-metric steady state allocated {allocs} times over 8 frames"
    );
}

/// Tracing is part of the zero-allocation guarantee: with the tracer
/// explicitly in ring mode — including slow-frame forensics, which copies
/// every frame here (threshold 0) — steady state still allocates nothing,
/// and the spans really were recorded.  The ring and slow buffers are fully
/// sized by the warm-up frames; steady-state recording only rotates them.
#[test]
fn tracing_in_ring_mode_adds_zero_steady_state_allocations() {
    use asv::trace::{TraceConfig, TraceMode};
    let pipe = pipeline(64, 48, 4, 32);
    let seq = sequence(64, 48, 10, 21);
    let mut state = pipe.state();
    let mut ws = Workspace::with_trace_config(TraceConfig {
        mode: TraceMode::Ring,
        ring_frames: 4,
        slow_threshold_us: Some(0),
        slow_retained: 2,
    });
    for frame in &seq.frames()[..2] {
        let result = state.step_with(&mut ws, &frame.left, &frame.right).unwrap();
        ws.recycle(result.disparity);
    }
    let before = alloc_count::allocations();
    for frame in &seq.frames()[2..] {
        let result = state.step_with(&mut ws, &frame.left, &frame.right).unwrap();
        ws.recycle(result.disparity);
    }
    let allocs = alloc_count::allocations() - before;
    assert_eq!(
        allocs, 0,
        "ring-mode tracing allocated {allocs} times over 8 steady-state frames"
    );
    assert_eq!(ws.tracer.frames_recorded(), 10);
    assert_eq!(ws.tracer.dropped_spans(), 0);
    let last = ws.tracer.last_frame().expect("a frame was recorded");
    assert!(!last.spans.is_empty(), "frames carry spans");
    assert!(
        ws.tracer.slow_frames().count() > 0,
        "threshold 0 retains slow frames"
    );
}

/// The baseline comparison also holds (and documents the size of the win
/// the regression test protects).
#[test]
fn allocating_path_allocates_and_workspace_path_does_not() {
    let pipe = pipeline(64, 48, 4, 32);
    let seq = sequence(64, 48, 10, 21);
    let baseline = steady_state_allocations_baseline(&seq, &pipe);
    assert!(
        baseline > 1000,
        "expected the allocating path to allocate heavily, saw {baseline}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Byte-identity of the allocating and workspace paths: a fresh
    /// workspace per frame (no reuse, `IsmState::step`) against one
    /// workspace carried across the whole stream.  Any under-reset buffer
    /// would leak a previous frame's data and break the equality.
    #[test]
    fn workspace_reuse_is_byte_identical_to_fresh_workspaces(
        seed in 0u64..1_000,
        frames in 3usize..6,
        window in 1usize..4,
        width in 28usize..48,
        height in 20usize..32,
    ) {
        let pipe = pipeline(width, height, window, 16);
        let seq = sequence(width, height, frames, seed);
        let mut fresh = pipe.state();
        let mut warm = pipe.state();
        let mut ws = Workspace::new();
        for (i, frame) in seq.frames().iter().enumerate() {
            let a = fresh.step(&frame.left, &frame.right).unwrap();
            let b = warm.step_with(&mut ws, &frame.left, &frame.right).unwrap();
            prop_assert_eq!(a.kind, b.kind, "frame {} kind", i);
            prop_assert_eq!(&a.disparity, &b.disparity, "frame {} disparity", i);
            // Recycle so the next checkout exercises a stale pooled buffer.
            ws.recycle(b.disparity);
        }
    }

    /// The batch pipeline (shared internal workspace) equals the streaming
    /// state fed one frame at a time — including under the adaptive
    /// key-frame policy, which exercises the workspace-held left flow.
    #[test]
    fn batch_equals_streaming_with_adaptive_policy(
        seed in 0u64..1_000,
        threshold in 0.0f32..2.0,
    ) {
        let base = pipeline(40, 28, 3, 16);
        let config = IsmConfig {
            key_frame_policy: asv::KeyFramePolicy::AdaptiveMotion {
                max_median_motion_px: threshold,
            },
            ..*base.config()
        };
        let pipe = IsmPipeline::new(
            config,
            SurrogateStereoDnn::new(zoo::dispnet(28, 40), config.surrogate),
        );
        let seq = sequence(40, 28, 5, seed);
        let batch = pipe.process_sequence(&seq).unwrap();
        let mut state = pipe.state();
        let mut ws = Workspace::new();
        for (i, frame) in seq.frames().iter().enumerate() {
            let r = state.step_with(&mut ws, &frame.left, &frame.right).unwrap();
            prop_assert_eq!(r.kind, batch.frames[i].kind, "frame {} kind", i);
            prop_assert_eq!(&r.disparity, &batch.frames[i].disparity, "frame {} disparity", i);
        }
        let _ = batch.frames.iter().filter(|f| f.kind == FrameKind::KeyFrame).count();
    }
}
