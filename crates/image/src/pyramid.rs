//! Gaussian image pyramids for coarse-to-fine optical flow.

use crate::gaussian::{gaussian_kernel, separable_filter_into};
use crate::image::{Image, ImageError};
use crate::Result;

/// A Gaussian pyramid: level 0 is the original image, each subsequent level is
/// blurred and downsampled by two.
#[derive(Debug, Clone, PartialEq)]
pub struct Pyramid {
    levels: Vec<Image>,
}

impl Pyramid {
    /// Builds a pyramid with up to `levels` levels.
    ///
    /// Construction stops early when a level would become smaller than
    /// `min_size` in either dimension, so the returned pyramid may have fewer
    /// levels than requested (but always at least one).
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidParameter`] when `levels == 0` or the
    /// image is empty.
    pub fn build(image: &Image, levels: usize, min_size: usize) -> Result<Self> {
        let mut pyramid = Pyramid::empty();
        let kernel = gaussian_kernel(1.0);
        let mut tmp_a = Image::default();
        let mut tmp_b = Image::default();
        pyramid.rebuild(image, levels, min_size, &kernel, &mut tmp_a, &mut tmp_b)?;
        Ok(pyramid)
    }

    /// Creates a pyramid with no levels, to be populated by
    /// [`Pyramid::rebuild`].  Useful as a reusable per-stream workspace slot.
    pub fn empty() -> Self {
        Self { levels: Vec::new() }
    }

    /// Rebuilds the pyramid from a new image in place, reusing the level
    /// buffers of the previous build when the dimensions match (the steady
    /// state of a video stream).  `kernel` is the level-to-level smoothing
    /// kernel ([`gaussian_kernel`] with sigma 1.0 reproduces
    /// [`Pyramid::build`] exactly); `tmp_a`/`tmp_b` are reusable scratch
    /// images for the blur.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pyramid::build`].
    pub fn rebuild(
        &mut self,
        image: &Image,
        levels: usize,
        min_size: usize,
        kernel: &[f32],
        tmp_a: &mut Image,
        tmp_b: &mut Image,
    ) -> Result<()> {
        if levels == 0 {
            return Err(ImageError::invalid_parameter(
                "pyramid must have at least one level",
            ));
        }
        if image.is_empty() {
            return Err(ImageError::invalid_parameter(
                "cannot build a pyramid from an empty image",
            ));
        }
        match self.levels.first_mut() {
            Some(base) => base.clone_from(image),
            None => self.levels.push(image.clone()), // lint: alloc-ok(first rebuild only; later frames clone_from)
        }
        let mut built = 1;
        for _ in 1..levels {
            let (prev_width, prev_height) = {
                let prev = &self.levels[built - 1];
                (prev.width(), prev.height())
            };
            if prev_width / 2 < min_size.max(1) || prev_height / 2 < min_size.max(1) {
                break;
            }
            separable_filter_into(&self.levels[built - 1], kernel, kernel, tmp_a, tmp_b);
            if self.levels.len() <= built {
                self.levels.push(Image::default());
            }
            tmp_b.downsample2_into(&mut self.levels[built]);
            built += 1;
        }
        self.levels.truncate(built);
        Ok(())
    }

    /// Number of levels actually built.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Level `i` (0 is full resolution).
    ///
    /// # Panics
    ///
    /// Panics when `i >= num_levels()`.
    pub fn level(&self, i: usize) -> &Image {
        &self.levels[i]
    }

    /// Iterates levels from coarsest to finest, the order in which
    /// coarse-to-fine flow refines its estimate.
    pub fn iter_coarse_to_fine(&self) -> impl Iterator<Item = &Image> {
        self.levels.iter().rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pyramid_halves_each_level() {
        let img = Image::filled(64, 48, 1.0);
        let pyr = Pyramid::build(&img, 4, 4).unwrap();
        assert_eq!(pyr.num_levels(), 4);
        assert_eq!((pyr.level(0).width(), pyr.level(0).height()), (64, 48));
        assert_eq!((pyr.level(1).width(), pyr.level(1).height()), (32, 24));
        assert_eq!((pyr.level(3).width(), pyr.level(3).height()), (8, 6));
    }

    #[test]
    fn pyramid_stops_at_min_size() {
        let img = Image::filled(16, 16, 1.0);
        let pyr = Pyramid::build(&img, 10, 4).unwrap();
        // 16 -> 8 -> 4, stopping before dropping below 4.
        assert_eq!(pyr.num_levels(), 3);
        assert_eq!(pyr.level(2).width(), 4);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let img = Image::filled(8, 8, 1.0);
        assert!(Pyramid::build(&img, 0, 4).is_err());
        assert!(Pyramid::build(&Image::default(), 3, 4).is_err());
    }

    #[test]
    fn coarse_to_fine_iteration_order() {
        let img = Image::filled(32, 32, 1.0);
        let pyr = Pyramid::build(&img, 3, 4).unwrap();
        let widths: Vec<usize> = pyr.iter_coarse_to_fine().map(Image::width).collect();
        assert_eq!(widths, vec![8, 16, 32]);
    }

    #[test]
    fn constant_image_stays_constant_at_all_levels() {
        let img = Image::filled(32, 32, 0.3);
        let pyr = Pyramid::build(&img, 3, 4).unwrap();
        for level in 0..pyr.num_levels() {
            assert!(pyr
                .level(level)
                .as_slice()
                .iter()
                .all(|&v| (v - 0.3).abs() < 1e-4));
        }
    }
}
