//! Separable Gaussian blur.
//!
//! The Farneback optical flow used by ISM spends most of its convolution time
//! in Gaussian blurs; the ASV software maps them onto the systolic array as
//! single-output-channel convolution layers (Sec. 5.1, Fig. 8).  This module
//! provides the functional reference for that mapping.

use crate::image::Image;

/// Builds a normalised 1-D Gaussian kernel for standard deviation `sigma`.
///
/// The radius is `ceil(3 sigma)` (covering ≥ 99.7 % of the mass); a
/// non-positive sigma yields the identity kernel `[1.0]`.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    if sigma <= 0.0 {
        return vec![1.0];
    }
    let radius = (3.0 * sigma).ceil() as isize;
    let mut kernel = Vec::with_capacity((2 * radius + 1) as usize);
    let denom = 2.0 * sigma * sigma;
    for i in -radius..=radius {
        kernel.push((-((i * i) as f32) / denom).exp());
    }
    let total: f32 = kernel.iter().sum();
    for v in &mut kernel {
        *v /= total;
    }
    kernel
}

/// Horizontal 1-D convolution with border clamping.
fn convolve_horizontal(image: &Image, kernel: &[f32]) -> Image {
    let radius = (kernel.len() / 2) as isize;
    Image::from_fn(image.width(), image.height(), |x, y| {
        let mut acc = 0.0;
        for (i, &k) in kernel.iter().enumerate() {
            let dx = i as isize - radius;
            acc += k * image.at_clamped(x as isize + dx, y as isize);
        }
        acc
    })
}

/// Vertical 1-D convolution with border clamping.
fn convolve_vertical(image: &Image, kernel: &[f32]) -> Image {
    let radius = (kernel.len() / 2) as isize;
    Image::from_fn(image.width(), image.height(), |x, y| {
        let mut acc = 0.0;
        for (i, &k) in kernel.iter().enumerate() {
            let dy = i as isize - radius;
            acc += k * image.at_clamped(x as isize, y as isize + dy);
        }
        acc
    })
}

/// Applies a separable Gaussian blur with standard deviation `sigma`.
///
/// A non-positive `sigma` returns a copy of the input.
pub fn gaussian_blur(image: &Image, sigma: f32) -> Image {
    let kernel = gaussian_kernel(sigma);
    if kernel.len() == 1 {
        return image.clone();
    }
    let horizontal = convolve_horizontal(image, &kernel);
    convolve_vertical(&horizontal, &kernel)
}

/// Applies an arbitrary separable kernel (horizontal then vertical pass).
///
/// Used by the Farneback polynomial expansion, which needs Gaussian-weighted
/// moment filters in addition to the plain blur.
pub fn separable_filter(image: &Image, kernel_x: &[f32], kernel_y: &[f32]) -> Image {
    let horizontal = convolve_horizontal(image, kernel_x);
    convolve_vertical(&horizontal, kernel_y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_normalised_and_symmetric() {
        for &sigma in &[0.5, 1.0, 2.5] {
            let k = gaussian_kernel(sigma);
            assert_eq!(k.len() % 2, 1, "kernel must have odd length");
            let sum: f32 = k.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            for i in 0..k.len() / 2 {
                assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-6);
            }
            // The centre tap is the largest.
            let centre = k[k.len() / 2];
            assert!(k.iter().all(|&v| v <= centre + 1e-9));
        }
    }

    #[test]
    fn non_positive_sigma_is_identity() {
        assert_eq!(gaussian_kernel(0.0), vec![1.0]);
        assert_eq!(gaussian_kernel(-1.0), vec![1.0]);
        let img = Image::from_fn(4, 4, |x, y| (x + y) as f32);
        let out = gaussian_blur(&img, 0.0);
        assert_eq!(out, img);
    }

    #[test]
    fn blur_preserves_constant_images() {
        let img = Image::filled(16, 16, 0.7);
        let out = gaussian_blur(&img, 2.0);
        assert!(out.as_slice().iter().all(|&v| (v - 0.7).abs() < 1e-5));
    }

    #[test]
    fn blur_spreads_impulse_but_preserves_mass() {
        let img = Image::from_fn(21, 21, |x, y| if x == 10 && y == 10 { 1.0 } else { 0.0 });
        let out = gaussian_blur(&img, 1.5);
        assert!(out.at(10, 10) < 1.0);
        assert!(out.at(10, 10) > out.at(0, 0));
        assert!((out.sum() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn blur_reduces_variance_of_noise() {
        // A checkerboard has maximal high-frequency energy; blurring must pull
        // every pixel towards the mean.
        let img = Image::from_fn(32, 32, |x, y| if (x + y) % 2 == 0 { 1.0 } else { 0.0 });
        let out = gaussian_blur(&img, 1.0);
        let var = |im: &Image| {
            let m = im.mean();
            im.as_slice()
                .iter()
                .map(|&v| (v - m) * (v - m))
                .sum::<f32>()
                / im.len() as f32
        };
        assert!(var(&out) < 0.2 * var(&img));
    }

    #[test]
    fn separable_filter_applies_both_axes() {
        let img = Image::from_fn(8, 8, |x, _| x as f32);
        // Central difference in x, identity in y.
        let dx = separable_filter(&img, &[-0.5, 0.0, 0.5], &[1.0]);
        // The interior gradient of a ramp with slope 1 is 1.
        assert!((dx.at(4, 4) - 1.0).abs() < 1e-6);
        // Identity in x, central difference in y on a constant-in-y image is 0.
        let dy = separable_filter(&img, &[1.0], &[-0.5, 0.0, 0.5]);
        assert!(dy.at(4, 4).abs() < 1e-6);
    }
}
