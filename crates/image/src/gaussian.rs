//! Separable Gaussian blur.
//!
//! The Farneback optical flow used by ISM spends most of its convolution time
//! in Gaussian blurs; the ASV software maps them onto the systolic array as
//! single-output-channel convolution layers (Sec. 5.1, Fig. 8).  This module
//! provides the functional reference for that mapping.

use crate::image::Image;

/// Builds a normalised 1-D Gaussian kernel for standard deviation `sigma`.
///
/// The radius is `ceil(3 sigma)` (covering ≥ 99.7 % of the mass); a
/// non-positive sigma yields the identity kernel `[1.0]`.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    if sigma <= 0.0 {
        return vec![1.0]; // lint: alloc-ok(degenerate-sigma identity kernel)
    }
    let radius = (3.0 * sigma).ceil() as isize;
    let mut kernel = Vec::with_capacity((2 * radius + 1) as usize); // lint: alloc-ok(kernel build, cached by callers)
    let denom = 2.0 * sigma * sigma;
    for i in -radius..=radius {
        kernel.push((-((i * i) as f32) / denom).exp());
    }
    let total: f32 = kernel.iter().sum();
    for v in &mut kernel {
        *v /= total;
    }
    kernel
}

/// Horizontal 1-D convolution with border clamping, writing into a reusable
/// output image.
///
/// The interior of each row (where the window never leaves the image) runs
/// as a contiguous slice dot product with no clamping or bounds checks; only
/// the `radius` pixels at each border take the clamped path.  Tap order and
/// per-pixel arithmetic match the naive reference exactly, so the output is
/// bit-identical.
fn convolve_horizontal_into(image: &Image, kernel: &[f32], out: &mut Image) {
    let radius = kernel.len() / 2;
    let width = image.width();
    let height = image.height();
    // Every output pixel is assigned below, so the plane needs no fill.
    out.reshape_scratch(width, height);
    let src_all = image.as_slice();
    let dst_all = out.as_mut_slice();
    let clamped = |src: &[f32], x: usize| -> f32 {
        let mut acc = 0.0;
        for (i, &k) in kernel.iter().enumerate() {
            let u = (x + i) as isize - radius as isize;
            acc += k * src[u.clamp(0, width as isize - 1) as usize];
        }
        acc
    };
    for y in 0..height {
        let src = &src_all[y * width..][..width];
        let dst = &mut dst_all[y * width..][..width];
        if width > 2 * radius {
            for (x, slot) in dst.iter_mut().enumerate().take(radius) {
                *slot = clamped(src, x);
            }
            for x in radius..width - radius {
                let window = &src[x - radius..x - radius + kernel.len()];
                let mut acc = 0.0;
                for (&k, &v) in kernel.iter().zip(window) {
                    acc += k * v;
                }
                dst[x] = acc;
            }
            for (x, slot) in dst.iter_mut().enumerate().skip(width - radius) {
                *slot = clamped(src, x);
            }
        } else {
            for (x, slot) in dst.iter_mut().enumerate() {
                *slot = clamped(src, x);
            }
        }
    }
}

/// Vertical 1-D convolution with border clamping, writing into a reusable
/// output image.
///
/// Implemented as whole-row accumulation: the output row starts at zero and
/// each tap adds `k * source_row`, a contiguous auto-vectorizable pass.  For
/// a fixed pixel the taps accumulate in exactly the reference order
/// (starting from 0.0), so the output is bit-identical to the naive
/// per-pixel loop.
fn convolve_vertical_into(image: &Image, kernel: &[f32], out: &mut Image) {
    let radius = (kernel.len() / 2) as isize;
    let width = image.width();
    let height = image.height();
    out.reset(width, height, 0.0);
    let src_all = image.as_slice();
    let dst_all = out.as_mut_slice();
    for y in 0..height {
        let dst = &mut dst_all[y * width..][..width];
        for (i, &k) in kernel.iter().enumerate() {
            let v = (y as isize + i as isize - radius).clamp(0, height as isize - 1) as usize;
            let src = &src_all[v * width..][..width];
            for (slot, &value) in dst.iter_mut().zip(src) {
                *slot += k * value;
            }
        }
    }
}

/// Applies a separable Gaussian blur with standard deviation `sigma`.
///
/// A non-positive `sigma` returns a copy of the input.
pub fn gaussian_blur(image: &Image, sigma: f32) -> Image {
    let kernel = gaussian_kernel(sigma);
    if kernel.len() == 1 {
        return image.clone();
    }
    separable_filter(image, &kernel, &kernel)
}

/// Applies a separable blur with a precomputed kernel to `image` in place,
/// using `tmp` as the intermediate of the horizontal pass.  Identical output
/// to [`gaussian_blur`] with the kernel's sigma, without any allocation once
/// `tmp` has warmed to the image size.
pub fn blur_in_place(image: &mut Image, kernel: &[f32], tmp: &mut Image) {
    if kernel.len() == 1 {
        return;
    }
    convolve_horizontal_into(image, kernel, tmp);
    convolve_vertical_into(tmp, kernel, image);
}

/// Applies an arbitrary separable kernel (horizontal then vertical pass).
///
/// Used by the Farneback polynomial expansion, which needs Gaussian-weighted
/// moment filters in addition to the plain blur.
pub fn separable_filter(image: &Image, kernel_x: &[f32], kernel_y: &[f32]) -> Image {
    let mut tmp = Image::default();
    let mut out = Image::default();
    separable_filter_into(image, kernel_x, kernel_y, &mut tmp, &mut out);
    out
}

/// [`separable_filter`] writing into a reusable output image, with `tmp` as
/// the intermediate of the horizontal pass.
pub fn separable_filter_into(
    image: &Image,
    kernel_x: &[f32],
    kernel_y: &[f32],
    tmp: &mut Image,
    out: &mut Image,
) {
    convolve_horizontal_into(image, kernel_x, tmp);
    convolve_vertical_into(tmp, kernel_y, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_normalised_and_symmetric() {
        for &sigma in &[0.5, 1.0, 2.5] {
            let k = gaussian_kernel(sigma);
            assert_eq!(k.len() % 2, 1, "kernel must have odd length");
            let sum: f32 = k.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            for i in 0..k.len() / 2 {
                assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-6);
            }
            // The centre tap is the largest.
            let centre = k[k.len() / 2];
            assert!(k.iter().all(|&v| v <= centre + 1e-9));
        }
    }

    #[test]
    fn non_positive_sigma_is_identity() {
        assert_eq!(gaussian_kernel(0.0), vec![1.0]);
        assert_eq!(gaussian_kernel(-1.0), vec![1.0]);
        let img = Image::from_fn(4, 4, |x, y| (x + y) as f32);
        let out = gaussian_blur(&img, 0.0);
        assert_eq!(out, img);
    }

    #[test]
    fn blur_preserves_constant_images() {
        let img = Image::filled(16, 16, 0.7);
        let out = gaussian_blur(&img, 2.0);
        assert!(out.as_slice().iter().all(|&v| (v - 0.7).abs() < 1e-5));
    }

    #[test]
    fn blur_spreads_impulse_but_preserves_mass() {
        let img = Image::from_fn(21, 21, |x, y| if x == 10 && y == 10 { 1.0 } else { 0.0 });
        let out = gaussian_blur(&img, 1.5);
        assert!(out.at(10, 10) < 1.0);
        assert!(out.at(10, 10) > out.at(0, 0));
        assert!((out.sum() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn blur_reduces_variance_of_noise() {
        // A checkerboard has maximal high-frequency energy; blurring must pull
        // every pixel towards the mean.
        let img = Image::from_fn(32, 32, |x, y| if (x + y) % 2 == 0 { 1.0 } else { 0.0 });
        let out = gaussian_blur(&img, 1.0);
        let var = |im: &Image| {
            let m = im.mean();
            im.as_slice()
                .iter()
                .map(|&v| (v - m) * (v - m))
                .sum::<f32>()
                / im.len() as f32
        };
        assert!(var(&out) < 0.2 * var(&img));
    }

    #[test]
    fn separable_filter_applies_both_axes() {
        let img = Image::from_fn(8, 8, |x, _| x as f32);
        // Central difference in x, identity in y.
        let dx = separable_filter(&img, &[-0.5, 0.0, 0.5], &[1.0]);
        // The interior gradient of a ramp with slope 1 is 1.
        assert!((dx.at(4, 4) - 1.0).abs() < 1e-6);
        // Identity in x, central difference in y on a constant-in-y image is 0.
        let dy = separable_filter(&img, &[1.0], &[-0.5, 0.0, 0.5]);
        assert!(dy.at(4, 4).abs() < 1e-6);
    }
}
