//! Backward warping of images by dense displacement fields.
//!
//! Warping is the verification primitive for motion estimation: if a flow
//! field `(u, v)` correctly describes the motion from frame `t` to frame
//! `t+1`, then sampling frame `t+1` at `(x + u, y + v)` reconstructs frame
//! `t`.

use crate::image::{Image, ImageError};
use crate::Result;

/// Warps `target` backwards by the displacement fields `(flow_x, flow_y)`.
///
/// The output at `(x, y)` is `target` sampled bilinearly at
/// `(x + flow_x(x, y), y + flow_y(x, y))`, clamped to the border.
///
/// # Errors
///
/// Returns [`ImageError::DimensionMismatch`] when the flow fields do not have
/// the same dimensions as the target image.
pub fn warp_backward(target: &Image, flow_x: &Image, flow_y: &Image) -> Result<Image> {
    if flow_x.width() != target.width()
        || flow_x.height() != target.height()
        || flow_y.width() != target.width()
        || flow_y.height() != target.height()
    {
        return Err(ImageError::dimension_mismatch(format!(
            "warp: target {}x{}, flow {}x{} / {}x{}",
            target.width(),
            target.height(),
            flow_x.width(),
            flow_x.height(),
            flow_y.width(),
            flow_y.height()
        )));
    }
    Ok(Image::from_fn(target.width(), target.height(), |x, y| {
        let sx = x as f32 + flow_x.at(x, y);
        let sy = y as f32 + flow_y.at(x, y);
        target.sample_bilinear(sx, sy)
    }))
}

/// Translates an image by an integer offset, clamping at the borders.
///
/// Convenience helper used by tests and by the synthetic scene generator to
/// create exactly-known motion.
pub fn translate(image: &Image, dx: isize, dy: isize) -> Image {
    Image::from_fn(image.width(), image.height(), |x, y| {
        image.at_clamped(x as isize - dx, y as isize - dy)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(width: usize, height: usize) -> Image {
        Image::from_fn(width, height, |x, y| (x + 2 * y) as f32)
    }

    #[test]
    fn zero_flow_is_identity() {
        let img = ramp(16, 12);
        let zero = Image::zeros(16, 12);
        let out = warp_backward(&img, &zero, &zero).unwrap();
        assert!(out.mean_abs_diff(&img).unwrap() < 1e-6);
    }

    #[test]
    fn warp_recovers_known_translation() {
        let img = ramp(32, 32);
        // The "next frame" is the image shifted right by 3 pixels.
        let shifted = translate(&img, 3, 0);
        // Backward flow from original to shifted is +3 in x.
        let flow_x = Image::filled(32, 32, 3.0);
        let flow_y = Image::zeros(32, 32);
        let rec = warp_backward(&shifted, &flow_x, &flow_y).unwrap();
        // Interior pixels are recovered exactly; only the border columns that
        // fell outside the frame differ.
        let mut err = 0.0f32;
        let mut count = 0;
        for y in 0..32 {
            for x in 0..28 {
                err += (rec.at(x, y) - img.at(x, y)).abs();
                count += 1;
            }
        }
        assert!(err / (count as f32) < 1e-4);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let img = ramp(8, 8);
        let small = Image::zeros(4, 4);
        assert!(warp_backward(&img, &small, &small).is_err());
    }

    #[test]
    fn translate_clamps_at_border() {
        let img = Image::from_fn(4, 1, |x, _| x as f32);
        let out = translate(&img, 2, 0);
        assert_eq!(out.as_slice(), &[0.0, 0.0, 0.0, 1.0]);
        let out = translate(&img, -2, 0);
        assert_eq!(out.as_slice(), &[2.0, 3.0, 3.0, 3.0]);
    }
}
