//! Single-channel floating point image container.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error type for image construction and image-pair operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// Provided pixel buffer does not match `width * height`.
    DataLength {
        /// Expected number of pixels.
        expected: usize,
        /// Provided number of pixels.
        actual: usize,
    },
    /// Two images that must have identical dimensions do not.
    DimensionMismatch {
        /// Human readable description.
        context: String,
    },
    /// A parameter such as a window size or pyramid depth is invalid.
    InvalidParameter {
        /// Human readable description.
        context: String,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::DataLength { expected, actual } => {
                write!(
                    f,
                    "pixel buffer length {actual} does not match image size {expected}"
                )
            }
            ImageError::DimensionMismatch { context } => write!(f, "dimension mismatch: {context}"),
            ImageError::InvalidParameter { context } => write!(f, "invalid parameter: {context}"),
        }
    }
}

impl Error for ImageError {}

impl ImageError {
    /// Builds a [`ImageError::DimensionMismatch`] from anything displayable.
    pub fn dimension_mismatch(context: impl fmt::Display) -> Self {
        ImageError::DimensionMismatch {
            context: context.to_string(), // lint: alloc-ok(error path)
        }
    }

    /// Builds a [`ImageError::InvalidParameter`] from anything displayable.
    pub fn invalid_parameter(context: impl fmt::Display) -> Self {
        ImageError::InvalidParameter {
            context: context.to_string(), // lint: alloc-ok(error path)
        }
    }
}

/// A dense single-channel (grayscale) `f32` image stored row-major.
///
/// Pixel `(x, y)` addresses column `x` and row `y`; `(0, 0)` is the top-left
/// corner, matching the convention of the stereo-matching literature where the
/// disparity search runs along image rows.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl Clone for Image {
    fn clone(&self) -> Self {
        Self {
            width: self.width,
            height: self.height,
            data: self.data.clone(), // lint: alloc-ok(deep copy by Clone contract; hot path uses clone_from)
        }
    }

    /// Copies `source` into `self`, reusing the existing pixel buffer when
    /// its capacity suffices (the derived implementation would reallocate).
    /// This is what makes carrying previous-frame state across a stream
    /// allocation-free in the steady state.
    fn clone_from(&mut self, source: &Self) {
        self.width = source.width;
        self.height = source.height;
        self.data.clone_from(&source.data);
    }
}

impl Image {
    /// Creates an all-zero image.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            data: vec![0.0; width * height], // lint: alloc-ok(constructor; steady state reuses via clone_from)
        }
    }

    /// Creates an image filled with `value`.
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        Self {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates an image from a row-major pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::DataLength`] when `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> crate::Result<Self> {
        if data.len() != width * height {
            return Err(ImageError::DataLength {
                expected: width * height,
                actual: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Self {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of pixels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the image has zero pixels.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major pixel buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the image and returns its row-major pixel buffer, e.g. to
    /// hand the allocation back to a buffer pool.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Re-shapes the image to `width x height` with every pixel set to
    /// `value`, reusing the existing buffer when its capacity suffices.
    /// Equivalent to `*self = Image::filled(width, height, value)` without
    /// the allocation.
    pub fn reset(&mut self, width: usize, height: usize, value: f32) {
        self.width = width;
        self.height = height;
        self.data.clear();
        self.data.resize(width * height, value);
    }

    /// Re-shapes the image to `width x height` leaving the pixel contents
    /// *unspecified* (stale data when the size already matches).  For
    /// kernels that overwrite every pixel: skips the full-plane fill that
    /// [`Image::reset`] pays.
    pub fn reshape_scratch(&mut self, width: usize, height: usize) {
        self.width = width;
        self.height = height;
        if self.data.len() != width * height {
            self.data.clear();
            self.data.resize(width * height, 0.0);
        }
    }

    /// Mutable row-major pixel buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when `(x, y)` is out of bounds.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> f32 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when `(x, y)` is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x] = value;
    }

    /// Pixel value with the coordinates clamped to the image border.
    ///
    /// Accepts signed coordinates so callers can index relative neighbourhoods
    /// without bounds checks.
    #[inline]
    pub fn at_clamped(&self, x: isize, y: isize) -> f32 {
        if self.width == 0 || self.height == 0 {
            return 0.0;
        }
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Bilinearly interpolated value at a real-valued coordinate, with border
    /// clamping.
    pub fn sample_bilinear(&self, x: f32, y: f32) -> f32 {
        if self.width == 0 || self.height == 0 {
            return 0.0;
        }
        let x = x.clamp(0.0, (self.width - 1) as f32);
        let y = y.clamp(0.0, (self.height - 1) as f32);
        let x0 = x.floor() as usize;
        let y0 = y.floor() as usize;
        let x1 = (x0 + 1).min(self.width - 1);
        let y1 = (y0 + 1).min(self.height - 1);
        let dx = x - x0 as f32;
        let dy = y - y0 as f32;
        self.at(x0, y0) * (1.0 - dx) * (1.0 - dy)
            + self.at(x1, y0) * dx * (1.0 - dy)
            + self.at(x0, y1) * (1.0 - dx) * dy
            + self.at(x1, y1) * dx * dy
    }

    /// Sum of all pixel values.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Mean pixel value (0 for an empty image).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            (self.sum() / self.data.len() as f64) as f32
        }
    }

    /// Mean absolute difference between two images of identical size.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::DimensionMismatch`] when the sizes differ.
    pub fn mean_abs_diff(&self, other: &Image) -> crate::Result<f32> {
        if self.width != other.width || self.height != other.height {
            return Err(ImageError::dimension_mismatch(format!(
                "{}x{} vs {}x{}",
                self.width, self.height, other.width, other.height
            )));
        }
        if self.data.is_empty() {
            return Ok(0.0);
        }
        let total: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs() as f64)
            .sum();
        Ok((total / self.data.len() as f64) as f32)
    }

    /// Applies `f` to every pixel in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Downsamples by a factor of two using 2×2 box averaging.
    pub fn downsample2(&self) -> Image {
        let mut out = Image::default();
        self.downsample2_into(&mut out);
        out
    }

    /// [`Image::downsample2`] writing into a reusable output image.
    pub fn downsample2_into(&self, out: &mut Image) {
        let nw = (self.width / 2).max(1);
        let nh = (self.height / 2).max(1);
        out.reshape_scratch(nw, nh);
        for y in 0..nh {
            for x in 0..nw {
                let x0 = (2 * x).min(self.width.saturating_sub(1));
                let y0 = (2 * y).min(self.height.saturating_sub(1));
                let x1 = (2 * x + 1).min(self.width.saturating_sub(1));
                let y1 = (2 * y + 1).min(self.height.saturating_sub(1));
                let v =
                    0.25 * (self.at(x0, y0) + self.at(x1, y0) + self.at(x0, y1) + self.at(x1, y1));
                out.data[y * nw + x] = v;
            }
        }
    }
}

impl Default for Image {
    fn default() -> Self {
        Image::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let img = Image::from_fn(3, 2, |x, y| (y * 3 + x) as f32);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(img.len(), 6);
        assert!(!img.is_empty());
        assert_eq!(img.at(2, 1), 5.0);
        assert_eq!(img.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Image::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Image::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn set_and_map() {
        let mut img = Image::zeros(2, 2);
        img.set(1, 1, 4.0);
        img.map_inplace(|v| v + 1.0);
        assert_eq!(img.at(1, 1), 5.0);
        assert_eq!(img.at(0, 0), 1.0);
        assert_eq!(img.mean(), 2.0);
    }

    #[test]
    fn clamped_access_extends_borders() {
        let img = Image::from_fn(2, 2, |x, y| (y * 2 + x) as f32);
        assert_eq!(img.at_clamped(-5, -5), 0.0);
        assert_eq!(img.at_clamped(10, 10), 3.0);
        assert_eq!(img.at_clamped(1, 0), 1.0);
    }

    #[test]
    fn bilinear_sampling_interpolates() {
        let img = Image::from_fn(2, 2, |x, y| (y * 2 + x) as f32);
        assert_eq!(img.sample_bilinear(0.0, 0.0), 0.0);
        assert_eq!(img.sample_bilinear(1.0, 1.0), 3.0);
        assert!((img.sample_bilinear(0.5, 0.5) - 1.5).abs() < 1e-6);
        // Out of bounds clamps rather than panicking.
        assert_eq!(img.sample_bilinear(-3.0, -3.0), 0.0);
        assert_eq!(img.sample_bilinear(9.0, 9.0), 3.0);
    }

    #[test]
    fn mean_abs_diff_checks_dimensions() {
        let a = Image::filled(2, 2, 1.0);
        let b = Image::filled(2, 2, 2.0);
        assert_eq!(a.mean_abs_diff(&b).unwrap(), 1.0);
        let c = Image::zeros(3, 2);
        assert!(a.mean_abs_diff(&c).is_err());
    }

    #[test]
    fn downsample_halves_dimensions() {
        let img = Image::filled(8, 6, 3.0);
        let half = img.downsample2();
        assert_eq!(half.width(), 4);
        assert_eq!(half.height(), 3);
        assert!(half.as_slice().iter().all(|&v| (v - 3.0).abs() < 1e-6));
        // Degenerate 1x1 image stays 1x1.
        let tiny = Image::filled(1, 1, 2.0);
        let d = tiny.downsample2();
        assert_eq!((d.width(), d.height()), (1, 1));
    }

    #[test]
    fn empty_image_is_safe() {
        let img = Image::default();
        assert!(img.is_empty());
        assert_eq!(img.mean(), 0.0);
        assert_eq!(img.at_clamped(3, 3), 0.0);
        assert_eq!(img.sample_bilinear(1.0, 1.0), 0.0);
    }

    #[test]
    fn error_display_messages() {
        let e = ImageError::DataLength {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("does not match"));
        assert!(ImageError::dimension_mismatch("a vs b")
            .to_string()
            .contains("a vs b"));
        assert!(ImageError::invalid_parameter("window")
            .to_string()
            .contains("window"));
    }
}
