//! Grayscale image processing substrate for the ASV reproduction.
//!
//! The ISM algorithm (Sec. 3 of the ASV paper) operates on video frames: it
//! blurs them with Gaussian kernels, estimates dense optical flow between
//! consecutive frames and refines correspondences with block matching.  This
//! crate provides the image container and the classic image-processing
//! primitives those steps need:
//!
//! * [`Image`] — a single-channel `f32` image with bilinear sampling.
//! * [`gaussian`] — separable Gaussian blur (the convolution the ASV hardware
//!   maps onto its systolic array when processing non-key frames).
//! * [`pyramid`] — Gaussian image pyramids used by the coarse-to-fine optical
//!   flow.
//! * [`warp`] — backward warping of an image by a displacement field.
//! * [`cost`] — block matching costs (SAD, SSD, zero-mean SAD) shared by the
//!   classic stereo algorithms and the ISM refinement step.
//!
//! # Example
//!
//! ```
//! use asv_image::{Image, gaussian_blur};
//!
//! let img = Image::from_fn(32, 32, |x, y| if x == 16 && y == 16 { 1.0 } else { 0.0 });
//! let blurred = gaussian_blur(&img, 1.5);
//! assert!(blurred.at(16, 16) < 1.0);          // energy spreads out
//! assert!((blurred.sum() - img.sum()).abs() < 1e-3); // but is preserved
//! ```

pub mod cost;
pub mod gaussian;
pub mod image;
pub mod pyramid;
pub mod warp;

pub use crate::image::{Image, ImageError};
pub use gaussian::{gaussian_blur, gaussian_kernel};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, ImageError>;
