//! Block matching cost functions.
//!
//! The ISM algorithm refines propagated correspondences with a local block
//! matching search using the sum of absolute differences (SAD) cost (Sec. 3.3
//! of the paper).  The classic stereo baselines additionally use SSD and
//! zero-mean SAD.  All costs compare a square block centred on a pixel of the
//! left (reference) image with a block centred on a candidate pixel of the
//! right (matching) image.

use crate::image::{Image, ImageError};
use crate::Result;
use serde::{Deserialize, Serialize};

/// A square matching block described by its half-width; the full window is
/// `(2 * radius + 1)` pixels on a side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSpec {
    /// Half-width of the block.
    pub radius: usize,
}

impl BlockSpec {
    /// Creates a block specification.
    pub fn new(radius: usize) -> Self {
        Self { radius }
    }

    /// Number of pixels in the block.
    pub fn area(&self) -> usize {
        let side = 2 * self.radius + 1;
        side * side
    }
}

impl Default for BlockSpec {
    fn default() -> Self {
        Self { radius: 3 }
    }
}

/// Checks that the two images have identical dimensions.
fn check_pair(left: &Image, right: &Image) -> Result<()> {
    if left.width() != right.width() || left.height() != right.height() {
        // lint: alloc-ok(error path)
        return Err(ImageError::dimension_mismatch(format!(
            "{}x{} vs {}x{}",
            left.width(),
            left.height(),
            right.width(),
            right.height()
        )));
    }
    Ok(())
}

/// Sum of absolute differences between the block centred at `(lx, ly)` in
/// `left` and the block centred at `(rx, ry)` in `right`.
///
/// Pixels outside the image are border-clamped, matching the behaviour of the
/// hardware block-matching engines the paper cites.
pub fn block_sad(
    left: &Image,
    right: &Image,
    lx: isize,
    ly: isize,
    rx: isize,
    ry: isize,
    block: BlockSpec,
) -> f32 {
    let r = block.radius as isize;
    // Interior fast path: when both blocks lie fully inside their images the
    // taps are two contiguous row slices per block row — no clamping, no
    // per-tap index arithmetic.  Tap order matches the clamped loop exactly
    // (rows top to bottom, columns left to right), so the sum is
    // bit-identical.  This is the hot loop of the ISM refinement search.
    let lw = left.width() as isize;
    let rw = right.width() as isize;
    if lx - r >= 0
        && ly - r >= 0
        && lx + r < lw
        && ly + r < left.height() as isize
        && rx - r >= 0
        && ry - r >= 0
        && rx + r < rw
        && ry + r < right.height() as isize
    {
        let side = (2 * r + 1) as usize;
        let lpix = left.as_slice();
        let rpix = right.as_slice();
        let mut acc = 0.0;
        for dy in 0..side {
            let lbase = ((ly - r) as usize + dy) * lw as usize + (lx - r) as usize;
            let rbase = ((ry - r) as usize + dy) * rw as usize + (rx - r) as usize;
            let lrow = &lpix[lbase..][..side];
            let rrow = &rpix[rbase..][..side];
            for (a, b) in lrow.iter().zip(rrow) {
                acc += (a - b).abs();
            }
        }
        return acc;
    }
    let mut acc = 0.0;
    for dy in -r..=r {
        for dx in -r..=r {
            let a = left.at_clamped(lx + dx, ly + dy);
            let b = right.at_clamped(rx + dx, ry + dy);
            acc += (a - b).abs();
        }
    }
    acc
}

/// Sum of squared differences analogue of [`block_sad`].
pub fn block_ssd(
    left: &Image,
    right: &Image,
    lx: isize,
    ly: isize,
    rx: isize,
    ry: isize,
    block: BlockSpec,
) -> f32 {
    let r = block.radius as isize;
    let mut acc = 0.0;
    for dy in -r..=r {
        for dx in -r..=r {
            let d = left.at_clamped(lx + dx, ly + dy) - right.at_clamped(rx + dx, ry + dy);
            acc += d * d;
        }
    }
    acc
}

/// Zero-mean SAD: each block has its mean removed before the absolute
/// differences are accumulated, providing robustness to brightness offsets
/// between the two cameras.
pub fn block_zsad(
    left: &Image,
    right: &Image,
    lx: isize,
    ly: isize,
    rx: isize,
    ry: isize,
    block: BlockSpec,
) -> f32 {
    let r = block.radius as isize;
    let area = block.area() as f32;
    let mut mean_l = 0.0;
    let mut mean_r = 0.0;
    for dy in -r..=r {
        for dx in -r..=r {
            mean_l += left.at_clamped(lx + dx, ly + dy);
            mean_r += right.at_clamped(rx + dx, ry + dy);
        }
    }
    mean_l /= area;
    mean_r /= area;
    let mut acc = 0.0;
    for dy in -r..=r {
        for dx in -r..=r {
            let a = left.at_clamped(lx + dx, ly + dy) - mean_l;
            let b = right.at_clamped(rx + dx, ry + dy) - mean_r;
            acc += (a - b).abs();
        }
    }
    acc
}

/// Pixel-wise absolute difference image `|left - right|`.
///
/// # Errors
///
/// Returns [`ImageError::DimensionMismatch`] when the images differ in size.
pub fn absolute_difference(left: &Image, right: &Image) -> Result<Image> {
    check_pair(left, right)?;
    Ok(Image::from_fn(left.width(), left.height(), |x, y| {
        (left.at(x, y) - right.at(x, y)).abs()
    }))
}

/// Number of arithmetic operations performed by one SAD block comparison
/// (subtract, absolute value, accumulate per pixel).  Used by the performance
/// model to price the ISM non-key-frame work.
pub fn sad_ops_per_block(block: BlockSpec) -> u64 {
    3 * block.area() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_spec_area() {
        assert_eq!(BlockSpec::new(0).area(), 1);
        assert_eq!(BlockSpec::new(1).area(), 9);
        assert_eq!(BlockSpec::new(3).area(), 49);
        assert_eq!(BlockSpec::default().radius, 3);
    }

    #[test]
    fn identical_blocks_have_zero_cost() {
        let img = Image::from_fn(16, 16, |x, y| ((x * 7 + y * 3) % 13) as f32);
        let b = BlockSpec::new(2);
        assert_eq!(block_sad(&img, &img, 8, 8, 8, 8, b), 0.0);
        assert_eq!(block_ssd(&img, &img, 8, 8, 8, 8, b), 0.0);
        assert!(block_zsad(&img, &img, 8, 8, 8, 8, b).abs() < 1e-4);
    }

    #[test]
    fn shifted_block_has_zero_cost_at_true_offset() {
        let left = Image::from_fn(32, 16, |x, y| ((x * 5 + y * 11) % 17) as f32);
        // Right image shifted left by 4 (disparity 4).
        let right = Image::from_fn(32, 16, |x, y| left.at_clamped(x as isize + 4, y as isize));
        let b = BlockSpec::new(2);
        // Matching pixel for left (12, 8) is right (8, 8).
        let at_truth = block_sad(&left, &right, 12, 8, 8, 8, b);
        let at_wrong = block_sad(&left, &right, 12, 8, 10, 8, b);
        assert!(at_truth < 1e-6);
        assert!(at_wrong > at_truth);
    }

    #[test]
    fn zsad_ignores_brightness_offset() {
        let left = Image::from_fn(16, 16, |x, y| ((x + y) % 5) as f32);
        let mut right = left.clone();
        right.map_inplace(|v| v + 10.0);
        let b = BlockSpec::new(2);
        assert!(block_sad(&left, &right, 8, 8, 8, 8, b) > 1.0);
        assert!(block_zsad(&left, &right, 8, 8, 8, 8, b) < 1e-4);
    }

    #[test]
    fn ssd_penalises_outliers_more_than_sad() {
        let left = Image::zeros(8, 8);
        let mut right = Image::zeros(8, 8);
        right.set(4, 4, 10.0);
        let b = BlockSpec::new(1);
        let sad = block_sad(&left, &right, 4, 4, 4, 4, b);
        let ssd = block_ssd(&left, &right, 4, 4, 4, 4, b);
        assert_eq!(sad, 10.0);
        assert_eq!(ssd, 100.0);
    }

    #[test]
    fn absolute_difference_image() {
        let a = Image::filled(4, 4, 3.0);
        let b = Image::filled(4, 4, 1.0);
        let d = absolute_difference(&a, &b).unwrap();
        assert!(d.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        assert!(absolute_difference(&a, &Image::zeros(2, 2)).is_err());
    }

    #[test]
    fn sad_ops_counts_three_per_pixel() {
        assert_eq!(sad_ops_per_block(BlockSpec::new(1)), 27);
        assert_eq!(sad_ops_per_block(BlockSpec::new(3)), 147);
    }
}
