//! Generator networks of the GANs used in the GANNX comparison (Sec. 7.6,
//! Fig. 14).
//!
//! All six generators are deconvolution-dominated image synthesis networks;
//! the layer lists below follow the published generator architectures
//! (DCGAN-style 4-stage stride-2 deconvolution stacks, scaled per network) so
//! the deconvolution optimizations have the same structural material to work
//! with as in the original comparison.

use crate::layer::{LayerSpec, Stage};
use crate::network::NetworkSpec;

/// Builds a DCGAN-style generator: a projected latent vector reshaped to a
/// `base_channels × 4 × 4` volume followed by stride-2 deconvolutions up to
/// `output_size`, ending with `output_channels` image channels.
fn deconv_generator(
    name: &str,
    base_channels: usize,
    output_size: usize,
    output_channels: usize,
) -> NetworkSpec {
    assert!(
        output_size >= 8 && output_size.is_power_of_two(),
        "output size must be a power of two ≥ 8"
    );
    let mut layers = Vec::new();
    let mut channels = base_channels;
    let mut size = 4usize;
    let mut index = 0usize;
    while size < output_size {
        let next_size = size * 2;
        let is_last = next_size == output_size;
        let out_c = if is_last {
            output_channels
        } else {
            (channels / 2).max(output_channels)
        };
        layers.push(LayerSpec::deconv2d(
            &format!("{name}_deconv{index}"),
            Stage::DisparityRefinement,
            channels,
            out_c,
            size,
            size,
            4,
            2,
            1,
        ));
        layers.push(LayerSpec::pointwise(
            &format!("{name}_act{index}"),
            Stage::Other,
            out_c,
            1,
            next_size,
            next_size,
            1,
        ));
        channels = out_c;
        size = next_size;
        index += 1;
    }
    NetworkSpec::new(name, false, layers)
}

/// DCGAN generator (64×64 RGB output).
pub fn dcgan() -> NetworkSpec {
    deconv_generator("DCGAN", 512, 64, 3)
}

/// GP-GAN blending generator (64×64 RGB output, wider than DCGAN).
pub fn gp_gan() -> NetworkSpec {
    deconv_generator("GP-GAN", 1024, 64, 3)
}

/// ArtGAN generator (128×128 RGB output).
pub fn artgan() -> NetworkSpec {
    deconv_generator("ArtGAN", 512, 128, 3)
}

/// MAGAN generator (64×64 RGB output, narrow).
pub fn magan() -> NetworkSpec {
    deconv_generator("MAGAN", 256, 64, 3)
}

/// 3D-GAN generator: 3-D deconvolutions producing a 64³ occupancy volume.
pub fn gan3d() -> NetworkSpec {
    let mut layers = Vec::new();
    let mut channels = 512usize;
    let mut size = 4usize;
    let mut index = 0usize;
    while size < 64 {
        let next = size * 2;
        let is_last = next == 64;
        let out_c = if is_last { 1 } else { channels / 2 };
        layers.push(LayerSpec::deconv3d(
            &format!("3D-GAN_deconv{index}"),
            Stage::DisparityRefinement,
            channels,
            out_c,
            size,
            size,
            size,
            4,
            2,
            1,
        ));
        channels = out_c;
        size = next;
        index += 1;
    }
    NetworkSpec::new("3D-GAN", true, layers)
}

/// DiscoGAN generator: an encoder/decoder image-to-image translator whose
/// decoder half is deconvolutional.
pub fn discogan() -> NetworkSpec {
    let mut layers = Vec::new();
    // Encoder (convolutions).
    let mut channels = 3usize;
    let mut size = 64usize;
    for (i, out_c) in [64usize, 128, 256, 512].iter().enumerate() {
        layers.push(LayerSpec::conv2d(
            &format!("DiscoGAN_conv{i}"),
            Stage::FeatureExtraction,
            channels,
            *out_c,
            size,
            size,
            4,
            2,
            1,
        ));
        channels = *out_c;
        size /= 2;
    }
    // Decoder (deconvolutions).
    for (i, out_c) in [256usize, 128, 64, 3].iter().enumerate() {
        layers.push(LayerSpec::deconv2d(
            &format!("DiscoGAN_deconv{i}"),
            Stage::DisparityRefinement,
            channels,
            *out_c,
            size,
            size,
            4,
            2,
            1,
        ));
        channels = *out_c;
        size *= 2;
    }
    NetworkSpec::new("DiscoGAN", false, layers)
}

/// The six GANs of the GANNX comparison, in the order of Fig. 14.
pub fn gannx_suite() -> Vec<NetworkSpec> {
    vec![dcgan(), gp_gan(), artgan(), magan(), gan3d(), discogan()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_contains_six_generators() {
        let suite = gannx_suite();
        assert_eq!(suite.len(), 6);
        let names: Vec<&str> = suite.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["DCGAN", "GP-GAN", "ArtGAN", "MAGAN", "3D-GAN", "DiscoGAN"]
        );
    }

    #[test]
    fn generators_are_deconvolution_dominated() {
        for net in gannx_suite() {
            let frac = net.deconv_mac_fraction();
            assert!(frac > 0.5, "{}: deconv fraction {frac}", net.name);
        }
    }

    #[test]
    fn output_resolution_doubles_each_deconv_stage() {
        let net = dcgan();
        let deconvs: Vec<_> = net.deconv_layers().collect();
        assert_eq!(deconvs.len(), 4);
        let (_, h, w) = deconvs.last().unwrap().output_dims();
        assert_eq!((h, w), (64, 64));
        let (_, h, _) = artgan().deconv_layers().last().unwrap().output_dims();
        assert_eq!(h, 128);
    }

    #[test]
    fn gan3d_uses_three_d_deconvolutions() {
        let net = gan3d();
        assert!(net.is_3d);
        assert!(net.layers.iter().all(|l| l.op.dims() == 3));
        let (d, h, w) = net.layers.last().unwrap().output_dims();
        assert_eq!((d, h, w), (64, 64, 64));
    }

    #[test]
    fn discogan_has_both_encoder_and_decoder() {
        let net = discogan();
        let convs = net.layers.iter().filter(|l| l.op.is_conv()).count();
        let deconvs = net.deconv_layers().count();
        assert_eq!(convs, 4);
        assert_eq!(deconvs, 4);
        let (_, h, w) = net.layers.last().unwrap().output_dims();
        assert_eq!((h, w), (64, 64));
    }

    #[test]
    fn wider_generators_cost_more() {
        assert!(gp_gan().total_naive_macs() > dcgan().total_naive_macs());
        assert!(dcgan().total_naive_macs() > magan().total_naive_macs());
    }
}
