//! Functional key-frame disparity estimator ("DNN surrogate").
//!
//! The accuracy experiments of the paper (Fig. 9) compare the error rate of
//! running a stereo DNN on *every* frame against the error rate of ISM, which
//! runs the DNN only on key frames.  Trained PyTorch weights cannot be
//! shipped with this reproduction, so the role of "high-quality key-frame
//! disparity estimator" is played by a strong classic pipeline:
//! semi-global matching with sub-pixel interpolation, a left-right
//! consistency check and occlusion filling.  Both the per-frame baseline and
//! the ISM key frames use the *same* surrogate, so the quantity Fig. 9
//! reports — the accuracy *difference* introduced by propagating
//! correspondences instead of re-running the expensive estimator — is
//! preserved (see DESIGN.md, substitution table).
//!
//! The surrogate also reports which [`NetworkSpec`] it stands in for, so the
//! performance model can charge key frames the cost of the real DNN.

use crate::network::NetworkSpec;
use asv_image::Image;
use asv_stereo::sgm::{semi_global_match_with, CostMetric, SgmParams, SgmWorkspace};
use asv_stereo::{DisparityMap, StereoError};
use serde::{Deserialize, Serialize};

/// Parameters of the surrogate key-frame estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurrogateParams {
    /// Maximum disparity hypothesis searched.
    pub max_disparity: usize,
    /// Enable the left-right consistency check + occlusion filling.
    pub occlusion_handling: bool,
    /// Matching-cost metric of the underlying semi-global matcher:
    /// [`CostMetric::Sad`] is the accuracy reference, [`CostMetric::Census`]
    /// the integer SIMD fast path.
    pub metric: CostMetric,
}

impl Default for SurrogateParams {
    fn default() -> Self {
        Self {
            max_disparity: 64,
            occlusion_handling: true,
            metric: CostMetric::Sad,
        }
    }
}

/// A key-frame disparity estimator that plays the role of a stereo DNN.
///
/// Construct one per network being modelled; the estimator produces the
/// disparity maps while the attached [`NetworkSpec`] carries the cost model.
#[derive(Debug, Clone)]
pub struct SurrogateStereoDnn {
    network: NetworkSpec,
    params: SurrogateParams,
}

impl SurrogateStereoDnn {
    /// Creates a surrogate for the given network description.
    pub fn new(network: NetworkSpec, params: SurrogateParams) -> Self {
        Self { network, params }
    }

    /// The network this surrogate stands in for.
    pub fn network(&self) -> &NetworkSpec {
        &self.network
    }

    /// The surrogate parameters.
    pub fn params(&self) -> &SurrogateParams {
        &self.params
    }

    /// Replaces the surrogate parameters, e.g. to switch the cost metric of
    /// an already-running stream.
    pub fn set_params(&mut self, params: SurrogateParams) {
        self.params = params;
    }

    /// Estimates the disparity map of a rectified stereo pair.
    ///
    /// # Errors
    ///
    /// Propagates [`StereoError`] from the underlying matcher (mismatched
    /// dimensions, empty images).
    pub fn infer(&self, left: &Image, right: &Image) -> Result<DisparityMap, StereoError> {
        let mut ws = SgmWorkspace::new();
        let mut out = DisparityMap::invalid(0, 0);
        self.infer_with(&mut ws, left, right, &mut out)?;
        Ok(out)
    }

    /// [`SurrogateStereoDnn::infer`] threading a reusable [`SgmWorkspace`]
    /// and writing into a reusable output map: identical output, zero heap
    /// allocations once the workspace is warm (same-sized frames).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SurrogateStereoDnn::infer`]; on error the
    /// contents of `out` are unspecified.
    pub fn infer_with(
        &self,
        ws: &mut SgmWorkspace,
        left: &Image,
        right: &Image,
        out: &mut DisparityMap,
    ) -> Result<(), StereoError> {
        let sgm_params = SgmParams {
            max_disparity: self.params.max_disparity,
            subpixel: true,
            left_right_check: self.params.occlusion_handling,
            metric: self.params.metric,
            ..SgmParams::default()
        };
        semi_global_match_with(ws, left, right, &sgm_params, out)?;
        if self.params.occlusion_handling {
            out.fill_invalid_horizontally();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn shifted_pair(width: usize, height: usize, disparity: usize) -> (Image, Image, DisparityMap) {
        let right = Image::from_fn(width, height, |x, y| {
            ((x as f32 * 0.53).sin() + (y as f32 * 0.29).cos() + ((x * 3 + y * 7) % 5) as f32 * 0.1)
                * 0.4
                + 0.5
        });
        let left = Image::from_fn(width, height, |x, y| {
            right.at_clamped(x as isize - disparity as isize, y as isize)
        });
        (
            left,
            right,
            DisparityMap::constant(width, height, disparity as f32),
        )
    }

    #[test]
    fn surrogate_produces_accurate_disparity() {
        let (l, r, truth) = shifted_pair(64, 40, 7);
        let surrogate = SurrogateStereoDnn::new(
            zoo::flownetc(40, 64),
            SurrogateParams {
                max_disparity: 16,
                occlusion_handling: true,
                ..Default::default()
            },
        );
        let map = surrogate.infer(&l, &r).unwrap();
        // DNN-like accuracy: well under the three-pixel threshold almost
        // everywhere on this easy constant-disparity scene.
        let err = map.three_pixel_error(&truth).unwrap();
        assert!(err < 0.05, "three-pixel error {err}");
        assert!(map.valid_fraction() > 0.99);
    }

    #[test]
    fn occlusion_handling_fills_every_pixel() {
        let (l, r, _) = shifted_pair(48, 32, 5);
        let with = SurrogateStereoDnn::new(
            zoo::dispnet(32, 48),
            SurrogateParams {
                max_disparity: 16,
                occlusion_handling: true,
                ..Default::default()
            },
        );
        let without = SurrogateStereoDnn::new(
            zoo::dispnet(32, 48),
            SurrogateParams {
                max_disparity: 16,
                occlusion_handling: false,
                ..Default::default()
            },
        );
        assert_eq!(with.infer(&l, &r).unwrap().valid_fraction(), 1.0);
        assert_eq!(without.infer(&l, &r).unwrap().valid_fraction(), 1.0);
    }

    #[test]
    fn census_metric_surrogate_is_accurate_too() {
        let (l, r, truth) = shifted_pair(64, 40, 7);
        let surrogate = SurrogateStereoDnn::new(
            zoo::flownetc(40, 64),
            SurrogateParams {
                max_disparity: 16,
                occlusion_handling: true,
                metric: CostMetric::Census,
            },
        );
        let map = surrogate.infer(&l, &r).unwrap();
        let err = map.three_pixel_error(&truth).unwrap();
        assert!(err < 0.05, "three-pixel error {err}");
        assert!(map.valid_fraction() > 0.99);
    }

    #[test]
    fn surrogate_reports_its_network() {
        let net = zoo::gcnet(64, 128, 32);
        let s = SurrogateStereoDnn::new(net.clone(), SurrogateParams::default());
        assert_eq!(s.network().name, "GC-Net");
        assert_eq!(s.params().max_disparity, 64);
        assert_eq!(s.network().total_macs(), net.total_macs());
    }

    #[test]
    fn surrogate_propagates_errors() {
        let s = SurrogateStereoDnn::new(zoo::dispnet(32, 48), SurrogateParams::default());
        let a = Image::zeros(16, 16);
        let b = Image::zeros(8, 16);
        assert!(s.infer(&a, &b).is_err());
    }
}
