//! Stereo DNN and GAN workload descriptions plus the key-frame disparity
//! estimator ("DNN surrogate").
//!
//! ASV's performance and energy experiments never need trained weights — they
//! need the *layer shapes* of the stereo networks (FlowNetC, DispNet, GC-Net,
//! PSMNet) and of the GAN generators used in the GANNX comparison, because
//! MAC counts, activation sizes and kernel sizes fully determine what the
//! accelerator models execute.  This crate provides:
//!
//! * [`layer`] — a layer IR ([`LayerSpec`]) covering 2-D/3-D convolution,
//!   deconvolution and point-wise layers, with exact arithmetic and traffic
//!   accounting (including the naive-vs-transformed deconvolution MAC counts
//!   of Sec. 4.1).
//! * [`network`] — a network description ([`NetworkSpec`]) with per-stage
//!   (FE/MO/DR) statistics, reproducing Fig. 3.
//! * [`zoo`] — the four stereo networks of the paper, parameterised by input
//!   resolution.
//! * [`gan`] — the six GAN generators of the GANNX comparison (Fig. 14).
//! * [`surrogate`] — a functional key-frame disparity estimator with
//!   "DNN-like" accuracy built from classic components (SGM + sub-pixel +
//!   consistency checking), standing in for trained stereo DNNs in the
//!   accuracy experiments (see DESIGN.md for the substitution argument).
//!
//! # Example
//!
//! ```
//! use asv_dnn::zoo;
//!
//! let net = zoo::flownetc(384, 768);
//! // Deconvolution is a large minority of the network's arithmetic.
//! let share = net.deconv_mac_fraction();
//! assert!(share > 0.05 && share < 0.8);
//! ```

pub mod gan;
pub mod layer;
pub mod network;
pub mod surrogate;
pub mod zoo;

pub use asv_stereo::sgm::CostMetric;
pub use layer::{LayerOp, LayerSpec, Stage};
pub use network::NetworkSpec;
pub use surrogate::{SurrogateParams, SurrogateStereoDnn};
