//! Layer-level intermediate representation with arithmetic and traffic
//! accounting.

use serde::{Deserialize, Serialize};

/// Number of bytes per activation/weight element (the accelerator uses 16-bit
/// fixed point, Sec. 5.2).
pub const ELEMENT_BYTES: u64 = 2;

/// Pipeline stage a layer belongs to (Sec. 2.2 of the paper): feature
/// extraction, matching optimization or disparity refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Feature extraction (convolutional encoder).
    FeatureExtraction,
    /// Matching optimization (correlation / cost-volume processing).
    MatchingOptimization,
    /// Disparity refinement (deconvolutional decoder).
    DisparityRefinement,
    /// Anything else (activations, normalisation, output heads).
    Other,
}

impl Stage {
    /// Short label used in reports ("FE", "MO", "DR", "Other").
    pub fn label(&self) -> &'static str {
        match self {
            Stage::FeatureExtraction => "FE",
            Stage::MatchingOptimization => "MO",
            Stage::DisparityRefinement => "DR",
            Stage::Other => "Other",
        }
    }
}

/// The operation a layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerOp {
    /// Dense 2-D convolution.
    Conv2d {
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Stride in both spatial dimensions.
        stride: usize,
        /// Symmetric zero padding.
        padding: usize,
    },
    /// 2-D transposed convolution (deconvolution).
    Deconv2d {
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Upsampling stride.
        stride: usize,
        /// Output cropping.
        padding: usize,
    },
    /// Dense 3-D convolution.
    Conv3d {
        /// Kernel depth.
        kd: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Stride in all three dimensions.
        stride: usize,
        /// Symmetric zero padding.
        padding: usize,
    },
    /// 3-D transposed convolution.
    Deconv3d {
        /// Kernel depth.
        kd: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Upsampling stride.
        stride: usize,
        /// Output cropping.
        padding: usize,
    },
    /// A point-wise layer (activation, element-wise op) costing
    /// `ops_per_element` scalar operations per output element.
    Pointwise {
        /// Scalar operations per element.
        ops_per_element: u64,
    },
}

impl LayerOp {
    /// Whether the operation is a (2-D or 3-D) deconvolution.
    pub fn is_deconv(&self) -> bool {
        matches!(self, LayerOp::Deconv2d { .. } | LayerOp::Deconv3d { .. })
    }

    /// Whether the operation is a (2-D or 3-D) dense convolution.
    pub fn is_conv(&self) -> bool {
        matches!(self, LayerOp::Conv2d { .. } | LayerOp::Conv3d { .. })
    }

    /// Spatial dimensionality of the operation (2 or 3); point-wise layers
    /// report 2.
    pub fn dims(&self) -> u32 {
        match self {
            LayerOp::Conv3d { .. } | LayerOp::Deconv3d { .. } => 3,
            _ => 2,
        }
    }
}

/// A fully specified layer: operation, channel counts and input volume.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Human readable layer name (e.g. `"deconv4"`).
    pub name: String,
    /// Pipeline stage the layer belongs to.
    pub stage: Stage,
    /// Operation performed.
    pub op: LayerOp,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (filter count).
    pub out_channels: usize,
    /// Input depth (1 for 2-D layers).
    pub in_d: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
}

fn conv_out(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    let padded = input + 2 * padding;
    if padded < kernel || stride == 0 {
        0
    } else {
        (padded - kernel) / stride + 1
    }
}

fn deconv_out(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    if input == 0 {
        return 0;
    }
    let grown = (input - 1) * stride + kernel;
    grown.saturating_sub(2 * padding)
}

impl LayerSpec {
    /// Creates a 2-D convolution layer.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        name: &str,
        stage: Stage,
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            name: name.to_owned(),
            stage,
            op: LayerOp::Conv2d {
                kh: kernel,
                kw: kernel,
                stride,
                padding,
            },
            in_channels,
            out_channels,
            in_d: 1,
            in_h,
            in_w,
        }
    }

    /// Creates a 2-D deconvolution layer.
    #[allow(clippy::too_many_arguments)]
    pub fn deconv2d(
        name: &str,
        stage: Stage,
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            name: name.to_owned(),
            stage,
            op: LayerOp::Deconv2d {
                kh: kernel,
                kw: kernel,
                stride,
                padding,
            },
            in_channels,
            out_channels,
            in_d: 1,
            in_h,
            in_w,
        }
    }

    /// Creates a 3-D convolution layer.
    #[allow(clippy::too_many_arguments)]
    pub fn conv3d(
        name: &str,
        stage: Stage,
        in_channels: usize,
        out_channels: usize,
        in_d: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            name: name.to_owned(),
            stage,
            op: LayerOp::Conv3d {
                kd: kernel,
                kh: kernel,
                kw: kernel,
                stride,
                padding,
            },
            in_channels,
            out_channels,
            in_d,
            in_h,
            in_w,
        }
    }

    /// Creates a 3-D deconvolution layer.
    #[allow(clippy::too_many_arguments)]
    pub fn deconv3d(
        name: &str,
        stage: Stage,
        in_channels: usize,
        out_channels: usize,
        in_d: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            name: name.to_owned(),
            stage,
            op: LayerOp::Deconv3d {
                kd: kernel,
                kh: kernel,
                kw: kernel,
                stride,
                padding,
            },
            in_channels,
            out_channels,
            in_d,
            in_h,
            in_w,
        }
    }

    /// Creates a point-wise layer over the given volume.
    pub fn pointwise(
        name: &str,
        stage: Stage,
        channels: usize,
        in_d: usize,
        in_h: usize,
        in_w: usize,
        ops_per_element: u64,
    ) -> Self {
        Self {
            name: name.to_owned(),
            stage,
            op: LayerOp::Pointwise { ops_per_element },
            in_channels: channels,
            out_channels: channels,
            in_d,
            in_h,
            in_w,
        }
    }

    /// Output volume `(depth, height, width)`.
    pub fn output_dims(&self) -> (usize, usize, usize) {
        match self.op {
            LayerOp::Conv2d {
                kh,
                kw,
                stride,
                padding,
            } => (
                self.in_d,
                conv_out(self.in_h, kh, stride, padding),
                conv_out(self.in_w, kw, stride, padding),
            ),
            LayerOp::Deconv2d {
                kh,
                kw,
                stride,
                padding,
            } => (
                self.in_d,
                deconv_out(self.in_h, kh, stride, padding),
                deconv_out(self.in_w, kw, stride, padding),
            ),
            LayerOp::Conv3d {
                kd,
                kh,
                kw,
                stride,
                padding,
            } => (
                conv_out(self.in_d, kd, stride, padding),
                conv_out(self.in_h, kh, stride, padding),
                conv_out(self.in_w, kw, stride, padding),
            ),
            LayerOp::Deconv3d {
                kd,
                kh,
                kw,
                stride,
                padding,
            } => (
                deconv_out(self.in_d, kd, stride, padding),
                deconv_out(self.in_h, kh, stride, padding),
                deconv_out(self.in_w, kw, stride, padding),
            ),
            LayerOp::Pointwise { .. } => (self.in_d, self.in_h, self.in_w),
        }
    }

    /// Number of kernel elements per filter (`in_channels × k...`).
    pub fn kernel_volume(&self) -> u64 {
        let spatial = match self.op {
            LayerOp::Conv2d { kh, kw, .. } | LayerOp::Deconv2d { kh, kw, .. } => (kh * kw) as u64,
            LayerOp::Conv3d { kd, kh, kw, .. } | LayerOp::Deconv3d { kd, kh, kw, .. } => {
                (kd * kh * kw) as u64
            }
            LayerOp::Pointwise { .. } => 0,
        };
        spatial * self.in_channels as u64
    }

    /// Number of input activation elements.
    pub fn ifmap_elements(&self) -> u64 {
        (self.in_channels * self.in_d * self.in_h * self.in_w) as u64
    }

    /// Number of output activation elements.
    pub fn ofmap_elements(&self) -> u64 {
        let (d, h, w) = self.output_dims();
        (self.out_channels * d * h * w) as u64
    }

    /// Number of weight elements.
    pub fn weight_elements(&self) -> u64 {
        self.kernel_volume() * self.out_channels as u64
    }

    /// Bytes of input activations.
    pub fn ifmap_bytes(&self) -> u64 {
        self.ifmap_elements() * ELEMENT_BYTES
    }

    /// Bytes of output activations.
    pub fn ofmap_bytes(&self) -> u64 {
        self.ofmap_elements() * ELEMENT_BYTES
    }

    /// Bytes of weights.
    pub fn weight_bytes(&self) -> u64 {
        self.weight_elements() * ELEMENT_BYTES
    }

    /// Multiply-accumulate count of the layer when executed the *useful* way:
    /// dense convolutions count every output × kernel element; deconvolutions
    /// count only the multiplications with non-zero ifmap operands, i.e. the
    /// cost after the software transformation of Sec. 4.1 (each original
    /// kernel element touches each ifmap element exactly once).
    pub fn effective_macs(&self) -> u64 {
        match self.op {
            LayerOp::Conv2d { .. } | LayerOp::Conv3d { .. } => {
                let (d, h, w) = self.output_dims();
                (d * h * w) as u64 * self.out_channels as u64 * self.kernel_volume()
            }
            LayerOp::Deconv2d { .. } | LayerOp::Deconv3d { .. } => {
                (self.in_d * self.in_h * self.in_w) as u64
                    * self.out_channels as u64
                    * self.kernel_volume()
            }
            LayerOp::Pointwise { ops_per_element } => self.ofmap_elements() * ops_per_element,
        }
    }

    /// Multiply-accumulate count of a *naive* execution that upsamples the
    /// deconvolution ifmap with zeros and runs a dense convolution over it
    /// (the baseline the paper's transformation removes).  Identical to
    /// [`LayerSpec::effective_macs`] for non-deconvolution layers.
    pub fn naive_macs(&self) -> u64 {
        match self.op {
            LayerOp::Deconv2d { .. } | LayerOp::Deconv3d { .. } => {
                let (d, h, w) = self.output_dims();
                (d * h * w) as u64 * self.out_channels as u64 * self.kernel_volume()
            }
            _ => self.effective_macs(),
        }
    }

    /// Fraction of naive deconvolution MACs wasted on zero operands
    /// (0 for non-deconvolution layers).
    pub fn sparsity_waste(&self) -> f64 {
        let naive = self.naive_macs();
        if naive == 0 || !self.op.is_deconv() {
            return 0.0;
        }
        1.0 - self.effective_macs() as f64 / naive as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_labels() {
        assert_eq!(Stage::FeatureExtraction.label(), "FE");
        assert_eq!(Stage::MatchingOptimization.label(), "MO");
        assert_eq!(Stage::DisparityRefinement.label(), "DR");
        assert_eq!(Stage::Other.label(), "Other");
    }

    #[test]
    fn conv2d_output_dims_and_macs() {
        let l = LayerSpec::conv2d("c1", Stage::FeatureExtraction, 3, 64, 128, 256, 7, 2, 3);
        let (d, h, w) = l.output_dims();
        assert_eq!((d, h, w), (1, 64, 128));
        // MACs = out elements * in_c * k * k
        let expected = 64u64 * 64 * 128 * 3 * 7 * 7;
        assert_eq!(l.effective_macs(), expected);
        assert_eq!(l.naive_macs(), expected);
        assert_eq!(l.sparsity_waste(), 0.0);
        assert_eq!(l.weight_elements(), 64 * 3 * 7 * 7);
        assert_eq!(l.ifmap_elements(), 3 * 128 * 256);
        assert_eq!(l.ifmap_bytes(), 2 * 3 * 128 * 256);
    }

    #[test]
    fn deconv2d_transformed_vs_naive_macs() {
        let l = LayerSpec::deconv2d("d1", Stage::DisparityRefinement, 64, 32, 30, 40, 4, 2, 1);
        let (_, oh, ow) = l.output_dims();
        assert_eq!((oh, ow), (60, 80));
        // Effective (transformed) MACs: ifmap positions × out_c × in_c × k².
        assert_eq!(l.effective_macs(), 30 * 40 * 32 * 64 * 16);
        // Naive MACs: ofmap positions × out_c × in_c × k².
        assert_eq!(l.naive_macs(), 60 * 80 * 32 * 64 * 16);
        // Stride-2 2-D deconvolution wastes ~75 % of naive MACs.
        assert!((l.sparsity_waste() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn deconv3d_waste_approaches_87_percent() {
        let l = LayerSpec::deconv3d(
            "d3",
            Stage::DisparityRefinement,
            32,
            32,
            24,
            30,
            40,
            3,
            2,
            1,
        );
        let waste = l.sparsity_waste();
        assert!(waste > 0.8 && waste < 0.9, "waste = {waste}");
        assert_eq!(l.op.dims(), 3);
    }

    #[test]
    fn pointwise_costs_scale_with_elements() {
        let l = LayerSpec::pointwise("relu", Stage::Other, 64, 1, 30, 40, 1);
        assert_eq!(l.effective_macs(), 64 * 30 * 40);
        assert_eq!(l.output_dims(), (1, 30, 40));
        assert_eq!(l.kernel_volume(), 0);
        assert_eq!(l.weight_bytes(), 0);
    }

    #[test]
    fn conv3d_dims() {
        let l = LayerSpec::conv3d(
            "c3",
            Stage::MatchingOptimization,
            64,
            32,
            48,
            60,
            80,
            3,
            1,
            1,
        );
        assert_eq!(l.output_dims(), (48, 60, 80));
        assert_eq!(l.kernel_volume(), 64 * 27);
        let strided = LayerSpec::conv3d(
            "c3s",
            Stage::MatchingOptimization,
            64,
            32,
            48,
            60,
            80,
            3,
            2,
            1,
        );
        assert_eq!(strided.output_dims(), (24, 30, 40));
    }

    #[test]
    fn degenerate_dims_are_zero_not_panic() {
        let l = LayerSpec::conv2d("tiny", Stage::Other, 1, 1, 2, 2, 5, 1, 0);
        assert_eq!(l.output_dims(), (1, 0, 0));
        assert_eq!(l.effective_macs(), 0);
        let d = LayerSpec {
            name: "empty".into(),
            stage: Stage::Other,
            op: LayerOp::Deconv2d {
                kh: 4,
                kw: 4,
                stride: 2,
                padding: 1,
            },
            in_channels: 1,
            out_channels: 1,
            in_d: 1,
            in_h: 0,
            in_w: 0,
        };
        assert_eq!(d.output_dims(), (1, 0, 0));
    }

    #[test]
    fn op_kind_predicates() {
        assert!(LayerOp::Deconv2d {
            kh: 4,
            kw: 4,
            stride: 2,
            padding: 1
        }
        .is_deconv());
        assert!(LayerOp::Deconv3d {
            kd: 3,
            kh: 3,
            kw: 3,
            stride: 2,
            padding: 1
        }
        .is_deconv());
        assert!(LayerOp::Conv2d {
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1
        }
        .is_conv());
        assert!(!LayerOp::Pointwise { ops_per_element: 1 }.is_conv());
    }
}
