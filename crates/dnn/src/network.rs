//! Whole-network descriptions and per-stage statistics (Fig. 3).

use crate::layer::{LayerSpec, Stage};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A DNN workload as an ordered list of layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Network name (e.g. `"FlowNetC"`).
    pub name: String,
    /// Whether the network operates on 3-D cost volumes (GC-Net, PSMNet).
    pub is_3d: bool,
    /// Ordered layer list.
    pub layers: Vec<LayerSpec>,
}

/// Arithmetic-operation distribution across the stereo-matching stages, i.e.
/// the data behind one bar of Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageDistribution {
    /// Network name.
    pub network: String,
    /// Fraction of MACs spent in convolutional feature extraction.
    pub feature_extraction: f64,
    /// Fraction of MACs spent in matching optimization.
    pub matching_optimization: f64,
    /// Fraction of MACs spent in deconvolutional disparity refinement.
    pub disparity_refinement: f64,
    /// Fraction of MACs spent elsewhere.
    pub other: f64,
}

impl NetworkSpec {
    /// Creates a network from a layer list.
    pub fn new(name: &str, is_3d: bool, layers: Vec<LayerSpec>) -> Self {
        Self {
            name: name.to_owned(),
            is_3d,
            layers,
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layers that are deconvolutions.
    pub fn deconv_layers(&self) -> impl Iterator<Item = &LayerSpec> {
        self.layers.iter().filter(|l| l.op.is_deconv())
    }

    /// Total effective (transformed) MACs of the network.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerSpec::effective_macs).sum()
    }

    /// Total MACs when deconvolutions are executed naively on the
    /// zero-upsampled ifmap.
    pub fn total_naive_macs(&self) -> u64 {
        self.layers.iter().map(LayerSpec::naive_macs).sum()
    }

    /// Total MACs of deconvolution layers only (naive execution).
    pub fn deconv_naive_macs(&self) -> u64 {
        self.deconv_layers().map(LayerSpec::naive_macs).sum()
    }

    /// Total MACs of deconvolution layers only (transformed execution).
    pub fn deconv_effective_macs(&self) -> u64 {
        self.deconv_layers().map(LayerSpec::effective_macs).sum()
    }

    /// Fraction of the network's naive MACs attributable to deconvolution —
    /// the quantity the paper reports as "38.2 % on average (50 % max)".
    pub fn deconv_mac_fraction(&self) -> f64 {
        let total = self.total_naive_macs();
        if total == 0 {
            return 0.0;
        }
        self.deconv_naive_macs() as f64 / total as f64
    }

    /// Total weight bytes of the network.
    pub fn total_weight_bytes(&self) -> u64 {
        self.layers.iter().map(LayerSpec::weight_bytes).sum()
    }

    /// The largest single-layer ifmap in bytes (used to reason about on-chip
    /// buffer pressure).
    pub fn max_ifmap_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(LayerSpec::ifmap_bytes)
            .max()
            .unwrap_or(0)
    }

    /// MACs grouped by pipeline stage (naive execution, matching the paper's
    /// accounting of the unmodified networks).
    pub fn macs_by_stage(&self) -> BTreeMap<&'static str, u64> {
        let mut map = BTreeMap::new();
        for layer in &self.layers {
            *map.entry(layer.stage.label()).or_insert(0) += layer.naive_macs();
        }
        map
    }

    /// The per-stage MAC distribution of Fig. 3.
    pub fn stage_distribution(&self) -> StageDistribution {
        let total = self.total_naive_macs().max(1) as f64;
        let mut fe = 0u64;
        let mut mo = 0u64;
        let mut dr = 0u64;
        let mut other = 0u64;
        for layer in &self.layers {
            let macs = layer.naive_macs();
            match layer.stage {
                Stage::FeatureExtraction => fe += macs,
                Stage::MatchingOptimization => mo += macs,
                Stage::DisparityRefinement => dr += macs,
                Stage::Other => other += macs,
            }
        }
        StageDistribution {
            network: self.name.clone(),
            feature_extraction: fe as f64 / total,
            matching_optimization: mo as f64 / total,
            disparity_refinement: dr as f64 / total,
            other: other as f64 / total,
        }
    }
}

impl StageDistribution {
    /// Sum of all fractions (≈ 1 for a non-empty network).
    pub fn total(&self) -> f64 {
        self.feature_extraction
            + self.matching_optimization
            + self.disparity_refinement
            + self.other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerSpec;

    fn tiny_network() -> NetworkSpec {
        NetworkSpec::new(
            "tiny",
            false,
            vec![
                LayerSpec::conv2d("fe1", Stage::FeatureExtraction, 3, 16, 64, 64, 3, 2, 1),
                LayerSpec::conv2d("mo1", Stage::MatchingOptimization, 16, 32, 32, 32, 3, 1, 1),
                LayerSpec::deconv2d("dr1", Stage::DisparityRefinement, 32, 16, 32, 32, 4, 2, 1),
                LayerSpec::pointwise("relu", Stage::Other, 16, 1, 64, 64, 1),
            ],
        )
    }

    #[test]
    fn totals_are_sums_of_layers() {
        let net = tiny_network();
        let sum: u64 = net.layers.iter().map(|l| l.effective_macs()).sum();
        assert_eq!(net.total_macs(), sum);
        assert!(net.total_naive_macs() > net.total_macs());
        assert_eq!(net.num_layers(), 4);
        assert_eq!(net.deconv_layers().count(), 1);
    }

    #[test]
    fn deconv_fraction_is_between_zero_and_one() {
        let net = tiny_network();
        let f = net.deconv_mac_fraction();
        assert!(f > 0.0 && f < 1.0);
        let empty = NetworkSpec::new("empty", false, vec![]);
        assert_eq!(empty.deconv_mac_fraction(), 0.0);
        assert_eq!(empty.total_macs(), 0);
        assert_eq!(empty.max_ifmap_bytes(), 0);
    }

    #[test]
    fn stage_distribution_sums_to_one() {
        let net = tiny_network();
        let dist = net.stage_distribution();
        assert!((dist.total() - 1.0).abs() < 1e-9);
        assert!(dist.feature_extraction > 0.0);
        assert!(dist.matching_optimization > 0.0);
        assert!(dist.disparity_refinement > 0.0);
        let by_stage = net.macs_by_stage();
        assert_eq!(by_stage.len(), 4);
    }

    #[test]
    fn weight_bytes_accumulate() {
        let net = tiny_network();
        let expected: u64 = net.layers.iter().map(|l| l.weight_bytes()).sum();
        assert_eq!(net.total_weight_bytes(), expected);
        assert!(net.max_ifmap_bytes() >= net.layers[0].ifmap_bytes());
    }
}
