//! Layer-level descriptions of the four stereo DNNs evaluated by the paper.
//!
//! The layer lists follow the published architectures (FlowNetC [Fischer et
//! al. 2015], DispNet [Mayer et al. 2016], GC-Net [Kendall et al. 2017],
//! PSMNet [Chang & Chen 2018]) closely enough to preserve the properties ASV
//! exploits: encoder/decoder structure, the heavy use of stride-2
//! deconvolution in the disparity-refinement stage, 2-D vs 3-D cost-volume
//! processing, and the relative arithmetic weight of the three stages
//! (Fig. 3).  Exact channel counts of auxiliary heads are simplified; see
//! DESIGN.md for the substitution rationale.

use crate::layer::{LayerSpec, Stage};
use crate::network::NetworkSpec;

/// Standard evaluation input height used throughout the paper's benchmarks
/// (KITTI-like aspect ratio scaled to qHD-class work).
pub const DEFAULT_HEIGHT: usize = 384;
/// Standard evaluation input width.
pub const DEFAULT_WIDTH: usize = 768;
/// Default maximum disparity of the 3-D cost-volume networks.
pub const DEFAULT_MAX_DISPARITY: usize = 192;

/// Incremental builder that tracks the activation volume between layers.
struct Chain {
    layers: Vec<LayerSpec>,
    channels: usize,
    d: usize,
    h: usize,
    w: usize,
}

impl Chain {
    fn new(channels: usize, d: usize, h: usize, w: usize) -> Self {
        Self {
            layers: Vec::new(),
            channels,
            d,
            h,
            w,
        }
    }

    fn conv2d(
        &mut self,
        name: &str,
        stage: Stage,
        out_c: usize,
        k: usize,
        stride: usize,
    ) -> &mut Self {
        let pad = k / 2;
        let layer = LayerSpec::conv2d(
            name,
            stage,
            self.channels,
            out_c,
            self.h,
            self.w,
            k,
            stride,
            pad,
        );
        let (_, h, w) = layer.output_dims();
        self.channels = out_c;
        self.h = h;
        self.w = w;
        self.layers.push(layer);
        self
    }

    fn deconv2d(
        &mut self,
        name: &str,
        stage: Stage,
        out_c: usize,
        k: usize,
        stride: usize,
    ) -> &mut Self {
        let pad = (k - stride) / 2;
        let layer = LayerSpec::deconv2d(
            name,
            stage,
            self.channels,
            out_c,
            self.h,
            self.w,
            k,
            stride,
            pad,
        );
        let (_, h, w) = layer.output_dims();
        self.channels = out_c;
        self.h = h;
        self.w = w;
        self.layers.push(layer);
        self
    }

    fn conv3d(
        &mut self,
        name: &str,
        stage: Stage,
        out_c: usize,
        k: usize,
        stride: usize,
    ) -> &mut Self {
        let pad = k / 2;
        let layer = LayerSpec::conv3d(
            name,
            stage,
            self.channels,
            out_c,
            self.d,
            self.h,
            self.w,
            k,
            stride,
            pad,
        );
        let (d, h, w) = layer.output_dims();
        self.channels = out_c;
        self.d = d;
        self.h = h;
        self.w = w;
        self.layers.push(layer);
        self
    }

    fn deconv3d(
        &mut self,
        name: &str,
        stage: Stage,
        out_c: usize,
        k: usize,
        stride: usize,
    ) -> &mut Self {
        let pad = (k - stride).div_ceil(2);
        let layer = LayerSpec::deconv3d(
            name,
            stage,
            self.channels,
            out_c,
            self.d,
            self.h,
            self.w,
            k,
            stride,
            pad,
        );
        let (d, h, w) = layer.output_dims();
        self.channels = out_c;
        self.d = d;
        self.h = h;
        self.w = w;
        self.layers.push(layer);
        self
    }

    /// Widens the channel count without adding a layer (models concatenation
    /// of skip connections before the next layer).
    fn concat(&mut self, extra_channels: usize) -> &mut Self {
        self.channels += extra_channels;
        self
    }

    fn pointwise(&mut self, name: &str, stage: Stage, ops: u64) -> &mut Self {
        self.layers.push(LayerSpec::pointwise(
            name,
            stage,
            self.channels,
            self.d,
            self.h,
            self.w,
            ops,
        ));
        self
    }

    fn finish(self) -> Vec<LayerSpec> {
        self.layers
    }
}

/// FlowNetC-style correlation network (2-D).
pub fn flownetc(height: usize, width: usize) -> NetworkSpec {
    let mut layers = Vec::new();

    // Feature extraction: two weight-shared towers run on the left and right
    // images; we emit each tower explicitly so MAC accounting counts both.
    for tower in ["left", "right"] {
        let mut fe = Chain::new(3, 1, height, width);
        fe.conv2d(
            &format!("conv1_{tower}"),
            Stage::FeatureExtraction,
            64,
            7,
            2,
        )
        .conv2d(
            &format!("conv2_{tower}"),
            Stage::FeatureExtraction,
            128,
            5,
            2,
        )
        .conv2d(
            &format!("conv3_{tower}"),
            Stage::FeatureExtraction,
            256,
            5,
            2,
        );
        layers.extend(fe.finish());
    }

    // Matching optimization starting from the 1/8-resolution features.
    let mut mo = Chain::new(256, 1, height / 8, width / 8);
    // The correlation layer compares each left feature with a 21x21
    // neighbourhood of right features (441 displacement hypotheses).
    mo.pointwise("correlation", Stage::MatchingOptimization, 441)
        .conv2d("conv_redir", Stage::MatchingOptimization, 32, 1, 1);
    // Correlation output (441 channels) concatenated with conv_redir (32).
    mo.channels = 473;
    mo.conv2d("conv3_1", Stage::MatchingOptimization, 256, 3, 1)
        .conv2d("conv4", Stage::MatchingOptimization, 512, 3, 2)
        .conv2d("conv4_1", Stage::MatchingOptimization, 512, 3, 1)
        .conv2d("conv5", Stage::MatchingOptimization, 512, 3, 2)
        .conv2d("conv5_1", Stage::MatchingOptimization, 512, 3, 1)
        .conv2d("conv6", Stage::MatchingOptimization, 1024, 3, 2)
        .conv2d("conv6_1", Stage::MatchingOptimization, 1024, 3, 1);

    // Disparity (flow) refinement: stride-2 deconvolutions with skip
    // concatenations and per-scale prediction convolutions.
    mo.deconv2d("deconv5", Stage::DisparityRefinement, 512, 4, 2)
        .concat(512 + 2)
        .conv2d("predict5", Stage::DisparityRefinement, 2, 3, 1);
    mo.channels = 512 + 512 + 2;
    mo.deconv2d("deconv4", Stage::DisparityRefinement, 256, 4, 2)
        .concat(512 + 2)
        .conv2d("predict4", Stage::DisparityRefinement, 2, 3, 1);
    mo.channels = 256 + 512 + 2;
    mo.deconv2d("deconv3", Stage::DisparityRefinement, 128, 4, 2)
        .concat(256 + 2)
        .conv2d("predict3", Stage::DisparityRefinement, 2, 3, 1);
    mo.channels = 128 + 256 + 2;
    mo.deconv2d("deconv2", Stage::DisparityRefinement, 64, 4, 2)
        .concat(128 + 2)
        .conv2d("predict2", Stage::DisparityRefinement, 2, 3, 1);
    layers.extend(mo.finish());
    NetworkSpec::new("FlowNetC", false, layers)
}

/// DispNet-style encoder/decoder network (2-D) operating on the concatenated
/// stereo pair.
pub fn dispnet(height: usize, width: usize) -> NetworkSpec {
    let mut c = Chain::new(6, 1, height, width);
    c.conv2d("conv1", Stage::FeatureExtraction, 64, 7, 2)
        .conv2d("conv2", Stage::FeatureExtraction, 128, 5, 2)
        .conv2d("conv3a", Stage::FeatureExtraction, 256, 5, 2)
        .conv2d("conv3b", Stage::MatchingOptimization, 256, 3, 1)
        .conv2d("conv4a", Stage::MatchingOptimization, 512, 3, 2)
        .conv2d("conv4b", Stage::MatchingOptimization, 512, 3, 1)
        .conv2d("conv5a", Stage::MatchingOptimization, 512, 3, 2)
        .conv2d("conv5b", Stage::MatchingOptimization, 512, 3, 1)
        .conv2d("conv6a", Stage::MatchingOptimization, 1024, 3, 2)
        .conv2d("conv6b", Stage::MatchingOptimization, 1024, 3, 1);

    c.deconv2d("deconv5", Stage::DisparityRefinement, 512, 4, 2)
        .concat(512 + 1)
        .conv2d("iconv5", Stage::DisparityRefinement, 512, 3, 1)
        .conv2d("predict5", Stage::DisparityRefinement, 1, 3, 1);
    c.channels = 512;
    c.deconv2d("deconv4", Stage::DisparityRefinement, 256, 4, 2)
        .concat(512 + 1)
        .conv2d("iconv4", Stage::DisparityRefinement, 256, 3, 1)
        .conv2d("predict4", Stage::DisparityRefinement, 1, 3, 1);
    c.channels = 256;
    c.deconv2d("deconv3", Stage::DisparityRefinement, 128, 4, 2)
        .concat(256 + 1)
        .conv2d("iconv3", Stage::DisparityRefinement, 128, 3, 1)
        .conv2d("predict3", Stage::DisparityRefinement, 1, 3, 1);
    c.channels = 128;
    c.deconv2d("deconv2", Stage::DisparityRefinement, 64, 4, 2)
        .concat(128 + 1)
        .conv2d("iconv2", Stage::DisparityRefinement, 64, 3, 1)
        .conv2d("predict2", Stage::DisparityRefinement, 1, 3, 1);
    c.channels = 64;
    c.deconv2d("deconv1", Stage::DisparityRefinement, 32, 4, 2)
        .concat(64 + 1)
        .conv2d("iconv1", Stage::DisparityRefinement, 32, 3, 1)
        .conv2d("predict1", Stage::DisparityRefinement, 1, 3, 1);
    NetworkSpec::new("DispNet", false, c.finish())
}

/// GC-Net-style 3-D cost-volume network.
pub fn gcnet(height: usize, width: usize, max_disparity: usize) -> NetworkSpec {
    let mut layers = Vec::new();

    // 2-D feature extraction (two weight-shared towers, half resolution).
    for tower in ["left", "right"] {
        let mut fe = Chain::new(3, 1, height, width);
        fe.conv2d(
            &format!("conv1_{tower}"),
            Stage::FeatureExtraction,
            32,
            5,
            2,
        );
        for i in 0..8 {
            fe.conv2d(
                &format!("res{i}a_{tower}"),
                Stage::FeatureExtraction,
                32,
                3,
                1,
            )
            .conv2d(
                &format!("res{i}b_{tower}"),
                Stage::FeatureExtraction,
                32,
                3,
                1,
            );
        }
        fe.conv2d(&format!("feat_{tower}"), Stage::FeatureExtraction, 32, 3, 1);
        layers.extend(fe.finish());
    }

    // 3-D matching optimization over the (D/2, H/2, W/2) cost volume with 64
    // channels (left/right features concatenated).
    let mut mo = Chain::new(64, max_disparity / 2, height / 2, width / 2);
    mo.conv3d("3d_conv1", Stage::MatchingOptimization, 32, 3, 1)
        .conv3d("3d_conv2", Stage::MatchingOptimization, 32, 3, 1)
        .conv3d("3d_down1", Stage::MatchingOptimization, 64, 3, 2)
        .conv3d("3d_conv3", Stage::MatchingOptimization, 64, 3, 1)
        .conv3d("3d_conv4", Stage::MatchingOptimization, 64, 3, 1)
        .conv3d("3d_down2", Stage::MatchingOptimization, 64, 3, 2)
        .conv3d("3d_conv5", Stage::MatchingOptimization, 64, 3, 1)
        .conv3d("3d_conv6", Stage::MatchingOptimization, 64, 3, 1)
        .conv3d("3d_down3", Stage::MatchingOptimization, 128, 3, 2)
        .conv3d("3d_conv7", Stage::MatchingOptimization, 128, 3, 1)
        .conv3d("3d_conv8", Stage::MatchingOptimization, 128, 3, 1);

    // 3-D disparity refinement: transposed convolutions back to full
    // resolution, ending in a single-channel D×H×W volume.
    mo.deconv3d("3d_deconv1", Stage::DisparityRefinement, 64, 3, 2)
        .conv3d("3d_up_conv1", Stage::DisparityRefinement, 64, 3, 1)
        .deconv3d("3d_deconv2", Stage::DisparityRefinement, 64, 3, 2)
        .conv3d("3d_up_conv2", Stage::DisparityRefinement, 32, 3, 1)
        .deconv3d("3d_deconv3", Stage::DisparityRefinement, 32, 3, 2)
        .deconv3d("3d_deconv4", Stage::DisparityRefinement, 1, 3, 2)
        .pointwise("soft_argmin", Stage::Other, 2);
    layers.extend(mo.finish());
    NetworkSpec::new("GC-Net", true, layers)
}

/// PSMNet-style 3-D stacked-hourglass network.
pub fn psmnet(height: usize, width: usize, max_disparity: usize) -> NetworkSpec {
    let mut layers = Vec::new();

    // 2-D feature extraction with a deeper CNN + spatial pyramid pooling,
    // quarter resolution.
    for tower in ["left", "right"] {
        let mut fe = Chain::new(3, 1, height, width);
        fe.conv2d(
            &format!("conv0_1_{tower}"),
            Stage::FeatureExtraction,
            32,
            3,
            2,
        )
        .conv2d(
            &format!("conv0_2_{tower}"),
            Stage::FeatureExtraction,
            32,
            3,
            1,
        )
        .conv2d(
            &format!("conv0_3_{tower}"),
            Stage::FeatureExtraction,
            32,
            3,
            1,
        );
        for i in 0..3 {
            fe.conv2d(
                &format!("res1_{i}_{tower}"),
                Stage::FeatureExtraction,
                32,
                3,
                1,
            );
        }
        fe.conv2d(
            &format!("down1_{tower}"),
            Stage::FeatureExtraction,
            64,
            3,
            2,
        );
        for i in 0..8 {
            fe.conv2d(
                &format!("res2_{i}_{tower}"),
                Stage::FeatureExtraction,
                64,
                3,
                1,
            );
        }
        for i in 0..3 {
            fe.conv2d(
                &format!("res3_{i}_{tower}"),
                Stage::FeatureExtraction,
                128,
                3,
                1,
            );
        }
        // SPP branches + fusion.
        fe.conv2d(
            &format!("spp_fuse_{tower}"),
            Stage::FeatureExtraction,
            128,
            3,
            1,
        )
        .conv2d(
            &format!("lastconv_{tower}"),
            Stage::FeatureExtraction,
            32,
            1,
            1,
        );
        layers.extend(fe.finish());
    }

    // 3-D processing over the (D/4, H/4, W/4) volume with 64 channels.
    let mut mo = Chain::new(64, max_disparity / 4, height / 4, width / 4);
    mo.conv3d("dres0_a", Stage::MatchingOptimization, 32, 3, 1)
        .conv3d("dres0_b", Stage::MatchingOptimization, 32, 3, 1)
        .conv3d("dres1_a", Stage::MatchingOptimization, 32, 3, 1)
        .conv3d("dres1_b", Stage::MatchingOptimization, 32, 3, 1);

    // Three stacked hourglasses: each downsamples twice and upsamples twice
    // with 3-D deconvolutions.
    for hg in 0..3 {
        mo.conv3d(
            &format!("hg{hg}_down1"),
            Stage::MatchingOptimization,
            64,
            3,
            2,
        )
        .conv3d(
            &format!("hg{hg}_conv1"),
            Stage::MatchingOptimization,
            64,
            3,
            1,
        )
        .conv3d(
            &format!("hg{hg}_down2"),
            Stage::MatchingOptimization,
            64,
            3,
            2,
        )
        .conv3d(
            &format!("hg{hg}_conv2"),
            Stage::MatchingOptimization,
            64,
            3,
            1,
        )
        .deconv3d(
            &format!("hg{hg}_deconv1"),
            Stage::DisparityRefinement,
            64,
            3,
            2,
        )
        .deconv3d(
            &format!("hg{hg}_deconv2"),
            Stage::DisparityRefinement,
            32,
            3,
            2,
        );
    }

    // Final classification and upsampling to full resolution.
    mo.conv3d("classif_a", Stage::DisparityRefinement, 32, 3, 1)
        .conv3d("classif_b", Stage::DisparityRefinement, 1, 3, 1)
        .deconv3d("final_up1", Stage::DisparityRefinement, 1, 4, 2)
        .deconv3d("final_up2", Stage::DisparityRefinement, 1, 4, 2)
        .pointwise("disparity_regression", Stage::Other, 2);
    layers.extend(mo.finish());
    NetworkSpec::new("PSMNet", true, layers)
}

/// The four stereo networks evaluated throughout the paper, at the default
/// resolution.
pub fn standard_suite() -> Vec<NetworkSpec> {
    suite(DEFAULT_HEIGHT, DEFAULT_WIDTH, DEFAULT_MAX_DISPARITY)
}

/// The four stereo networks at a caller-chosen resolution.
pub fn suite(height: usize, width: usize, max_disparity: usize) -> Vec<NetworkSpec> {
    vec![
        dispnet(height, width),
        flownetc(height, width),
        gcnet(height, width, max_disparity),
        psmnet(height, width, max_disparity),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn networks_have_expected_structure() {
        for net in suite(192, 384, 96) {
            assert!(net.num_layers() > 10, "{} too small", net.name);
            assert!(
                net.deconv_layers().count() >= 4,
                "{} lacks deconvs",
                net.name
            );
            assert!(net.total_macs() > 0);
            match net.name.as_str() {
                "GC-Net" | "PSMNet" => assert!(net.is_3d),
                _ => assert!(!net.is_3d),
            }
        }
    }

    #[test]
    fn deconv_share_matches_paper_band() {
        // Fig. 3: deconvolution accounts for a significant minority of the
        // arithmetic — 38.2 % on average with a 50 % maximum.  Allow a broad
        // band per network but require the average to land near the paper's.
        let nets = suite(192, 384, 96);
        let fractions: Vec<f64> = nets.iter().map(|n| n.deconv_mac_fraction()).collect();
        for (net, f) in nets.iter().zip(&fractions) {
            assert!(*f > 0.05 && *f < 0.7, "{}: deconv fraction {f}", net.name);
        }
        let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
        assert!(avg > 0.2 && avg < 0.55, "average deconv fraction {avg}");
    }

    #[test]
    fn conv_plus_deconv_dominate_runtime() {
        // Fig. 3: convolution + deconvolution account for over 99 % of the
        // arithmetic.
        for net in suite(192, 384, 96) {
            let conv_deconv: u64 = net
                .layers
                .iter()
                .filter(|l| l.op.is_conv() || l.op.is_deconv())
                .map(|l| l.naive_macs())
                .sum();
            let share = conv_deconv as f64 / net.total_naive_macs() as f64;
            assert!(share > 0.9, "{}: conv+deconv share {share}", net.name);
        }
    }

    #[test]
    fn three_d_networks_are_heavier_than_two_d() {
        let nets = suite(192, 384, 96);
        let macs: std::collections::HashMap<_, _> = nets
            .iter()
            .map(|n| (n.name.clone(), n.total_naive_macs()))
            .collect();
        assert!(macs["GC-Net"] > macs["FlowNetC"]);
        assert!(macs["PSMNet"] > macs["DispNet"]);
    }

    #[test]
    fn dnn_vs_classic_compute_gap_matches_paper() {
        // Sec. 3.3: a qHD non-key frame costs ~87 Mops while stereo DNN
        // inference costs 10^2 - 10^4 x more.
        let nets = suite(540, 960, 192);
        for net in nets {
            let ratio = net.total_naive_macs() as f64 / 87e6;
            assert!(ratio > 50.0, "{} ratio {ratio}", net.name);
            assert!(ratio < 1e6, "{} ratio {ratio}", net.name);
        }
    }

    #[test]
    fn resolution_scales_macs_roughly_quadratically() {
        let small = flownetc(96, 192).total_macs() as f64;
        let large = flownetc(192, 384).total_macs() as f64;
        let ratio = large / small;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn standard_suite_uses_default_resolution() {
        let nets = standard_suite();
        assert_eq!(nets.len(), 4);
        assert_eq!(nets[0].layers[0].in_h, DEFAULT_HEIGHT);
        assert_eq!(nets[0].layers[0].in_w, DEFAULT_WIDTH);
    }

    #[test]
    fn stage_distribution_has_all_three_stages() {
        for net in suite(192, 384, 96) {
            let dist = net.stage_distribution();
            assert!(dist.feature_extraction > 0.0, "{}", net.name);
            assert!(dist.matching_optimization > 0.0, "{}", net.name);
            assert!(dist.disparity_refinement > 0.0, "{}", net.name);
        }
    }
}
