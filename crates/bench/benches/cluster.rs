//! Criterion benchmark of the sharded runtime: ingest-fronted cluster vs
//! single-scheduler baseline on identical synthetic camera streams.

use asv_bench::cluster::cluster_throughput;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    // Each invocation times both sides internally (single + cluster) and
    // returns the whole report; criterion measures the end-to-end sweep.
    group.bench_function("throughput_2_shards_4_sessions", |b| {
        b.iter(|| black_box(cluster_throughput(2, 4, 1, 2)))
    });
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
