//! Criterion benchmark of the frame wire format: encode and decode
//! throughput at streaming frame sizes, with a warm buffer pool so the
//! numbers reflect the zero-allocation steady state the server runs in.

use asv_image::Image;
use asv_mem::BufferPool;
use asv_runtime::wire;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const WIDTH: usize = 128;
const HEIGHT: usize = 96;

fn frame(salt: f32) -> Image {
    let data = (0..WIDTH * HEIGHT)
        .map(|i| (i as f32).mul_add(0.05, salt))
        .collect();
    Image::from_vec(WIDTH, HEIGHT, data).expect("sized to match")
}

fn bench_wire(c: &mut Criterion) {
    let left = frame(0.0);
    let right = frame(100.0);
    let mut group = c.benchmark_group("wire");

    group.bench_function("encode_128x96", |b| {
        let mut bytes = Vec::new();
        b.iter(|| {
            wire::encode_frame_into(&mut bytes, "camera-0", 7, &left, &right)
                .expect("valid frame encodes");
            black_box(bytes.len())
        })
    });

    let mut encoded = Vec::new();
    wire::encode_frame_into(&mut encoded, "camera-0", 7, &left, &right)
        .expect("valid frame encodes");

    group.bench_function("validate_128x96", |b| {
        b.iter(|| black_box(wire::validate(&encoded, wire::MAX_MESSAGE_BYTES).is_ok()))
    });

    group.bench_function("decode_warm_pool_128x96", |b| {
        let mut pool = BufferPool::new();
        // Warm the pool so the loop measures the allocation-free path.
        let warm = wire::decode_frame(&encoded, wire::MAX_MESSAGE_BYTES, &mut pool)
            .expect("valid frame decodes");
        pool.put(warm.left.into_vec());
        pool.put(warm.right.into_vec());
        b.iter(|| {
            let frame = wire::decode_frame(&encoded, wire::MAX_MESSAGE_BYTES, &mut pool)
                .expect("valid frame decodes");
            let checksum = frame.left.as_slice()[0] + frame.right.as_slice()[0];
            pool.put(frame.left.into_vec());
            pool.put(frame.right.into_vec());
            black_box(checksum)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
