//! Criterion benchmark of the streaming engine: serial batch baseline vs
//! the multi-session scheduler on identical synthetic camera streams.

use asv_bench::streaming::streaming_throughput;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    // Each invocation times both sides internally (serial + concurrent) and
    // returns the whole report; criterion measures the end-to-end sweep.
    group.bench_function("throughput_2_sessions_2_workers", |b| {
        b.iter(|| black_box(streaming_throughput(2, 2, 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
