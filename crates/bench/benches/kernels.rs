//! Criterion micro-benchmarks of the computational kernels underlying the
//! paper's experiments: dense convolution, the two deconvolution execution
//! strategies, optical flow, stereo matching and the dataflow scheduler.

use asv_dataflow::network::schedule_network;
use asv_dataflow::{HwConfig, OptLevel};
use asv_deconv::transform::{paper_deconv2d, transformed_deconv2d};
use asv_dnn::zoo;
use asv_flow::farneback::{farneback_flow, FarnebackParams};
use asv_image::warp::translate;
use asv_image::Image;
use asv_scene::{SceneConfig, StereoSequence};
use asv_stereo::block_matching::{block_match, refine_with_initial, BlockMatchParams};
use asv_stereo::sgm::{semi_global_match, SgmParams};
use asv_stereo::DisparityMap;
use asv_tensor::conv::{conv2d, Conv2dParams};
use asv_tensor::{Shape4, Tensor4};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_conv_and_deconv(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let input = Tensor4::random(Shape4::new(1, 8, 24, 24), -1.0, 1.0, &mut rng);
    let conv_kernel = Tensor4::random(Shape4::new(8, 8, 3, 3), -1.0, 1.0, &mut rng);
    let deconv_kernel = Tensor4::random(Shape4::new(8, 8, 4, 4), -1.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    group.bench_function("conv2d_dense", |b| {
        b.iter(|| {
            conv2d(
                black_box(&input),
                black_box(&conv_kernel),
                &Conv2dParams {
                    stride: 1,
                    padding: 1,
                },
            )
        })
    });
    group.bench_function("deconv_standard_zero_insert", |b| {
        b.iter(|| paper_deconv2d(black_box(&input), black_box(&deconv_kernel), 1))
    });
    group.bench_function("deconv_transformed_sub_convs", |b| {
        b.iter(|| transformed_deconv2d(black_box(&input), black_box(&deconv_kernel), 1))
    });
    group.finish();
}

fn bench_ism_components(c: &mut Criterion) {
    let frame0 = Image::from_fn(96, 64, |x, y| ((x * 13 + y * 7) % 29) as f32 / 29.0);
    let frame1 = translate(&frame0, 2, 1);
    let seq = StereoSequence::generate(&SceneConfig::scene_flow_like(96, 64).with_seed(3), 1);
    let left = seq.frames()[0].left.clone();
    let right = seq.frames()[0].right.clone();
    let initial = DisparityMap::constant(96, 64, 10.0);

    let mut group = c.benchmark_group("ism_components");
    group.sample_size(10);
    group.bench_function("farneback_flow_96x64", |b| {
        b.iter(|| {
            farneback_flow(
                black_box(&frame0),
                black_box(&frame1),
                &FarnebackParams::default(),
            )
        })
    });
    group.bench_function("block_match_full_search", |b| {
        b.iter(|| {
            block_match(
                black_box(&left),
                black_box(&right),
                &BlockMatchParams {
                    max_disparity: 32,
                    ..Default::default()
                },
            )
        })
    });
    group.bench_function("block_match_ism_refinement", |b| {
        b.iter(|| {
            refine_with_initial(
                black_box(&left),
                black_box(&right),
                black_box(&initial),
                &BlockMatchParams {
                    max_disparity: 32,
                    refine_radius: 3,
                    ..Default::default()
                },
            )
        })
    });
    group.bench_function("sgm_96x64", |b| {
        b.iter(|| {
            semi_global_match(
                black_box(&left),
                black_box(&right),
                &SgmParams {
                    max_disparity: 32,
                    ..Default::default()
                },
            )
        })
    });
    group.finish();
}

/// qHD-scale (960x540) stereo kernels: the operating point of the paper's
/// system evaluation and the reference workload for the `parallel` feature
/// (compare `cargo bench -p asv-bench` against
/// `cargo bench -p asv-bench --no-default-features`).
fn bench_qhd_stereo(c: &mut Criterion) {
    let width = 960;
    let height = 540;
    let max_disparity = 64;
    let right = Image::from_fn(width, height, |x, y| {
        ((x as f32 * 0.61).sin() * (y as f32 * 0.37).cos()) + ((x * 3 + y * 7) % 31) as f32 * 0.05
    });
    let left = Image::from_fn(width, height, |x, y| {
        right.at_clamped(x as isize - 24, y as isize)
    });

    let mut group = c.benchmark_group("kernels_qhd");
    group.sample_size(10);
    group.bench_function("cost_volume_qhd_d64", |b| {
        b.iter(|| {
            asv_stereo::cost_volume::CostVolume::from_pair(
                black_box(&left),
                black_box(&right),
                max_disparity,
                asv_image::cost::BlockSpec::new(2),
            )
        })
    });
    group.bench_function("sgm_qhd_d64", |b| {
        b.iter(|| {
            semi_global_match(
                black_box(&left),
                black_box(&right),
                &SgmParams {
                    max_disparity,
                    ..Default::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let hw = HwConfig::asv_default();
    let net = zoo::flownetc(96, 192);
    let mut group = c.benchmark_group("dataflow_scheduler");
    group.sample_size(10);
    group.bench_function("schedule_flownetc_baseline", |b| {
        b.iter(|| schedule_network(black_box(&net), &hw, OptLevel::Baseline))
    });
    group.bench_function("schedule_flownetc_ilar", |b| {
        // The reuse solver memoizes per layer shape; clear the memo each
        // iteration so the benchmark times the tiling sweep, not map hits.
        b.iter(|| {
            asv_dataflow::solver::schedule_cache_clear();
            schedule_network(black_box(&net), &hw, OptLevel::Ilar)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_conv_and_deconv,
    bench_ism_components,
    bench_qhd_stereo,
    bench_scheduler
);
criterion_main!(benches);
