//! Criterion benchmarks that time the regeneration of each analytical figure
//! of the paper (one benchmark per table/figure of the evaluation section).
//! The functional accuracy figures (Fig. 1, Fig. 9) are exercised with a
//! reduced setup so the whole suite completes quickly; their full outputs are
//! produced by the `fig01_frontier` / `fig09_accuracy` binaries.

use asv_bench::algorithms::{
    figure4_depth_sensitivity, figure9_accuracy, nonkey_cost_table, AccuracySetup,
};
use asv_bench::hardware::{
    figure10_speedup_energy, figure11_deconv_opts, figure12_sensitivity, figure13_platforms,
    figure14_gans, figure3_stage_distribution, overhead_table,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig03_op_distribution", |b| {
        b.iter(|| black_box(figure3_stage_distribution()))
    });
    group.bench_function("fig04_depth_sensitivity", |b| {
        b.iter(|| black_box(figure4_depth_sensitivity()))
    });
    group.bench_function("fig10_speedup_energy", |b| {
        b.iter(|| black_box(figure10_speedup_energy()))
    });
    group.bench_function("fig11_deconv_opts", |b| {
        b.iter(|| black_box(figure11_deconv_opts()))
    });
    group.bench_function("fig12_sensitivity", |b| {
        b.iter(|| black_box(figure12_sensitivity()))
    });
    group.bench_function("fig13_baselines", |b| {
        b.iter(|| black_box(figure13_platforms()))
    });
    group.bench_function("fig14_gan", |b| b.iter(|| black_box(figure14_gans())));
    group.bench_function("tab_overhead", |b| b.iter(|| black_box(overhead_table())));
    group.bench_function("tab_nonkey_cost", |b| {
        b.iter(|| black_box(nonkey_cost_table()))
    });
    group.finish();

    let mut functional = c.benchmark_group("functional_figures");
    functional.sample_size(10);
    let tiny = AccuracySetup {
        width: 48,
        height: 32,
        frames: 2,
        sequences: 1,
        max_disparity: 16,
    };
    functional.bench_function("fig09_accuracy_tiny", |b| {
        b.iter(|| black_box(figure9_accuracy(&tiny)))
    });
    functional.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
