//! Streaming-runtime throughput experiment: aggregate frames/second of the
//! `asv-runtime` scheduler serving many concurrent camera streams, against
//! the serial baseline of batch-processing the same streams one after the
//! other.
//!
//! This is the reproduction's stand-in for the serving-scale evaluation a
//! deployed ASV would get (many cameras, one shared compute budget): the
//! same sequences, the same kernels, only the orchestration differs.

use asv::ism::{IsmConfig, IsmPipeline};
use asv_dnn::{zoo, SurrogateParams, SurrogateStereoDnn};
use asv_runtime::{serve_sequences, SchedulerConfig};
use asv_scene::{SceneConfig, StereoSequence};
use asv_stereo::block_matching::BlockMatchParams;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Frame width of the streaming experiment.
pub const STREAM_WIDTH: usize = 64;
/// Frame height of the streaming experiment.
pub const STREAM_HEIGHT: usize = 48;

/// One row of the streaming-throughput experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingThroughputReport {
    /// Concurrent camera streams served.
    pub sessions: usize,
    /// Worker threads in the scheduler pool.
    pub workers: usize,
    /// Frames per stream.
    pub frames_per_stream: usize,
    /// Aggregate frames/second of the serial batch baseline.
    pub serial_fps: f64,
    /// Aggregate frames/second of the concurrent scheduler.
    pub concurrent_fps: f64,
    /// `concurrent_fps / serial_fps`.
    pub speedup: f64,
    /// Median per-frame service latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile per-frame service latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile per-frame service latency, microseconds.
    pub p99_us: u64,
    /// Fraction of frames that ran the full DNN (key frames).
    pub key_frame_ratio: f64,
    /// Largest inbox depth observed on any session.
    pub peak_queue_depth: usize,
}

/// The ISM pipeline both sides of the comparison share (also used by the
/// cluster experiment).
pub(crate) fn streaming_pipeline() -> IsmPipeline {
    let config = IsmConfig {
        propagation_window: 4,
        refine: BlockMatchParams {
            max_disparity: 32,
            refine_radius: 3,
            ..Default::default()
        },
        surrogate: SurrogateParams {
            max_disparity: 32,
            occlusion_handling: true,
            ..Default::default()
        },
        ..Default::default()
    };
    IsmPipeline::new(
        config,
        SurrogateStereoDnn::new(zoo::dispnet(STREAM_HEIGHT, STREAM_WIDTH), config.surrogate),
    )
}

/// The synthetic camera streams (distinct seeds per stream).
pub(crate) fn streams(sessions: usize, frames_per_stream: usize) -> Vec<StereoSequence> {
    (0..sessions)
        .map(|i| {
            let scene = SceneConfig::scene_flow_like(STREAM_WIDTH, STREAM_HEIGHT)
                .with_seed(100 + i as u64)
                .with_objects(3);
            StereoSequence::generate(&scene, frames_per_stream)
        })
        .collect()
}

/// Runs the experiment: `sessions` streams of `frames_per_stream` frames,
/// processed (a) serially with the batch pipeline and (b) concurrently by a
/// `workers`-thread scheduler, and reports aggregate throughput plus the
/// scheduler's latency telemetry.
///
/// # Panics
///
/// Panics if either path fails on the synthetic streams (they cannot,
/// barring a bug).
pub fn streaming_throughput(
    sessions: usize,
    workers: usize,
    frames_per_stream: usize,
) -> StreamingThroughputReport {
    let pipeline = streaming_pipeline();
    let streams = streams(sessions, frames_per_stream);
    let total_frames = (sessions * frames_per_stream) as f64;

    let serial_started = Instant::now();
    for stream in &streams {
        pipeline
            .process_sequence(stream)
            .expect("serial baseline processes");
    }
    let serial_fps = total_frames / serial_started.elapsed().as_secs_f64().max(1e-9);

    let outcome = serve_sequences(
        &pipeline,
        &streams,
        SchedulerConfig::per_core()
            .with_workers(workers)
            .with_inbox_capacity(2),
    )
    .expect("concurrent streams process");
    let concurrent_fps = outcome.aggregate.frames_per_second();

    StreamingThroughputReport {
        sessions,
        workers,
        frames_per_stream,
        serial_fps,
        concurrent_fps,
        speedup: concurrent_fps / serial_fps.max(1e-9),
        p50_us: outcome.aggregate.service_latency.p50_us(),
        p95_us: outcome.aggregate.service_latency.p95_us(),
        p99_us: outcome.aggregate.service_latency.p99_us(),
        key_frame_ratio: outcome.aggregate.key_frame_ratio(),
        peak_queue_depth: outcome.aggregate.peak_queue_depth,
    }
}

/// The printable serving-scalability record (the `tab_streaming` binary):
/// 8 concurrent streams on a per-core worker pool vs the serial baseline.
/// On a multi-core host the scheduler's aggregate throughput exceeds the
/// serial baseline (≥ 2× from 4 cores up); on a single core it documents
/// the scheduling overhead instead.
pub fn streaming_report() -> String {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let r = streaming_throughput(8, workers, 6);
    let mut out = String::new();
    out.push_str(&format!(
        "streaming throughput: {} sessions x {} frames ({}x{}), {} workers\n",
        r.sessions, r.frames_per_stream, STREAM_WIDTH, STREAM_HEIGHT, r.workers
    ));
    out.push_str(&format!(
        "  serial baseline      {:>8.2} frames/s\n",
        r.serial_fps
    ));
    out.push_str(&format!(
        "  concurrent scheduler {:>8.2} frames/s  (speedup {:.2}x)\n",
        r.concurrent_fps, r.speedup
    ));
    out.push_str(&format!(
        "  service latency      p50 {} us   p95 {} us   p99 {} us\n",
        r.p50_us, r.p95_us, r.p99_us
    ));
    out.push_str(&format!(
        "  key-frame ratio      {:.3}   peak queue depth {}\n",
        r.key_frame_ratio, r.peak_queue_depth
    ));
    out
}
