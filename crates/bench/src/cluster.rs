//! Cluster scale-out experiment: aggregate throughput of the sharded
//! runtime (ingest front-end → `Cluster` → scheduler shards) as the shard
//! count grows, against the single-scheduler baseline on identical
//! workloads.
//!
//! The single scheduler serializes all bookkeeping on one engine lock; the
//! cluster gives every shard its own lock and worker pool, so on a
//! multi-core host aggregate frames/second should hold or improve with
//! shard count while per-shard queue pressure drops.

use crate::streaming::{streaming_pipeline, streams, STREAM_HEIGHT, STREAM_WIDTH};
use asv_runtime::{
    serve_sequences, Cluster, ClusterConfig, Ingest, IngestConfig, SchedulerConfig, ShedPolicy,
};
use serde::{Deserialize, Serialize};

/// One row of the cluster-throughput experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterThroughputReport {
    /// Scheduler shards in the cluster.
    pub shards: usize,
    /// Concurrent camera sessions served.
    pub sessions: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Frames per session.
    pub frames_per_stream: usize,
    /// Aggregate frames/second of the single-scheduler baseline.
    pub single_fps: f64,
    /// Aggregate frames/second of the cluster.
    pub cluster_fps: f64,
    /// `cluster_fps / single_fps`.
    pub speedup: f64,
    /// Cluster-wide 95th-percentile service latency, microseconds.
    pub p95_us: u64,
    /// Largest inbox depth observed on any shard.
    pub peak_queue_depth: usize,
    /// Frames shed by admission control (0 under the lossless policy used
    /// here).
    pub frames_shed: u64,
}

/// Runs the experiment: `sessions` identical streams served (a) by one
/// scheduler with `shards * workers_per_shard` workers and (b) by a
/// `shards`-shard cluster with `workers_per_shard` workers each, both
/// getting the same total worker budget.
///
/// # Panics
///
/// Panics if either path fails on the synthetic streams (they cannot,
/// barring a bug).
pub fn cluster_throughput(
    shards: usize,
    sessions: usize,
    workers_per_shard: usize,
    frames_per_stream: usize,
) -> ClusterThroughputReport {
    let pipeline = streaming_pipeline();
    let workload = streams(sessions, frames_per_stream);

    // Baseline: one scheduler with the same total worker budget.
    let single = serve_sequences(
        &pipeline,
        &workload,
        SchedulerConfig::per_core()
            .with_workers(shards * workers_per_shard)
            .with_inbox_capacity(2),
    )
    .expect("single-scheduler baseline serves");
    let single_fps = single.aggregate.frames_per_second();

    // The cluster, fed through the async ingest front-end.
    let cluster = Cluster::new(
        ClusterConfig::new(shards).with_shard_config(
            SchedulerConfig::per_core()
                .with_workers(workers_per_shard)
                .with_inbox_capacity(2),
        ),
    );
    let ingest = Ingest::new(
        IngestConfig::default()
            .with_policy(ShedPolicy::Block)
            .with_queue_capacity((sessions * 2).max(4))
            .with_session_quota(2),
    );
    let routes: Vec<_> = (0..sessions)
        .map(|i| {
            let placed = cluster.add_session(&format!("bench-cam-{i}"), pipeline.state());
            ingest.register(placed.handle().clone())
        })
        .collect();
    std::thread::scope(|scope| {
        for (route, stream) in routes.iter().zip(&workload) {
            let route = route.clone();
            scope.spawn(move || {
                for frame in stream.frames() {
                    route
                        .submit(frame.left.clone(), frame.right.clone())
                        .expect("lossless ingest accepts");
                }
            });
        }
    });
    let stats = ingest.join();
    let report = cluster.join();
    let cluster_fps = report.aggregate.frames_per_second();

    ClusterThroughputReport {
        shards,
        sessions,
        workers_per_shard,
        frames_per_stream,
        single_fps,
        cluster_fps,
        speedup: cluster_fps / single_fps.max(1e-9),
        p95_us: report.aggregate.service_latency.p95_us(),
        peak_queue_depth: report.aggregate.peak_queue_depth,
        frames_shed: report.aggregate.frames_shed + stats.shed(),
    }
}

/// The printable cluster-scalability record (the `tab_cluster` binary): the
/// shard sweep at a fixed session count and worker budget, plus a scrape
/// sample.
pub fn cluster_report() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers_per_shard = (cores / 2).max(1);
    let mut out = String::new();
    out.push_str(&format!(
        "cluster throughput: 6 sessions x 4 frames ({STREAM_WIDTH}x{STREAM_HEIGHT}), {workers_per_shard} workers/shard\n",
    ));
    out.push_str("  shards  single(f/s)  cluster(f/s)  speedup  p95(us)  peak-q  shed\n");
    for shards in [1, 2, 4] {
        let r = cluster_throughput(shards, 6, workers_per_shard, 4);
        out.push_str(&format!(
            "  {:>6}  {:>11.2}  {:>12.2}  {:>7.2}  {:>7}  {:>6}  {:>4}\n",
            r.shards,
            r.single_fps,
            r.cluster_fps,
            r.speedup,
            r.p95_us,
            r.peak_queue_depth,
            r.frames_shed
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_serves_every_frame_losslessly() {
        let r = cluster_throughput(2, 3, 1, 2);
        assert_eq!(r.shards, 2);
        assert_eq!(r.frames_shed, 0);
        assert!(r.cluster_fps > 0.0);
        assert!(r.single_fps > 0.0);
        assert!(r.speedup > 0.0);
    }
}
