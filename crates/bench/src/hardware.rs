//! Hardware-level experiments: the stage distribution (Fig. 3), the system
//! speedup/energy ablation (Fig. 10), the deconvolution-optimization ablation
//! (Fig. 11), the resource sensitivity sweep (Fig. 12), the Eyeriss/GPU
//! comparison (Fig. 13), the GANNX comparison (Fig. 14) and the hardware
//! overhead table (Sec. 7.1).

use asv::perf::{AsvVariant, SystemPerformanceModel};
use asv_accel::baselines::{EyerissModel, GannxModel, GpuModel};
use asv_accel::ism::NonKeyFrameConfig;
use asv_accel::overhead::AreaPowerBudget;
use asv_accel::systolic::SystolicAccelerator;
use asv_accel::ExecutionReport;
use asv_dataflow::{HwConfig, OptLevel};
use asv_dnn::network::StageDistribution;
use asv_dnn::{gan, zoo, NetworkSpec};
use serde::{Deserialize, Serialize};

fn eval_suite() -> Vec<NetworkSpec> {
    zoo::suite(
        crate::EVAL_HEIGHT,
        crate::EVAL_WIDTH,
        crate::EVAL_MAX_DISPARITY,
    )
}

fn nonkey_config() -> NonKeyFrameConfig {
    NonKeyFrameConfig::with_resolution(crate::EVAL_WIDTH, crate::EVAL_HEIGHT)
}

/// Fig. 3: the per-stage MAC distribution of each stereo network.
pub fn figure3_stage_distribution() -> Vec<StageDistribution> {
    eval_suite()
        .iter()
        .map(NetworkSpec::stage_distribution)
        .collect()
}

/// One bar group of Fig. 10: speedup and energy reduction of each ASV variant
/// relative to the baseline accelerator, for one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Network name.
    pub network: String,
    /// Speedup of ISM alone.
    pub ism_speedup: f64,
    /// Speedup of the deconvolution optimizations alone.
    pub dco_speedup: f64,
    /// Speedup of the combined system.
    pub combined_speedup: f64,
    /// Energy reduction of ISM alone (fraction).
    pub ism_energy_reduction: f64,
    /// Energy reduction of DCO alone (fraction).
    pub dco_energy_reduction: f64,
    /// Energy reduction of the combined system (fraction).
    pub combined_energy_reduction: f64,
}

/// Fig. 10: speedup and energy reduction of the ASV variants (PW-4).
pub fn figure10_speedup_energy() -> Vec<SpeedupRow> {
    let model = SystemPerformanceModel::new(SystolicAccelerator::asv_default(), nonkey_config(), 4);
    eval_suite()
        .iter()
        .map(|net| {
            let reports = model.variant_reports(net);
            let get = |v: AsvVariant| *reports.iter().find(|r| r.variant == v).unwrap();
            SpeedupRow {
                network: net.name.clone(),
                ism_speedup: get(AsvVariant::Ism).speedup,
                dco_speedup: get(AsvVariant::Dco).speedup,
                combined_speedup: get(AsvVariant::IsmDco).speedup,
                ism_energy_reduction: get(AsvVariant::Ism).energy_reduction,
                dco_energy_reduction: get(AsvVariant::Dco).energy_reduction,
                combined_energy_reduction: get(AsvVariant::IsmDco).energy_reduction,
            }
        })
        .collect()
}

/// One row of Fig. 11: the contribution of each deconvolution optimization,
/// on the deconvolution layers alone and on the whole network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeconvOptRow {
    /// Network name.
    pub network: String,
    /// Speedups over the unoptimized baseline, deconvolution layers only:
    /// (DCT, ConvR, ILAR).
    pub deconv_speedup: [f64; 3],
    /// Energy reductions (fractions), deconvolution layers only.
    pub deconv_energy_reduction: [f64; 3],
    /// Speedups over the baseline for the whole network.
    pub network_speedup: [f64; 3],
    /// Energy reductions (fractions) for the whole network.
    pub network_energy_reduction: [f64; 3],
}

/// Fig. 11: DCT vs ConvR vs ILAR, on deconvolution layers and whole networks.
pub fn figure11_deconv_opts() -> Vec<DeconvOptRow> {
    let accel = SystolicAccelerator::asv_default();
    let levels = [OptLevel::Dct, OptLevel::ConvR, OptLevel::Ilar];
    eval_suite()
        .iter()
        .map(|net| {
            let deconv_base = accel.run_deconv_layers(net, OptLevel::Baseline);
            let full_base = accel.run_network(net, OptLevel::Baseline);
            let mut row = DeconvOptRow {
                network: net.name.clone(),
                deconv_speedup: [0.0; 3],
                deconv_energy_reduction: [0.0; 3],
                network_speedup: [0.0; 3],
                network_energy_reduction: [0.0; 3],
            };
            for (i, &level) in levels.iter().enumerate() {
                let deconv = accel.run_deconv_layers(net, level);
                let full = accel.run_network(net, level);
                row.deconv_speedup[i] = deconv.speedup_over(&deconv_base);
                row.deconv_energy_reduction[i] = deconv.energy_reduction_vs(&deconv_base);
                row.network_speedup[i] = full.speedup_over(&full_base);
                row.network_energy_reduction[i] = full.energy_reduction_vs(&full_base);
            }
            row
        })
        .collect()
}

/// One cell of the Fig. 12 sensitivity heatmaps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensitivityCell {
    /// Square PE array dimension (8 ⇒ 8×8).
    pub pe_dim: usize,
    /// On-chip buffer size in bytes.
    pub buffer_bytes: u64,
    /// DCO speedup over the baseline *on this same configuration*.
    pub speedup: f64,
    /// DCO energy reduction (fraction) on this configuration.
    pub energy_reduction: f64,
}

/// Fig. 12: DCO speedup/energy sensitivity to PE-array and buffer size, on
/// FlowNetC, each cell normalized to the baseline with the same resources.
pub fn figure12_sensitivity() -> Vec<SensitivityCell> {
    let net = zoo::flownetc(crate::EVAL_HEIGHT, crate::EVAL_WIDTH);
    let pe_dims = [8usize, 16, 24, 32, 40, 48, 56];
    let buffers = [
        512 * 1024u64,
        1024 * 1024,
        1536 * 1024,
        2048 * 1024,
        2560 * 1024,
        3 * 1024 * 1024,
    ];
    let mut cells = Vec::new();
    for &buffer in &buffers {
        for &dim in &pe_dims {
            let hw = HwConfig::asv_default()
                .with_pe_array(dim, dim)
                .with_buffer_bytes(buffer);
            let accel = SystolicAccelerator::asv_default().with_hw(hw);
            let baseline = accel.run_network(&net, OptLevel::Baseline);
            let optimized = accel.run_network(&net, OptLevel::Ilar);
            cells.push(SensitivityCell {
                pe_dim: dim,
                buffer_bytes: buffer,
                speedup: optimized.speedup_over(&baseline),
                energy_reduction: optimized.energy_reduction_vs(&baseline),
            });
        }
    }
    cells
}

/// One platform row of Fig. 13 (normalized to plain Eyeriss).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformRow {
    /// Platform / variant name.
    pub name: String,
    /// Speedup relative to plain Eyeriss (higher is better).
    pub speedup_vs_eyeriss: f64,
    /// Energy normalized to plain Eyeriss (lower is better).
    pub normalized_energy: f64,
}

/// Fig. 13: ASV variants vs Eyeriss (with and without the transformation) vs
/// a mobile GPU, averaged over the four stereo networks and normalized to
/// plain Eyeriss.
pub fn figure13_platforms() -> Vec<PlatformRow> {
    let suite = eval_suite();
    let model = SystemPerformanceModel::new(SystolicAccelerator::asv_default(), nonkey_config(), 4);
    let eyeriss = EyerissModel::matched_to(HwConfig::asv_default());
    let gpu = GpuModel::jetson_tx2();

    // Average per-frame reports across networks for each platform/variant.
    let average = |reports: Vec<ExecutionReport>| -> ExecutionReport {
        let n = reports.len() as f64;
        reports
            .into_iter()
            .fold(ExecutionReport::default(), |acc, r| acc.combine(&r))
            .scaled(1.0 / n)
    };

    let eyeriss_plain = average(
        suite
            .iter()
            .map(|n| eyeriss.run_network(n, false))
            .collect(),
    );
    let eyeriss_dct = average(suite.iter().map(|n| eyeriss.run_network(n, true)).collect());
    let gpu_avg = average(suite.iter().map(|n| gpu.run_network(n)).collect());
    let asv_dco = average(
        suite
            .iter()
            .map(|n| model.per_frame_report(n, AsvVariant::Dco))
            .collect(),
    );
    let asv_ism = average(
        suite
            .iter()
            .map(|n| model.per_frame_report(n, AsvVariant::Ism))
            .collect(),
    );
    let asv_full = average(
        suite
            .iter()
            .map(|n| model.per_frame_report(n, AsvVariant::IsmDco))
            .collect(),
    );

    let row = |name: &str, report: &ExecutionReport| PlatformRow {
        name: name.to_owned(),
        speedup_vs_eyeriss: report.speedup_over(&eyeriss_plain),
        normalized_energy: report.energy_joules / eyeriss_plain.energy_joules,
    };
    vec![
        row("Eyeriss", &eyeriss_plain),
        row("Eyeriss+DCT", &eyeriss_dct),
        row("GPU", &gpu_avg),
        row("ASV-DCO", &asv_dco),
        row("ASV-ISM", &asv_ism),
        row("ASV-DCO+ISM", &asv_full),
    ]
}

/// One GAN row of Fig. 14 (normalized to Eyeriss).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GanRow {
    /// GAN name.
    pub network: String,
    /// ASV speedup over Eyeriss.
    pub asv_speedup: f64,
    /// GANNX speedup over Eyeriss.
    pub gannx_speedup: f64,
    /// ASV energy reduction factor over Eyeriss (Eyeriss energy / ASV energy).
    pub asv_energy_reduction: f64,
    /// GANNX energy reduction factor over Eyeriss.
    pub gannx_energy_reduction: f64,
}

/// Fig. 14: ASV (software deconvolution optimizations on a stock systolic
/// array) vs the dedicated GANNX accelerator, on six GAN generators,
/// normalized to Eyeriss.
pub fn figure14_gans() -> Vec<GanRow> {
    let accel = SystolicAccelerator::asv_default();
    let gannx = GannxModel::matched_to(HwConfig::asv_default());
    let eyeriss = EyerissModel::matched_to(HwConfig::asv_default());
    gan::gannx_suite()
        .iter()
        .map(|net| {
            let eye = eyeriss.run_network(net, false);
            let asv = accel.run_network(net, OptLevel::Ilar);
            let gx = gannx.run_network(net);
            GanRow {
                network: net.name.clone(),
                asv_speedup: asv.speedup_over(&eye),
                gannx_speedup: gx.speedup_over(&eye),
                asv_energy_reduction: eye.energy_joules / asv.energy_joules,
                gannx_energy_reduction: eye.energy_joules / gx.energy_joules,
            }
        })
        .collect()
}

/// Sec. 7.1: the hardware overhead accounting.
pub fn overhead_table() -> AreaPowerBudget {
    AreaPowerBudget::asv_16nm()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_distribution_covers_four_networks() {
        let rows = figure3_stage_distribution();
        assert_eq!(rows.len(), 4);
        let avg_dr: f64 =
            rows.iter().map(|r| r.disparity_refinement).sum::<f64>() / rows.len() as f64;
        // Fig. 3: deconvolution (DR) is a significant minority on average.
        assert!(avg_dr > 0.15 && avg_dr < 0.6, "average DR share {avg_dr}");
    }

    #[test]
    fn figure10_combined_beats_individual_optimizations() {
        let rows = figure10_speedup_energy();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.combined_speedup >= row.ism_speedup, "{row:?}");
            assert!(row.combined_speedup >= row.dco_speedup, "{row:?}");
            assert!(row.ism_speedup > 1.0 && row.dco_speedup > 1.0, "{row:?}");
            assert!(row.combined_energy_reduction > 0.5, "{row:?}");
        }
        let avg: f64 = rows.iter().map(|r| r.combined_speedup).sum::<f64>() / rows.len() as f64;
        assert!(avg > 3.0, "average combined speedup {avg}");
    }

    #[test]
    fn figure11_ilar_dominates_convr_on_energy() {
        let rows = figure11_deconv_opts();
        for row in &rows {
            // Deconv-layer speedups: DCT alone already gives a large speedup.
            assert!(row.deconv_speedup[0] > 1.5, "{row:?}");
            // ConvR and ILAR never hurt relative to DCT.
            assert!(
                row.deconv_speedup[1] >= row.deconv_speedup[0] * 0.99,
                "{row:?}"
            );
            assert!(
                row.deconv_speedup[2] >= row.deconv_speedup[1] * 0.99,
                "{row:?}"
            );
            // ILAR gives at least as much energy reduction as ConvR.
            assert!(
                row.network_energy_reduction[2] >= row.network_energy_reduction[1] - 1e-9,
                "{row:?}"
            );
        }
    }

    #[test]
    fn figure12_every_configuration_benefits() {
        let cells = figure12_sensitivity();
        assert_eq!(cells.len(), 42);
        for cell in &cells {
            assert!(cell.speedup >= 1.0, "{cell:?}");
            assert!(cell.energy_reduction > 0.0, "{cell:?}");
        }
    }

    #[test]
    fn figure13_asv_beats_eyeriss_and_gpu() {
        let rows = figure13_platforms();
        let by = |name: &str| rows.iter().find(|r| r.name == name).unwrap();
        assert!((by("Eyeriss").speedup_vs_eyeriss - 1.0).abs() < 1e-9);
        assert!(by("Eyeriss+DCT").speedup_vs_eyeriss > 1.0);
        assert!(by("GPU").speedup_vs_eyeriss < 1.0);
        assert!(by("ASV-DCO+ISM").speedup_vs_eyeriss > by("Eyeriss+DCT").speedup_vs_eyeriss);
        assert!(by("ASV-DCO+ISM").normalized_energy < 1.0);
        assert!(by("GPU").normalized_energy > 1.0);
    }

    #[test]
    fn figure14_asv_outperforms_gannx_on_average() {
        let rows = figure14_gans();
        assert_eq!(rows.len(), 6);
        let avg_asv: f64 = rows.iter().map(|r| r.asv_speedup).sum::<f64>() / rows.len() as f64;
        let avg_gx: f64 = rows.iter().map(|r| r.gannx_speedup).sum::<f64>() / rows.len() as f64;
        assert!(avg_asv > avg_gx, "ASV {avg_asv} vs GANNX {avg_gx}");
        assert!(avg_gx > 1.0);
    }

    #[test]
    fn overhead_is_below_half_percent() {
        let b = overhead_table();
        assert!(b.total_area_overhead() < 0.005);
    }
}
