//! Benchmark harness: regenerates every table and figure of the ASV paper's
//! evaluation (Sec. 7) from the models and algorithms in this workspace.
//!
//! Each experiment is a plain function returning serializable rows, so the
//! same code backs three consumers:
//!
//! * the `fig*`/`tab*` binaries in `src/bin/`, which print the rows a figure
//!   plots (run e.g. `cargo run --release -p asv-bench --bin fig10_speedup_energy`);
//! * the Criterion benches in `benches/`, which time the underlying kernels;
//! * the workspace integration tests, which smoke-check the experiment
//!   outputs against the paper's qualitative claims.
//!
//! The mapping from paper figure to experiment function is recorded in
//! DESIGN.md and the measured-vs-paper numbers in EXPERIMENTS.md.

pub mod algorithms;
pub mod cluster;
pub mod figs;
pub mod gate;
pub mod hardware;
pub mod perf;
pub mod qos;
pub mod streaming;
pub mod table;

/// Default evaluation resolution for the analytical hardware experiments
/// (height, width).  The paper evaluates KITTI-sized inputs; this scaled
/// resolution keeps every experiment fast while preserving all relative
/// results.
pub const EVAL_HEIGHT: usize = 192;
/// Default evaluation width.
pub const EVAL_WIDTH: usize = 384;
/// Default maximum disparity for the 3-D cost-volume networks.
pub const EVAL_MAX_DISPARITY: usize = 96;
