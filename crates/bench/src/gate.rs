//! CI perf-regression gate over `tab_perf` measurements.
//!
//! FPS numbers are machine-dependent, so the gate normalises per machine:
//! the first run on a machine (no baseline file) records the measured
//! throughput and passes; later runs on the same machine compare against
//! that recorded baseline and fail when any tracked path regresses more
//! than the tolerated fraction.  In CI the baseline lives under the cached
//! `target/` directory, which gives each runner image its own baseline.
//!
//! The baseline is a plain `key=value` text file (the vendored serde shim
//! has no JSON parser), keyed by workload so differently-shaped runs never
//! compare against each other.

use crate::perf::PerfReport;
use std::path::Path;

/// Fraction of fps regression tolerated before the gate fails (10%).
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// Outcome of one gate evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOutcome {
    /// No (compatible) baseline existed; one was written.
    BaselineWritten,
    /// Comparison passed; entries are `(metric, baseline_fps, measured_fps)`.
    Passed(Vec<(String, f64, f64)>),
    /// At least one path regressed past tolerance; entries are
    /// human-readable failure descriptions.
    Failed(Vec<String>),
}

/// The per-machine baseline file name for a workload, scoped by feature
/// configuration and frame size so unlike runs never collide.
pub fn default_gate_file(report: &PerfReport) -> String {
    let mode = if cfg!(feature = "parallel") {
        "parallel"
    } else {
        "serial"
    };
    format!(
        "target/perf-baseline-{mode}-{}x{}.txt",
        report.config.width, report.config.height
    )
}

/// The fps metrics the gate tracks.
fn tracked(report: &PerfReport) -> Vec<(String, f64)> {
    vec![
        ("baseline_fps".to_owned(), report.baseline.fps),
        ("workspace_fps".to_owned(), report.workspace.fps),
        ("census_fps".to_owned(), report.census.fps),
    ]
}

fn render_baseline(entries: &[(String, f64)]) -> String {
    let mut out = String::from("# tab_perf per-machine fps baseline\n");
    for (key, value) in entries {
        out.push_str(&format!("{key}={value:.3}\n"));
    }
    out
}

fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let (key, value) = line.split_once('=')?;
            Some((key.trim().to_owned(), value.trim().parse().ok()?))
        })
        .collect()
}

/// Evaluates the gate: writes the baseline on first run (or when the
/// recorded schema lacks a tracked metric), otherwise compares and fails on
/// a more than `tolerance` fps drop in any tracked path.
///
/// # Errors
///
/// Propagates I/O errors reading or writing the baseline file.
pub fn run_gate(report: &PerfReport, path: &Path, tolerance: f64) -> std::io::Result<GateOutcome> {
    let measured = tracked(report);
    let recorded = match std::fs::read_to_string(path) {
        Ok(text) => parse_baseline(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let lookup =
        |key: &str| -> Option<f64> { recorded.iter().find(|(k, _)| k == key).map(|&(_, v)| v) };
    if measured.iter().any(|(key, _)| lookup(key).is_none()) {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, render_baseline(&measured))?;
        return Ok(GateOutcome::BaselineWritten);
    }
    let mut passed = Vec::new();
    let mut failures = Vec::new();
    for (key, fps) in measured {
        let base = lookup(&key).expect("checked above");
        let floor = base * (1.0 - tolerance);
        if fps < floor {
            failures.push(format!(
                "{key}: {fps:.3} fps is more than {:.0}% below the recorded {base:.3} fps",
                tolerance * 100.0
            ));
        } else {
            passed.push((key, base, fps));
        }
    }
    if failures.is_empty() {
        Ok(GateOutcome::Passed(passed))
    } else {
        Ok(GateOutcome::Failed(failures))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{PathReport, PerfConfig};

    fn fake_report(baseline: f64, workspace: f64, census: f64) -> PerfReport {
        let path = |fps: f64| PathReport {
            fps,
            p50_us: 10,
            p95_us: 20,
            key_mean_us: 30,
            nonkey_mean_us: 5,
            key_frames: 2,
            nonkey_frames: 6,
            allocs_per_frame: 0.0,
            stages: Vec::new(),
        };
        PerfReport {
            config: PerfConfig::quick(),
            simd: "scalar".to_owned(),
            baseline: path(baseline),
            workspace: path(workspace),
            census: path(census),
            speedup: workspace / baseline,
            census_key_speedup: 1.0,
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("asv-gate-{tag}-{}.txt", std::process::id()))
    }

    #[test]
    fn first_run_writes_baseline_then_passes_and_fails() {
        let path = temp_path("cycle");
        let _ = std::fs::remove_file(&path);
        let report = fake_report(10.0, 40.0, 50.0);
        assert_eq!(
            run_gate(&report, &path, DEFAULT_TOLERANCE).unwrap(),
            GateOutcome::BaselineWritten
        );
        // Same numbers: pass.
        match run_gate(&report, &path, DEFAULT_TOLERANCE).unwrap() {
            GateOutcome::Passed(entries) => assert_eq!(entries.len(), 3),
            other => panic!("expected pass, got {other:?}"),
        }
        // A small improvement also passes.
        let faster = fake_report(11.0, 44.0, 55.0);
        assert!(matches!(
            run_gate(&faster, &path, DEFAULT_TOLERANCE).unwrap(),
            GateOutcome::Passed(_)
        ));
        // A >10% drop in one path fails and names it.
        let slower = fake_report(10.0, 30.0, 50.0);
        match run_gate(&slower, &path, DEFAULT_TOLERANCE).unwrap() {
            GateOutcome::Failed(failures) => {
                assert_eq!(failures.len(), 1);
                assert!(failures[0].contains("workspace_fps"), "{failures:?}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn schema_change_rewrites_the_baseline() {
        let path = temp_path("schema");
        std::fs::write(&path, "# old\nbaseline_fps=10.0\n").unwrap();
        let report = fake_report(10.0, 40.0, 50.0);
        assert_eq!(
            run_gate(&report, &path, DEFAULT_TOLERANCE).unwrap(),
            GateOutcome::BaselineWritten
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("census_fps="));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn baseline_round_trips() {
        let entries = vec![("a".to_owned(), 1.25), ("b".to_owned(), 33.333)];
        let parsed = parse_baseline(&render_baseline(&entries));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "a");
        assert!((parsed[1].1 - 33.333).abs() < 1e-6);
    }
}
