//! Algorithm-level experiments: the accuracy/performance frontier (Fig. 1),
//! the depth-sensitivity analysis (Fig. 4) and the ISM accuracy comparison
//! (Fig. 9).  These experiments run the *functional* implementations on the
//! synthetic dataset substitute.

use asv::ism::{IsmConfig, IsmPipeline};
use asv::perf::{AsvVariant, SystemPerformanceModel};
use asv_accel::ism::{nonkey_frame_report, NonKeyFrameConfig};
use asv_accel::systolic::SystolicAccelerator;
use asv_dataflow::OptLevel;
use asv_dnn::{zoo, CostMetric, SurrogateParams, SurrogateStereoDnn};
use asv_scene::{SceneConfig, StereoSequence};
use asv_stereo::block_matching::{block_match, block_match_op_count, BlockMatchParams};
use asv_stereo::sgm::{semi_global_match, sgm_op_count, SgmParams};
use asv_stereo::triangulation::{depth_sensitivity_sweep, CameraRig, DepthSensitivityPoint};
use serde::{Deserialize, Serialize};

/// One point of the Fig. 1 accuracy/performance frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// System name (classic algorithm, DNN on a platform, or ASV).
    pub name: String,
    /// Three-pixel error rate (percent) measured on the synthetic benchmark.
    pub error_rate_pct: f64,
    /// Frames per second at qHD on the modelled platform.
    pub fps: f64,
}

/// Configuration of the functional accuracy experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracySetup {
    /// Frame width of the synthetic sequences.
    pub width: usize,
    /// Frame height of the synthetic sequences.
    pub height: usize,
    /// Frames per sequence.
    pub frames: usize,
    /// Number of sequences (different seeds) per dataset profile.
    pub sequences: usize,
    /// Disparity search range used by every matcher.
    pub max_disparity: usize,
}

impl AccuracySetup {
    /// A setup small enough to run in seconds yet large enough to rank the
    /// algorithms the way the paper does.
    pub fn quick() -> Self {
        Self {
            width: 96,
            height: 64,
            frames: 4,
            sequences: 2,
            max_disparity: 32,
        }
    }
}

fn sequences(profile_kitti: bool, setup: &AccuracySetup) -> Vec<StereoSequence> {
    (0..setup.sequences)
        .map(|i| {
            let base = if profile_kitti {
                SceneConfig::kitti_like(setup.width, setup.height)
            } else {
                SceneConfig::scene_flow_like(setup.width, setup.height)
            };
            StereoSequence::generate(
                &base.with_seed(100 + i as u64).with_objects(4),
                setup.frames,
            )
        })
        .collect()
}

/// Average three-pixel error (fraction) of a per-frame disparity function
/// over a set of sequences.
fn average_error(
    sequences: &[StereoSequence],
    mut estimate: impl FnMut(&asv_scene::StereoFrame) -> asv_stereo::DisparityMap,
) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for seq in sequences {
        for frame in seq.frames() {
            let map = estimate(frame);
            total += map.three_pixel_error(&frame.ground_truth).unwrap_or(1.0);
            count += 1;
        }
    }
    total / count.max(1) as f64
}

/// Average three-pixel error (fraction) of an ISM pipeline over sequences.
fn ism_error(sequences: &[StereoSequence], pipeline: &IsmPipeline) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for seq in sequences {
        let result = pipeline.process_sequence(seq).expect("pipeline runs");
        for (frame, truth) in result.frames.iter().zip(seq.frames()) {
            total += frame
                .disparity
                .three_pixel_error(&truth.ground_truth)
                .unwrap_or(1.0);
            count += 1;
        }
    }
    total / count.max(1) as f64
}

fn surrogate(setup: &AccuracySetup) -> SurrogateStereoDnn {
    SurrogateStereoDnn::new(
        zoo::dispnet(setup.height, setup.width),
        SurrogateParams {
            max_disparity: setup.max_disparity,
            occlusion_handling: true,
            ..Default::default()
        },
    )
}

fn ism_pipeline(setup: &AccuracySetup, window: usize) -> IsmPipeline {
    ism_pipeline_with_metric(setup, window, CostMetric::Sad)
}

fn ism_pipeline_with_metric(
    setup: &AccuracySetup,
    window: usize,
    metric: CostMetric,
) -> IsmPipeline {
    let params = SurrogateParams {
        max_disparity: setup.max_disparity,
        occlusion_handling: true,
        metric,
    };
    let config = IsmConfig {
        propagation_window: window,
        refine: BlockMatchParams {
            max_disparity: setup.max_disparity,
            refine_radius: 3,
            ..Default::default()
        },
        surrogate: params,
        ..Default::default()
    };
    IsmPipeline::new(
        config,
        SurrogateStereoDnn::new(zoo::dispnet(setup.height, setup.width), params),
    )
}

/// Fig. 1: the accuracy/performance frontier.
///
/// Classic algorithms (block matching, SGM and variants) are measured
/// functionally for accuracy and analytically for qHD frame rate; the stereo
/// DNN points take their accuracy from the surrogate estimator and their
/// frame rate from the accelerator/GPU models; the ASV point combines the ISM
/// accuracy with the full-system performance model.
pub fn figure1_frontier(setup: &AccuracySetup) -> Vec<FrontierPoint> {
    let clean = sequences(false, setup);
    let accel = SystolicAccelerator::asv_default();
    let gpu = asv_accel::baselines::GpuModel::jetson_tx2();
    let mut points = Vec::new();

    // Classic algorithms: block matching and three SGM variants of increasing
    // strength (standing in for GCSF / SGBN / HH / ELAS).
    let bm_params = BlockMatchParams {
        max_disparity: setup.max_disparity,
        subpixel: false,
        ..Default::default()
    };
    let bm_err = average_error(&clean, |f| {
        block_match(&f.left, &f.right, &bm_params).unwrap()
    });
    let bm_ops = block_match_op_count(960, 540, &bm_params);
    points.push(FrontierPoint {
        name: "BM (classic)".into(),
        error_rate_pct: bm_err * 100.0,
        fps: classic_fps(&accel, bm_ops),
    });

    let sgm_variants: [(&str, SgmParams); 3] = [
        (
            "SGM-fast (classic)",
            SgmParams {
                max_disparity: setup.max_disparity,
                p1: 1.0,
                p2: 8.0,
                subpixel: false,
                ..Default::default()
            },
        ),
        (
            "SGBN (classic)",
            SgmParams {
                max_disparity: setup.max_disparity,
                ..Default::default()
            },
        ),
        (
            "SGM-LR (classic)",
            SgmParams {
                max_disparity: setup.max_disparity,
                left_right_check: true,
                ..Default::default()
            },
        ),
    ];
    for (name, params) in sgm_variants {
        let err = average_error(&clean, |f| {
            let mut m = semi_global_match(&f.left, &f.right, &params).unwrap();
            m.fill_invalid_horizontally();
            m
        });
        let ops = sgm_op_count(960, 540, &params);
        points.push(FrontierPoint {
            name: name.into(),
            error_rate_pct: err * 100.0,
            fps: classic_fps(&accel, ops),
        });
    }

    // DNN points: surrogate accuracy; frame rates on the DNN accelerator and
    // on the mobile GPU.
    let dnn = surrogate(setup);
    let dnn_err = average_error(&clean, |f| dnn.infer(&f.left, &f.right).unwrap());
    for net in zoo::suite(
        crate::EVAL_HEIGHT,
        crate::EVAL_WIDTH,
        crate::EVAL_MAX_DISPARITY,
    ) {
        let acc_report = accel.run_network(&net, OptLevel::Baseline);
        points.push(FrontierPoint {
            name: format!("{}-Acc", net.name),
            error_rate_pct: dnn_err * 100.0,
            fps: acc_report.fps(),
        });
        let gpu_report = gpu.run_network(&net);
        points.push(FrontierPoint {
            name: format!("{}-GPU", net.name),
            error_rate_pct: dnn_err * 100.0,
            fps: gpu_report.fps(),
        });
    }

    // The ASV point: ISM accuracy (PW-4) with the full-system frame rate.
    let ism_err_rate = ism_error(&clean, &ism_pipeline(setup, 4));
    let perf = SystemPerformanceModel::new(accel, NonKeyFrameConfig::qhd(), 4);
    let asv_fps = perf
        .per_frame_report(
            &zoo::dispnet(crate::EVAL_HEIGHT, crate::EVAL_WIDTH),
            AsvVariant::IsmDco,
        )
        .fps();
    points.push(FrontierPoint {
        name: "ASV".into(),
        error_rate_pct: ism_err_rate * 100.0,
        fps: asv_fps,
    });
    points
}

fn classic_fps(accel: &SystolicAccelerator, qhd_ops: u64) -> f64 {
    accel.run_op_counts(qhd_ops, 0, 0).fps()
}

/// Fig. 4: depth error vs disparity error for the Bumblebee2 rig.
pub fn figure4_depth_sensitivity() -> Vec<DepthSensitivityPoint> {
    depth_sensitivity_sweep(&CameraRig::bumblebee2(), &[10.0, 15.0, 30.0], 0.2, 11)
}

/// One bar group of Fig. 9: error rates of per-frame DNN processing vs ISM at
/// PW-2 and PW-4 on one dataset profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyRow {
    /// Dataset profile name ("SceneFlow-like" or "KITTI-like").
    pub dataset: String,
    /// Error rate (percent) of running the estimator on every frame.
    pub dnn_error_pct: f64,
    /// Error rate (percent) of ISM with a propagation window of 2.
    pub pw2_error_pct: f64,
    /// Error rate (percent) of ISM with a propagation window of 4.
    pub pw4_error_pct: f64,
    /// Error rate (percent) of per-frame processing with the census/Hamming
    /// key-frame metric (the integer SIMD fast path) instead of SAD.
    pub census_dnn_error_pct: f64,
    /// Error rate (percent) of ISM at PW-4 with the census key-frame metric.
    pub census_pw4_error_pct: f64,
}

/// Fig. 9: ISM accuracy vs per-frame DNN accuracy on both dataset profiles.
pub fn figure9_accuracy(setup: &AccuracySetup) -> Vec<AccuracyRow> {
    let mut rows = Vec::new();
    for (name, kitti) in [("SceneFlow-like", false), ("KITTI-like", true)] {
        let seqs = sequences(kitti, setup);
        let dnn = ism_error(&seqs, &ism_pipeline(setup, 1));
        let pw2 = ism_error(&seqs, &ism_pipeline(setup, 2));
        let pw4 = ism_error(&seqs, &ism_pipeline(setup, 4));
        let census_dnn = ism_error(
            &seqs,
            &ism_pipeline_with_metric(setup, 1, CostMetric::Census),
        );
        let census_pw4 = ism_error(
            &seqs,
            &ism_pipeline_with_metric(setup, 4, CostMetric::Census),
        );
        rows.push(AccuracyRow {
            dataset: name.into(),
            dnn_error_pct: dnn * 100.0,
            pw2_error_pct: pw2 * 100.0,
            pw4_error_pct: pw4 * 100.0,
            census_dnn_error_pct: census_dnn * 100.0,
            census_pw4_error_pct: census_pw4 * 100.0,
        });
    }
    rows
}

/// Sec. 3.3 cost table: non-key-frame operation count vs DNN inference cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonKeyCostRow {
    /// Workload name.
    pub name: String,
    /// Operations per qHD frame.
    pub ops: u64,
    /// Ratio to the non-key-frame cost (1.0 for the non-key frame itself).
    pub ratio_to_nonkey: f64,
}

/// Sec. 3.3: non-key frame compute vs stereo DNN compute at qHD.
pub fn nonkey_cost_table() -> Vec<NonKeyCostRow> {
    let nonkey = asv_accel::ism::nonkey_frame_ops(&NonKeyFrameConfig::qhd());
    let base = nonkey.total_ops();
    let mut rows = vec![NonKeyCostRow {
        name: "ISM non-key frame".into(),
        ops: base,
        ratio_to_nonkey: 1.0,
    }];
    for net in zoo::suite(540, 960, 192) {
        let ops = net.total_naive_macs();
        rows.push(NonKeyCostRow {
            name: format!("{} inference", net.name),
            ops,
            ratio_to_nonkey: ops as f64 / base as f64,
        });
    }
    rows
}

/// Real-time sanity point used by Fig. 1's 30 FPS line: per-frame latency of
/// the full ASV system on qHD input.
pub fn asv_qhd_fps() -> f64 {
    let perf = SystemPerformanceModel::asv_default();
    let report = perf.per_frame_report(
        &zoo::dispnet(crate::EVAL_HEIGHT, crate::EVAL_WIDTH),
        AsvVariant::IsmDco,
    );
    // The non-key-frame part is qHD already; the key-frame inference cost is
    // evaluated at the reduced analysis resolution, making this an optimistic
    // but consistent operating point (documented in EXPERIMENTS.md).
    let _ = nonkey_frame_report(perf.accelerator(), &NonKeyFrameConfig::qhd());
    report.fps()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_setup() -> AccuracySetup {
        AccuracySetup {
            width: 64,
            height: 48,
            frames: 2,
            sequences: 1,
            max_disparity: 32,
        }
    }

    #[test]
    fn frontier_has_classic_dnn_and_asv_points() {
        let points = figure1_frontier(&tiny_setup());
        assert!(points.len() >= 10);
        let names: Vec<&str> = points.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"ASV"));
        assert!(names.iter().any(|n| n.ends_with("-GPU")));
        assert!(names.iter().any(|n| n.ends_with("-Acc")));
        // The ASV point is both accurate and fast relative to the classic BM
        // point: lower error than BM, higher FPS than the DNN-on-GPU points.
        let asv = points.iter().find(|p| p.name == "ASV").unwrap();
        let bm = points.iter().find(|p| p.name.starts_with("BM")).unwrap();
        assert!(asv.error_rate_pct <= bm.error_rate_pct + 1e-9);
        let slowest_gpu = points
            .iter()
            .filter(|p| p.name.ends_with("-GPU"))
            .map(|p| p.fps)
            .fold(f64::INFINITY, f64::min);
        assert!(asv.fps > slowest_gpu);
    }

    #[test]
    fn depth_sensitivity_matches_paper_shape() {
        let sweep = figure4_depth_sensitivity();
        assert_eq!(sweep.len(), 11);
        let last = sweep.last().unwrap();
        // At 0.2 px error the 30 m depth error is metres-scale.
        assert!(last.depth_errors_m[2] > 2.0);
    }

    #[test]
    fn accuracy_rows_show_small_ism_loss() {
        let rows = figure9_accuracy(&tiny_setup());
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.pw2_error_pct <= row.dnn_error_pct + 5.0, "{row:?}");
            assert!(row.pw4_error_pct <= row.dnn_error_pct + 6.0, "{row:?}");
            // The census metric is a fast path, not an accuracy upgrade: it
            // should stay in the same quality class as SAD on this corpus.
            assert!(
                row.census_dnn_error_pct <= row.dnn_error_pct + 10.0,
                "{row:?}"
            );
            assert!(
                row.census_pw4_error_pct <= row.pw4_error_pct + 10.0,
                "{row:?}"
            );
        }
    }

    #[test]
    fn nonkey_table_shows_orders_of_magnitude_gap() {
        let rows = nonkey_cost_table();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].ratio_to_nonkey, 1.0);
        for row in &rows[1..] {
            assert!(row.ratio_to_nonkey > 20.0, "{row:?}");
        }
    }
}
