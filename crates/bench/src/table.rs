//! Minimal fixed-width text table printer used by the figure binaries.

/// A simple text table: a header row plus data rows, rendered with columns
/// padded to their widest cell.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must have the same arity as the header).
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header length.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with three significant-looking decimals.
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a float as a percentage with one decimal.
pub fn fmt_pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_mismatched_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt_pct(0.856), "85.6%");
    }
}
