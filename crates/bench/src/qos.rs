//! Adaptive-QoS overload experiment: the seeded virtual-time overload
//! scenario ([`asv_runtime::run_overload_sim`]) with the controller on vs
//! off, side by side.
//!
//! The workload runs every session at roughly 2.5x its service capacity for
//! an overload phase, then relaxes.  With QoS enabled each session walks the
//! degradation ladder (SAD→Census, wider propagation window, relaxed
//! key-frame motion threshold) until its p95 step latency fits the SLO, and
//! walks back to full quality once the load drops.  With QoS disabled the
//! queues grow without bound and the tail collapses.  The sim is
//! virtual-time and seeded, so every number below is bit-stable.

use asv_runtime::{run_overload_sim, OverloadConfig, OverloadReport, QosAction};

/// Runs the CI overload scenario both ways.
pub fn qos_overload_pair() -> (OverloadConfig, OverloadReport, OverloadReport) {
    let config = OverloadConfig::ci();
    let with_qos = run_overload_sim(&config, true);
    let without = run_overload_sim(&config, false);
    (config, with_qos, without)
}

/// The printable QoS record (the `tab_qos` binary): per-session p95s and
/// degradation depth under overload, QoS on vs off.
pub fn qos_report() -> String {
    let (config, with_qos, without) = qos_overload_pair();
    let mut out = String::new();
    out.push_str(&format!(
        "adaptive QoS under overload: {} sessions / {} workers, SLO p95 <= {}us\n\
         overload {} frames @ {}us arrivals, then {} frames @ {}us\n",
        config.sessions,
        config.workers,
        config.slo.target_p95_step_us,
        config.overload_frames,
        config.overload_interval_us,
        config.relaxed_frames,
        config.relaxed_interval_us,
    ));
    for (label, report) in [("qos on", &with_qos), ("qos off", &without)] {
        out.push_str(&format!(
            "\n  [{label}]  session     overload-p95  relaxed-p95  max-level  final  violations  actuations\n"
        ));
        for s in &report.sessions {
            out.push_str(&format!(
                "            {:<11} {:>10}us  {:>9}us  {:>9}  {:>5}  {:>10}  {:>10}\n",
                s.key,
                s.overload_p95_us,
                s.relaxed_p95_us,
                s.max_level,
                s.final_level,
                s.slo_violations,
                s.actuations
            ));
        }
    }
    out.push_str("\n  actuation totals (qos on): ");
    for action in QosAction::ALL {
        out.push_str(&format!(
            "{}={} ",
            action.name(),
            with_qos.total_actuations[action.index()]
        ));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_pair_shows_the_controller_earning_its_keep() {
        let (config, with_qos, without) = qos_overload_pair();
        for s in &with_qos.sessions {
            assert!(s.overload_p95_us <= config.slo.target_p95_step_us);
            assert_eq!(s.final_level, 0);
        }
        for s in &without.sessions {
            assert!(s.overload_p95_us > config.slo.target_p95_step_us);
        }
        let report = qos_report();
        assert!(report.contains("qos on"));
        assert!(report.contains("qos off"));
        assert!(report.contains("census_metric="));
    }
}
