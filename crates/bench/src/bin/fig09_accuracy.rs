//! Fig. 9: error-rate comparison between per-frame DNN processing and the
//! ISM algorithm at PW-2 / PW-4, on both dataset profiles.
use asv_bench::algorithms::AccuracySetup;

fn main() {
    println!(
        "{}",
        asv_bench::figs::fig09_accuracy_report(&AccuracySetup::quick())
    );
}
