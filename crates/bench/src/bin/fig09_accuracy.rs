//! Fig. 9: error-rate comparison between per-frame DNN processing and the
//! ISM algorithm at PW-2 / PW-4, on both dataset profiles.
use asv_bench::algorithms::{figure9_accuracy, AccuracySetup};
use asv_bench::table::{fmt3, TextTable};

fn main() {
    let rows = figure9_accuracy(&AccuracySetup::quick());
    let mut table = TextTable::new(&["dataset", "DNN err (%)", "PW-2 err (%)", "PW-4 err (%)", "PW-4 loss (pp)"]);
    for r in &rows {
        table.row(vec![
            r.dataset.clone(),
            fmt3(r.dnn_error_pct),
            fmt3(r.pw2_error_pct),
            fmt3(r.pw4_error_pct),
            fmt3(r.pw4_error_pct - r.dnn_error_pct),
        ]);
    }
    println!("Figure 9: ISM accuracy vs per-frame DNN accuracy\n");
    println!("{}", table.render());
}
