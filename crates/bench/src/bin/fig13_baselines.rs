//! Fig. 13: ASV vs Eyeriss (with/without the transformation) vs mobile GPU,
//! normalized to plain Eyeriss.
fn main() {
    println!("{}", asv_bench::figs::fig13_baselines_report());
}
