//! Fig. 13: ASV vs Eyeriss (with/without the transformation) vs mobile GPU,
//! normalized to plain Eyeriss.
use asv_bench::hardware::figure13_platforms;
use asv_bench::table::{fmt3, TextTable};

fn main() {
    let mut table = TextTable::new(&["platform", "speedup vs Eyeriss", "normalized energy"]);
    for r in figure13_platforms() {
        table.row(vec![r.name.clone(), fmt3(r.speedup_vs_eyeriss), fmt3(r.normalized_energy)]);
    }
    println!("Figure 13: platform comparison (normalized to Eyeriss)\n");
    println!("{}", table.render());
}
