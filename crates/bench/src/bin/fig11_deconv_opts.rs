//! Fig. 11: contribution of the deconvolution transformation (DCT), the
//! conventional reuse optimizer (ConvR) and inter-layer activation reuse
//! (ILAR), on deconvolution layers alone (a) and whole networks (b).
fn main() {
    print!("{}", asv_bench::figs::fig11_deconv_opts_report());
}
