//! Fig. 11: contribution of the deconvolution transformation (DCT), the
//! conventional reuse optimizer (ConvR) and inter-layer activation reuse
//! (ILAR), on deconvolution layers alone (a) and whole networks (b).
use asv_bench::hardware::figure11_deconv_opts;
use asv_bench::table::{fmt3, fmt_pct, TextTable};

fn main() {
    let rows = figure11_deconv_opts();
    for (title, pick_speed, pick_energy) in [
        ("(a) deconvolution layers only", 0usize, 0usize),
        ("(b) whole network", 1, 1),
    ] {
        let mut table = TextTable::new(&[
            "network", "DCT x", "ConvR x", "ILAR x", "DCT energy", "ConvR energy", "ILAR energy",
        ]);
        for r in &rows {
            let (s, e) = if pick_speed == 0 {
                (&r.deconv_speedup, &r.deconv_energy_reduction)
            } else {
                (&r.network_speedup, &r.network_energy_reduction)
            };
            let _ = pick_energy;
            table.row(vec![
                r.network.clone(),
                fmt3(s[0]), fmt3(s[1]), fmt3(s[2]),
                fmt_pct(e[0]), fmt_pct(e[1]), fmt_pct(e[2]),
            ]);
        }
        println!("Figure 11{title}\n{}", table.render());
    }
}
