//! Fig. 1: accuracy/performance frontier of classic algorithms, stereo DNNs
//! (accelerator and GPU) and ASV.
use asv_bench::algorithms::AccuracySetup;

fn main() {
    println!(
        "{}",
        asv_bench::figs::fig01_frontier_report(&AccuracySetup::quick())
    );
}
