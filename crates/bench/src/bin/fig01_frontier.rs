//! Fig. 1: accuracy/performance frontier of classic algorithms, stereo DNNs
//! (accelerator and GPU) and ASV.
use asv_bench::algorithms::{figure1_frontier, AccuracySetup};
use asv_bench::table::{fmt3, TextTable};

fn main() {
    let points = figure1_frontier(&AccuracySetup::quick());
    let mut table = TextTable::new(&["system", "error rate (%)", "FPS (qHD)"]);
    for p in &points {
        table.row(vec![p.name.clone(), fmt3(p.error_rate_pct), fmt3(p.fps)]);
    }
    println!("Figure 1: accuracy/performance frontier (30 FPS = real time)\n");
    println!("{}", table.render());
}
