//! Sec. 7.1: hardware area/power overhead of the ASV extensions.
use asv_bench::hardware::overhead_table;
use asv_bench::table::{fmt_pct, TextTable};

fn main() {
    let b = overhead_table();
    let mut table = TextTable::new(&["quantity", "value"]);
    table.row(vec!["per-PE area overhead (SAD mode)".into(), fmt_pct(b.pe_area_overhead())]);
    table.row(vec!["per-PE power overhead (SAD mode)".into(), fmt_pct(b.pe_power_overhead())]);
    table.row(vec!["total area overhead".into(), fmt_pct(b.total_area_overhead())]);
    table.row(vec!["total power overhead".into(), fmt_pct(b.total_power_overhead())]);
    println!("Section 7.1: ASV hardware overhead\n");
    println!("{}", table.render());
}
