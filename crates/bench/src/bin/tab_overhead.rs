//! Sec. 7.1: hardware area/power overhead of the ASV extensions.
fn main() {
    println!("{}", asv_bench::figs::tab_overhead_report());
}
