//! Prints the cluster scale-out experiment: sharded-runtime throughput vs
//! the single-scheduler baseline, swept over shard counts.
//!
//! Run with: `cargo run --release -p asv-bench --bin tab_cluster`

fn main() {
    print!("{}", asv_bench::cluster::cluster_report());
}
