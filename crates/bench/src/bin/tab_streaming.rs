//! Serving scalability: aggregate throughput of the `asv-runtime` scheduler
//! on 8 concurrent camera streams vs the serial batch baseline.
fn main() {
    println!("{}", asv_bench::streaming::streaming_report());
}
