//! Fig. 12: sensitivity of the deconvolution-optimization gains to PE-array
//! size and on-chip buffer capacity (FlowNetC), each cell normalized to the
//! baseline with the same resources.
use asv_bench::hardware::figure12_sensitivity;
use asv_bench::table::{fmt3, fmt_pct, TextTable};

fn main() {
    let cells = figure12_sensitivity();
    let mut speed = TextTable::new(&["buffer \\ PE", "8x8", "16x16", "24x24", "32x32", "40x40", "48x48", "56x56"]);
    let mut energy = speed.clone();
    let buffers: Vec<u64> = {
        let mut b: Vec<u64> = cells.iter().map(|c| c.buffer_bytes).collect();
        b.dedup();
        b
    };
    for &buffer in &buffers {
        let row: Vec<_> = cells.iter().filter(|c| c.buffer_bytes == buffer).collect();
        let label = format!("{:.1} MB", buffer as f64 / (1024.0 * 1024.0));
        speed.row(std::iter::once(label.clone()).chain(row.iter().map(|c| fmt3(c.speedup))).collect());
        energy.row(std::iter::once(label).chain(row.iter().map(|c| fmt_pct(c.energy_reduction))).collect());
    }
    println!("Figure 12a: DCO speedup vs PE / buffer size (FlowNetC)\n{}", speed.render());
    println!("Figure 12b: DCO energy reduction vs PE / buffer size (FlowNetC)\n{}", energy.render());
}
