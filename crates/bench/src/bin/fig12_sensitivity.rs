//! Fig. 12: sensitivity of the deconvolution-optimization gains to PE-array
//! size and on-chip buffer capacity (FlowNetC), each cell normalized to the
//! baseline with the same resources.
fn main() {
    print!("{}", asv_bench::figs::fig12_sensitivity_report());
}
