//! Sec. 3.3: compute cost of an ISM non-key frame vs stereo DNN inference.
fn main() {
    println!("{}", asv_bench::figs::tab_nonkey_cost_report());
}
