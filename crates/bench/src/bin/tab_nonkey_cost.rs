//! Sec. 3.3: compute cost of an ISM non-key frame vs stereo DNN inference.
use asv_bench::algorithms::nonkey_cost_table;
use asv_bench::table::{fmt3, TextTable};

fn main() {
    let mut table = TextTable::new(&["workload (qHD)", "operations", "x non-key frame"]);
    for r in nonkey_cost_table() {
        table.row(vec![r.name.clone(), format!("{}", r.ops), fmt3(r.ratio_to_nonkey)]);
    }
    println!("Section 3.3: non-key frame vs DNN inference compute cost\n");
    println!("{}", table.render());
}
