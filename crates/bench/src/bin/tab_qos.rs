//! Prints the adaptive-QoS overload experiment: the seeded virtual-time
//! overload scenario with the controller enabled vs disabled.
//!
//! Run with: `cargo run --release -p asv-bench --bin tab_qos`

fn main() {
    print!("{}", asv_bench::qos::qos_report());
}
