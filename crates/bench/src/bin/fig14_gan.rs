//! Fig. 14: GAN generators — ASV's software deconvolution optimizations vs
//! the dedicated GANNX accelerator, normalized to Eyeriss.
use asv_bench::hardware::figure14_gans;
use asv_bench::table::{fmt3, TextTable};

fn main() {
    let rows = figure14_gans();
    let mut table = TextTable::new(&["GAN", "ASV speedup", "GANNX speedup", "ASV energy red.", "GANNX energy red."]);
    let mut avg = [0.0f64; 4];
    for r in &rows {
        table.row(vec![
            r.network.clone(),
            fmt3(r.asv_speedup),
            fmt3(r.gannx_speedup),
            fmt3(r.asv_energy_reduction),
            fmt3(r.gannx_energy_reduction),
        ]);
        for (a, v) in avg.iter_mut().zip([r.asv_speedup, r.gannx_speedup, r.asv_energy_reduction, r.gannx_energy_reduction]) {
            *a += v / rows.len() as f64;
        }
    }
    table.row(vec!["Avg.".into(), fmt3(avg[0]), fmt3(avg[1]), fmt3(avg[2]), fmt3(avg[3])]);
    println!("Figure 14: GAN comparison (normalized to Eyeriss)\n");
    println!("{}", table.render());
}
