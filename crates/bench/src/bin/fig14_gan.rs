//! Fig. 14: GAN generators — ASV's software deconvolution optimizations vs
//! the dedicated GANNX accelerator, normalized to Eyeriss.
fn main() {
    println!("{}", asv_bench::figs::fig14_gan_report());
}
