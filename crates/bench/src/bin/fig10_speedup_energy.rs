//! Fig. 10: speedup and energy reduction of the ASV variants (ISM, DCO,
//! DCO+ISM) over the baseline DNN accelerator, per stereo network.
fn main() {
    println!("{}", asv_bench::figs::fig10_speedup_energy_report());
}
