//! Fig. 10: speedup and energy reduction of the ASV variants (ISM, DCO,
//! DCO+ISM) over the baseline DNN accelerator, per stereo network.
use asv_bench::hardware::figure10_speedup_energy;
use asv_bench::table::{fmt3, fmt_pct, TextTable};

fn main() {
    let rows = figure10_speedup_energy();
    let mut table = TextTable::new(&[
        "network", "DCO x", "ISM x", "DCO+ISM x", "DCO energy", "ISM energy", "DCO+ISM energy",
    ]);
    let mut avg = [0.0f64; 6];
    for r in &rows {
        table.row(vec![
            r.network.clone(),
            fmt3(r.dco_speedup),
            fmt3(r.ism_speedup),
            fmt3(r.combined_speedup),
            fmt_pct(r.dco_energy_reduction),
            fmt_pct(r.ism_energy_reduction),
            fmt_pct(r.combined_energy_reduction),
        ]);
        for (a, v) in avg.iter_mut().zip([
            r.dco_speedup, r.ism_speedup, r.combined_speedup,
            r.dco_energy_reduction, r.ism_energy_reduction, r.combined_energy_reduction,
        ]) { *a += v / rows.len() as f64; }
    }
    table.row(vec![
        "Avg.".into(), fmt3(avg[0]), fmt3(avg[1]), fmt3(avg[2]),
        fmt_pct(avg[3]), fmt_pct(avg[4]), fmt_pct(avg[5]),
    ]);
    println!("Figure 10: ASV variant speedup / energy reduction over the baseline (PW-4)\n");
    println!("{}", table.render());
}
