//! Fig. 3: arithmetic-operation distribution of the stereo DNNs across the
//! FE / MO / DR stages.
fn main() {
    println!("{}", asv_bench::figs::fig03_op_distribution_report());
}
