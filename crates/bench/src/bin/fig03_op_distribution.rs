//! Fig. 3: arithmetic-operation distribution of the stereo DNNs across the
//! FE / MO / DR stages.
use asv_bench::hardware::figure3_stage_distribution;
use asv_bench::table::{fmt_pct, TextTable};

fn main() {
    let mut table = TextTable::new(&["network", "FE (conv)", "MO (conv)", "DR (deconv)", "other"]);
    for d in figure3_stage_distribution() {
        table.row(vec![
            d.network.clone(),
            fmt_pct(d.feature_extraction),
            fmt_pct(d.matching_optimization),
            fmt_pct(d.disparity_refinement),
            fmt_pct(d.other),
        ]);
    }
    println!("Figure 3: per-stage MAC distribution of the stereo DNNs\n");
    println!("{}", table.render());
}
