//! Steady-state streaming perf baseline: before/after the workspace layer,
//! emitting the machine-readable `BENCH_streaming.json`.
//!
//! ```text
//! tab_perf [--quick] [--width W] [--height H] [--frames N]
//!          [--max-disparity D] [--window PW] [--out PATH]
//! ```
//!
//! Defaults to the qHD workload (960×540, 12 measured frames); `--quick` is
//! the small CI smoke preset.  The JSON lands in `BENCH_streaming.json`
//! unless `--out` overrides it.

use asv_bench::perf::{steady_state_perf, PerfConfig};
use asv_mem::alloc_count::CountingAllocator;

// Installing the counting allocator is what makes the report's
// allocs/frame columns real measurements instead of zeros.
#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator::new();

fn parse_args() -> (PerfConfig, String) {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // The preset is applied first so per-field flags override it regardless
    // of argument order.
    let mut cfg = if raw.iter().any(|a| a == "--quick") {
        PerfConfig::quick()
    } else {
        PerfConfig::qhd()
    };
    let mut out = String::from("BENCH_streaming.json");
    let mut args = raw.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--quick" => {}
            "--width" => cfg.width = value("--width").parse().expect("numeric --width"),
            "--height" => cfg.height = value("--height").parse().expect("numeric --height"),
            "--frames" => cfg.frames = value("--frames").parse().expect("numeric --frames"),
            "--max-disparity" => {
                cfg.max_disparity = value("--max-disparity")
                    .parse()
                    .expect("numeric --max-disparity")
            }
            "--window" => {
                cfg.propagation_window = value("--window").parse().expect("numeric --window")
            }
            "--out" => out = value("--out"),
            other => panic!("unknown argument {other}"),
        }
    }
    (cfg, out)
}

fn main() {
    let (cfg, out_path) = parse_args();
    let report = steady_state_perf(&cfg);
    print!("{}", report.render_text());
    let json = report.render_json();
    std::fs::write(&out_path, &json).expect("write perf baseline json");
    println!("  wrote {out_path}");
}
