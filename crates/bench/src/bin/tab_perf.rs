//! Steady-state streaming perf baseline: before/after the workspace layer,
//! emitting the machine-readable `BENCH_streaming.json`.
//!
//! ```text
//! tab_perf [--quick] [--width W] [--height H] [--frames N]
//!          [--max-disparity D] [--window PW] [--out PATH]
//!          [--gate] [--gate-file PATH]
//! ```
//!
//! Defaults to the qHD workload (960×540, 12 measured frames); `--quick` is
//! the small CI smoke preset.  The JSON lands in `BENCH_streaming.json`
//! unless `--out` overrides it.
//!
//! `--gate` turns the run into a CI regression gate: the first run on a
//! machine records a per-machine fps baseline (under `target/` by default,
//! overridable with `--gate-file`) and passes; later runs exit non-zero when
//! any tracked path drops more than 10% below its recorded fps.

use asv_bench::gate::{default_gate_file, run_gate, GateOutcome, DEFAULT_TOLERANCE};
use asv_bench::perf::{steady_state_perf, PerfConfig};
use asv_mem::alloc_count::CountingAllocator;

// Installing the counting allocator is what makes the report's
// allocs/frame columns real measurements instead of zeros.
#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator::new();

struct GateArgs {
    enabled: bool,
    file: Option<String>,
}

fn parse_args() -> (PerfConfig, String, GateArgs) {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // The preset is applied first so per-field flags override it regardless
    // of argument order.
    let mut cfg = if raw.iter().any(|a| a == "--quick") {
        PerfConfig::quick()
    } else {
        PerfConfig::qhd()
    };
    let mut out = String::from("BENCH_streaming.json");
    let mut gate = GateArgs {
        enabled: false,
        file: None,
    };
    let mut args = raw.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--quick" => {}
            "--width" => cfg.width = value("--width").parse().expect("numeric --width"),
            "--height" => cfg.height = value("--height").parse().expect("numeric --height"),
            "--frames" => cfg.frames = value("--frames").parse().expect("numeric --frames"),
            "--max-disparity" => {
                cfg.max_disparity = value("--max-disparity")
                    .parse()
                    .expect("numeric --max-disparity")
            }
            "--window" => {
                cfg.propagation_window = value("--window").parse().expect("numeric --window")
            }
            "--out" => out = value("--out"),
            "--gate" => gate.enabled = true,
            "--gate-file" => gate.file = Some(value("--gate-file")),
            other => panic!("unknown argument {other}"),
        }
    }
    (cfg, out, gate)
}

fn main() {
    let (cfg, out_path, gate) = parse_args();
    let report = steady_state_perf(&cfg);
    print!("{}", report.render_text());
    let json = report.render_json();
    std::fs::write(&out_path, &json).expect("write perf baseline json");
    println!("  wrote {out_path}");
    if gate.enabled {
        let gate_file = gate.file.unwrap_or_else(|| default_gate_file(&report));
        let outcome = run_gate(&report, std::path::Path::new(&gate_file), DEFAULT_TOLERANCE)
            .expect("read/write gate baseline");
        match outcome {
            GateOutcome::BaselineWritten => {
                println!("  gate: no baseline on this machine, wrote {gate_file}");
            }
            GateOutcome::Passed(entries) => {
                for (key, base, fps) in entries {
                    println!("  gate: {key} {fps:.3} fps vs recorded {base:.3} fps — ok");
                }
            }
            GateOutcome::Failed(failures) => {
                for failure in &failures {
                    eprintln!("  gate FAILED: {failure}");
                }
                eprintln!("  gate baseline: {gate_file} (delete to re-record)");
                std::process::exit(1);
            }
        }
    }
}
