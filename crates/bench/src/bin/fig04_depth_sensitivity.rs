//! Fig. 4: depth estimation error vs disparity error (Bumblebee2 rig).
use asv_bench::algorithms::figure4_depth_sensitivity;
use asv_bench::table::{fmt3, TextTable};

fn main() {
    let mut table = TextTable::new(&["disparity error (px)", "depth err @10m (m)", "@15m (m)", "@30m (m)"]);
    for p in figure4_depth_sensitivity() {
        table.row(vec![
            fmt3(p.disparity_error_px),
            fmt3(p.depth_errors_m[0]),
            fmt3(p.depth_errors_m[1]),
            fmt3(p.depth_errors_m[2]),
        ]);
    }
    println!("Figure 4: depth error vs stereo matching (disparity) error\n");
    println!("{}", table.render());
}
