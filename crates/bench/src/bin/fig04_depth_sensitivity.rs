//! Fig. 4: depth estimation error vs disparity error (Bumblebee2 rig).
fn main() {
    println!("{}", asv_bench::figs::fig04_depth_sensitivity_report());
}
