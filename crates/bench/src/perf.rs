//! Steady-state streaming performance baseline (the `tab_perf` binary).
//!
//! Measures what the workspace layer (`asv::Workspace`) actually buys on one
//! stream: the same frames are served once through the allocating entry
//! point [`IsmState::step`] (a throwaway workspace per frame — the
//! pre-workspace allocation profile) and once through
//! [`IsmState::step_with`] with a warm per-stream workspace and result-map
//! recycling.  Only the steady-state frames (2..N, after the key-frame and
//! non-key-frame paths have warmed) are timed.
//!
//! The report renders both as a human-readable table and as the
//! machine-readable `BENCH_streaming.json`, giving the repository a recorded
//! perf trajectory: CI regenerates the file on every push and uploads it as
//! an artifact, so regressions show up as a diff of numbers rather than a
//! hunch.
//!
//! Allocation counts come from [`asv_mem::alloc_count`] and are only
//! non-zero when the calling binary installs the counting global allocator
//! (as `tab_perf` does); library callers without it get zeros there and
//! valid timings everywhere else.
//!
//! [`IsmState::step`]: asv::ism::IsmState::step
//! [`IsmState::step_with`]: asv::ism::IsmState::step_with

use asv::ism::{FrameKind, IsmConfig, IsmPipeline};
use asv::trace::{FrameTrace, Stage};
use asv::Workspace;
use asv_dnn::{zoo, CostMetric, SurrogateParams, SurrogateStereoDnn};
use asv_mem::alloc_count;
use asv_scene::{SceneConfig, StereoSequence};
use asv_stereo::block_matching::BlockMatchParams;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Workload description of one steady-state measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Steady-state frames measured (after the two warm-up frames).
    pub frames: usize,
    /// Maximum disparity of both the surrogate and the refinement search.
    pub max_disparity: usize,
    /// Key frame every `propagation_window` frames.
    pub propagation_window: usize,
}

impl PerfConfig {
    /// The qHD streaming workload (960×540, the streaming profile's
    /// 32-disparity search): the repository's recorded baseline.
    pub fn qhd() -> Self {
        Self {
            width: 960,
            height: 540,
            frames: 12,
            max_disparity: 32,
            propagation_window: 4,
        }
    }

    /// A small smoke workload for CI (same shape, seconds instead of
    /// minutes).
    pub fn quick() -> Self {
        Self {
            width: 160,
            height: 120,
            frames: 8,
            max_disparity: 16,
            propagation_window: 4,
        }
    }
}

/// Where one pipeline stage's time goes, split by frame kind.  Means come
/// from the tracer's per-frame span totals; fractions are the stage's share
/// of the measured step latency of frames of that kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePerf {
    /// Stable stage name (`asv::trace::Stage::name`).
    pub stage: String,
    /// Mean time in this stage per key frame, microseconds.
    pub key_mean_us: u64,
    /// Mean time in this stage per non-key frame, microseconds.
    pub nonkey_mean_us: u64,
    /// Share of total key-frame latency spent in this stage (0..=1).
    pub key_fraction: f64,
    /// Share of total non-key-frame latency spent in this stage (0..=1).
    pub nonkey_fraction: f64,
}

/// One side (allocating or workspace) of the measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathReport {
    /// Steady-state frames per second.
    pub fps: f64,
    /// Median steady-state step latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile steady-state step latency, microseconds.
    pub p95_us: u64,
    /// Mean key-frame step latency, microseconds (0 if none measured).
    pub key_mean_us: u64,
    /// Mean non-key-frame step latency, microseconds (0 if none measured).
    pub nonkey_mean_us: u64,
    /// Key frames among the measured steady-state frames.
    pub key_frames: usize,
    /// Non-key frames among the measured steady-state frames.
    pub nonkey_frames: usize,
    /// Heap allocation events per steady-state frame (0 unless the binary
    /// installs the counting allocator).
    pub allocs_per_frame: f64,
    /// Per-stage breakdown, in [`Stage::ALL`] order, stages that never ran
    /// omitted.  Empty for the allocating baseline (its throwaway
    /// workspaces discard their tracer with every frame).
    pub stages: Vec<StagePerf>,
}

/// The full before/after record written to `BENCH_streaming.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// The measured workload.
    pub config: PerfConfig,
    /// SIMD tier the stereo kernels dispatched to (e.g. `avx2`).
    pub simd: String,
    /// The allocating path ([`asv::ism::IsmState::step`]): before.
    pub baseline: PathReport,
    /// The workspace path ([`asv::ism::IsmState::step_with`]): after,
    /// with the SAD cost metric (the recorded reference).
    pub workspace: PathReport,
    /// The workspace path with the census/Hamming cost metric (the integer
    /// SIMD key-frame fast path).
    pub census: PathReport,
    /// `workspace.fps / baseline.fps`.
    pub speedup: f64,
    /// `workspace.key_mean_us / census.key_mean_us`: how much faster census
    /// key frames are than SAD key frames on the same stream.
    pub census_key_speedup: f64,
}

fn perf_pipeline(cfg: &PerfConfig, metric: CostMetric) -> IsmPipeline {
    let config = IsmConfig {
        propagation_window: cfg.propagation_window,
        refine: BlockMatchParams {
            max_disparity: cfg.max_disparity,
            refine_radius: 3,
            ..Default::default()
        },
        surrogate: SurrogateParams {
            max_disparity: cfg.max_disparity,
            occlusion_handling: true,
            metric,
        },
        ..Default::default()
    };
    IsmPipeline::new(
        config,
        SurrogateStereoDnn::new(zoo::dispnet(cfg.height, cfg.width), config.surrogate),
    )
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the steady-state frames through `step`, collecting per-frame
/// latency, kind, allocation counts and (when the step provides them)
/// per-stage span totals.
fn measure(
    seq: &StereoSequence,
    mut step: impl FnMut(&asv_scene::StereoFrame) -> (FrameKind, Option<[u64; Stage::COUNT]>),
) -> PathReport {
    let steady = &seq.frames()[2..];
    let mut latencies = Vec::with_capacity(steady.len());
    let mut kinds = Vec::with_capacity(steady.len());
    // Summed stage nanoseconds and summed step microseconds, [key, non-key].
    let mut stage_ns = [[0u64; Stage::COUNT]; 2];
    let mut kind_us = [0u64; 2];
    let allocs_before = alloc_count::allocations();
    let started = Instant::now();
    for frame in steady {
        let frame_started = Instant::now();
        let (kind, totals) = step(frame);
        let us = frame_started.elapsed().as_micros() as u64;
        latencies.push(us);
        kinds.push(kind);
        let side = usize::from(kind != FrameKind::KeyFrame);
        kind_us[side] += us;
        if let Some(totals) = totals {
            for (acc, ns) in stage_ns[side].iter_mut().zip(totals) {
                *acc += ns;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let allocs = alloc_count::allocations() - allocs_before;

    let mean_of = |want: FrameKind| -> u64 {
        let (sum, n) = latencies
            .iter()
            .zip(&kinds)
            .filter(|(_, &k)| k == want)
            .fold((0u64, 0u64), |(s, n), (&us, _)| (s + us, n + 1));
        sum.checked_div(n).unwrap_or(0)
    };
    let key_mean_us = mean_of(FrameKind::KeyFrame);
    let nonkey_mean_us = mean_of(FrameKind::NonKeyFrame);
    let key_frames = kinds.iter().filter(|&&k| k == FrameKind::KeyFrame).count();
    let nonkey_frames = kinds.len() - key_frames;

    let stages = Stage::ALL
        .iter()
        .filter(|stage| stage_ns.iter().any(|side| side[stage.index()] > 0))
        .map(|stage| {
            let mean_us = |side: usize, frames: usize| {
                (stage_ns[side][stage.index()] / 1_000) / frames.max(1) as u64
            };
            let fraction = |side: usize| {
                (stage_ns[side][stage.index()] as f64 / 1_000.0) / (kind_us[side] as f64).max(1.0)
            };
            StagePerf {
                stage: stage.name().to_owned(),
                key_mean_us: mean_us(0, key_frames),
                nonkey_mean_us: mean_us(1, nonkey_frames),
                key_fraction: fraction(0),
                nonkey_fraction: fraction(1),
            }
        })
        .collect();

    let mut sorted = latencies;
    sorted.sort_unstable();
    PathReport {
        fps: steady.len() as f64 / elapsed.max(1e-9),
        p50_us: percentile(&sorted, 0.50),
        p95_us: percentile(&sorted, 0.95),
        key_mean_us,
        nonkey_mean_us,
        key_frames,
        nonkey_frames,
        allocs_per_frame: allocs as f64 / (kinds.len().max(1)) as f64,
        stages,
    }
}

/// Runs the before/after steady-state measurement on a synthetic stream of
/// `cfg.frames + 2` frames (two warm-ups, `cfg.frames` measured).
///
/// # Panics
///
/// Panics if the pipeline fails on the synthetic stream (it cannot, barring
/// a bug).
pub fn steady_state_perf(cfg: &PerfConfig) -> PerfReport {
    let scene = SceneConfig::scene_flow_like(cfg.width, cfg.height)
        .with_seed(42)
        .with_objects(3);
    let seq = StereoSequence::generate(&scene, cfg.frames + 2);

    // Before: the allocating entry point (throwaway workspace per frame).
    let pipeline = perf_pipeline(cfg, CostMetric::Sad);
    let mut state = pipeline.state();
    for frame in &seq.frames()[..2] {
        state.step(&frame.left, &frame.right).expect("warm-up step");
    }
    let baseline = measure(&seq, |frame| {
        let kind = state
            .step(&frame.left, &frame.right)
            .expect("baseline step")
            .kind;
        // The allocating path builds and discards a workspace per frame, so
        // its trace (and with it any stage breakdown) is gone by now.
        (kind, None)
    });

    // After: one warm workspace, recycled result maps — once per metric.
    let run_workspace = |metric: CostMetric| {
        let pipeline = perf_pipeline(cfg, metric);
        let mut state = pipeline.state();
        let mut ws = Workspace::new();
        for frame in &seq.frames()[..2] {
            let result = state
                .step_with(&mut ws, &frame.left, &frame.right)
                .expect("warm-up step");
            ws.recycle(result.disparity);
        }
        measure(&seq, |frame| {
            let result = state
                .step_with(&mut ws, &frame.left, &frame.right)
                .expect("workspace step");
            let kind = result.kind;
            ws.recycle(result.disparity);
            let totals = ws.tracer.last_frame().map(FrameTrace::stage_totals);
            (kind, totals)
        })
    };
    let workspace = run_workspace(CostMetric::Sad);
    let census = run_workspace(CostMetric::Census);

    let speedup = workspace.fps / baseline.fps.max(1e-9);
    let census_key_speedup = workspace.key_mean_us as f64 / (census.key_mean_us as f64).max(1e-9);
    PerfReport {
        config: *cfg,
        simd: asv_stereo::active_level().name().to_owned(),
        baseline,
        workspace,
        census,
        speedup,
        census_key_speedup,
    }
}

impl PerfReport {
    /// Renders the human-readable table the `tab_perf` binary prints.
    pub fn render_text(&self) -> String {
        let c = &self.config;
        let mut out = String::new();
        out.push_str(&format!(
            "steady-state streaming perf: {}x{} x {} frames, D={}, PW={}\n",
            c.width, c.height, c.frames, c.max_disparity, c.propagation_window
        ));
        let row = |label: &str, p: &PathReport| {
            format!(
                "  {label:<22} {:>8.3} fps   p50 {:>8} us   p95 {:>8} us   key {:>8} us   non-key {:>8} us   {:>8.1} allocs/frame\n",
                p.fps, p.p50_us, p.p95_us, p.key_mean_us, p.nonkey_mean_us, p.allocs_per_frame
            )
        };
        out.push_str(&row("allocating (before)", &self.baseline));
        out.push_str(&row("workspace sad", &self.workspace));
        out.push_str(&row("workspace census", &self.census));
        out.push_str(&format!(
            "  speedup              {:>8.3}x   ({} key / {} non-key frames measured)\n",
            self.speedup, self.workspace.key_frames, self.workspace.nonkey_frames
        ));
        out.push_str(&format!(
            "  census key speedup   {:>8.3}x   (simd: {})\n",
            self.census_key_speedup, self.simd
        ));
        if !self.workspace.stages.is_empty() {
            out.push_str("  stage breakdown (workspace sad):\n");
            for stage in &self.workspace.stages {
                out.push_str(&format!(
                    "    {:<14} key {:>8} us ({:>5.1}%)   non-key {:>8} us ({:>5.1}%)\n",
                    stage.stage,
                    stage.key_mean_us,
                    stage.key_fraction * 100.0,
                    stage.nonkey_mean_us,
                    stage.nonkey_fraction * 100.0
                ));
            }
        }
        out
    }

    /// Renders the machine-readable `BENCH_streaming.json` payload.
    pub fn render_json(&self) -> String {
        let c = &self.config;
        let path = |p: &PathReport| {
            let stages = p
                .stages
                .iter()
                .map(|s| {
                    format!(
                        concat!(
                            "{{\"stage\": \"{}\", \"key_mean_us\": {}, ",
                            "\"nonkey_mean_us\": {}, \"key_fraction\": {:.4}, ",
                            "\"nonkey_fraction\": {:.4}}}"
                        ),
                        s.stage, s.key_mean_us, s.nonkey_mean_us, s.key_fraction, s.nonkey_fraction
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                concat!(
                    "{{\"fps\": {:.3}, \"p50_us\": {}, \"p95_us\": {}, ",
                    "\"key_mean_us\": {}, \"nonkey_mean_us\": {}, ",
                    "\"key_frames\": {}, \"nonkey_frames\": {}, ",
                    "\"allocs_per_frame\": {:.2}, \"stages\": [{}]}}"
                ),
                p.fps,
                p.p50_us,
                p.p95_us,
                p.key_mean_us,
                p.nonkey_mean_us,
                p.key_frames,
                p.nonkey_frames,
                p.allocs_per_frame,
                stages
            )
        };
        format!(
            concat!(
                "{{\n",
                "  \"workload\": {{\"width\": {}, \"height\": {}, \"frames\": {}, ",
                "\"max_disparity\": {}, \"propagation_window\": {}, \"parallel\": {}, ",
                "\"simd\": \"{}\"}},\n",
                "  \"baseline\": {},\n",
                "  \"workspace\": {},\n",
                "  \"census\": {},\n",
                "  \"speedup\": {:.3},\n",
                "  \"census_key_speedup\": {:.3}\n",
                "}}\n"
            ),
            c.width,
            c.height,
            c.frames,
            c.max_disparity,
            c.propagation_window,
            cfg!(feature = "parallel"),
            self.simd,
            path(&self.baseline),
            path(&self.workspace),
            path(&self.census),
            self.speedup,
            self.census_key_speedup
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workload_reports_consistently() {
        let cfg = PerfConfig {
            width: 48,
            height: 36,
            frames: 5,
            max_disparity: 8,
            propagation_window: 4,
        };
        let report = steady_state_perf(&cfg);
        assert!(report.baseline.fps > 0.0);
        assert!(report.workspace.fps > 0.0);
        assert!(report.census.fps > 0.0);
        assert!(report.speedup > 0.0);
        assert!(report.census_key_speedup > 0.0);
        assert!(!report.simd.is_empty());
        assert_eq!(
            report.workspace.key_frames + report.workspace.nonkey_frames,
            cfg.frames
        );
        // Same schedule on both sides.
        assert_eq!(report.workspace.key_frames, report.baseline.key_frames);
        // The workspace paths carry a stage breakdown; the allocating
        // baseline cannot (its tracer dies with each throwaway workspace).
        assert!(report.baseline.stages.is_empty());
        for path in [&report.workspace, &report.census] {
            assert!(!path.stages.is_empty());
            let dnn = path
                .stages
                .iter()
                .find(|s| s.stage == "dnn_infer")
                .expect("key frames traced the DNN stage");
            assert!(dnn.key_mean_us > 0);
            assert!(dnn.key_fraction > 0.0 && dnn.key_fraction <= 1.0);
            assert_eq!(dnn.nonkey_mean_us, 0);
            let refine = path
                .stages
                .iter()
                .find(|s| s.stage == "refine")
                .expect("non-key frames traced refinement");
            assert!(refine.nonkey_fraction > 0.0 && refine.nonkey_fraction <= 1.0);
        }
        let json = report.render_json();
        assert!(json.contains("\"stages\""));
        assert!(json.contains("\"stage\": \"dnn_infer\""));
        assert!(json.contains("\"workload\""));
        assert!(json.contains("\"speedup\""));
        assert!(report.render_text().contains("speedup"));
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.95), 7);
        assert_eq!(percentile(&[1, 2, 3, 4, 5], 0.0), 1);
        assert_eq!(percentile(&[1, 2, 3, 4, 5], 1.0), 5);
    }
}
