//! Library entry points behind the `fig*` / `tab*` binaries.
//!
//! Each function renders one figure/table of the paper's evaluation as the
//! exact text its binary prints. Keeping the bodies here (the binaries are
//! one-line wrappers) lets the workspace smoke tests invoke every binary's
//! code path as a plain library call, so the report generators cannot rot
//! silently.

use crate::algorithms::{
    figure1_frontier, figure4_depth_sensitivity, figure9_accuracy, nonkey_cost_table, AccuracySetup,
};
use crate::hardware::{
    figure10_speedup_energy, figure11_deconv_opts, figure12_sensitivity, figure13_platforms,
    figure14_gans, figure3_stage_distribution, overhead_table,
};
use crate::table::{fmt3, fmt_pct, TextTable};

/// Fig. 1: accuracy/performance frontier of classic algorithms, stereo DNNs
/// (accelerator and GPU) and ASV.
pub fn fig01_frontier_report(setup: &AccuracySetup) -> String {
    let points = figure1_frontier(setup);
    let mut table = TextTable::new(&["system", "error rate (%)", "FPS (qHD)"]);
    for p in &points {
        table.row(vec![p.name.clone(), fmt3(p.error_rate_pct), fmt3(p.fps)]);
    }
    format!(
        "Figure 1: accuracy/performance frontier (30 FPS = real time)\n\n{}",
        table.render()
    )
}

/// Fig. 3: arithmetic-operation distribution of the stereo DNNs across the
/// FE / MO / DR stages.
pub fn fig03_op_distribution_report() -> String {
    let mut table = TextTable::new(&["network", "FE (conv)", "MO (conv)", "DR (deconv)", "other"]);
    for d in figure3_stage_distribution() {
        table.row(vec![
            d.network.clone(),
            fmt_pct(d.feature_extraction),
            fmt_pct(d.matching_optimization),
            fmt_pct(d.disparity_refinement),
            fmt_pct(d.other),
        ]);
    }
    format!(
        "Figure 3: per-stage MAC distribution of the stereo DNNs\n\n{}",
        table.render()
    )
}

/// Fig. 4: depth estimation error vs disparity error (Bumblebee2 rig).
pub fn fig04_depth_sensitivity_report() -> String {
    let mut table = TextTable::new(&[
        "disparity error (px)",
        "depth err @10m (m)",
        "@15m (m)",
        "@30m (m)",
    ]);
    for p in figure4_depth_sensitivity() {
        table.row(vec![
            fmt3(p.disparity_error_px),
            fmt3(p.depth_errors_m[0]),
            fmt3(p.depth_errors_m[1]),
            fmt3(p.depth_errors_m[2]),
        ]);
    }
    format!(
        "Figure 4: depth error vs stereo matching (disparity) error\n\n{}",
        table.render()
    )
}

/// Fig. 9: error-rate comparison between per-frame DNN processing and the
/// ISM algorithm at PW-2 / PW-4, on both dataset profiles, for both the SAD
/// and the census/Hamming key-frame cost metrics.
pub fn fig09_accuracy_report(setup: &AccuracySetup) -> String {
    let rows = figure9_accuracy(setup);
    let mut table = TextTable::new(&[
        "dataset",
        "DNN err (%)",
        "PW-2 err (%)",
        "PW-4 err (%)",
        "PW-4 loss (pp)",
        "census DNN (%)",
        "census PW-4 (%)",
    ]);
    for r in &rows {
        table.row(vec![
            r.dataset.clone(),
            fmt3(r.dnn_error_pct),
            fmt3(r.pw2_error_pct),
            fmt3(r.pw4_error_pct),
            fmt3(r.pw4_error_pct - r.dnn_error_pct),
            fmt3(r.census_dnn_error_pct),
            fmt3(r.census_pw4_error_pct),
        ]);
    }
    format!(
        "Figure 9: ISM accuracy vs per-frame DNN accuracy\n\n{}",
        table.render()
    )
}

/// Fig. 10: speedup and energy reduction of the ASV variants (ISM, DCO,
/// DCO+ISM) over the baseline DNN accelerator, per stereo network.
pub fn fig10_speedup_energy_report() -> String {
    let rows = figure10_speedup_energy();
    let mut table = TextTable::new(&[
        "network",
        "DCO x",
        "ISM x",
        "DCO+ISM x",
        "DCO energy",
        "ISM energy",
        "DCO+ISM energy",
    ]);
    let mut avg = [0.0f64; 6];
    for r in &rows {
        table.row(vec![
            r.network.clone(),
            fmt3(r.dco_speedup),
            fmt3(r.ism_speedup),
            fmt3(r.combined_speedup),
            fmt_pct(r.dco_energy_reduction),
            fmt_pct(r.ism_energy_reduction),
            fmt_pct(r.combined_energy_reduction),
        ]);
        for (a, v) in avg.iter_mut().zip([
            r.dco_speedup,
            r.ism_speedup,
            r.combined_speedup,
            r.dco_energy_reduction,
            r.ism_energy_reduction,
            r.combined_energy_reduction,
        ]) {
            *a += v / rows.len() as f64;
        }
    }
    table.row(vec![
        "Avg.".into(),
        fmt3(avg[0]),
        fmt3(avg[1]),
        fmt3(avg[2]),
        fmt_pct(avg[3]),
        fmt_pct(avg[4]),
        fmt_pct(avg[5]),
    ]);
    format!(
        "Figure 10: ASV variant speedup / energy reduction over the baseline (PW-4)\n\n{}",
        table.render()
    )
}

/// Fig. 11: contribution of the deconvolution transformation (DCT), the
/// conventional reuse optimizer (ConvR) and inter-layer activation reuse
/// (ILAR), on deconvolution layers alone (a) and whole networks (b).
pub fn fig11_deconv_opts_report() -> String {
    let rows = figure11_deconv_opts();
    let mut out = String::new();
    for (title, whole_network) in [
        ("(a) deconvolution layers only", false),
        ("(b) whole network", true),
    ] {
        let mut table = TextTable::new(&[
            "network",
            "DCT x",
            "ConvR x",
            "ILAR x",
            "DCT energy",
            "ConvR energy",
            "ILAR energy",
        ]);
        for r in &rows {
            let (s, e) = if whole_network {
                (&r.network_speedup, &r.network_energy_reduction)
            } else {
                (&r.deconv_speedup, &r.deconv_energy_reduction)
            };
            table.row(vec![
                r.network.clone(),
                fmt3(s[0]),
                fmt3(s[1]),
                fmt3(s[2]),
                fmt_pct(e[0]),
                fmt_pct(e[1]),
                fmt_pct(e[2]),
            ]);
        }
        out.push_str(&format!("Figure 11{title}\n{}\n", table.render()));
    }
    out
}

/// Fig. 12: sensitivity of the deconvolution-optimization gains to PE-array
/// size and on-chip buffer capacity (FlowNetC).
pub fn fig12_sensitivity_report() -> String {
    let cells = figure12_sensitivity();
    let mut speed = TextTable::new(&[
        "buffer \\ PE",
        "8x8",
        "16x16",
        "24x24",
        "32x32",
        "40x40",
        "48x48",
        "56x56",
    ]);
    let mut energy = speed.clone();
    let buffers: Vec<u64> = {
        let mut b: Vec<u64> = cells.iter().map(|c| c.buffer_bytes).collect();
        b.dedup();
        b
    };
    for &buffer in &buffers {
        let row: Vec<_> = cells.iter().filter(|c| c.buffer_bytes == buffer).collect();
        let label = format!("{:.1} MB", buffer as f64 / (1024.0 * 1024.0));
        speed.row(
            std::iter::once(label.clone())
                .chain(row.iter().map(|c| fmt3(c.speedup)))
                .collect(),
        );
        energy.row(
            std::iter::once(label)
                .chain(row.iter().map(|c| fmt_pct(c.energy_reduction)))
                .collect(),
        );
    }
    format!(
        "Figure 12a: DCO speedup vs PE / buffer size (FlowNetC)\n{}\nFigure 12b: DCO energy reduction vs PE / buffer size (FlowNetC)\n{}\n",
        speed.render(),
        energy.render()
    )
}

/// Fig. 13: ASV vs Eyeriss (with/without the transformation) vs mobile GPU,
/// normalized to plain Eyeriss.
pub fn fig13_baselines_report() -> String {
    let mut table = TextTable::new(&["platform", "speedup vs Eyeriss", "normalized energy"]);
    for r in figure13_platforms() {
        table.row(vec![
            r.name.clone(),
            fmt3(r.speedup_vs_eyeriss),
            fmt3(r.normalized_energy),
        ]);
    }
    format!(
        "Figure 13: platform comparison (normalized to Eyeriss)\n\n{}",
        table.render()
    )
}

/// Fig. 14: GAN generators — ASV's software deconvolution optimizations vs
/// the dedicated GANNX accelerator, normalized to Eyeriss.
pub fn fig14_gan_report() -> String {
    let rows = figure14_gans();
    let mut table = TextTable::new(&[
        "GAN",
        "ASV speedup",
        "GANNX speedup",
        "ASV energy red.",
        "GANNX energy red.",
    ]);
    let mut avg = [0.0f64; 4];
    for r in &rows {
        table.row(vec![
            r.network.clone(),
            fmt3(r.asv_speedup),
            fmt3(r.gannx_speedup),
            fmt3(r.asv_energy_reduction),
            fmt3(r.gannx_energy_reduction),
        ]);
        for (a, v) in avg.iter_mut().zip([
            r.asv_speedup,
            r.gannx_speedup,
            r.asv_energy_reduction,
            r.gannx_energy_reduction,
        ]) {
            *a += v / rows.len() as f64;
        }
    }
    table.row(vec![
        "Avg.".into(),
        fmt3(avg[0]),
        fmt3(avg[1]),
        fmt3(avg[2]),
        fmt3(avg[3]),
    ]);
    format!(
        "Figure 14: GAN comparison (normalized to Eyeriss)\n\n{}",
        table.render()
    )
}

/// Sec. 3.3: compute cost of an ISM non-key frame vs stereo DNN inference.
pub fn tab_nonkey_cost_report() -> String {
    let mut table = TextTable::new(&["workload (qHD)", "operations", "x non-key frame"]);
    for r in nonkey_cost_table() {
        table.row(vec![
            r.name.clone(),
            format!("{}", r.ops),
            fmt3(r.ratio_to_nonkey),
        ]);
    }
    format!(
        "Section 3.3: non-key frame vs DNN inference compute cost\n\n{}",
        table.render()
    )
}

/// Sec. 7.1: hardware area/power overhead of the ASV extensions.
pub fn tab_overhead_report() -> String {
    let b = overhead_table();
    let mut table = TextTable::new(&["quantity", "value"]);
    table.row(vec![
        "per-PE area overhead (SAD mode)".into(),
        fmt_pct(b.pe_area_overhead()),
    ]);
    table.row(vec![
        "per-PE power overhead (SAD mode)".into(),
        fmt_pct(b.pe_power_overhead()),
    ]);
    table.row(vec![
        "total area overhead".into(),
        fmt_pct(b.total_area_overhead()),
    ]);
    table.row(vec![
        "total power overhead".into(),
        fmt_pct(b.total_power_overhead()),
    ]);
    format!("Section 7.1: ASV hardware overhead\n\n{}", table.render())
}
