//! Stereo sequence generation: configuration profiles, frame rendering and
//! ground truth.

use crate::objects::{SceneObject, ShapeKind, Texture};
use asv_flow::FlowField;
use asv_image::Image;
use asv_stereo::DisparityMap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which dataset the generated sequence is meant to stand in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetProfile {
    /// SceneFlow-like: clean synthetic imagery, moderate motion, no sensor
    /// noise.
    SceneFlowLike,
    /// KITTI-like: larger motion, sensor noise and a brightness mismatch
    /// between the two cameras.
    KittiLike,
}

/// Configuration of the synthetic stereo sequence generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Which dataset the sequence imitates.
    pub profile: DatasetProfile,
    /// Number of foreground objects.
    pub num_objects: usize,
    /// Background disparity in pixels.
    pub background_disparity: f32,
    /// Minimum foreground disparity.
    pub min_disparity: f32,
    /// Maximum foreground disparity.
    pub max_disparity: f32,
    /// Maximum per-frame screen motion of an object (pixels/frame).
    pub max_speed: f32,
    /// Standard deviation of additive Gaussian sensor noise.
    pub noise_sigma: f32,
    /// Multiplicative brightness gain applied to the right image only.
    pub right_gain: f32,
    /// Seed of the deterministic random generator.
    pub seed: u64,
}

impl SceneConfig {
    /// A SceneFlow-like profile: clean images, moderate motion.
    pub fn scene_flow_like(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            profile: DatasetProfile::SceneFlowLike,
            num_objects: 6,
            background_disparity: 3.0,
            min_disparity: 6.0,
            max_disparity: 28.0,
            max_speed: 2.0,
            noise_sigma: 0.0,
            right_gain: 1.0,
            seed: 1,
        }
    }

    /// A KITTI-like profile: faster motion, sensor noise, brightness mismatch.
    pub fn kitti_like(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            profile: DatasetProfile::KittiLike,
            num_objects: 8,
            background_disparity: 2.0,
            min_disparity: 5.0,
            max_disparity: 40.0,
            max_speed: 4.0,
            noise_sigma: 0.015,
            right_gain: 1.03,
            seed: 2,
        }
    }

    /// Returns the configuration with a different random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with a different object count.
    pub fn with_objects(mut self, num_objects: usize) -> Self {
        self.num_objects = num_objects;
        self
    }

    /// Largest disparity that can appear in the generated ground truth,
    /// rounded up — callers size their disparity search ranges from this.
    pub fn disparity_ceiling(&self) -> usize {
        self.max_disparity.ceil() as usize + 2
    }
}

/// One rendered stereo frame with its ground truth.
#[derive(Debug, Clone)]
pub struct StereoFrame {
    /// Left (reference) camera image.
    pub left: Image,
    /// Right (matching) camera image.
    pub right: Image,
    /// Ground-truth disparity registered to the left image.
    pub ground_truth: DisparityMap,
    /// Ground-truth optical flow of the left image from this frame to the
    /// next one (`None` for the last frame of a sequence).
    pub flow_to_next: Option<FlowField>,
}

/// A temporally coherent sequence of stereo frames.
#[derive(Debug, Clone)]
pub struct StereoSequence {
    frames: Vec<StereoFrame>,
    config: SceneConfig,
}

impl StereoSequence {
    /// Generates a sequence of `num_frames` frames.
    ///
    /// The generator is deterministic for a given configuration (including the
    /// seed).
    pub fn generate(config: &SceneConfig, num_frames: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let objects = spawn_objects(config, &mut rng);
        let background = Texture {
            base: 0.45,
            amplitude: 0.2,
            freq_x: 0.23,
            freq_y: 0.31,
            hash_amplitude: 0.05,
            phase: 0.37,
        };
        let mut frames = Vec::with_capacity(num_frames);
        for t in 0..num_frames {
            let at_t: Vec<SceneObject> = objects.iter().map(|o| o.advanced(t as f32)).collect();
            let (left, right, ground_truth) = render(config, &at_t, &background, &mut rng);
            let flow_to_next = if t + 1 < num_frames {
                Some(ground_truth_flow(config, &at_t))
            } else {
                None
            };
            frames.push(StereoFrame {
                left,
                right,
                ground_truth,
                flow_to_next,
            });
        }
        Self {
            frames,
            config: config.clone(),
        }
    }

    /// Number of frames in the sequence.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the sequence has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The rendered frames in temporal order.
    pub fn frames(&self) -> &[StereoFrame] {
        &self.frames
    }

    /// The configuration used to generate the sequence.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Consumes the sequence into a frame-by-frame iterator, for driving a
    /// streaming runtime (e.g. `asv-runtime` sessions) as if the sequence
    /// were a live camera feed.  Frames arrive in temporal order.
    pub fn into_stream(self) -> SequenceStream {
        SequenceStream {
            frames: self.frames.into_iter(),
        }
    }
}

/// Frame-by-frame iterator over a consumed [`StereoSequence`] (see
/// [`StereoSequence::into_stream`]).
#[derive(Debug)]
pub struct SequenceStream {
    frames: std::vec::IntoIter<StereoFrame>,
}

impl Iterator for SequenceStream {
    type Item = StereoFrame;

    fn next(&mut self) -> Option<StereoFrame> {
        self.frames.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.frames.size_hint()
    }
}

impl ExactSizeIterator for SequenceStream {}

fn spawn_objects(config: &SceneConfig, rng: &mut SmallRng) -> Vec<SceneObject> {
    let mut objects = Vec::with_capacity(config.num_objects);
    for i in 0..config.num_objects {
        let shape = if i % 2 == 0 {
            ShapeKind::Rectangle
        } else {
            ShapeKind::Ellipse
        };
        let half_w = rng.gen_range(config.width as f32 * 0.06..config.width as f32 * 0.18);
        let half_h = rng.gen_range(config.height as f32 * 0.08..config.height as f32 * 0.22);
        let disparity = rng.gen_range(config.min_disparity..config.max_disparity);
        let texture = Texture {
            base: rng.gen_range(0.3..0.7),
            amplitude: rng.gen_range(0.15..0.35),
            freq_x: rng.gen_range(0.3..1.1),
            freq_y: rng.gen_range(0.3..1.1),
            hash_amplitude: rng.gen_range(0.05..0.15),
            phase: rng.gen_range(0.0..std::f32::consts::TAU),
        };
        objects.push(SceneObject {
            shape,
            cx: rng.gen_range(0.15 * config.width as f32..0.85 * config.width as f32),
            cy: rng.gen_range(0.15 * config.height as f32..0.85 * config.height as f32),
            half_w,
            half_h,
            disparity,
            vx: rng.gen_range(-config.max_speed..config.max_speed),
            vy: rng.gen_range(-config.max_speed * 0.5..config.max_speed * 0.5),
            disparity_rate: rng.gen_range(-0.3..0.3),
            texture,
        });
    }
    // Painter's order: far (small disparity) first so near objects overwrite.
    objects.sort_by(|a, b| {
        a.disparity
            .partial_cmp(&b.disparity)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    objects
}

/// Renders one frame: left and right images plus ground-truth disparity.
fn render(
    config: &SceneConfig,
    objects: &[SceneObject],
    background: &Texture,
    rng: &mut SmallRng,
) -> (Image, Image, DisparityMap) {
    let width = config.width;
    let height = config.height;
    let mut left = Image::zeros(width, height);
    let mut right = Image::zeros(width, height);
    let mut truth = DisparityMap::invalid(width, height);

    for y in 0..height {
        for x in 0..width {
            let xf = x as f32;
            let yf = y as f32;
            // Left view: topmost (nearest) object covering the pixel wins.
            let mut value = background.sample(xf, yf);
            let mut disparity = config.background_disparity;
            for obj in objects {
                if obj.covers(xf, yf) {
                    value = obj.shade(xf, yf);
                    disparity = obj.disparity;
                }
            }
            left.set(x, y, value);
            truth.set(x, y, disparity);

            // Right view: the scene point visible at right-image (x, y) is the
            // nearest surface whose left-image projection x_l = x + d covers
            // (x_l, y).  Background is always a candidate.
            let mut rvalue = background.sample(xf + config.background_disparity, yf);
            for obj in objects {
                let xl = xf + obj.disparity;
                if obj.covers(xl, yf) {
                    rvalue = obj.shade(xl, yf);
                }
            }
            right.set(x, y, rvalue);
        }
    }

    if config.noise_sigma > 0.0 || config.right_gain != 1.0 {
        apply_sensor_model(&mut left, config.noise_sigma, 1.0, rng);
        apply_sensor_model(&mut right, config.noise_sigma, config.right_gain, rng);
    }
    (left, right, truth)
}

/// Adds Gaussian noise (Box-Muller) and a gain to an image, clamping to [0,1].
fn apply_sensor_model(image: &mut Image, sigma: f32, gain: f32, rng: &mut SmallRng) {
    for v in image.as_mut_slice() {
        let noise = if sigma > 0.0 {
            let u1: f32 = rng.gen_range(1e-6..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos() * sigma
        } else {
            0.0
        };
        *v = (*v * gain + noise).clamp(0.0, 1.0);
    }
}

/// Ground-truth optical flow of the left image from frame `t` to `t + 1`:
/// each pixel moves with the velocity of the nearest object covering it.
fn ground_truth_flow(config: &SceneConfig, objects: &[SceneObject]) -> FlowField {
    let mut flow = FlowField::zeros(config.width, config.height);
    for y in 0..config.height {
        for x in 0..config.width {
            let xf = x as f32;
            let yf = y as f32;
            let mut u = 0.0;
            let mut v = 0.0;
            for obj in objects {
                if obj.covers(xf, yf) {
                    u = obj.vx;
                    v = obj.vy;
                }
            }
            flow.set(x, y, u, v);
        }
    }
    flow
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = SceneConfig::scene_flow_like(48, 32).with_seed(3);
        let a = StereoSequence::generate(&config, 3);
        let b = StereoSequence::generate(&config, 3);
        assert_eq!(a.frames()[2].left, b.frames()[2].left);
        assert_eq!(a.frames()[2].right, b.frames()[2].right);
        assert_eq!(a.frames()[2].ground_truth, b.frames()[2].ground_truth);
    }

    #[test]
    fn frame_dimensions_and_ground_truth_coverage() {
        let config = SceneConfig::scene_flow_like(64, 40);
        let seq = StereoSequence::generate(&config, 2);
        assert_eq!(seq.len(), 2);
        assert!(!seq.is_empty());
        let f = &seq.frames()[0];
        assert_eq!(f.left.width(), 64);
        assert_eq!(f.right.height(), 40);
        // Every pixel has a ground-truth disparity (background included).
        assert!(f.ground_truth.valid_fraction() > 0.999);
        assert!(f.flow_to_next.is_some());
        assert!(seq.frames()[1].flow_to_next.is_none());
    }

    #[test]
    fn ground_truth_disparities_are_within_configured_range() {
        let config = SceneConfig::scene_flow_like(64, 48).with_seed(11);
        let seq = StereoSequence::generate(&config, 1);
        let gt = &seq.frames()[0].ground_truth;
        for y in 0..gt.height() {
            for x in 0..gt.width() {
                let d = gt.get(x, y).unwrap();
                assert!(d >= 0.0 && d <= config.disparity_ceiling() as f32);
            }
        }
    }

    #[test]
    fn rendered_pair_is_consistent_with_ground_truth() {
        // For pixels whose whole neighbourhood shares one disparity, the left
        // pixel equals the right pixel shifted by that disparity (no noise on
        // the SceneFlow-like profile).
        let config = SceneConfig::scene_flow_like(80, 60).with_seed(5);
        let seq = StereoSequence::generate(&config, 1);
        let f = &seq.frames()[0];
        let gt = &f.ground_truth;
        let mut checked = 0;
        let mut consistent = 0;
        for y in 2..58 {
            for x in 45..78 {
                let d = gt.get(x, y).unwrap();
                let xr = x as f32 - d;
                if xr < 1.0 {
                    continue;
                }
                // Only test pixels away from disparity discontinuities.
                let neighbours_same = [(x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)]
                    .iter()
                    .all(|&(nx, ny)| (gt.get(nx, ny).unwrap() - d).abs() < 0.5);
                if !neighbours_same {
                    continue;
                }
                checked += 1;
                let lv = f.left.at(x, y);
                let rv = f.right.sample_bilinear(xr, y as f32);
                if (lv - rv).abs() < 0.05 {
                    consistent += 1;
                }
            }
        }
        assert!(checked > 50, "not enough testable pixels ({checked})");
        assert!(
            consistent as f64 / checked as f64 > 0.9,
            "only {consistent}/{checked} pixels photo-consistent"
        );
    }

    #[test]
    fn sequence_has_temporal_motion() {
        let config = SceneConfig::scene_flow_like(64, 48).with_seed(9);
        let seq = StereoSequence::generate(&config, 2);
        let diff = seq.frames()[0]
            .left
            .mean_abs_diff(&seq.frames()[1].left)
            .unwrap();
        assert!(
            diff > 1e-4,
            "consecutive frames should differ (diff = {diff})"
        );
        // And the ground-truth flow is non-trivial somewhere.
        let flow = seq.frames()[0].flow_to_next.as_ref().unwrap();
        let max_u = flow
            .u()
            .as_slice()
            .iter()
            .fold(0.0f32, |acc, &v| acc.max(v.abs()));
        assert!(max_u > 0.0);
    }

    #[test]
    fn kitti_profile_adds_noise_and_gain() {
        let base = SceneConfig::kitti_like(48, 32).with_seed(4);
        let clean = SceneConfig {
            noise_sigma: 0.0,
            right_gain: 1.0,
            ..base.clone()
        };
        let noisy_seq = StereoSequence::generate(&base, 1);
        let clean_seq = StereoSequence::generate(&clean, 1);
        let diff = noisy_seq.frames()[0]
            .left
            .mean_abs_diff(&clean_seq.frames()[0].left)
            .unwrap();
        assert!(diff > 1e-4, "noise should perturb the image");
        // The right image of the noisy profile is brighter on average than the
        // clean one because of the gain.
        assert!(noisy_seq.frames()[0].right.mean() > clean_seq.frames()[0].right.mean());
    }

    #[test]
    fn seeds_change_content() {
        let a = StereoSequence::generate(&SceneConfig::scene_flow_like(48, 32).with_seed(1), 1);
        let b = StereoSequence::generate(&SceneConfig::scene_flow_like(48, 32).with_seed(2), 1);
        assert!(
            a.frames()[0]
                .left
                .mean_abs_diff(&b.frames()[0].left)
                .unwrap()
                > 1e-4
        );
    }

    #[test]
    fn into_stream_yields_frames_in_temporal_order() {
        let config = SceneConfig::scene_flow_like(32, 24).with_seed(6);
        let seq = StereoSequence::generate(&config, 3);
        let reference: Vec<Image> = seq.frames().iter().map(|f| f.left.clone()).collect();
        let stream = seq.into_stream();
        assert_eq!(stream.len(), 3);
        let streamed: Vec<Image> = stream.map(|f| f.left).collect();
        assert_eq!(reference, streamed);
    }

    #[test]
    fn with_objects_controls_complexity() {
        let config = SceneConfig::scene_flow_like(48, 32).with_objects(0);
        let seq = StereoSequence::generate(&config, 1);
        // With no foreground objects every pixel is background disparity.
        let gt = &seq.frames()[0].ground_truth;
        for y in 0..gt.height() {
            for x in 0..gt.width() {
                assert_eq!(gt.get(x, y).unwrap(), config.background_disparity);
            }
        }
    }
}
