//! Synthetic stereo video generator — the dataset substrate of the
//! reproduction.
//!
//! The ASV paper evaluates on SceneFlow (synthetic stereo videos) and KITTI
//! (real driving stereo pairs).  Neither dataset can be redistributed here, so
//! this crate generates procedural stereo video with *exact* ground-truth
//! disparity, temporal coherence and controllable difficulty — everything the
//! paper's experiments actually rely on:
//!
//! * a pair of rectified views whose only difference is the per-object
//!   horizontal disparity,
//! * temporal motion between consecutive frames (so ISM's correspondence
//!   propagation has something to propagate across),
//! * occlusion (nearer objects cover farther ones),
//! * sensor imperfections (noise, brightness mismatch) on the "KITTI-like"
//!   profile.
//!
//! The scene model is deliberately screen-space: each object is a textured
//! rectangle or ellipse with a disparity (in pixels), a screen velocity and a
//! disparity rate.  The left image renders each object at its position, the
//! right image renders it shifted left by its disparity, and the ground-truth
//! disparity map records the top-most object at every left-image pixel.
//!
//! # Example
//!
//! ```
//! use asv_scene::{SceneConfig, StereoSequence};
//!
//! let config = SceneConfig::scene_flow_like(96, 64).with_seed(7);
//! let seq = StereoSequence::generate(&config, 4);
//! assert_eq!(seq.len(), 4);
//! let frame = &seq.frames()[0];
//! assert_eq!(frame.left.width(), 96);
//! assert!(frame.ground_truth.valid_fraction() > 0.99);
//! ```

mod objects;
mod sequence;

pub use objects::{SceneObject, ShapeKind, Texture};
pub use sequence::{DatasetProfile, SceneConfig, SequenceStream, StereoFrame, StereoSequence};
