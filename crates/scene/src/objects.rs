//! Screen-space scene objects and procedural textures.

use serde::{Deserialize, Serialize};

/// Shape of a scene object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShapeKind {
    /// Axis-aligned rectangle.
    Rectangle,
    /// Axis-aligned ellipse inscribed in the object's bounding box.
    Ellipse,
}

/// Procedural texture: a sum of two sinusoids plus hashed per-pixel noise,
/// evaluated in *object-local* coordinates so the texture moves rigidly with
/// the object (required for correspondences to be trackable across frames).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Texture {
    /// Base intensity in `[0, 1]`.
    pub base: f32,
    /// Amplitude of the sinusoidal component.
    pub amplitude: f32,
    /// Spatial frequency (radians per pixel) along x.
    pub freq_x: f32,
    /// Spatial frequency (radians per pixel) along y.
    pub freq_y: f32,
    /// Amplitude of the deterministic per-pixel hash noise.
    pub hash_amplitude: f32,
    /// Phase offset distinguishing objects that share frequencies.
    pub phase: f32,
}

impl Texture {
    /// Evaluates the texture at object-local coordinates `(u, v)`.
    pub fn sample(&self, u: f32, v: f32) -> f32 {
        let sinusoid =
            (u * self.freq_x + self.phase).sin() * (v * self.freq_y + self.phase * 0.7).cos();
        let iu = u.round() as i64;
        let iv = v.round() as i64;
        let hashed = hash2(iu, iv);
        (self.base + self.amplitude * sinusoid + self.hash_amplitude * hashed).clamp(0.0, 1.0)
    }
}

impl Default for Texture {
    fn default() -> Self {
        Self {
            base: 0.5,
            amplitude: 0.3,
            freq_x: 0.7,
            freq_y: 0.5,
            hash_amplitude: 0.1,
            phase: 0.0,
        }
    }
}

/// Deterministic hash of an integer lattice point mapped to `[-1, 1]`.
fn hash2(x: i64, y: i64) -> f32 {
    let mut h = (x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (y as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 32;
    ((h & 0xFFFF) as f32 / 32768.0) - 1.0
}

/// A textured fronto-parallel object in screen space.
///
/// Positions and sizes are in left-image pixel coordinates; `disparity` is the
/// horizontal displacement between the left and right projections (larger
/// disparity ⇒ nearer object).  `velocity` moves the object between frames and
/// `disparity_rate` changes its depth over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Shape of the object.
    pub shape: ShapeKind,
    /// Centre x coordinate in the left image (pixels).
    pub cx: f32,
    /// Centre y coordinate in the left image (pixels).
    pub cy: f32,
    /// Half-width in pixels.
    pub half_w: f32,
    /// Half-height in pixels.
    pub half_h: f32,
    /// Disparity in pixels (≥ 0; larger means nearer).
    pub disparity: f32,
    /// Per-frame screen velocity (pixels/frame) in x.
    pub vx: f32,
    /// Per-frame screen velocity (pixels/frame) in y.
    pub vy: f32,
    /// Per-frame disparity change (pixels/frame).
    pub disparity_rate: f32,
    /// Texture painted on the object.
    pub texture: Texture,
}

impl SceneObject {
    /// Whether the object covers left-image pixel `(x, y)`.
    pub fn covers(&self, x: f32, y: f32) -> bool {
        let dx = x - self.cx;
        let dy = y - self.cy;
        match self.shape {
            ShapeKind::Rectangle => dx.abs() <= self.half_w && dy.abs() <= self.half_h,
            ShapeKind::Ellipse => {
                if self.half_w <= 0.0 || self.half_h <= 0.0 {
                    return false;
                }
                (dx / self.half_w).powi(2) + (dy / self.half_h).powi(2) <= 1.0
            }
        }
    }

    /// Texture intensity of the object at left-image pixel `(x, y)`.
    pub fn shade(&self, x: f32, y: f32) -> f32 {
        self.texture.sample(x - self.cx, y - self.cy)
    }

    /// The object advanced by `frames` time steps.
    pub fn advanced(&self, frames: f32) -> SceneObject {
        SceneObject {
            cx: self.cx + self.vx * frames,
            cy: self.cy + self.vy * frames,
            disparity: (self.disparity + self.disparity_rate * frames).max(0.0),
            ..*self
        }
    }
}

impl Default for SceneObject {
    fn default() -> Self {
        Self {
            shape: ShapeKind::Rectangle,
            cx: 0.0,
            cy: 0.0,
            half_w: 8.0,
            half_h: 8.0,
            disparity: 10.0,
            vx: 0.0,
            vy: 0.0,
            disparity_rate: 0.0,
            texture: Texture::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn texture_is_deterministic_and_bounded() {
        let t = Texture::default();
        for (u, v) in [(0.0, 0.0), (3.7, -2.1), (100.0, 55.0)] {
            let a = t.sample(u, v);
            let b = t.sample(u, v);
            assert_eq!(a, b);
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn texture_varies_spatially() {
        let t = Texture::default();
        let values: Vec<f32> = (0..50).map(|i| t.sample(i as f32, 0.0)).collect();
        let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 0.1, "texture should not be flat");
    }

    #[test]
    fn rectangle_and_ellipse_coverage() {
        let rect = SceneObject {
            cx: 10.0,
            cy: 10.0,
            half_w: 5.0,
            half_h: 3.0,
            ..Default::default()
        };
        assert!(rect.covers(10.0, 10.0));
        assert!(rect.covers(15.0, 13.0));
        assert!(!rect.covers(16.0, 10.0));
        let ell = SceneObject {
            shape: ShapeKind::Ellipse,
            ..rect
        };
        assert!(ell.covers(10.0, 10.0));
        // The rectangle corner is outside the inscribed ellipse.
        assert!(!ell.covers(15.0, 13.0));
        let degenerate = SceneObject {
            shape: ShapeKind::Ellipse,
            half_w: 0.0,
            ..rect
        };
        assert!(!degenerate.covers(10.0, 10.0));
    }

    #[test]
    fn advanced_moves_and_clamps_disparity() {
        let obj = SceneObject {
            vx: 2.0,
            vy: -1.0,
            disparity: 4.0,
            disparity_rate: -3.0,
            ..Default::default()
        };
        let next = obj.advanced(1.0);
        assert_eq!(next.cx, 2.0);
        assert_eq!(next.cy, -1.0);
        assert_eq!(next.disparity, 1.0);
        // Disparity never goes negative.
        let far = obj.advanced(5.0);
        assert_eq!(far.disparity, 0.0);
    }

    #[test]
    fn shading_moves_rigidly_with_object() {
        let obj = SceneObject {
            cx: 10.0,
            cy: 10.0,
            vx: 3.0,
            ..Default::default()
        };
        let before = obj.shade(12.0, 11.0);
        let moved = obj.advanced(1.0);
        // The same material point is now 3 pixels to the right.
        let after = moved.shade(15.0, 11.0);
        assert!((before - after).abs() < 1e-6);
    }
}
