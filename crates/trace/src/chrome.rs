//! Chrome trace-event JSON rendering of captured [`FrameTrace`]s.
//!
//! The output is the ["trace event format"] JSON object consumed by
//! `chrome://tracing` and [Perfetto]: one complete (`"ph": "X"`) event per
//! span, timestamps in microseconds on the process-wide trace origin, one
//! *pid* per cluster shard and one *tid* per session, with metadata events
//! naming the threads after their session labels.  Rendering is
//! deterministic: byte-identical output for identical frames.
//!
//! The renderer is dependency-free (hand-written JSON) because the
//! vendored serde shim has no JSON serializer; the grammar emitted here is
//! locked by a golden test.
//!
//! ["trace event format"]:
//! https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev
//!
//! [`FrameTrace`]: crate::FrameTrace

use crate::FrameTrace;
use std::fmt::Write;

/// Escapes a string for embedding inside a JSON string literal.
fn escape_json_into(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats nanoseconds as a microsecond decimal with three fractional
/// digits (Chrome timestamps are microseconds; fractions are accepted).
fn ns_as_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// One `"ph": "X"` complete event, pre-formatted: `arg_value` is raw JSON
/// (already quoted when it is a string).
struct CompleteEvent<'a> {
    name: &'a str,
    ts_ns: u64,
    dur_ns: u64,
    frame_index: u64,
    arg_key: &'a str,
    arg_value: &'a str,
}

/// Incremental builder of one Chrome trace-event JSON document.
///
/// Add metadata and frames in any order, then call
/// [`ChromeTrace::finish`]; an empty builder still renders a valid,
/// loadable document.
#[derive(Debug)]
pub struct ChromeTrace {
    buf: String,
    events: usize,
}

impl ChromeTrace {
    /// Starts an empty trace document.
    pub fn new() -> Self {
        Self {
            buf: String::from("{\"traceEvents\":["),
            events: 0,
        }
    }

    fn begin_event(&mut self) {
        if self.events > 0 {
            self.buf.push(',');
        }
        self.buf.push('\n');
        self.events += 1;
    }

    /// Emits a metadata event naming process `pid` (e.g. `"shard-0"`).
    pub fn add_process_name(&mut self, pid: u32, name: &str) {
        self.begin_event();
        self.buf
            .push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
        let _ = write!(self.buf, "{pid}");
        self.buf.push_str(",\"tid\":0,\"args\":{\"name\":\"");
        escape_json_into(&mut self.buf, name);
        self.buf.push_str("\"}}");
    }

    /// Emits a metadata event naming thread `tid` of process `pid` (e.g.
    /// the session label `"camera-3"`).
    pub fn add_thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.begin_event();
        self.buf
            .push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":");
        let _ = write!(self.buf, "{pid}");
        self.buf.push_str(",\"tid\":");
        let _ = write!(self.buf, "{tid}");
        self.buf.push_str(",\"args\":{\"name\":\"");
        escape_json_into(&mut self.buf, name);
        self.buf.push_str("\"}}");
    }

    fn add_complete_event(&mut self, pid: u32, tid: u32, event: &CompleteEvent<'_>) {
        self.begin_event();
        self.buf.push_str("{\"name\":\"");
        escape_json_into(&mut self.buf, event.name);
        self.buf.push_str("\",\"cat\":\"ism\",\"ph\":\"X\",\"ts\":");
        ns_as_us(&mut self.buf, event.ts_ns);
        self.buf.push_str(",\"dur\":");
        ns_as_us(&mut self.buf, event.dur_ns);
        let _ = write!(self.buf, ",\"pid\":{pid},\"tid\":{tid}");
        let _ = write!(
            self.buf,
            ",\"args\":{{\"frame\":{},\"{}\":",
            event.frame_index, event.arg_key
        );
        self.buf.push_str(event.arg_value);
        self.buf.push_str("}}");
    }

    /// Emits one frame's span tree: a root `frame` event covering the
    /// whole step plus one event per recorded span.
    pub fn add_frame(&mut self, pid: u32, tid: u32, frame: &FrameTrace) {
        let kind = if frame.key_frame {
            "\"key\""
        } else {
            "\"non_key\""
        };
        self.add_complete_event(
            pid,
            tid,
            &CompleteEvent {
                name: "frame",
                ts_ns: frame.epoch_ns,
                dur_ns: frame.total_ns,
                frame_index: frame.frame_index,
                arg_key: "kind",
                arg_value: kind,
            },
        );
        let mut depth = String::new();
        for span in &frame.spans {
            depth.clear();
            let _ = write!(depth, "{}", span.depth);
            self.add_complete_event(
                pid,
                tid,
                &CompleteEvent {
                    name: span.stage.name(),
                    ts_ns: frame.epoch_ns.saturating_add(span.start_ns),
                    dur_ns: span.dur_ns,
                    frame_index: frame.frame_index,
                    arg_key: "depth",
                    arg_value: &depth,
                },
            );
        }
    }

    /// Number of events emitted so far.
    pub fn event_count(&self) -> usize {
        self.events
    }

    /// Closes the document and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        self.buf
    }
}

impl Default for ChromeTrace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanRecord, Stage};

    #[test]
    fn empty_document_is_well_formed() {
        let text = ChromeTrace::new().finish();
        assert_eq!(text, "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
    }

    #[test]
    fn names_are_escaped() {
        let mut trace = ChromeTrace::new();
        trace.add_thread_name(0, 1, "cam\"3\"\n");
        let text = trace.finish();
        assert!(text.contains("cam\\\"3\\\"\\n"));
    }

    /// Golden test: the exact bytes produced for a hand-built frame.  The
    /// format is consumed by external tooling (`chrome://tracing`,
    /// Perfetto), so any change to it must be deliberate.
    #[test]
    fn golden_frame_rendering() {
        let frame = FrameTrace {
            frame_index: 7,
            epoch_ns: 1_500,
            total_ns: 2_000_500,
            key_frame: true,
            spans: vec![
                SpanRecord {
                    stage: Stage::DnnInfer,
                    start_ns: 0,
                    dur_ns: 1_999_000,
                    depth: 1,
                },
                SpanRecord {
                    stage: Stage::CostFill,
                    start_ns: 10_250,
                    dur_ns: 750_000,
                    depth: 2,
                },
            ],
        };
        let mut trace = ChromeTrace::new();
        trace.add_process_name(0, "shard-0");
        trace.add_thread_name(0, 3, "camera-3");
        trace.add_frame(0, 3, &frame);
        assert_eq!(trace.event_count(), 5);
        let expected = concat!(
            "{\"traceEvents\":[\n",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,",
            "\"args\":{\"name\":\"shard-0\"}},\n",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":3,",
            "\"args\":{\"name\":\"camera-3\"}},\n",
            "{\"name\":\"frame\",\"cat\":\"ism\",\"ph\":\"X\",\"ts\":1.500,",
            "\"dur\":2000.500,\"pid\":0,\"tid\":3,",
            "\"args\":{\"frame\":7,\"kind\":\"key\"}},\n",
            "{\"name\":\"dnn_infer\",\"cat\":\"ism\",\"ph\":\"X\",\"ts\":1.500,",
            "\"dur\":1999.000,\"pid\":0,\"tid\":3,",
            "\"args\":{\"frame\":7,\"depth\":1}},\n",
            "{\"name\":\"cost_fill\",\"cat\":\"ism\",\"ph\":\"X\",\"ts\":11.750,",
            "\"dur\":750.000,\"pid\":0,\"tid\":3,",
            "\"args\":{\"frame\":7,\"depth\":2}}\n",
            "],\"displayTimeUnit\":\"ms\"}\n",
        );
        assert_eq!(trace.finish(), expected);
    }
}
