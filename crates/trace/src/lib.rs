//! `asv-trace`: zero-alloc-in-steady-state tracing of the ISM frame path.
//!
//! The ASV paper is a compute-vs-accuracy design space — key frames run a
//! full (surrogate) DNN, non-key frames propagate correspondences through
//! optical flow and refine them with a narrow search.  Whole-frame latency
//! alone cannot show *where* a frame's budget goes, so this crate records a
//! span per pipeline stage ([`Stage`]) into a per-session [`Tracer`]:
//!
//! * **Ring mode** (the default): the last [`TraceConfig::ring_frames`]
//!   frames' span trees are retained in a preallocated ring.  After the
//!   first (warm-up) frame sized the buffers, recording performs **zero
//!   heap allocations** — the same contract as `asv-mem`'s buffer pools,
//!   and covered by the same allocation-regression tests.
//! * **Slow-frame forensics**: frames whose total latency exceeds
//!   [`TraceConfig::slow_threshold_us`] are copied into a separate bounded
//!   retention ring ([`Tracer::slow_frames`]), so a p99 outlier's full span
//!   tree survives long after the main ring rotated past it.
//! * **Full mode** retains *every* frame (allocating per frame — a bounded
//!   capture tool, not a production mode).
//! * [`chrome`] renders any set of captured frames as Chrome trace-event
//!   JSON, loadable in `chrome://tracing` or Perfetto.
//!
//! The mode comes from the `ASV_TRACE` environment variable (`off`, `ring`,
//! `full`; default `ring`), mirroring the `ASV_SIMD` convention, and the
//! slow-frame threshold from `ASV_TRACE_SLOW_US`.
//!
//! Kernel crates cannot call into a tracer they do not own (and the rayon
//! shim may run a closure on a pool worker thread, where a thread-local
//! tracer would lose spans), so they record `(stage, start, duration)`
//! triples into a [`KernelTimings`] embedded in the workspace they already
//! borrow; the pipeline layer harvests those into the tracer from the
//! calling thread ([`Tracer::harvest`]).

pub mod chrome;

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Spans retained per frame; later spans are counted in
/// [`Tracer::dropped_spans`] instead of recorded.  The deepest real frame
/// (adaptive re-key: flow + pyramid + DNN with a left-right check) emits
/// around a dozen spans, so 32 leaves ample headroom.
pub const MAX_SPANS_PER_FRAME: usize = 32;

/// Maximum nesting depth of open spans.
pub const MAX_SPAN_DEPTH: usize = 8;

/// Entries a [`KernelTimings`] retains per kernel invocation.
pub const MAX_KERNEL_TIMINGS: usize = 16;

/// Hard cap on frames retained by [`TraceMode::Full`] before new frames are
/// dropped (counted in [`Tracer::dropped_frames`]).
pub const FULL_MODE_FRAME_CAP: usize = 65_536;

/// One pipeline stage of the ISM frame path, the unit of span attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Stage {
    /// Gaussian pyramid construction of both frames of one flow estimation.
    PyramidBuild,
    /// Farneback optical flow of the left view (t → t+1).
    #[default]
    FlowLeft,
    /// Farneback optical flow of the right view (t → t+1).
    FlowRight,
    /// Matching-cost volume fill (SAD block costs or census/Hamming).
    CostFill,
    /// Semi-global aggregation of the cost volume along the path directions.
    SgmAggregate,
    /// Correspondence propagation along the two flow fields.
    Propagate,
    /// Narrow block-matching refinement around the propagated disparity.
    Refine,
    /// Key-frame (surrogate) DNN inference, SGM passes included.
    DnnInfer,
}

impl Stage {
    /// Number of stages (array dimension for per-stage accumulators).
    pub const COUNT: usize = 8;

    /// Every stage, in rendering order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::PyramidBuild,
        Stage::FlowLeft,
        Stage::FlowRight,
        Stage::CostFill,
        Stage::SgmAggregate,
        Stage::Propagate,
        Stage::Refine,
        Stage::DnnInfer,
    ];

    /// Stable snake_case name (Prometheus `stage` label, Chrome event name).
    pub fn name(self) -> &'static str {
        match self {
            Stage::PyramidBuild => "pyramid_build",
            Stage::FlowLeft => "flow_left",
            Stage::FlowRight => "flow_right",
            Stage::CostFill => "cost_fill",
            Stage::SgmAggregate => "sgm_aggregate",
            Stage::Propagate => "propagate",
            Stage::Refine => "refine",
            Stage::DnnInfer => "dnn_infer",
        }
    }

    /// Dense index of the stage in [`Stage::ALL`] order.
    pub fn index(self) -> usize {
        match self {
            Stage::PyramidBuild => 0,
            Stage::FlowLeft => 1,
            Stage::FlowRight => 2,
            Stage::CostFill => 3,
            Stage::SgmAggregate => 4,
            Stage::Propagate => 5,
            Stage::Refine => 6,
            Stage::DnnInfer => 7,
        }
    }
}

/// What the tracer records, selected by the `ASV_TRACE` environment
/// variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record nothing; every tracer call is a cheap no-op.
    Off,
    /// Record the last [`TraceConfig::ring_frames`] frames into a
    /// preallocated ring — zero steady-state allocations.  The default.
    #[default]
    Ring,
    /// Ring plus an unbounded-ish (see [`FULL_MODE_FRAME_CAP`]) retention
    /// of every frame.  Allocates one frame record per frame — a capture
    /// tool for offline analysis, not a production mode.
    Full,
}

impl TraceMode {
    /// Stable lowercase name (mirrors the `ASV_TRACE` values).
    pub fn name(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Ring => "ring",
            TraceMode::Full => "full",
        }
    }

    /// Parses an `ASV_TRACE` value; unknown values fall back to the
    /// default (`ring`), like an unknown `ASV_SIMD` tier falls back to
    /// runtime dispatch.
    pub fn parse(value: &str) -> TraceMode {
        match value.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" | "false" => TraceMode::Off,
            "full" | "2" => TraceMode::Full,
            _ => TraceMode::Ring,
        }
    }

    /// The process-wide mode from the `ASV_TRACE` environment variable,
    /// read once and cached (unset means [`TraceMode::Ring`]).
    pub fn from_env() -> TraceMode {
        static MODE: OnceLock<TraceMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("ASV_TRACE") {
            Ok(value) => TraceMode::parse(&value),
            Err(_) => TraceMode::Ring,
        })
    }
}

/// Tuning knobs of one [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// What to record (see [`TraceMode`]).
    pub mode: TraceMode,
    /// Frames retained by the ring (clamped to at least 1).
    pub ring_frames: usize,
    /// Frames slower than this many microseconds end-to-end are copied
    /// into the slow-frame retention ring; `None` disables forensics.
    pub slow_threshold_us: Option<u64>,
    /// Slow frames retained (the most recent ones win; clamped to at
    /// least 1 when forensics is enabled).
    pub slow_retained: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            mode: TraceMode::default(),
            ring_frames: 64,
            slow_threshold_us: None,
            slow_retained: 8,
        }
    }
}

impl TraceConfig {
    /// The environment-driven configuration: mode from `ASV_TRACE`,
    /// slow-frame threshold from `ASV_TRACE_SLOW_US` (microseconds), both
    /// read once per process and cached.
    pub fn from_env() -> Self {
        static SLOW_US: OnceLock<Option<u64>> = OnceLock::new();
        let slow_threshold_us = *SLOW_US.get_or_init(|| {
            std::env::var("ASV_TRACE_SLOW_US")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        });
        Self {
            mode: TraceMode::from_env(),
            slow_threshold_us,
            ..Self::default()
        }
    }

    /// A disabled configuration (every tracer call is a no-op).
    pub fn off() -> Self {
        Self {
            mode: TraceMode::Off,
            ..Self::default()
        }
    }
}

/// One recorded span: a stage, its frame-relative start and its duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanRecord {
    /// The pipeline stage this span measures.
    pub stage: Stage,
    /// Start, nanoseconds since the frame's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth: 1 for a top-level stage of the frame, 2 for a
    /// sub-stage (e.g. the pyramid build inside a flow estimation).
    pub depth: u8,
}

impl SpanRecord {
    /// End of the span, nanoseconds since the frame's epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// The span tree of one fully processed frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameTrace {
    /// Zero-based index of the frame within its session's stream.
    pub frame_index: u64,
    /// Frame start, nanoseconds since the process-wide trace origin (so
    /// frames of different sessions share one timeline).
    pub epoch_ns: u64,
    /// End-to-end frame latency in nanoseconds.
    pub total_ns: u64,
    /// Whether the frame ran the key-frame (DNN) path.
    pub key_frame: bool,
    /// The recorded spans, in recording order.
    pub spans: Vec<SpanRecord>,
}

impl FrameTrace {
    fn with_span_capacity() -> Self {
        Self {
            spans: Vec::with_capacity(MAX_SPANS_PER_FRAME), // lint: alloc-ok(span buffer sized once; ring slots reuse it)
            ..Self::default()
        }
    }

    /// Copies `other` into `self`, reusing the span buffer's capacity
    /// (allocation-free when both were sized by the same tracer).
    fn copy_from(&mut self, other: &FrameTrace) {
        self.frame_index = other.frame_index;
        self.epoch_ns = other.epoch_ns;
        self.total_ns = other.total_ns;
        self.key_frame = other.key_frame;
        self.spans.clear();
        self.spans.extend_from_slice(&other.spans);
    }

    /// Summed span duration per stage, nanoseconds, indexed by
    /// [`Stage::index`].  A stage invoked twice in one frame (e.g. the two
    /// SGM passes of a left-right check) contributes both spans.
    pub fn stage_totals(&self) -> [u64; Stage::COUNT] {
        let mut totals = [0u64; Stage::COUNT];
        for span in &self.spans {
            totals[span.stage.index()] = totals[span.stage.index()].saturating_add(span.dur_ns);
        }
        totals
    }
}

/// The process-wide trace origin: every [`FrameTrace::epoch_ns`] is
/// relative to this instant, so traces of concurrent sessions align on one
/// Chrome timeline.
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Handle of an open span, returned by [`Tracer::enter`] and closed by
/// [`Tracer::exit`].
#[derive(Debug, Clone, Copy)]
#[must_use = "an unclosed span records zero duration"]
pub struct SpanHandle(u16);

/// The disabled-span sentinel.
const NO_SPAN: u16 = u16::MAX;

/// Per-session span recorder.  One tracer belongs to one stream's
/// workspace; it is not thread-safe and never needs to be — a session is
/// only ever stepped by one worker at a time.
///
/// Lifecycle per frame: [`Tracer::frame_start`], any mix of
/// [`Tracer::enter`]/[`Tracer::exit`], [`Tracer::record_at`] and
/// [`Tracer::harvest`], then [`Tracer::frame_end`].  A frame aborted by an
/// error needs no cleanup: the next `frame_start` resets the partial
/// record.
#[derive(Debug)]
pub struct Tracer {
    config: TraceConfig,
    /// Instant of the current frame's start.
    frame_epoch: Instant,
    in_frame: bool,
    warmed: bool,
    frame_index: u64,
    frames_recorded: u64,
    dropped_spans: u64,
    dropped_frames: u64,
    current: FrameTrace,
    /// Stack of indices into `current.spans` for the open spans.
    open: Vec<u16>,
    ring: Vec<FrameTrace>,
    ring_next: usize,
    ring_len: usize,
    slow: Vec<FrameTrace>,
    slow_next: usize,
    slow_len: usize,
    full: Vec<FrameTrace>,
}

impl Tracer {
    /// Creates a tracer.  Nothing is allocated until the first
    /// [`Tracer::frame_start`] (which sizes the ring once); a disabled
    /// tracer never allocates.
    pub fn new(config: TraceConfig) -> Self {
        Self {
            config,
            frame_epoch: Instant::now(),
            in_frame: false,
            warmed: false,
            frame_index: 0,
            frames_recorded: 0,
            dropped_spans: 0,
            dropped_frames: 0,
            current: FrameTrace::default(),
            open: Vec::new(),
            ring: Vec::new(),
            ring_next: 0,
            ring_len: 0,
            slow: Vec::new(),
            slow_next: 0,
            slow_len: 0,
            full: Vec::new(),
        }
    }

    /// A tracer configured from the `ASV_TRACE` / `ASV_TRACE_SLOW_US`
    /// environment variables.
    pub fn from_env() -> Self {
        Self::new(TraceConfig::from_env())
    }

    /// The tracer's configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Whether the tracer records anything at all.
    pub fn enabled(&self) -> bool {
        self.config.mode != TraceMode::Off
    }

    fn active(&self) -> bool {
        self.in_frame && self.enabled()
    }

    /// One-time buffer sizing: the warm-up allocation every pooled
    /// structure in this workspace performs on its first frame.
    fn warm(&mut self) {
        self.warmed = true;
        self.current = FrameTrace::with_span_capacity();
        self.open.reserve_exact(MAX_SPAN_DEPTH);
        let ring_frames = self.config.ring_frames.max(1);
        self.ring.reserve_exact(ring_frames);
        for _ in 0..ring_frames {
            self.ring.push(FrameTrace::with_span_capacity());
        }
        if self.config.slow_threshold_us.is_some() {
            let retained = self.config.slow_retained.max(1);
            self.slow.reserve_exact(retained);
            for _ in 0..retained {
                self.slow.push(FrameTrace::with_span_capacity());
            }
        }
    }

    /// Begins a frame, discarding any partial record of an aborted one.
    pub fn frame_start(&mut self) {
        if !self.enabled() {
            return;
        }
        if !self.warmed {
            self.warm();
        }
        self.frame_epoch = Instant::now();
        self.current.epoch_ns = self
            .frame_epoch
            .saturating_duration_since(origin())
            .as_nanos() as u64;
        self.current.spans.clear();
        self.open.clear();
        self.in_frame = true;
    }

    /// Opens a span for `stage` at the current nesting depth.  Returns a
    /// no-op handle when disabled or when the frame's span budget
    /// ([`MAX_SPANS_PER_FRAME`]) is exhausted.
    pub fn enter(&mut self, stage: Stage) -> SpanHandle {
        if !self.active() {
            return SpanHandle(NO_SPAN);
        }
        if self.current.spans.len() >= MAX_SPANS_PER_FRAME || self.open.len() >= MAX_SPAN_DEPTH {
            self.dropped_spans += 1;
            return SpanHandle(NO_SPAN);
        }
        let index = self.current.spans.len() as u16;
        self.current.spans.push(SpanRecord {
            stage,
            start_ns: self.frame_epoch.elapsed().as_nanos() as u64,
            dur_ns: 0,
            depth: self.open.len() as u8 + 1,
        });
        self.open.push(index);
        SpanHandle(index)
    }

    /// Closes a span (and, defensively, any deeper span left open above
    /// it, so a forgotten exit cannot corrupt later nesting).
    pub fn exit(&mut self, handle: SpanHandle) {
        if handle.0 == NO_SPAN || !self.active() {
            return;
        }
        let end_ns = self.frame_epoch.elapsed().as_nanos() as u64;
        while let Some(top) = self.open.pop() {
            let span = &mut self.current.spans[top as usize];
            span.dur_ns = end_ns.saturating_sub(span.start_ns);
            if top == handle.0 {
                break;
            }
        }
    }

    /// Records a span measured elsewhere (e.g. inside a rayon closure that
    /// ran on a pool worker thread) from explicit instants.  The span is
    /// placed `extra_depth` levels below the current nesting depth.
    pub fn record_at(&mut self, stage: Stage, start: Instant, duration: Duration, extra_depth: u8) {
        if !self.active() {
            return;
        }
        if self.current.spans.len() >= MAX_SPANS_PER_FRAME {
            self.dropped_spans += 1;
            return;
        }
        let start_ns = start.saturating_duration_since(self.frame_epoch).as_nanos() as u64;
        self.current.spans.push(SpanRecord {
            stage,
            start_ns,
            dur_ns: duration.as_nanos() as u64,
            depth: (self.open.len() as u8)
                .saturating_add(1)
                .saturating_add(extra_depth),
        });
    }

    /// Replays every entry a kernel recorded into its workspace's
    /// [`KernelTimings`] as spans of the current frame.
    pub fn harvest(&mut self, timings: &KernelTimings) {
        if !self.active() {
            return;
        }
        for &(stage, start, duration, extra_depth) in timings.entries() {
            self.record_at(stage, start, duration, extra_depth);
        }
    }

    /// Finishes the current frame: closes dangling spans, stamps the total
    /// latency, applies slow-frame retention and rotates the record into
    /// the ring.
    pub fn frame_end(&mut self, key_frame: bool) {
        if !self.active() {
            self.in_frame = false;
            return;
        }
        let end_ns = self.frame_epoch.elapsed().as_nanos() as u64;
        while let Some(top) = self.open.pop() {
            let span = &mut self.current.spans[top as usize];
            span.dur_ns = end_ns.saturating_sub(span.start_ns);
        }
        self.current.total_ns = end_ns;
        self.current.key_frame = key_frame;
        self.current.frame_index = self.frame_index;
        self.frame_index += 1;
        self.frames_recorded += 1;
        self.in_frame = false;

        if let Some(threshold_us) = self.config.slow_threshold_us {
            if self.current.total_ns >= threshold_us.saturating_mul(1_000) && !self.slow.is_empty()
            {
                let slot = &mut self.slow[self.slow_next];
                slot.copy_from(&self.current);
                self.slow_next = (self.slow_next + 1) % self.slow.len();
                self.slow_len = (self.slow_len + 1).min(self.slow.len());
            }
        }
        if self.config.mode == TraceMode::Full {
            if self.full.len() < FULL_MODE_FRAME_CAP {
                self.full.push(self.current.clone()); // lint: alloc-ok(full-trace mode only, capped at FULL_MODE_FRAME_CAP)
            } else {
                self.dropped_frames += 1;
            }
        }
        let slot_count = self.ring.len();
        std::mem::swap(&mut self.current, &mut self.ring[self.ring_next]);
        self.ring_next = (self.ring_next + 1) % slot_count;
        self.ring_len = (self.ring_len + 1).min(slot_count);
    }

    /// The most recently finished frame, if any frame finished yet.
    pub fn last_frame(&self) -> Option<&FrameTrace> {
        if self.ring_len == 0 {
            return None;
        }
        let slot_count = self.ring.len();
        Some(&self.ring[(self.ring_next + slot_count - 1) % slot_count])
    }

    /// The retained ring frames, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &FrameTrace> {
        let slot_count = self.ring.len().max(1);
        let start = (self.ring_next + slot_count - self.ring_len) % slot_count;
        (0..self.ring_len).map(move |i| &self.ring[(start + i) % slot_count])
    }

    /// The retained slow frames (forensics), oldest first.
    pub fn slow_frames(&self) -> impl Iterator<Item = &FrameTrace> {
        let slot_count = self.slow.len().max(1);
        let start = (self.slow_next + slot_count - self.slow_len) % slot_count;
        (0..self.slow_len).map(move |i| &self.slow[(start + i) % slot_count])
    }

    /// Every frame retained by [`TraceMode::Full`], oldest first.
    pub fn full_frames(&self) -> &[FrameTrace] {
        &self.full
    }

    /// Frames recorded over the tracer's lifetime (not just retained).
    pub fn frames_recorded(&self) -> u64 {
        self.frames_recorded
    }

    /// Spans discarded because a frame exceeded [`MAX_SPANS_PER_FRAME`] or
    /// [`MAX_SPAN_DEPTH`].
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    /// Frames full mode discarded past [`FULL_MODE_FRAME_CAP`].
    pub fn dropped_frames(&self) -> u64 {
        self.dropped_frames
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Kernel-side span staging: `(stage, start, duration, extra_depth)`
/// entries recorded by kernel crates into the workspace they already
/// borrow, harvested into a [`Tracer`] by the pipeline layer
/// ([`Tracer::harvest`]).
///
/// Recording is mode-agnostic (two `Instant::now()` calls per kernel,
/// noise against millisecond-scale kernels) and works on any thread — in
/// the parallel build the rayon shim may run a closure on a persistent
/// pool worker, where thread-local storage would silently lose spans.
/// The buffer is sized once on first use and then reused; entries past
/// [`MAX_KERNEL_TIMINGS`] are dropped.
#[derive(Debug, Clone, Default)]
pub struct KernelTimings {
    entries: Vec<(Stage, Instant, Duration, u8)>,
}

impl KernelTimings {
    /// Creates an empty staging buffer (no allocation until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Discards staged entries, keeping the buffer's capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Stages one measured span.  `extra_depth` is the nesting level below
    /// the harvesting call site (0 = sibling of the harvest point's depth).
    pub fn record(&mut self, stage: Stage, start: Instant, duration: Duration, extra_depth: u8) {
        if self.entries.capacity() == 0 {
            self.entries.reserve_exact(MAX_KERNEL_TIMINGS);
        }
        if self.entries.len() >= MAX_KERNEL_TIMINGS {
            return;
        }
        self.entries.push((stage, start, duration, extra_depth));
    }

    /// Measures `body` and stages it as one span of `stage`.
    pub fn measure<R>(&mut self, stage: Stage, extra_depth: u8, body: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = body();
        self.record(stage, start, start.elapsed(), extra_depth);
        result
    }

    /// The staged entries, in recording order.
    pub fn entries(&self) -> &[(Stage, Instant, Duration, u8)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_config(frames: usize) -> TraceConfig {
        TraceConfig {
            mode: TraceMode::Ring,
            ring_frames: frames,
            ..TraceConfig::default()
        }
    }

    #[test]
    fn stage_indices_are_dense_and_names_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert!(seen.insert(stage.name()), "duplicate name {}", stage.name());
        }
        assert_eq!(seen.len(), Stage::COUNT);
    }

    #[test]
    fn mode_parsing_matches_the_documented_values() {
        assert_eq!(TraceMode::parse("off"), TraceMode::Off);
        assert_eq!(TraceMode::parse("0"), TraceMode::Off);
        assert_eq!(TraceMode::parse("NONE"), TraceMode::Off);
        assert_eq!(TraceMode::parse("ring"), TraceMode::Ring);
        assert_eq!(TraceMode::parse("Full"), TraceMode::Full);
        assert_eq!(TraceMode::parse("garbage"), TraceMode::Ring);
    }

    #[test]
    fn spans_nest_and_rotate_through_the_ring() {
        let mut tracer = Tracer::new(ring_config(2));
        for frame in 0..3u64 {
            tracer.frame_start();
            let outer = tracer.enter(Stage::DnnInfer);
            let inner = tracer.enter(Stage::CostFill);
            tracer.exit(inner);
            tracer.exit(outer);
            tracer.frame_end(true);
            assert_eq!(tracer.last_frame().unwrap().frame_index, frame);
        }
        assert_eq!(tracer.frames_recorded(), 3);
        let retained: Vec<u64> = tracer.frames().map(|f| f.frame_index).collect();
        assert_eq!(retained, vec![1, 2], "ring keeps the newest frames");
        let last = tracer.last_frame().unwrap();
        assert_eq!(last.spans.len(), 2);
        assert_eq!(last.spans[0].depth, 1);
        assert_eq!(last.spans[1].depth, 2);
        assert!(last.spans[1].start_ns >= last.spans[0].start_ns);
        assert!(last.spans.iter().all(|s| s.end_ns() <= last.total_ns));
        let totals = last.stage_totals();
        assert!(totals[Stage::DnnInfer.index()] >= totals[Stage::CostFill.index()]);
    }

    #[test]
    fn disabled_tracer_records_nothing_and_never_allocates_slots() {
        let mut tracer = Tracer::new(TraceConfig::off());
        tracer.frame_start();
        let span = tracer.enter(Stage::Refine);
        tracer.exit(span);
        tracer.frame_end(false);
        assert!(tracer.last_frame().is_none());
        assert_eq!(tracer.frames_recorded(), 0);
        assert!(tracer.frames().next().is_none());
    }

    #[test]
    fn steady_state_recording_is_allocation_free_by_capacity() {
        // Structural proxy for the end-to-end allocation test in `asv`:
        // after the warm-up frame, no buffer ever grows.
        let mut tracer = Tracer::new(ring_config(4));
        tracer.frame_start();
        tracer.frame_end(true);
        let spans_cap = tracer.current.spans.capacity();
        let ring_ptr = tracer.ring.as_ptr() as usize;
        for _ in 0..40 {
            tracer.frame_start();
            for _ in 0..(MAX_SPANS_PER_FRAME + 4) {
                let span = tracer.enter(Stage::Propagate);
                tracer.exit(span);
            }
            tracer.frame_end(false);
        }
        assert!(tracer.dropped_spans() > 0, "over-budget spans are dropped");
        assert_eq!(tracer.current.spans.capacity(), spans_cap);
        assert_eq!(tracer.ring.as_ptr() as usize, ring_ptr);
        for frame in tracer.frames() {
            assert!(frame.spans.capacity() <= MAX_SPANS_PER_FRAME);
            assert_eq!(frame.spans.len(), MAX_SPANS_PER_FRAME);
        }
    }

    #[test]
    fn slow_frames_are_retained_with_their_spans() {
        let mut tracer = Tracer::new(TraceConfig {
            mode: TraceMode::Ring,
            ring_frames: 1,
            slow_threshold_us: Some(0),
            slow_retained: 2,
        });
        for _ in 0..3 {
            tracer.frame_start();
            let span = tracer.enter(Stage::Refine);
            tracer.exit(span);
            tracer.frame_end(false);
        }
        let slow: Vec<&FrameTrace> = tracer.slow_frames().collect();
        assert_eq!(slow.len(), 2, "retention ring keeps the newest slow frames");
        assert_eq!(slow[0].frame_index, 1);
        assert_eq!(slow[1].frame_index, 2);
        assert!(slow.iter().all(|f| f.spans.len() == 1));
    }

    #[test]
    fn full_mode_retains_every_frame() {
        let mut tracer = Tracer::new(TraceConfig {
            mode: TraceMode::Full,
            ring_frames: 2,
            ..TraceConfig::default()
        });
        for _ in 0..5 {
            tracer.frame_start();
            tracer.frame_end(false);
        }
        assert_eq!(tracer.full_frames().len(), 5);
        assert_eq!(tracer.frames().count(), 2);
    }

    #[test]
    fn aborted_frames_are_discarded_by_the_next_start() {
        let mut tracer = Tracer::new(ring_config(4));
        tracer.frame_start();
        let _ = tracer.enter(Stage::FlowLeft); // error path: no exit, no end
        tracer.frame_start();
        tracer.frame_end(false);
        assert_eq!(tracer.frames_recorded(), 1);
        assert!(tracer.last_frame().unwrap().spans.is_empty());
    }

    #[test]
    fn kernel_timings_are_harvested_at_the_requested_depth() {
        let mut timings = KernelTimings::new();
        let start = Instant::now();
        timings.record(Stage::PyramidBuild, start, Duration::from_micros(10), 1);
        timings.record(Stage::FlowLeft, start, Duration::from_micros(50), 0);
        let mut tracer = Tracer::new(ring_config(4));
        tracer.frame_start();
        tracer.harvest(&timings);
        tracer.frame_end(false);
        let frame = tracer.last_frame().unwrap();
        assert_eq!(frame.spans.len(), 2);
        assert_eq!(frame.spans[0].depth, 2);
        assert_eq!(frame.spans[1].depth, 1);
        assert_eq!(frame.stage_totals()[Stage::FlowLeft.index()], 50_000);
    }

    #[test]
    fn kernel_timings_cap_and_clear_keep_capacity() {
        let mut timings = KernelTimings::new();
        let start = Instant::now();
        for _ in 0..(MAX_KERNEL_TIMINGS + 5) {
            timings.record(Stage::CostFill, start, Duration::ZERO, 0);
        }
        assert_eq!(timings.entries().len(), MAX_KERNEL_TIMINGS);
        let capacity = {
            timings.clear();
            timings.entries.capacity()
        };
        assert_eq!(capacity, MAX_KERNEL_TIMINGS);
        let value = timings.measure(Stage::Refine, 0, || 41 + 1);
        assert_eq!(value, 42);
        assert_eq!(timings.entries().len(), 1);
    }
}
