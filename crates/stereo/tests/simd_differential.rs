//! Differential bit-identity tests of the SIMD kernel tiers.
//!
//! Every SIMD path in `asv_stereo::simd` promises *bit-identical* results to
//! its scalar reference — the dispatch level must never change a disparity
//! map.  These properties draw random inputs (with widths straddling the
//! 8/16/32-lane remainder boundaries) and compare every available tier
//! against the scalar tier, bit for bit.
//!
//! CI runs this suite twice: once with the default dispatch and once with
//! `ASV_SIMD=scalar`, plus a `-C target-feature=+avx2` build, so the
//! comparisons are exercised on every tier the runner supports.

use asv_image::Image;
use asv_stereo::census::{CensusCostVolume, CensusDescriptors, CensusWindow};
use asv_stereo::simd::{self, available_levels, SimdLevel};
use proptest::prelude::*;

/// The non-scalar tiers this machine can run (empty on non-x86 hosts).
fn simd_levels() -> Vec<SimdLevel> {
    available_levels()
        .iter()
        .copied()
        .filter(|&l| l != SimdLevel::Scalar)
        .collect()
}

fn to_f32(v: &[u32]) -> Vec<f32> {
    v.iter().map(|&x| (x % 256) as f32).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn abs_diff_row_is_bit_identical_across_tiers(
        lrow in collection::vec(0u32..256, 1..70),
        rbits in collection::vec(0u32..256, 1..70),
        d in 0usize..40,
        r in 0usize..6,
    ) {
        let lrow = to_f32(&lrow);
        let mut rrow = to_f32(&rbits);
        rrow.resize(lrow.len(), 0.5);
        let mut reference = vec![0.0f32; lrow.len() + 2 * r];
        simd::abs_diff_row(SimdLevel::Scalar, &lrow, &rrow, d, r, &mut reference);
        for level in simd_levels() {
            let mut out = vec![f32::NAN; reference.len()];
            simd::abs_diff_row(level, &lrow, &rrow, d, r, &mut out);
            for (i, (a, b)) in reference.iter().zip(&out).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{} abs_diff_row[{}]", level.name(), i
                );
            }
        }
    }

    #[test]
    fn hwindow_sums_is_bit_identical_across_tiers(
        diff in collection::vec(0u32..256, 1..120),
        window in 1usize..12,
    ) {
        let diff = to_f32(&diff);
        prop_assume!(diff.len() >= window);
        let out_len = diff.len() - window + 1;
        let mut reference = vec![0.0f32; out_len];
        simd::hwindow_sums(SimdLevel::Scalar, &diff, window, &mut reference);
        for level in simd_levels() {
            let mut out = vec![f32::NAN; out_len];
            simd::hwindow_sums(level, &diff, window, &mut out);
            for (i, (a, b)) in reference.iter().zip(&out).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{} hwindow_sums[{}]", level.name(), i
                );
            }
        }
    }

    #[test]
    fn add_assign_rows_is_bit_identical_across_tiers(
        acc in collection::vec(0u32..256, 1..100),
        row_bits in collection::vec(0u32..256, 1..100),
    ) {
        let acc = to_f32(&acc);
        let mut row = to_f32(&row_bits);
        row.resize(acc.len(), 1.25);
        let mut reference = acc.clone();
        simd::add_assign_rows(SimdLevel::Scalar, &mut reference, &row);
        for level in simd_levels() {
            let mut out = acc.clone();
            simd::add_assign_rows(level, &mut out, &row);
            for (i, (a, b)) in reference.iter().zip(&out).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{} add_assign_rows[{}]", level.name(), i
                );
            }
        }
    }

    #[test]
    fn census_rows_are_bit_identical_across_tiers(
        pixels in collection::vec(0u32..256, 9..200),
        width in 1usize..70,
        which in 0usize..3,
    ) {
        let window = [CensusWindow::W5x5, CensusWindow::W7x7, CensusWindow::W9x7][which];
        let (rx, ry) = (window.rx(), window.ry());
        let height = 2 * ry + 1;
        let mut pixels = to_f32(&pixels);
        pixels.resize(width * height, 7.0);
        let rows: Vec<&[f32]> = pixels.chunks(width).collect();
        if window.uses_u32() {
            let mut reference = vec![0u32; width];
            simd::census_row_u32(SimdLevel::Scalar, &rows, rx, &mut reference);
            for level in simd_levels() {
                let mut out = vec![u32::MAX; width];
                simd::census_row_u32(level, &rows, rx, &mut out);
                prop_assert_eq!(&reference, &out, "{} census_row_u32", level.name());
            }
        } else {
            let mut reference = vec![0u64; width];
            simd::census_row_u64(SimdLevel::Scalar, &rows, rx, &mut reference);
            for level in simd_levels() {
                let mut out = vec![u64::MAX; width];
                simd::census_row_u64(level, &rows, rx, &mut out);
                prop_assert_eq!(&reference, &out, "{} census_row_u64", level.name());
            }
        }
    }

    #[test]
    fn hamming_rows_are_bit_identical_across_tiers(
        lbits in collection::vec(0u64..u64::MAX, 1..70),
        rbits in collection::vec(0u64..u64::MAX, 1..70),
        levels in 1usize..40,
    ) {
        let ldesc = lbits;
        let mut rdesc = rbits;
        rdesc.resize(ldesc.len(), 0xDEAD_BEEF_F00D_u64);
        let mut reference = vec![0u8; ldesc.len() * levels];
        simd::hamming_row_u64(SimdLevel::Scalar, &ldesc, &rdesc, levels, &mut reference);
        for level in simd_levels() {
            let mut out = vec![u8::MAX; reference.len()];
            simd::hamming_row_u64(level, &ldesc, &rdesc, levels, &mut out);
            prop_assert_eq!(&reference, &out, "{} hamming_row_u64", level.name());
        }

        let ldesc32: Vec<u32> = ldesc.iter().map(|&v| v as u32).collect();
        let rdesc32: Vec<u32> = rdesc.iter().map(|&v| v as u32).collect();
        let mut reference32 = vec![0u8; ldesc32.len() * levels];
        simd::hamming_row_u32(SimdLevel::Scalar, &ldesc32, &rdesc32, levels, &mut reference32);
        for level in simd_levels() {
            let mut out = vec![u8::MAX; reference32.len()];
            simd::hamming_row_u32(level, &ldesc32, &rdesc32, levels, &mut out);
            prop_assert_eq!(&reference32, &out, "{} hamming_row_u32", level.name());
        }
    }

    #[test]
    fn census_aggregate_span_is_bit_identical_across_tiers(
        prev_bits in collection::vec(0u32..65536, 1..70),
        cost_bits in collection::vec(0u32..64, 1..70),
        p1 in 0u32..65536,
        p2 in 0u32..65536,
    ) {
        let prev: Vec<u16> = prev_bits.iter().map(|&v| v as u16).collect();
        let mut cost: Vec<u8> = cost_bits.iter().map(|&v| v as u8).collect();
        cost.resize(prev.len(), 3);
        let (p1, p2) = (p1 as u16, p2 as u16);
        let mut reference = vec![0u16; prev.len()];
        simd::census_aggregate_span(SimdLevel::Scalar, &prev, &cost, p1, p2, &mut reference);
        for level in simd_levels() {
            let mut out = vec![u16::MAX; prev.len()];
            simd::census_aggregate_span(level, &prev, &cost, p1, p2, &mut out);
            prop_assert_eq!(&reference, &out, "{} census_aggregate_span", level.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end differential: the full census transform + Hamming cost
    /// volume, image in, volume out, per tier.
    #[test]
    fn census_cost_volume_is_bit_identical_across_tiers(
        pixels in collection::vec(0u32..256, 1..600),
        width in 4usize..40,
        height in 4usize..24,
        max_disparity in 1usize..24,
        which in 0usize..3,
    ) {
        let window = [CensusWindow::W5x5, CensusWindow::W7x7, CensusWindow::W9x7][which];
        let mut pixels = to_f32(&pixels);
        pixels.resize(width * height, 11.0);
        let left = Image::from_vec(width, height, pixels.clone()).unwrap();
        let mut shifted = pixels;
        shifted.rotate_right(3);
        let right = Image::from_vec(width, height, shifted).unwrap();

        let reference = volume_at(&left, &right, window, max_disparity, SimdLevel::Scalar);
        for level in simd_levels() {
            let volume = volume_at(&left, &right, window, max_disparity, level);
            for y in 0..height {
                for x in 0..width {
                    for d in 0..reference.num_disparities() {
                        prop_assert_eq!(
                            reference.cost(x, y, d),
                            volume.cost(x, y, d),
                            "{} cost({}, {}, {})", level.name(), x, y, d
                        );
                    }
                }
            }
        }
    }
}

fn volume_at(
    left: &Image,
    right: &Image,
    window: CensusWindow,
    max_disparity: usize,
    level: SimdLevel,
) -> CensusCostVolume {
    let mut dl = CensusDescriptors::new();
    let mut dr = CensusDescriptors::new();
    dl.fill_from(left, window, level);
    dr.fill_from(right, window, level);
    let mut volume = CensusCostVolume::new();
    volume.fill_from_descriptors(&dl, &dr, max_disparity, level);
    volume
}
