//! Stereo triangulation geometry (Eq. 1 of the ASV paper) and the
//! depth-sensitivity analysis of Fig. 4.

use serde::{Deserialize, Serialize};

/// A rectified stereo camera rig described by its intrinsic parameters.
///
/// Depth is recovered from disparity via similar triangles (Eq. 1 of the
/// paper): `depth = baseline · focal_length / disparity`, where disparity is
/// expressed in metres on the image plane (pixels × pixel size).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraRig {
    /// Distance between the two camera optical centres, in metres.
    pub baseline_m: f64,
    /// Focal length of both cameras, in metres.
    pub focal_length_m: f64,
    /// Physical size of one pixel on the sensor, in metres.
    pub pixel_size_m: f64,
}

impl CameraRig {
    /// Creates a rig from baseline, focal length and pixel size in metres.
    pub fn new(baseline_m: f64, focal_length_m: f64, pixel_size_m: f64) -> Self {
        Self {
            baseline_m,
            focal_length_m,
            pixel_size_m,
        }
    }

    /// The industry-standard Bumblebee2 rig used in Fig. 4 of the paper:
    /// baseline 120 mm, focal length 2.5 mm, pixel size 7.4 µm.
    pub fn bumblebee2() -> Self {
        Self {
            baseline_m: 0.120,
            focal_length_m: 2.5e-3,
            pixel_size_m: 7.4e-6,
        }
    }

    /// Focal length expressed in pixels.
    pub fn focal_length_pixels(&self) -> f64 {
        self.focal_length_m / self.pixel_size_m
    }

    /// Depth (metres) corresponding to a disparity given in pixels.
    ///
    /// A non-positive disparity corresponds to a point at infinity and
    /// returns `f64::INFINITY`.
    pub fn depth_from_disparity_pixels(&self, disparity_px: f64) -> f64 {
        if disparity_px <= 0.0 {
            return f64::INFINITY;
        }
        self.baseline_m * self.focal_length_m / (disparity_px * self.pixel_size_m)
    }

    /// Disparity in pixels corresponding to a depth in metres.
    ///
    /// A non-positive depth returns `f64::INFINITY`.
    pub fn disparity_pixels_from_depth(&self, depth_m: f64) -> f64 {
        if depth_m <= 0.0 {
            return f64::INFINITY;
        }
        self.baseline_m * self.focal_length_m / (depth_m * self.pixel_size_m)
    }

    /// Absolute depth estimation error (metres) caused by a disparity error of
    /// `disparity_error_px` pixels for an object at `distance_m` metres.
    ///
    /// This is the quantity plotted in Fig. 4 of the paper: even a
    /// few-tenths-of-a-pixel disparity error translates into metres of depth
    /// error at 30 m.
    pub fn depth_error_for_disparity_error(&self, distance_m: f64, disparity_error_px: f64) -> f64 {
        let true_disp = self.disparity_pixels_from_depth(distance_m);
        if !true_disp.is_finite() {
            return 0.0;
        }
        let biased = (true_disp - disparity_error_px).max(1e-9);
        let biased_depth = self.depth_from_disparity_pixels(biased);
        (biased_depth - distance_m).abs()
    }
}

impl Default for CameraRig {
    fn default() -> Self {
        Self::bumblebee2()
    }
}

/// One row of the Fig. 4 sensitivity curve: depth error at each probe
/// distance for a given disparity error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepthSensitivityPoint {
    /// Disparity error in pixels.
    pub disparity_error_px: f64,
    /// Depth error (metres) for each probed object distance.
    pub depth_errors_m: Vec<f64>,
}

/// Sweeps disparity error from 0 to `max_error_px` and reports the resulting
/// depth error at each of `distances_m` (the curves of Fig. 4).
pub fn depth_sensitivity_sweep(
    rig: &CameraRig,
    distances_m: &[f64],
    max_error_px: f64,
    steps: usize,
) -> Vec<DepthSensitivityPoint> {
    let steps = steps.max(2);
    (0..steps)
        .map(|i| {
            let e = max_error_px * i as f64 / (steps - 1) as f64;
            DepthSensitivityPoint {
                disparity_error_px: e,
                depth_errors_m: distances_m
                    .iter()
                    .map(|&d| rig.depth_error_for_disparity_error(d, e))
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_disparity_roundtrip() {
        let rig = CameraRig::bumblebee2();
        for &depth in &[1.0, 5.0, 10.0, 30.0] {
            let d = rig.disparity_pixels_from_depth(depth);
            let back = rig.depth_from_disparity_pixels(d);
            assert!((back - depth).abs() < 1e-9);
        }
    }

    #[test]
    fn bumblebee2_focal_length_in_pixels() {
        let rig = CameraRig::bumblebee2();
        // 2.5mm / 7.4um ≈ 338 pixels.
        assert!((rig.focal_length_pixels() - 337.8).abs() < 1.0);
    }

    #[test]
    fn degenerate_inputs_map_to_infinity() {
        let rig = CameraRig::bumblebee2();
        assert!(rig.depth_from_disparity_pixels(0.0).is_infinite());
        assert!(rig.depth_from_disparity_pixels(-1.0).is_infinite());
        assert!(rig.disparity_pixels_from_depth(0.0).is_infinite());
        assert_eq!(rig.depth_error_for_disparity_error(0.0, 0.1), 0.0);
    }

    #[test]
    fn figure4_error_magnitudes() {
        // The paper: two tenths of a pixel of disparity error yields roughly
        // 0.5 m – 5 m of depth error for objects between 10 m and 30 m.
        let rig = CameraRig::bumblebee2();
        let at_10m = rig.depth_error_for_disparity_error(10.0, 0.2);
        let at_30m = rig.depth_error_for_disparity_error(30.0, 0.2);
        assert!(at_10m > 0.3 && at_10m < 1.5, "10m error = {at_10m}");
        assert!(at_30m > 3.0 && at_30m < 8.0, "30m error = {at_30m}");
        // Farther objects are more sensitive.
        assert!(at_30m > at_10m);
    }

    #[test]
    fn depth_error_grows_monotonically_with_disparity_error() {
        let rig = CameraRig::bumblebee2();
        let mut prev = 0.0;
        for i in 0..10 {
            let e = rig.depth_error_for_disparity_error(15.0, 0.05 * i as f64);
            assert!(e >= prev);
            prev = e;
        }
    }

    #[test]
    fn sensitivity_sweep_shape() {
        let rig = CameraRig::bumblebee2();
        let sweep = depth_sensitivity_sweep(&rig, &[10.0, 15.0, 30.0], 0.2, 5);
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0].disparity_error_px, 0.0);
        assert!((sweep[4].disparity_error_px - 0.2).abs() < 1e-12);
        assert_eq!(sweep[0].depth_errors_m.len(), 3);
        // Zero disparity error ⇒ zero depth error.
        assert!(sweep[0].depth_errors_m.iter().all(|&e| e.abs() < 1e-9));
        // The 30 m curve lies above the 10 m curve everywhere.
        for point in &sweep[1..] {
            assert!(point.depth_errors_m[2] > point.depth_errors_m[0]);
        }
    }
}
