//! Per-pixel, per-disparity matching cost volumes.
//!
//! Both the classic matchers (block matching, SGM) and the DNN surrogate in
//! `asv-dnn` operate on a cost volume `C(x, y, d)`: the dissimilarity between
//! pixel `(x, y)` of the left image and pixel `(x - d, y)` of the right
//! image, aggregated over a square support window.

use crate::disparity::StereoError;
use crate::Result;
use asv_image::cost::{block_sad, BlockSpec};
use asv_image::Image;

/// A dense cost volume with disparities `0..=max_disparity`.
#[derive(Debug, Clone)]
pub struct CostVolume {
    width: usize,
    height: usize,
    max_disparity: usize,
    /// Row-major `[y][x][d]` costs flattened into one vector.
    costs: Vec<f32>,
}

impl CostVolume {
    /// Builds a SAD cost volume from a rectified pair.
    ///
    /// # Errors
    ///
    /// Returns [`StereoError::DimensionMismatch`] when the images differ in
    /// size and [`StereoError::InvalidParameter`] when they are empty.
    pub fn from_pair(
        left: &Image,
        right: &Image,
        max_disparity: usize,
        block: BlockSpec,
    ) -> Result<Self> {
        if left.width() != right.width() || left.height() != right.height() {
            return Err(StereoError::dimension_mismatch(format!(
                "{}x{} vs {}x{}",
                left.width(),
                left.height(),
                right.width(),
                right.height()
            )));
        }
        if left.is_empty() {
            return Err(StereoError::invalid_parameter("cannot build a cost volume from empty images"));
        }
        let width = left.width();
        let height = left.height();
        let levels = max_disparity + 1;
        let mut costs = vec![0.0f32; width * height * levels];
        for y in 0..height {
            for x in 0..width {
                for d in 0..levels {
                    let cost = block_sad(
                        left,
                        right,
                        x as isize,
                        y as isize,
                        x as isize - d as isize,
                        y as isize,
                        block,
                    );
                    costs[(y * width + x) * levels + d] = cost;
                }
            }
        }
        Ok(Self { width, height, max_disparity, costs })
    }

    /// Volume width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Volume height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Largest disparity hypothesis stored.
    pub fn max_disparity(&self) -> usize {
        self.max_disparity
    }

    /// Number of disparity hypotheses (`max_disparity + 1`).
    pub fn num_disparities(&self) -> usize {
        self.max_disparity + 1
    }

    /// Cost of hypothesis `d` at pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates or disparity are out of range.
    #[inline]
    pub fn cost(&self, x: usize, y: usize, d: usize) -> f32 {
        assert!(x < self.width && y < self.height && d <= self.max_disparity);
        self.costs[(y * self.width + x) * self.num_disparities() + d]
    }

    /// Mutable access to the cost of hypothesis `d` at pixel `(x, y)`.
    #[inline]
    pub fn cost_mut(&mut self, x: usize, y: usize, d: usize) -> &mut f32 {
        assert!(x < self.width && y < self.height && d <= self.max_disparity);
        let levels = self.num_disparities();
        &mut self.costs[(y * self.width + x) * levels + d]
    }

    /// Winner-take-all disparity at pixel `(x, y)` with optional parabolic
    /// sub-pixel interpolation around the minimum.
    pub fn winner_take_all(&self, x: usize, y: usize, subpixel: bool) -> f32 {
        let levels = self.num_disparities();
        let mut best_d = 0usize;
        let mut best_cost = f32::INFINITY;
        for d in 0..levels {
            let c = self.cost(x, y, d);
            if c < best_cost {
                best_cost = c;
                best_d = d;
            }
        }
        if !subpixel || best_d == 0 || best_d + 1 >= levels {
            return best_d as f32;
        }
        let c0 = self.cost(x, y, best_d - 1);
        let c1 = best_cost;
        let c2 = self.cost(x, y, best_d + 1);
        let denom = c0 - 2.0 * c1 + c2;
        if denom.abs() < 1e-9 {
            return best_d as f32;
        }
        let offset = 0.5 * (c0 - c2) / denom;
        best_d as f32 + offset.clamp(-0.5, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Left image with a constant-disparity shift of 4 between the pair.
    fn shifted_pair(width: usize, height: usize, disparity: usize) -> (Image, Image) {
        let right = Image::from_fn(width, height, |x, y| ((x * 7 + y * 3) % 23) as f32);
        let left = Image::from_fn(width, height, |x, y| {
            right.at_clamped(x as isize - disparity as isize, y as isize)
        });
        (left, right)
    }

    #[test]
    fn volume_dimensions() {
        let (l, r) = shifted_pair(20, 10, 4);
        let v = CostVolume::from_pair(&l, &r, 8, BlockSpec::new(1)).unwrap();
        assert_eq!(v.width(), 20);
        assert_eq!(v.height(), 10);
        assert_eq!(v.max_disparity(), 8);
        assert_eq!(v.num_disparities(), 9);
    }

    #[test]
    fn minimum_cost_is_at_true_disparity() {
        let (l, r) = shifted_pair(32, 16, 4);
        let v = CostVolume::from_pair(&l, &r, 8, BlockSpec::new(2)).unwrap();
        // Check interior pixels (away from the left border where the shift
        // clamps).
        for y in 4..12 {
            for x in 12..28 {
                let wta = v.winner_take_all(x, y, false);
                assert_eq!(wta, 4.0, "pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn cost_at_truth_is_zero() {
        let (l, r) = shifted_pair(32, 16, 5);
        let v = CostVolume::from_pair(&l, &r, 8, BlockSpec::new(1)).unwrap();
        assert!(v.cost(16, 8, 5) < 1e-6);
        assert!(v.cost(16, 8, 2) > 0.0);
    }

    #[test]
    fn subpixel_interpolation_stays_within_half_pixel() {
        let (l, r) = shifted_pair(32, 16, 4);
        let v = CostVolume::from_pair(&l, &r, 8, BlockSpec::new(2)).unwrap();
        let d = v.winner_take_all(16, 8, true);
        assert!((d - 4.0).abs() <= 0.5);
    }

    #[test]
    fn mismatched_pair_is_error() {
        let a = Image::zeros(8, 8);
        let b = Image::zeros(9, 8);
        assert!(CostVolume::from_pair(&a, &b, 4, BlockSpec::new(1)).is_err());
        assert!(CostVolume::from_pair(&Image::default(), &Image::default(), 4, BlockSpec::new(1)).is_err());
    }

    #[test]
    fn cost_mut_allows_in_place_aggregation() {
        let (l, r) = shifted_pair(8, 8, 2);
        let mut v = CostVolume::from_pair(&l, &r, 4, BlockSpec::new(1)).unwrap();
        *v.cost_mut(3, 3, 2) = 0.125;
        assert_eq!(v.cost(3, 3, 2), 0.125);
    }
}
