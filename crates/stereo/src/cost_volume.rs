//! Per-pixel, per-disparity matching cost volumes.
//!
//! Both the classic matchers (block matching, SGM) and the DNN surrogate in
//! `asv-dnn` operate on a cost volume `C(x, y, d)`: the dissimilarity between
//! pixel `(x, y)` of the left image and pixel `(x - d, y)` of the right
//! image, aggregated over a square support window.

use crate::disparity::StereoError;
use crate::Result;
use asv_image::cost::{block_sad, BlockSpec};
use asv_image::Image;

/// A dense cost volume with disparities `0..=max_disparity`.
#[derive(Debug, Clone)]
pub struct CostVolume {
    width: usize,
    height: usize,
    max_disparity: usize,
    /// Row-major `[y][x][d]` costs flattened into one vector.
    costs: Vec<f32>,
    /// Per-band working planes of the separable fill, retained across fills
    /// so the steady state of a stream performs no allocation.
    #[cfg(feature = "parallel")]
    scratch: Vec<f32>,
}

impl CostVolume {
    /// Builds a SAD cost volume from a rectified pair.
    ///
    /// # Errors
    ///
    /// Returns [`StereoError::DimensionMismatch`] when the images differ in
    /// size and [`StereoError::InvalidParameter`] when they are empty.
    pub fn from_pair(
        left: &Image,
        right: &Image,
        max_disparity: usize,
        block: BlockSpec,
    ) -> Result<Self> {
        let mut volume = Self::empty();
        volume.fill_from_pair(left, right, max_disparity, block)?;
        Ok(volume)
    }

    /// An empty volume (no storage); populate with
    /// [`CostVolume::fill_from_pair`].  Useful as a reusable per-stream
    /// workspace slot.
    pub fn empty() -> Self {
        Self {
            width: 0,
            height: 0,
            max_disparity: 0,
            costs: Vec::new(),
            #[cfg(feature = "parallel")]
            scratch: Vec::new(),
        }
    }

    /// Rebuilds the volume from a new pair in place, reusing the cost
    /// storage of the previous build when the total size matches (the
    /// steady state of a video stream).  Identical output to
    /// [`CostVolume::from_pair`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`CostVolume::from_pair`].
    pub fn fill_from_pair(
        &mut self,
        left: &Image,
        right: &Image,
        max_disparity: usize,
        block: BlockSpec,
    ) -> Result<()> {
        if left.width() != right.width() || left.height() != right.height() {
            // lint: alloc-ok(error path)
            return Err(StereoError::dimension_mismatch(format!(
                "{}x{} vs {}x{}",
                left.width(),
                left.height(),
                right.width(),
                right.height()
            )));
        }
        if left.is_empty() {
            return Err(StereoError::invalid_parameter(
                "cannot build a cost volume from empty images",
            ));
        }
        self.width = left.width();
        self.height = left.height();
        self.max_disparity = max_disparity;
        let levels = max_disparity + 1;
        let cells = self.width * self.height * levels;
        // Every cell is overwritten by the fill, so stale contents need no
        // clearing; `resize` only touches cells beyond the previous size.
        if self.costs.len() != cells {
            self.costs.clear();
            self.costs.resize(cells, 0.0);
        }
        #[cfg(feature = "parallel")]
        fill_costs_separable(
            left,
            right,
            levels,
            block,
            &mut self.costs,
            &mut self.scratch,
        );
        #[cfg(not(feature = "parallel"))]
        fill_costs_naive(left, right, levels, block, &mut self.costs);
        Ok(())
    }

    /// Volume width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Volume height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Largest disparity hypothesis stored.
    pub fn max_disparity(&self) -> usize {
        self.max_disparity
    }

    /// Number of disparity hypotheses (`max_disparity + 1`).
    pub fn num_disparities(&self) -> usize {
        self.max_disparity + 1
    }

    /// Total number of stored cost cells
    /// (`width * height * num_disparities`, 0 for an empty volume).
    pub fn num_cells(&self) -> usize {
        self.costs.len()
    }

    /// Cost of hypothesis `d` at pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates or disparity are out of range.
    #[inline]
    pub fn cost(&self, x: usize, y: usize, d: usize) -> f32 {
        assert!(x < self.width && y < self.height && d <= self.max_disparity);
        self.costs[(y * self.width + x) * self.num_disparities() + d]
    }

    /// Mutable access to the cost of hypothesis `d` at pixel `(x, y)`.
    #[inline]
    pub fn cost_mut(&mut self, x: usize, y: usize, d: usize) -> &mut f32 {
        assert!(x < self.width && y < self.height && d <= self.max_disparity);
        let levels = self.num_disparities();
        &mut self.costs[(y * self.width + x) * levels + d]
    }

    /// Winner-take-all disparity at pixel `(x, y)` with optional parabolic
    /// sub-pixel interpolation around the minimum.
    pub fn winner_take_all(&self, x: usize, y: usize, subpixel: bool) -> f32 {
        let levels = self.num_disparities();
        let mut best_d = 0usize;
        let mut best_cost = f32::INFINITY;
        for d in 0..levels {
            let c = self.cost(x, y, d);
            if c < best_cost {
                best_cost = c;
                best_d = d;
            }
        }
        if !subpixel || best_d == 0 || best_d + 1 >= levels {
            return best_d as f32;
        }
        let c0 = self.cost(x, y, best_d - 1);
        let c1 = best_cost;
        let c2 = self.cost(x, y, best_d + 1);
        let denom = c0 - 2.0 * c1 + c2;
        if denom.abs() < 1e-9 {
            return best_d as f32;
        }
        let offset = 0.5 * (c0 - c2) / denom;
        best_d as f32 + offset.clamp(-0.5, 0.5)
    }
}

/// Reference cost filling: one [`block_sad`] call per `(x, y, d)` cell.
///
/// `O(W·H·D·B²)` with two border clamps per tap; kept as the
/// `--no-default-features` baseline and as the differential-test oracle for
/// the separable implementation below.
#[cfg_attr(feature = "parallel", allow(dead_code))]
fn fill_costs_naive(
    left: &Image,
    right: &Image,
    levels: usize,
    block: BlockSpec,
    costs: &mut [f32],
) {
    let width = left.width();
    let height = left.height();
    for y in 0..height {
        for x in 0..width {
            for d in 0..levels {
                let cost = block_sad(
                    left,
                    right,
                    x as isize,
                    y as isize,
                    x as isize - d as isize,
                    y as isize,
                    block,
                );
                costs[(y * width + x) * levels + d] = cost;
            }
        }
    }
}

/// Disparity-block width of the separable fill: the number of disparity
/// hypotheses whose horizontal-sum planes are kept resident at once.  Large
/// enough that the final scatter writes contiguous runs of the `[y][x][d]`
/// volume, small enough that a block's planes stay cache-resident.
#[cfg(feature = "parallel")]
const D_BLOCK: usize = 8;

/// Data-parallel cost filling: the block SAD is separable, so for each
/// disparity the clamped per-pixel absolute differences are box-summed
/// horizontally and then vertically — `O(W·H·D·B)` instead of `O(W·H·D·B²)`,
/// with contiguous row accesses instead of per-tap border clamps. Bands of
/// output rows are independent and run on the rayon pool.
///
/// The loop nest is cache-blocked over [`D_BLOCK`] disparities: the vertical
/// window sums accumulate whole contiguous rows (auto-vectorizable, unlike a
/// per-pixel column walk) into per-disparity accumulator rows, and the final
/// transpose writes each pixel's `D_BLOCK` cost entries contiguously — the
/// disparity loop is innermost over contiguous memory on the store side.
/// Per-cell arithmetic and summation order are identical to the previous
/// per-disparity formulation, so the output is bit-identical.
///
/// The inner row kernels (clamped absolute differences, horizontal window
/// sums, vertical row accumulation) dispatch to the active SIMD tier; all
/// three preserve the scalar per-output summation order exactly.  Band
/// scratch lives in a caller-retained buffer zipped with the output bands, so
/// steady-state fills allocate nothing.
#[cfg(feature = "parallel")]
fn fill_costs_separable(
    left: &Image,
    right: &Image,
    levels: usize,
    block: BlockSpec,
    costs: &mut [f32],
    scratch: &mut Vec<f32>,
) {
    use crate::simd;
    use rayon::prelude::*;

    let width = left.width();
    let height = left.height();
    let r = block.radius;
    let window = 2 * r + 1;
    let row_stride = width * levels;
    let level = simd::active_level();
    // A few bands per worker keeps the tail ragged-band imbalance small.
    let bands = (rayon::current_num_threads() * 4).clamp(1, height.max(1));
    let rows_per_band = height.div_ceil(bands);
    let n_bands = height.div_ceil(rows_per_band);
    // Per-band working set: D_BLOCK horizontal-sum planes (sized for the
    // largest band), D_BLOCK vertical accumulator rows, one difference row.
    let span_max = rows_per_band + 2 * r;
    let hsum_cells = D_BLOCK * span_max * width;
    let vacc_cells = D_BLOCK * width;
    let per_band = hsum_cells + vacc_cells + (width + 2 * r);
    if scratch.len() != n_bands * per_band {
        scratch.clear();
        scratch.resize(n_bands * per_band, 0.0);
    }
    let lpix = left.as_slice();
    let rpix = right.as_slice();

    costs
        .par_chunks_mut(rows_per_band * row_stride)
        .zip(scratch.par_chunks_mut(per_band))
        .enumerate()
        .for_each(|(band, (out, scratch))| {
            let y0 = band * rows_per_band;
            let band_rows = out.len() / row_stride;
            // For disparity j of the current block, hsum[j * span + i] holds
            // the horizontal window sums of source row clamp(y0 + i - r); the
            // vertical window of output row y0 + by is rows by .. by + window.
            let span = band_rows + 2 * r;
            let (hsum, rest) = scratch.split_at_mut(hsum_cells);
            let (vacc, diff) = rest.split_at_mut(vacc_cells);
            let mut d0 = 0;
            while d0 < levels {
                let db = D_BLOCK.min(levels - d0);
                for j in 0..db {
                    let d = d0 + j;
                    for (i, hrow) in hsum[j * span * width..][..span * width]
                        .chunks_mut(width)
                        .enumerate()
                    {
                        let v =
                            ((y0 + i) as isize - r as isize).clamp(0, height as isize - 1) as usize;
                        let lrow = &lpix[v * width..][..width];
                        let rrow = &rpix[v * width..][..width];
                        simd::abs_diff_row(level, lrow, rrow, d, r, diff);
                        simd::hwindow_sums(level, diff, window, hrow);
                    }
                }
                for by in 0..band_rows {
                    // Vertical box sums, one contiguous row at a time.
                    for j in 0..db {
                        let row_acc = &mut vacc[j * width..][..width];
                        row_acc.fill(0.0);
                        for vrow in
                            hsum[(j * span + by) * width..][..window * width].chunks_exact(width)
                        {
                            simd::add_assign_rows(level, row_acc, vrow);
                        }
                    }
                    // Transpose-scatter: each pixel's block of disparities is
                    // written contiguously.
                    let out_row = &mut out[by * row_stride..][..row_stride];
                    for x in 0..width {
                        for (j, slot) in out_row[x * levels + d0..][..db].iter_mut().enumerate() {
                            *slot = vacc[j * width + x];
                        }
                    }
                }
                d0 += D_BLOCK;
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Left image with a constant-disparity shift of 4 between the pair.
    fn shifted_pair(width: usize, height: usize, disparity: usize) -> (Image, Image) {
        let right = Image::from_fn(width, height, |x, y| ((x * 7 + y * 3) % 23) as f32);
        let left = Image::from_fn(width, height, |x, y| {
            right.at_clamped(x as isize - disparity as isize, y as isize)
        });
        (left, right)
    }

    #[test]
    fn volume_dimensions() {
        let (l, r) = shifted_pair(20, 10, 4);
        let v = CostVolume::from_pair(&l, &r, 8, BlockSpec::new(1)).unwrap();
        assert_eq!(v.width(), 20);
        assert_eq!(v.height(), 10);
        assert_eq!(v.max_disparity(), 8);
        assert_eq!(v.num_disparities(), 9);
    }

    #[test]
    fn minimum_cost_is_at_true_disparity() {
        let (l, r) = shifted_pair(32, 16, 4);
        let v = CostVolume::from_pair(&l, &r, 8, BlockSpec::new(2)).unwrap();
        // Check interior pixels (away from the left border where the shift
        // clamps).
        for y in 4..12 {
            for x in 12..28 {
                let wta = v.winner_take_all(x, y, false);
                assert_eq!(wta, 4.0, "pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn cost_at_truth_is_zero() {
        let (l, r) = shifted_pair(32, 16, 5);
        let v = CostVolume::from_pair(&l, &r, 8, BlockSpec::new(1)).unwrap();
        assert!(v.cost(16, 8, 5) < 1e-6);
        assert!(v.cost(16, 8, 2) > 0.0);
    }

    #[test]
    fn subpixel_interpolation_stays_within_half_pixel() {
        let (l, r) = shifted_pair(32, 16, 4);
        let v = CostVolume::from_pair(&l, &r, 8, BlockSpec::new(2)).unwrap();
        let d = v.winner_take_all(16, 8, true);
        assert!((d - 4.0).abs() <= 0.5);
    }

    #[test]
    fn mismatched_pair_is_error() {
        let a = Image::zeros(8, 8);
        let b = Image::zeros(9, 8);
        assert!(CostVolume::from_pair(&a, &b, 4, BlockSpec::new(1)).is_err());
        assert!(
            CostVolume::from_pair(&Image::default(), &Image::default(), 4, BlockSpec::new(1))
                .is_err()
        );
    }

    /// The separable fill must agree with the per-cell reference on every
    /// shape class: wide/tall images, disparity ranges exceeding the width,
    /// and degenerate zero-radius blocks.
    #[cfg(feature = "parallel")]
    #[test]
    fn separable_fill_matches_naive_reference() {
        for (w, h, max_d, r) in [(13, 7, 4, 1), (32, 16, 8, 2), (9, 11, 12, 3), (6, 4, 3, 0)] {
            let left = Image::from_fn(w, h, |x, y| ((x * 31 + y * 17) % 23) as f32 * 0.21 - 1.3);
            let right = Image::from_fn(w, h, |x, y| ((x * 7 + y * 13) % 19) as f32 * 0.17);
            let levels = max_d + 1;
            let block = BlockSpec::new(r);
            let mut naive = vec![0.0f32; w * h * levels];
            let mut fast = vec![0.0f32; w * h * levels];
            let mut scratch = Vec::new();
            fill_costs_naive(&left, &right, levels, block, &mut naive);
            fill_costs_separable(&left, &right, levels, block, &mut fast, &mut scratch);
            for (i, (a, b)) in naive.iter().zip(&fast).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-4 * a.abs().max(1.0),
                    "{w}x{h} d{max_d} r{r}: cell {i} naive {a} vs separable {b}"
                );
            }
        }
    }

    #[test]
    fn cost_mut_allows_in_place_aggregation() {
        let (l, r) = shifted_pair(8, 8, 2);
        let mut v = CostVolume::from_pair(&l, &r, 4, BlockSpec::new(1)).unwrap();
        *v.cost_mut(3, 3, 2) = 0.125;
        assert_eq!(v.cost(3, 3, 2), 0.125);
    }
}
