//! Disparity maps and stereo accuracy metrics.

use asv_image::Image;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error type for stereo matching operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StereoError {
    /// The left and right images (or a map pair) differ in size.
    DimensionMismatch {
        /// Human readable description.
        context: String,
    },
    /// A matching parameter is invalid.
    InvalidParameter {
        /// Human readable description.
        context: String,
    },
}

impl fmt::Display for StereoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StereoError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            StereoError::InvalidParameter { context } => write!(f, "invalid parameter: {context}"),
        }
    }
}

impl Error for StereoError {}

impl StereoError {
    /// Builds a [`StereoError::DimensionMismatch`] from anything displayable.
    pub fn dimension_mismatch(context: impl fmt::Display) -> Self {
        StereoError::DimensionMismatch {
            context: context.to_string(), // lint: alloc-ok(error path)
        }
    }

    /// Builds a [`StereoError::InvalidParameter`] from anything displayable.
    pub fn invalid_parameter(context: impl fmt::Display) -> Self {
        StereoError::InvalidParameter {
            context: context.to_string(), // lint: alloc-ok(error path)
        }
    }
}

/// Per-pixel disparity of a rectified stereo pair, registered to the left
/// (reference) image as in Fig. 2b of the paper: pixel `(x, y)` in the left
/// image corresponds to pixel `(x - d, y)` in the right image, where `d` is
/// the stored disparity.
///
/// Invalid pixels (occlusions, failed matches) are stored as negative values
/// and excluded from the accuracy metrics.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct DisparityMap {
    values: Image,
}

impl Clone for DisparityMap {
    fn clone(&self) -> Self {
        Self {
            values: self.values.clone(), // lint: alloc-ok(deep copy by Clone contract; hot path uses clone_from)
        }
    }

    /// Copies `source` reusing the existing buffer (see
    /// [`Image::clone_from`]).
    fn clone_from(&mut self, source: &Self) {
        self.values.clone_from(&source.values);
    }
}

/// Marker value for pixels with no valid disparity.
pub const INVALID_DISPARITY: f32 = -1.0;

/// Default correctness threshold of the "three-pixel error" metric used by
/// KITTI and by the paper's accuracy evaluation (Sec. 6.1).
pub const THREE_PIXEL_THRESHOLD: f32 = 3.0;

impl DisparityMap {
    /// Creates a map with every pixel marked invalid.
    pub fn invalid(width: usize, height: usize) -> Self {
        Self {
            values: Image::filled(width, height, INVALID_DISPARITY),
        }
    }

    /// Creates a map filled with a constant disparity.
    pub fn constant(width: usize, height: usize, disparity: f32) -> Self {
        Self {
            values: Image::filled(width, height, disparity),
        }
    }

    /// Creates a map from a raw image of disparities (negative values are
    /// treated as invalid).
    pub fn from_image(values: Image) -> Self {
        Self { values }
    }

    /// Creates a map by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, f: impl FnMut(usize, usize) -> f32) -> Self {
        Self {
            values: Image::from_fn(width, height, f),
        }
    }

    /// Re-shapes the map to `width x height` with every pixel marked
    /// invalid, reusing the existing buffer when its capacity suffices.
    /// Equivalent to `*self = DisparityMap::invalid(width, height)` without
    /// the allocation.
    pub fn reset_invalid(&mut self, width: usize, height: usize) {
        self.values.reset(width, height, INVALID_DISPARITY);
    }

    /// Re-shapes the map leaving its contents *unspecified* (see
    /// [`Image::reshape_scratch`]); for kernels that assign every pixel.
    pub fn reshape_scratch(&mut self, width: usize, height: usize) {
        self.values.reshape_scratch(width, height);
    }

    /// Mutable access to the underlying image of disparity values (negative
    /// values are the invalid marker), for kernels that fill a map row by
    /// row.
    pub fn as_image_mut(&mut self) -> &mut Image {
        &mut self.values
    }

    /// Consumes the map and returns the underlying image.
    pub fn into_image(self) -> Image {
        self.values
    }

    /// Map width in pixels.
    pub fn width(&self) -> usize {
        self.values.width()
    }

    /// Map height in pixels.
    pub fn height(&self) -> usize {
        self.values.height()
    }

    /// The underlying image of disparity values.
    pub fn as_image(&self) -> &Image {
        &self.values
    }

    /// Disparity at `(x, y)`, or `None` if the pixel is invalid.
    pub fn get(&self, x: usize, y: usize) -> Option<f32> {
        let v = self.values.at(x, y);
        if v < 0.0 {
            None
        } else {
            Some(v)
        }
    }

    /// Raw stored value at `(x, y)` including the invalid marker.
    pub fn raw(&self, x: usize, y: usize) -> f32 {
        self.values.at(x, y)
    }

    /// Sets the disparity at `(x, y)`.
    pub fn set(&mut self, x: usize, y: usize, disparity: f32) {
        self.values.set(x, y, disparity);
    }

    /// Marks the pixel at `(x, y)` invalid.
    pub fn invalidate(&mut self, x: usize, y: usize) {
        self.values.set(x, y, INVALID_DISPARITY);
    }

    /// Number of valid pixels.
    pub fn valid_count(&self) -> usize {
        self.values.as_slice().iter().filter(|&&v| v >= 0.0).count()
    }

    /// Fraction of pixels that are valid.
    pub fn valid_fraction(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.valid_count() as f64 / self.values.len() as f64
    }

    /// Fraction of valid pixels whose disparity differs from the ground truth
    /// by more than `threshold` pixels — the paper's error-rate metric.
    ///
    /// Pixels invalid in either map are ignored.  Returns 0 when no pixels
    /// are comparable.
    ///
    /// # Errors
    ///
    /// Returns [`StereoError::DimensionMismatch`] when the maps differ in
    /// size.
    pub fn error_rate(&self, truth: &DisparityMap, threshold: f32) -> crate::Result<f64> {
        if self.width() != truth.width() || self.height() != truth.height() {
            return Err(StereoError::dimension_mismatch(format!(
                "{}x{} vs {}x{}",
                self.width(),
                self.height(),
                truth.width(),
                truth.height()
            )));
        }
        let mut bad = 0usize;
        let mut total = 0usize;
        for y in 0..self.height() {
            for x in 0..self.width() {
                let (Some(est), Some(gt)) = (self.get(x, y), truth.get(x, y)) else {
                    continue;
                };
                total += 1;
                if (est - gt).abs() > threshold {
                    bad += 1;
                }
            }
        }
        if total == 0 {
            return Ok(0.0);
        }
        Ok(bad as f64 / total as f64)
    }

    /// Three-pixel error rate (the standard metric of the paper, Sec. 6.1).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`DisparityMap::error_rate`].
    pub fn three_pixel_error(&self, truth: &DisparityMap) -> crate::Result<f64> {
        self.error_rate(truth, THREE_PIXEL_THRESHOLD)
    }

    /// Mean absolute disparity error over pixels valid in both maps.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`DisparityMap::error_rate`].
    pub fn mean_abs_error(&self, truth: &DisparityMap) -> crate::Result<f64> {
        if self.width() != truth.width() || self.height() != truth.height() {
            return Err(StereoError::dimension_mismatch(format!(
                "{}x{} vs {}x{}",
                self.width(),
                self.height(),
                truth.width(),
                truth.height()
            )));
        }
        let mut total = 0.0f64;
        let mut count = 0usize;
        for y in 0..self.height() {
            for x in 0..self.width() {
                let (Some(est), Some(gt)) = (self.get(x, y), truth.get(x, y)) else {
                    continue;
                };
                total += (est - gt).abs() as f64;
                count += 1;
            }
        }
        if count == 0 {
            return Ok(0.0);
        }
        Ok(total / count as f64)
    }

    /// Fills invalid pixels from the nearest valid pixel to the left, then to
    /// the right (the classic background-fill used after left-right checks).
    pub fn fill_invalid_horizontally(&mut self) {
        for y in 0..self.height() {
            let mut last_valid: Option<f32> = None;
            for x in 0..self.width() {
                match self.get(x, y) {
                    Some(v) => last_valid = Some(v),
                    None => {
                        if let Some(v) = last_valid {
                            self.set(x, y, v);
                        }
                    }
                }
            }
            let mut last_valid: Option<f32> = None;
            for x in (0..self.width()).rev() {
                match self.get(x, y) {
                    Some(v) => last_valid = Some(v),
                    None => {
                        if let Some(v) = last_valid {
                            self.set(x, y, v);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_validity() {
        let m = DisparityMap::invalid(4, 3);
        assert_eq!(m.width(), 4);
        assert_eq!(m.height(), 3);
        assert_eq!(m.valid_count(), 0);
        assert_eq!(m.valid_fraction(), 0.0);
        let c = DisparityMap::constant(4, 3, 2.0);
        assert_eq!(c.valid_count(), 12);
        assert_eq!(c.get(0, 0), Some(2.0));
    }

    #[test]
    fn set_get_invalidate() {
        let mut m = DisparityMap::invalid(2, 2);
        m.set(1, 1, 5.0);
        assert_eq!(m.get(1, 1), Some(5.0));
        m.invalidate(1, 1);
        assert_eq!(m.get(1, 1), None);
        assert_eq!(m.raw(1, 1), INVALID_DISPARITY);
    }

    #[test]
    fn error_rate_counts_only_large_errors() {
        let truth = DisparityMap::constant(10, 10, 10.0);
        let mut est = DisparityMap::constant(10, 10, 10.0);
        // 5 pixels off by 5 (bad), 5 pixels off by 1 (fine).
        for x in 0..5 {
            est.set(x, 0, 15.0);
        }
        for x in 5..10 {
            est.set(x, 0, 11.0);
        }
        let rate = est.three_pixel_error(&truth).unwrap();
        assert!((rate - 0.05).abs() < 1e-9);
    }

    #[test]
    fn invalid_pixels_are_excluded_from_metrics() {
        let mut truth = DisparityMap::constant(4, 1, 10.0);
        truth.invalidate(0, 0);
        let mut est = DisparityMap::constant(4, 1, 10.0);
        est.set(0, 0, 100.0); // would be wrong but truth is invalid there
        est.invalidate(1, 0); // estimate invalid: also excluded
        est.set(2, 0, 20.0); // wrong
        let rate = est.three_pixel_error(&truth).unwrap();
        assert!((rate - 0.5).abs() < 1e-9); // 1 wrong of 2 comparable
        assert!((est.mean_abs_error(&truth).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_validate_dimensions() {
        let a = DisparityMap::constant(4, 4, 1.0);
        let b = DisparityMap::constant(5, 4, 1.0);
        assert!(a.three_pixel_error(&b).is_err());
        assert!(a.mean_abs_error(&b).is_err());
    }

    #[test]
    fn empty_comparison_yields_zero() {
        let a = DisparityMap::invalid(4, 4);
        let b = DisparityMap::invalid(4, 4);
        assert_eq!(a.three_pixel_error(&b).unwrap(), 0.0);
        assert_eq!(a.mean_abs_error(&b).unwrap(), 0.0);
    }

    #[test]
    fn horizontal_fill_propagates_nearest_valid() {
        let mut m = DisparityMap::invalid(5, 1);
        m.set(2, 0, 7.0);
        m.fill_invalid_horizontally();
        for x in 0..5 {
            assert_eq!(m.get(x, 0), Some(7.0));
        }
    }

    #[test]
    fn error_display() {
        assert!(StereoError::dimension_mismatch("x")
            .to_string()
            .contains('x'));
        assert!(StereoError::invalid_parameter("y")
            .to_string()
            .contains('y'));
    }
}
