//! Classic stereo matching algorithms, disparity maps and depth geometry.
//!
//! "Depth from stereo" (Sec. 2 of the ASV paper) proceeds in two steps: stereo
//! *matching* produces a disparity map, and *triangulation* converts disparity
//! into metric depth.  This crate provides everything on the classic
//! (non-DNN) side of that pipeline:
//!
//! * [`DisparityMap`] — per-pixel disparity with an invalid marker, plus the
//!   three-pixel-error accuracy metric used by the KITTI benchmark and the
//!   paper's evaluation.
//! * [`triangulation`] — the pinhole stereo geometry of Eq. 1 (`D = B·f / Z`)
//!   and the depth-sensitivity analysis of Fig. 4.
//! * [`cost_volume`] — per-pixel, per-disparity matching costs shared by the
//!   matchers.
//! * [`block_matching`] — local winner-take-all block matching with an
//!   optional per-pixel search-window *initialisation*, which is exactly the
//!   refinement primitive the ISM algorithm uses on non-key frames.
//! * [`sgm`] — semi-global matching, the high-accuracy classic baseline
//!   (SGBN/HH in Fig. 1) and the reference "learned-quality" matcher used by
//!   the DNN surrogate.
//! * [`census`] — census transform descriptors and Hamming-distance cost
//!   volumes, the integer fast-path metric (`CostMetric::Census`) behind the
//!   SIMD key-frame kernels.
//! * [`simd`] — runtime-dispatched scalar/SSE4.2/AVX2 kernels shared by the
//!   matchers, with bit-identical scalar fallbacks.
//!
//! # Example
//!
//! ```
//! use asv_stereo::triangulation::CameraRig;
//!
//! // The Bumblebee2 rig used in Fig. 4 of the paper.
//! let rig = CameraRig::bumblebee2();
//! let depth = rig.depth_from_disparity_pixels(10.0);
//! assert!(depth > 0.0);
//! ```

pub mod block_matching;
pub mod census;
pub mod cost_volume;
pub mod disparity;
pub mod sgm;
pub mod simd;
pub mod triangulation;

pub use block_matching::{block_match, refine_with_initial, BlockMatchParams, MatchScratch};
pub use census::{CensusCostVolume, CensusDescriptors, CensusWindow};
pub use disparity::{DisparityMap, StereoError};
pub use sgm::{semi_global_match, semi_global_match_with, CostMetric, SgmParams, SgmWorkspace};
pub use simd::{active_level, available_levels, detected_level, SimdLevel};
pub use triangulation::CameraRig;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, StereoError>;
