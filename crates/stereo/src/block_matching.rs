//! Local block-matching stereo, with and without an initial guess.
//!
//! Two entry points matter for ASV:
//!
//! * [`block_match`] — the classic full-range local matcher (one of the
//!   low-accuracy, high-FPS "classic" points of Fig. 1).
//! * [`refine_with_initial`] — block matching restricted to a small 1-D window
//!   centred on an externally provided initial disparity.  This is the
//!   correspondence-*refinement* step of the ISM algorithm (Sec. 3.2, step 4):
//!   the initial disparity comes from the correspondences propagated from the
//!   key frame, so a tiny search window suffices.

use crate::disparity::{DisparityMap, StereoError};
use crate::Result;
use asv_image::cost::{block_sad, sad_ops_per_block, BlockSpec};
use asv_image::Image;
use serde::{Deserialize, Serialize};

/// Parameters of the local block matcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockMatchParams {
    /// Matching block half-width.
    pub block: BlockSpec,
    /// Largest disparity searched by the full-range matcher.
    pub max_disparity: usize,
    /// Half-width of the search window around the initial guess used by
    /// [`refine_with_initial`].
    pub refine_radius: usize,
    /// Enable parabolic sub-pixel refinement of the winning disparity.
    pub subpixel: bool,
    /// Maximum allowed SAD (per pixel of the block) for a match to be
    /// accepted; larger costs mark the pixel invalid.
    pub max_cost_per_pixel: f32,
}

impl Default for BlockMatchParams {
    fn default() -> Self {
        Self {
            block: BlockSpec::new(3),
            max_disparity: 64,
            refine_radius: 3,
            subpixel: true,
            max_cost_per_pixel: f32::INFINITY,
        }
    }
}

fn check_pair(left: &Image, right: &Image) -> Result<()> {
    if left.width() != right.width() || left.height() != right.height() {
        // lint: alloc-ok(error path)
        return Err(StereoError::dimension_mismatch(format!(
            "{}x{} vs {}x{}",
            left.width(),
            left.height(),
            right.width(),
            right.height()
        )));
    }
    if left.is_empty() {
        return Err(StereoError::invalid_parameter("cannot match empty images"));
    }
    Ok(())
}

/// Reusable scratch of the per-pixel disparity search: the candidate-cost
/// row the parabolic sub-pixel refinement reads back.  One per calling
/// stream; without it every searched pixel would allocate its own vector.
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// Shared candidate buffer of the sequential driver.
    #[cfg_attr(feature = "parallel", allow(dead_code))]
    costs: Vec<f32>,
    /// Per-row candidate buffers of the parallel driver, zipped with the
    /// output rows so each worker owns a retained buffer and the steady
    /// state allocates nothing.
    #[cfg(feature = "parallel")]
    rows: Vec<Vec<f32>>,
}

impl MatchScratch {
    /// Creates an empty scratch (no allocation until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the candidate buffer to hold `candidates` entries up front, so
    /// the per-pixel search never re-allocates mid-stream — the worst case
    /// (a full-range fallback for an invalid initial disparity) may first
    /// occur on any frame, not necessarily during warm-up.
    #[cfg_attr(feature = "parallel", allow(dead_code))]
    fn ensure(&mut self, candidates: usize) {
        self.costs.clear();
        self.costs.reserve(candidates);
    }

    /// Parallel-driver variant of [`MatchScratch::ensure`]: one retained
    /// candidate buffer per output row, each pre-grown to `candidates`.
    #[cfg(feature = "parallel")]
    fn ensure_rows(&mut self, height: usize, candidates: usize) {
        if self.rows.len() < height {
            self.rows.resize_with(height, Vec::new);
        }
        for row in &mut self.rows[..height] {
            row.clear();
            row.reserve(candidates);
        }
    }
}

/// Searches disparities `lo..=hi` for the best SAD match of the block centred
/// at `(x, y)`, returning `(best_disparity, best_cost)` with optional
/// parabolic sub-pixel refinement.  `costs` is a reusable candidate buffer
/// (cleared on entry).
#[allow(clippy::too_many_arguments)]
fn search_range(
    left: &Image,
    right: &Image,
    x: usize,
    y: usize,
    lo: usize,
    hi: usize,
    params: &BlockMatchParams,
    costs: &mut Vec<f32>,
) -> (f32, f32) {
    let mut best_d = lo;
    let mut best_cost = f32::INFINITY;
    costs.clear();
    for d in lo..=hi {
        let cost = block_sad(
            left,
            right,
            x as isize,
            y as isize,
            x as isize - d as isize,
            y as isize,
            params.block,
        );
        costs.push(cost);
        if cost < best_cost {
            best_cost = cost;
            best_d = d;
        }
    }
    if !params.subpixel || best_d == lo || best_d == hi {
        return (best_d as f32, best_cost);
    }
    let i = best_d - lo;
    let c0 = costs[i - 1];
    let c1 = costs[i];
    let c2 = costs[i + 1];
    let denom = c0 - 2.0 * c1 + c2;
    if denom.abs() < 1e-9 {
        return (best_d as f32, best_cost);
    }
    let offset = (0.5 * (c0 - c2) / denom).clamp(-0.5, 0.5);
    (best_d as f32 + offset, best_cost)
}

/// Evaluates a per-pixel matcher over the whole image, writing straight into
/// the rows of a reusable output map.  Rows are independent, so with the
/// `parallel` feature they are distributed over the rayon pool, each zipped
/// with its own retained candidate buffer from the scratch; sequentially the
/// caller's shared buffer is reused across all pixels.  Either way the pass
/// is allocation-free once the scratch is warm and the produced values are
/// identical.  Pixels map to
/// [`crate::disparity::INVALID_DISPARITY`] when no match qualifies.
fn match_per_pixel_into(
    width: usize,
    height: usize,
    max_candidates: usize,
    scratch: &mut MatchScratch,
    out: &mut DisparityMap,
    per_pixel: impl Fn(usize, usize, &mut Vec<f32>) -> f32 + Sync,
) {
    // Every pixel is assigned by the per-pixel matcher (invalid pixels get
    // the marker value directly), so the plane needs no fill.
    out.reshape_scratch(width, height);
    #[cfg(feature = "parallel")]
    {
        use rayon::prelude::*;
        scratch.ensure_rows(height, max_candidates);
        out.as_image_mut()
            .as_mut_slice()
            .par_chunks_mut(width)
            .zip(scratch.rows.par_chunks_mut(1))
            .enumerate()
            .for_each(|(y, (row, costs))| {
                let costs = &mut costs[0];
                for (x, slot) in row.iter_mut().enumerate() {
                    *slot = per_pixel(x, y, costs);
                }
            });
    }
    #[cfg(not(feature = "parallel"))]
    {
        scratch.ensure(max_candidates);
        let data = out.as_image_mut().as_mut_slice();
        for y in 0..height {
            for x in 0..width {
                data[y * width + x] = per_pixel(x, y, &mut scratch.costs);
            }
        }
    }
}

/// Full-range local block matching over disparities `0..=max_disparity`.
///
/// # Errors
///
/// Returns [`StereoError::DimensionMismatch`] for mismatched image sizes and
/// [`StereoError::InvalidParameter`] for empty images.
pub fn block_match(left: &Image, right: &Image, params: &BlockMatchParams) -> Result<DisparityMap> {
    let mut scratch = MatchScratch::new();
    let mut out = DisparityMap::invalid(0, 0);
    block_match_into(left, right, params, &mut scratch, &mut out)?;
    Ok(out)
}

/// [`block_match`] writing into a reusable output map with reusable search
/// scratch: identical output, no allocation once the buffers are warm.
///
/// # Errors
///
/// Same conditions as [`block_match`].
pub fn block_match_into(
    left: &Image,
    right: &Image,
    params: &BlockMatchParams,
    scratch: &mut MatchScratch,
    out: &mut DisparityMap,
) -> Result<()> {
    check_pair(left, right)?;
    let width = left.width();
    let height = left.height();
    let cost_limit = params.max_cost_per_pixel * params.block.area() as f32;
    let max_candidates = params.max_disparity + 1;
    match_per_pixel_into(
        width,
        height,
        max_candidates,
        scratch,
        out,
        |x, y, costs| {
            let hi = params.max_disparity.min(x);
            let (d, cost) = search_range(left, right, x, y, 0, hi, params, costs);
            if cost <= cost_limit {
                d
            } else {
                crate::disparity::INVALID_DISPARITY
            }
        },
    );
    Ok(())
}

/// Block matching restricted to `±refine_radius` pixels around `initial`.
///
/// Pixels whose initial disparity is invalid fall back to the full-range
/// search.  This mirrors ISM's non-key-frame refinement: propagated
/// correspondences provide the initial estimate, and only a small local
/// search is needed to absorb motion-estimation noise.
///
/// # Errors
///
/// Returns [`StereoError::DimensionMismatch`] when the images or the initial
/// map differ in size, and [`StereoError::InvalidParameter`] for empty
/// images.
pub fn refine_with_initial(
    left: &Image,
    right: &Image,
    initial: &DisparityMap,
    params: &BlockMatchParams,
) -> Result<DisparityMap> {
    let mut scratch = MatchScratch::new();
    let mut out = DisparityMap::invalid(0, 0);
    refine_with_initial_into(left, right, initial, params, &mut scratch, &mut out)?;
    Ok(out)
}

/// [`refine_with_initial`] writing into a reusable output map with reusable
/// search scratch: identical output, no allocation once the buffers are
/// warm.  This is the ISM non-key-frame hot path.
///
/// # Errors
///
/// Same conditions as [`refine_with_initial`].
pub fn refine_with_initial_into(
    left: &Image,
    right: &Image,
    initial: &DisparityMap,
    params: &BlockMatchParams,
    scratch: &mut MatchScratch,
    out: &mut DisparityMap,
) -> Result<()> {
    check_pair(left, right)?;
    if initial.width() != left.width() || initial.height() != left.height() {
        // lint: alloc-ok(error path)
        return Err(StereoError::dimension_mismatch(format!(
            "initial map {}x{} vs images {}x{}",
            initial.width(),
            initial.height(),
            left.width(),
            left.height()
        )));
    }
    let width = left.width();
    let height = left.height();
    let cost_limit = params.max_cost_per_pixel * params.block.area() as f32;
    // An invalid initial disparity falls back to the full-range search, so
    // the candidate buffer must fit `max_disparity + 1` entries even when
    // the refinement window is narrow.
    let max_candidates = params.max_disparity.max(2 * params.refine_radius) + 1;
    match_per_pixel_into(
        width,
        height,
        max_candidates,
        scratch,
        out,
        |x, y, costs| {
            let (lo, hi) = match initial.get(x, y) {
                Some(init) => {
                    let centre = init.round().max(0.0) as usize;
                    let lo = centre.saturating_sub(params.refine_radius);
                    let hi = (centre + params.refine_radius)
                        .min(params.max_disparity)
                        .min(x);
                    (lo.min(hi), hi)
                }
                None => (0, params.max_disparity.min(x)),
            };
            let (d, cost) = search_range(left, right, x, y, lo, hi, params, costs);
            if cost <= cost_limit {
                d
            } else {
                crate::disparity::INVALID_DISPARITY
            }
        },
    );
    Ok(())
}

/// Arithmetic operation count of a full-range block match on a frame of the
/// given size (used by the Fig. 1 frontier and the ISM cost model).
pub fn block_match_op_count(width: usize, height: usize, params: &BlockMatchParams) -> u64 {
    let per_pixel = (params.max_disparity as u64 + 1) * sad_ops_per_block(params.block);
    width as u64 * height as u64 * per_pixel
}

/// Arithmetic operation count of the ISM refinement search (small window
/// around the propagated disparity).
pub fn refine_op_count(width: usize, height: usize, params: &BlockMatchParams) -> u64 {
    let candidates = 2 * params.refine_radius as u64 + 1;
    let per_pixel = candidates * sad_ops_per_block(params.block);
    width as u64 * height as u64 * per_pixel
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a rectified pair where the true disparity is `disparity`
    /// everywhere (right image content shifted left).
    fn constant_disparity_pair(width: usize, height: usize, disparity: usize) -> (Image, Image) {
        let right = Image::from_fn(width, height, |x, y| {
            let fx = x as f32 * 0.7;
            let fy = y as f32 * 0.4;
            (fx.sin() + fy.cos() + ((x * 3 + y * 5) % 7) as f32 * 0.11) * 0.5
        });
        let left = Image::from_fn(width, height, |x, y| {
            right.at_clamped(x as isize - disparity as isize, y as isize)
        });
        (left, right)
    }

    fn interior_error(map: &DisparityMap, truth: f32, margin: usize) -> f32 {
        let mut worst = 0.0f32;
        for y in margin..map.height() - margin {
            for x in (margin + truth as usize)..map.width() - margin {
                if let Some(d) = map.get(x, y) {
                    worst = worst.max((d - truth).abs());
                }
            }
        }
        worst
    }

    #[test]
    fn full_search_recovers_constant_disparity() {
        let (l, r) = constant_disparity_pair(48, 24, 6);
        let params = BlockMatchParams {
            max_disparity: 16,
            ..Default::default()
        };
        let map = block_match(&l, &r, &params).unwrap();
        assert!(interior_error(&map, 6.0, 5) <= 1.0);
    }

    #[test]
    fn refinement_with_correct_initial_matches_full_search() {
        let (l, r) = constant_disparity_pair(48, 24, 6);
        let params = BlockMatchParams {
            max_disparity: 16,
            refine_radius: 2,
            ..Default::default()
        };
        let initial = DisparityMap::constant(48, 24, 6.0);
        let refined = refine_with_initial(&l, &r, &initial, &params).unwrap();
        assert!(interior_error(&refined, 6.0, 5) <= 1.0);
    }

    #[test]
    fn refinement_recovers_from_slightly_wrong_initial() {
        let (l, r) = constant_disparity_pair(48, 24, 6);
        let params = BlockMatchParams {
            max_disparity: 16,
            refine_radius: 3,
            ..Default::default()
        };
        // Initial guess off by 2 pixels, inside the refinement radius.
        let initial = DisparityMap::constant(48, 24, 8.0);
        let refined = refine_with_initial(&l, &r, &initial, &params).unwrap();
        assert!(interior_error(&refined, 6.0, 6) <= 1.0);
    }

    #[test]
    fn refinement_falls_back_to_full_search_for_invalid_initial() {
        let (l, r) = constant_disparity_pair(48, 24, 6);
        let params = BlockMatchParams {
            max_disparity: 16,
            refine_radius: 1,
            ..Default::default()
        };
        let initial = DisparityMap::invalid(48, 24);
        let refined = refine_with_initial(&l, &r, &initial, &params).unwrap();
        assert!(interior_error(&refined, 6.0, 6) <= 1.0);
    }

    #[test]
    fn cost_threshold_marks_bad_matches_invalid() {
        // Left and right are uncorrelated noise; with a tight cost threshold
        // most pixels should be rejected.
        let left = Image::from_fn(32, 16, |x, y| ((x * 31 + y * 17) % 13) as f32);
        let right = Image::from_fn(32, 16, |x, y| ((x * 7 + y * 29 + 5) % 11) as f32);
        let params = BlockMatchParams {
            max_disparity: 8,
            max_cost_per_pixel: 0.01,
            ..Default::default()
        };
        let map = block_match(&left, &right, &params).unwrap();
        assert!(map.valid_fraction() < 0.5);
    }

    #[test]
    fn input_validation() {
        let a = Image::zeros(8, 8);
        let b = Image::zeros(9, 8);
        assert!(block_match(&a, &b, &BlockMatchParams::default()).is_err());
        assert!(block_match(
            &Image::default(),
            &Image::default(),
            &BlockMatchParams::default()
        )
        .is_err());
        let init = DisparityMap::invalid(4, 4);
        assert!(refine_with_initial(&a, &a, &init, &BlockMatchParams::default()).is_err());
    }

    #[test]
    fn refinement_is_cheaper_than_full_search() {
        let params = BlockMatchParams::default();
        let full = block_match_op_count(960, 540, &params);
        let refine = refine_op_count(960, 540, &params);
        // With a 64-disparity full search and a ±3 refinement window, the
        // refinement is roughly an order of magnitude cheaper.
        assert!(full > 5 * refine);
        // The ISM paper's estimate: non-key-frame compute ≈ tens of millions of
        // operations at qHD.  The refinement piece alone is within that scale.
        assert!(refine < 1_000_000_000);
    }
}
