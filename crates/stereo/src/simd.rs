//! Runtime-dispatched SIMD kernels for the stereo matchers.
//!
//! Every kernel comes in up to three tiers — portable scalar, SSE4.2
//! (hardware `popcnt`) and AVX2 (256-bit lanes) — selected once per process
//! by [`active_level`]: the strongest tier the CPU supports
//! (`is_x86_feature_detected!`), optionally capped by the `ASV_SIMD`
//! environment variable (`scalar`, `sse4.2`, `avx2`) for debugging and
//! differential testing. On non-x86_64 targets everything compiles to the
//! scalar tier.
//!
//! **Bit-identity contract**: for any input, every tier of a kernel produces
//! byte-identical output. Integer kernels (census compare/XOR/popcount,
//! `u16` min+penalty aggregation) are exact by construction; the `f32` SAD
//! kernels preserve the scalar per-output summation order (tap-by-tap
//! accumulation, one output per lane), so no reassociation occurs. The
//! differential test suite (`tests/simd_differential.rs`) enforces the
//! contract across widths that exercise the vector remainder lanes.
//!
//! The public kernel entry points take an explicit [`SimdLevel`] so tests can
//! pin a tier; production callers pass [`active_level`].

// The workspace denies `unsafe_code`; explicit `core::arch` intrinsics are
// the one thing that cannot be expressed without it, so the override is
// scoped to this module and every unsafe block documents its invariant.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Instruction-set tier a kernel runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar code, available everywhere.
    Scalar,
    /// SSE4.2 + hardware `popcnt` (baseline x86-64 lacks `popcnt`, so this
    /// tier accelerates the Hamming-cost kernels even without AVX).
    Sse42,
    /// 256-bit AVX2 integer + FMA-free float lanes.
    Avx2,
}

impl SimdLevel {
    /// Human-readable tier name (reported in benchmarks and logs).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse42 => "sse4.2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// The strongest tier this CPU supports.
pub fn detected_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if is_x86_feature_detected!("sse4.2") && is_x86_feature_detected!("popcnt") {
            return SimdLevel::Sse42;
        }
        SimdLevel::Scalar
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Scalar
    }
}

/// Every tier up to and including [`detected_level`], weakest first. The
/// differential tests iterate this to compare all runnable dispatch arms.
pub fn available_levels() -> &'static [SimdLevel] {
    match detected_level() {
        SimdLevel::Scalar => &[SimdLevel::Scalar],
        SimdLevel::Sse42 => &[SimdLevel::Scalar, SimdLevel::Sse42],
        SimdLevel::Avx2 => &[SimdLevel::Scalar, SimdLevel::Sse42, SimdLevel::Avx2],
    }
}

/// The tier production kernels dispatch to: [`detected_level`], capped by the
/// `ASV_SIMD` environment variable if set (`scalar` | `sse4.2` | `avx2`;
/// unknown values are ignored, and requesting more than the CPU supports is
/// clamped to what it has). Cached after the first call.
pub fn active_level() -> SimdLevel {
    static ACTIVE: OnceLock<SimdLevel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let detected = detected_level();
        match std::env::var("ASV_SIMD") {
            Ok(v) => {
                let requested = match v.to_ascii_lowercase().as_str() {
                    "scalar" => Some(SimdLevel::Scalar),
                    "sse4.2" | "sse42" => Some(SimdLevel::Sse42),
                    "avx2" => Some(SimdLevel::Avx2),
                    _ => None,
                };
                match requested {
                    Some(r) => r.min(detected),
                    None => detected,
                }
            }
            Err(_) => detected,
        }
    })
}

// ---------------------------------------------------------------------------
// f32 kernels for the separable SAD fill
// ---------------------------------------------------------------------------

/// Clamped absolute-difference row for disparity `d`:
/// `out[i] = |l[clamp(i - r)] - r[clamp(i - r - d)]|` with clamping to
/// `[0, width)`. `out.len()` must be `width + 2r` where `width = lrow.len()`.
pub fn abs_diff_row(
    level: SimdLevel,
    lrow: &[f32],
    rrow: &[f32],
    d: usize,
    r: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(lrow.len(), rrow.len());
    debug_assert_eq!(out.len(), lrow.len() + 2 * r);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: `Avx2` is only passed by callers that verified CPU
            // support (`active_level` / `available_levels`).
            unsafe { abs_diff_row_avx2(lrow, rrow, d, r, out) }
        }
        _ => abs_diff_row_scalar(lrow, rrow, d, r, out),
    }
}

fn abs_diff_row_scalar(lrow: &[f32], rrow: &[f32], d: usize, r: usize, out: &mut [f32]) {
    let width = lrow.len();
    for (i, slot) in out.iter_mut().enumerate() {
        let u = i as isize - r as isize;
        let lu = u.clamp(0, width as isize - 1) as usize;
        let ru = (u - d as isize).clamp(0, width as isize - 1) as usize;
        *slot = (lrow[lu] - rrow[ru]).abs();
    }
}

/// Sliding-window sums: `out[x] = sum(diff[x..x + window])`, accumulated tap
/// by tap in index order (the bit-identity-relevant order). Requires
/// `diff.len() == out.len() + window - 1`.
pub fn hwindow_sums(level: SimdLevel, diff: &[f32], window: usize, out: &mut [f32]) {
    debug_assert_eq!(diff.len(), out.len() + window - 1);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: caller verified AVX2 support.
            unsafe { hwindow_sums_avx2(diff, window, out) }
        }
        _ => hwindow_sums_scalar(diff, window, out),
    }
}

fn hwindow_sums_scalar(diff: &[f32], window: usize, out: &mut [f32]) {
    for (x, slot) in out.iter_mut().enumerate() {
        *slot = diff[x..x + window].iter().sum();
    }
}

/// Element-wise `acc[i] += row[i]`.
pub fn add_assign_rows(level: SimdLevel, acc: &mut [f32], row: &[f32]) {
    debug_assert_eq!(acc.len(), row.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: caller verified AVX2 support.
            unsafe { add_assign_rows_avx2(acc, row) }
        }
        _ => {
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += v;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Census transform kernels
// ---------------------------------------------------------------------------

/// Census transform of one output row into `u64` descriptors.
///
/// `rows` holds the `2·ry + 1` (already row-clamped) source rows of the
/// window, centre at index `rows.len() / 2`; `rx` is the horizontal radius.
/// Bit `k` of `out[x]` is set when the `k`-th neighbour (window scanned
/// top-to-bottom, left-to-right, centre skipped) is strictly darker than the
/// centre pixel. Horizontal border clamping replicates the edge columns.
pub fn census_row_u64(level: SimdLevel, rows: &[&[f32]], rx: usize, out: &mut [u64]) {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: caller verified AVX2 support.
            unsafe { census_row_u64_avx2(rows, rx, out) }
        }
        _ => {
            let width = out.len();
            for (x, slot) in out.iter_mut().enumerate() {
                *slot = census_pixel_u64(rows, rx, x, width);
            }
        }
    }
}

/// Census transform of one output row into `u32` descriptors (windows of at
/// most 31 comparison bits, i.e. 5×5).
pub fn census_row_u32(level: SimdLevel, rows: &[&[f32]], rx: usize, out: &mut [u32]) {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: caller verified AVX2 support.
            unsafe { census_row_u32_avx2(rows, rx, out) }
        }
        _ => {
            let width = out.len();
            for (x, slot) in out.iter_mut().enumerate() {
                *slot = census_pixel_u64(rows, rx, x, width) as u32;
            }
        }
    }
}

/// Scalar census descriptor of pixel `x` (shared by every tier's border
/// handling).
fn census_pixel_u64(rows: &[&[f32]], rx: usize, x: usize, width: usize) -> u64 {
    let ry = rows.len() / 2;
    let center = rows[ry][x];
    let mut desc = 0u64;
    let mut k = 0u32;
    for (ci, row) in rows.iter().enumerate() {
        for dx in -(rx as isize)..=(rx as isize) {
            if ci == ry && dx == 0 {
                continue;
            }
            let nx = (x as isize + dx).clamp(0, width as isize - 1) as usize;
            if row[nx] < center {
                desc |= 1u64 << k;
            }
            k += 1;
        }
    }
    desc
}

// ---------------------------------------------------------------------------
// Hamming-distance cost kernels
// ---------------------------------------------------------------------------

/// Hamming cost row over `u64` descriptors:
/// `out[x * levels + d] = popcount(ldesc[x] ^ rdesc[clamp(x - d, 0)])`.
/// `out.len()` must be `ldesc.len() * levels`.
pub fn hamming_row_u64(
    level: SimdLevel,
    ldesc: &[u64],
    rdesc: &[u64],
    levels: usize,
    out: &mut [u8],
) {
    debug_assert_eq!(ldesc.len(), rdesc.len());
    debug_assert_eq!(out.len(), ldesc.len() * levels);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: caller verified AVX2 support (which implies popcnt).
            unsafe { hamming_row_u64_avx2(ldesc, rdesc, levels, out) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse42 => {
            // SAFETY: caller verified SSE4.2 + popcnt support.
            unsafe { hamming_row_u64_popcnt(ldesc, rdesc, levels, out) }
        }
        _ => hamming_row_u64_scalar(ldesc, rdesc, levels, out),
    }
}

/// Hamming cost row over `u32` descriptors (see [`hamming_row_u64`]).
pub fn hamming_row_u32(
    level: SimdLevel,
    ldesc: &[u32],
    rdesc: &[u32],
    levels: usize,
    out: &mut [u8],
) {
    debug_assert_eq!(ldesc.len(), rdesc.len());
    debug_assert_eq!(out.len(), ldesc.len() * levels);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: caller verified AVX2 support.
            unsafe { hamming_row_u32_avx2(ldesc, rdesc, levels, out) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse42 => {
            // SAFETY: caller verified SSE4.2 + popcnt support.
            unsafe { hamming_row_u32_popcnt(ldesc, rdesc, levels, out) }
        }
        _ => hamming_row_u32_scalar(ldesc, rdesc, levels, out),
    }
}

fn hamming_row_u64_scalar(ldesc: &[u64], rdesc: &[u64], levels: usize, out: &mut [u8]) {
    for (x, &l) in ldesc.iter().enumerate() {
        let base = x * levels;
        for d in 0..levels {
            let rx = x.saturating_sub(d);
            out[base + d] = (l ^ rdesc[rx]).count_ones() as u8;
        }
    }
}

fn hamming_row_u32_scalar(ldesc: &[u32], rdesc: &[u32], levels: usize, out: &mut [u8]) {
    for (x, &l) in ldesc.iter().enumerate() {
        let base = x * levels;
        for d in 0..levels {
            let rx = x.saturating_sub(d);
            out[base + d] = (l ^ rdesc[rx]).count_ones() as u8;
        }
    }
}

// ---------------------------------------------------------------------------
// Integer SGM aggregation kernel
// ---------------------------------------------------------------------------

/// One pixel of the integer SGM recurrence over census costs:
///
/// `out[d] = (min(prev[d], prev[d-1]+P1, prev[d+1]+P1, min(prev)+P2)
///            - min(prev)).saturating_add(cost[d])`
///
/// with `u16::saturating_add` semantics on every addition. `prev`, `cost`
/// and `out` all have `levels` elements.
pub fn census_aggregate_span(
    level: SimdLevel,
    prev: &[u16],
    cost: &[u8],
    p1: u16,
    p2: u16,
    out: &mut [u16],
) {
    debug_assert_eq!(prev.len(), out.len());
    debug_assert_eq!(cost.len(), out.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: caller verified AVX2 support.
            unsafe { census_aggregate_span_avx2(prev, cost, p1, p2, out) }
        }
        _ => census_aggregate_span_scalar(prev, cost, p1, p2, out),
    }
}

fn census_aggregate_span_scalar(prev: &[u16], cost: &[u8], p1: u16, p2: u16, out: &mut [u16]) {
    let levels = prev.len();
    let prev_min = prev.iter().copied().min().unwrap_or(0);
    let jump = prev_min.saturating_add(p2);
    for d in 0..levels {
        let mut best = prev[d];
        if d > 0 {
            best = best.min(prev[d - 1].saturating_add(p1));
        }
        if d + 1 < levels {
            best = best.min(prev[d + 1].saturating_add(p1));
        }
        best = best.min(jump);
        // `best >= prev_min` because every candidate is >= the row minimum.
        out[d] = (best - prev_min).saturating_add(cost[d] as u16);
    }
}

// ---------------------------------------------------------------------------
// x86-64 implementations
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2` (the dispatcher checks
    /// `is_x86_feature_detected!`).  Slice bounds are clamped internally,
    /// so no further preconditions apply.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn abs_diff_row_avx2(
        lrow: &[f32],
        rrow: &[f32],
        d: usize,
        r: usize,
        out: &mut [f32],
    ) {
        let width = lrow.len();
        // Indices i with an unclamped source: i - r in [d, width - 1].
        let lo = (d + r).min(out.len());
        let hi = (width + r).min(out.len()).max(lo);
        super::abs_diff_row_scalar_range(lrow, rrow, d, r, out, 0, lo);
        super::abs_diff_row_scalar_range(lrow, rrow, d, r, out, hi, out.len());
        // SAFETY: for i in [lo, hi), both l[i - r] and r[i - r - d] are in
        // bounds by construction of lo/hi; vector loads read 8 consecutive
        // elements, guarded by `i + 8 <= hi`.
        unsafe {
            let sign = _mm256_set1_ps(-0.0);
            let mut i = lo;
            while i + 8 <= hi {
                let a = _mm256_loadu_ps(lrow.as_ptr().add(i - r));
                let b = _mm256_loadu_ps(rrow.as_ptr().add(i - r - d));
                let v = _mm256_andnot_ps(sign, _mm256_sub_ps(a, b));
                _mm256_storeu_ps(out.as_mut_ptr().add(i), v);
                i += 8;
            }
            super::abs_diff_row_scalar_range(lrow, rrow, d, r, out, i, hi);
        }
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2`, and that
    /// `diff.len() >= out.len() + window - 1` so every window sum has a
    /// full source span (the call sites size `diff` exactly this way).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn hwindow_sums_avx2(diff: &[f32], window: usize, out: &mut [f32]) {
        let n = out.len();
        let mut x = 0usize;
        // SAFETY: loads cover diff[x + t .. x + t + 8] with x + 8 <= n and
        // t < window, so the furthest read index is n - 1 + window - 1 ==
        // diff.len() - 1.
        unsafe {
            while x + 8 <= n {
                let mut acc = _mm256_setzero_ps();
                for t in 0..window {
                    acc = _mm256_add_ps(acc, _mm256_loadu_ps(diff.as_ptr().add(x + t)));
                }
                _mm256_storeu_ps(out.as_mut_ptr().add(x), acc);
                x += 8;
            }
        }
        for (xi, slot) in out.iter_mut().enumerate().skip(x) {
            *slot = diff[xi..xi + window].iter().sum();
        }
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2` and that
    /// `row.len() >= acc.len()` (the vector tail reads both at the same
    /// indices).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_assign_rows_avx2(acc: &mut [f32], row: &[f32]) {
        let n = acc.len();
        let mut i = 0usize;
        // SAFETY: loads/stores stay within `i + 8 <= n`.
        unsafe {
            while i + 8 <= n {
                let a = _mm256_loadu_ps(acc.as_ptr().add(i));
                let b = _mm256_loadu_ps(row.as_ptr().add(i));
                _mm256_storeu_ps(acc.as_mut_ptr().add(i), _mm256_add_ps(a, b));
                i += 8;
            }
        }
        for (a, &v) in acc.iter_mut().zip(row).skip(i) {
            *a += v;
        }
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2` and that every row in
    /// `rows` has at least `out.len()` elements; the border columns fall
    /// back to the clamped scalar path internally.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn census_row_u64_avx2(rows: &[&[f32]], rx: usize, out: &mut [u64]) {
        let width = out.len();
        let ry = rows.len() / 2;
        let center_row = rows[ry];
        let lo = rx.min(width);
        let hi = width.saturating_sub(rx).max(lo);
        for (x, slot) in out.iter_mut().enumerate().take(lo) {
            *slot = super::census_pixel_u64(rows, rx, x, width);
        }
        for (x, slot) in out.iter_mut().enumerate().skip(hi) {
            *slot = super::census_pixel_u64(rows, rx, x, width);
        }
        let mut x = lo;
        // SAFETY: for x in [lo, hi - 8] every neighbour load x + dx with
        // |dx| <= rx stays within [0, width - 8], so 8-wide unaligned loads
        // and the two 4-wide u64 stores are in bounds.
        unsafe {
            while x + 8 <= hi {
                let center = _mm256_loadu_ps(center_row.as_ptr().add(x));
                let mut acc_lo = _mm256_setzero_si256();
                let mut acc_hi = _mm256_setzero_si256();
                let mut k = 0u32;
                for (ci, row) in rows.iter().enumerate() {
                    for dx in -(rx as isize)..=(rx as isize) {
                        if ci == ry && dx == 0 {
                            continue;
                        }
                        let nb = _mm256_loadu_ps(row.as_ptr().offset(x as isize + dx));
                        let m = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LT_OQ>(nb, center));
                        let wlo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m));
                        let whi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(m));
                        let bit = _mm256_set1_epi64x(1i64 << k);
                        acc_lo = _mm256_or_si256(acc_lo, _mm256_and_si256(wlo, bit));
                        acc_hi = _mm256_or_si256(acc_hi, _mm256_and_si256(whi, bit));
                        k += 1;
                    }
                }
                _mm256_storeu_si256(out.as_mut_ptr().add(x).cast(), acc_lo);
                _mm256_storeu_si256(out.as_mut_ptr().add(x + 4).cast(), acc_hi);
                x += 8;
            }
        }
        for (xi, slot) in out.iter_mut().enumerate().take(hi).skip(x) {
            *slot = super::census_pixel_u64(rows, rx, xi, width);
        }
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2` and that every row in
    /// `rows` has at least `out.len()` elements, as for the u64 variant.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn census_row_u32_avx2(rows: &[&[f32]], rx: usize, out: &mut [u32]) {
        let width = out.len();
        let ry = rows.len() / 2;
        let center_row = rows[ry];
        let lo = rx.min(width);
        let hi = width.saturating_sub(rx).max(lo);
        for (x, slot) in out.iter_mut().enumerate().take(lo) {
            *slot = super::census_pixel_u64(rows, rx, x, width) as u32;
        }
        for (x, slot) in out.iter_mut().enumerate().skip(hi) {
            *slot = super::census_pixel_u64(rows, rx, x, width) as u32;
        }
        let mut x = lo;
        // SAFETY: same bounds argument as the u64 variant; one 8-wide u32
        // store per iteration.
        unsafe {
            while x + 8 <= hi {
                let center = _mm256_loadu_ps(center_row.as_ptr().add(x));
                let mut acc = _mm256_setzero_si256();
                let mut k = 0u32;
                for (ci, row) in rows.iter().enumerate() {
                    for dx in -(rx as isize)..=(rx as isize) {
                        if ci == ry && dx == 0 {
                            continue;
                        }
                        let nb = _mm256_loadu_ps(row.as_ptr().offset(x as isize + dx));
                        let m = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LT_OQ>(nb, center));
                        let bit = _mm256_set1_epi32(1i32 << k);
                        acc = _mm256_or_si256(acc, _mm256_and_si256(m, bit));
                        k += 1;
                    }
                }
                _mm256_storeu_si256(out.as_mut_ptr().add(x).cast(), acc);
                x += 8;
            }
        }
        for (xi, slot) in out.iter_mut().enumerate().take(hi).skip(x) {
            *slot = super::census_pixel_u64(rows, rx, xi, width) as u32;
        }
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports `sse4.2` and `popcnt`; the body
    /// is the safe scalar kernel, recompiled with hardware popcount.
    #[target_feature(enable = "sse4.2", enable = "popcnt")]
    pub(super) unsafe fn hamming_row_u64_popcnt(
        ldesc: &[u64],
        rdesc: &[u64],
        levels: usize,
        out: &mut [u8],
    ) {
        // Same source as the scalar tier; `count_ones` compiles to the
        // hardware `popcnt` instruction inside this target_feature scope.
        super::hamming_row_u64_scalar(ldesc, rdesc, levels, out);
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports `sse4.2` and `popcnt`; the body
    /// is the safe scalar kernel, recompiled with hardware popcount.
    #[target_feature(enable = "sse4.2", enable = "popcnt")]
    pub(super) unsafe fn hamming_row_u32_popcnt(
        ldesc: &[u32],
        rdesc: &[u32],
        levels: usize,
        out: &mut [u8],
    ) {
        super::hamming_row_u32_scalar(ldesc, rdesc, levels, out);
    }

    /// Per-64-bit-lane popcount via the nibble-LUT `vpshufb` trick reduced
    /// with `vpsadbw`; exactly matches `u64::count_ones` per lane.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2`; the body is pure
    /// register arithmetic with no memory access.
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt_epi64(v: __m256i) -> __m256i {
        // Pure register arithmetic, no memory access: the intrinsics are safe
        // to call inside this matching `target_feature` scope.
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2` and `popcnt`, and that
    /// `ldesc.len() == rdesc.len()` with `out.len() >= ldesc.len() *
    /// levels` (each pixel writes one `levels`-long cost span).
    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub(super) unsafe fn hamming_row_u64_avx2(
        ldesc: &[u64],
        rdesc: &[u64],
        levels: usize,
        out: &mut [u8],
    ) {
        for (x, &l) in ldesc.iter().enumerate() {
            let base = x * levels;
            let mut d = 0usize;
            // SAFETY: the 4-wide u64 load at rdesc[x - d - 3] requires
            // d + 3 <= x (checked) and reads 4 elements ending at
            // rdesc[x - d] with x - d < width.
            unsafe {
                let lv = _mm256_set1_epi64x(l as i64);
                let mut lanes = [0u64; 4];
                while d + 4 <= levels && d + 3 <= x {
                    let r = _mm256_loadu_si256(rdesc.as_ptr().add(x - d - 3).cast());
                    let cnt = popcnt_epi64(_mm256_xor_si256(lv, r));
                    _mm256_storeu_si256(lanes.as_mut_ptr().cast(), cnt);
                    // Ascending memory lane j holds rdesc[x - d - 3 + j],
                    // i.e. disparity d + 3 - j.
                    out[base + d] = lanes[3] as u8;
                    out[base + d + 1] = lanes[2] as u8;
                    out[base + d + 2] = lanes[1] as u8;
                    out[base + d + 3] = lanes[0] as u8;
                    d += 4;
                }
            }
            for d in d..levels {
                let rx = x.saturating_sub(d);
                out[base + d] = (l ^ rdesc[rx]).count_ones() as u8;
            }
        }
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2` and `popcnt`, with the
    /// same slice contract as the u64 variant.
    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub(super) unsafe fn hamming_row_u32_avx2(
        ldesc: &[u32],
        rdesc: &[u32],
        levels: usize,
        out: &mut [u8],
    ) {
        for (x, &l) in ldesc.iter().enumerate() {
            let base = x * levels;
            let mut d = 0usize;
            // SAFETY: the 8-wide u32 load at rdesc[x - d - 7] requires
            // d + 7 <= x (checked) and reads 8 elements ending at
            // rdesc[x - d] with x - d < width.
            unsafe {
                let lv = _mm256_set1_epi32(l as i32);
                let ones8 = _mm256_set1_epi8(1);
                let ones16 = _mm256_set1_epi16(1);
                let lut = _mm256_setr_epi8(
                    0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                    2, 3, 2, 3, 3, 4,
                );
                let low = _mm256_set1_epi8(0x0f);
                let mut lanes = [0u32; 8];
                while d + 8 <= levels && d + 7 <= x {
                    let r = _mm256_loadu_si256(rdesc.as_ptr().add(x - d - 7).cast());
                    let v = _mm256_xor_si256(lv, r);
                    let lo = _mm256_and_si256(v, low);
                    let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low);
                    let cnt =
                        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
                    // Per-u32 popcount: byte counts -> u16 pair sums -> u32 sums.
                    let s32 = _mm256_madd_epi16(_mm256_maddubs_epi16(cnt, ones8), ones16);
                    _mm256_storeu_si256(lanes.as_mut_ptr().cast(), s32);
                    // Ascending lane j is disparity d + 7 - j.
                    for j in 0..8 {
                        out[base + d + j] = lanes[7 - j] as u8;
                    }
                    d += 8;
                }
            }
            for d in d..levels {
                let rx = x.saturating_sub(d);
                out[base + d] = (l ^ rdesc[rx]).count_ones() as u8;
            }
        }
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2` and that `prev`, `cost`
    /// and `out` all have exactly `levels` elements (one cost per
    /// disparity level).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn census_aggregate_span_avx2(
        prev: &[u16],
        cost: &[u8],
        p1: u16,
        p2: u16,
        out: &mut [u16],
    ) {
        let levels = prev.len();
        if levels < 18 {
            super::census_aggregate_span_scalar(prev, cost, p1, p2, out);
            return;
        }
        // SAFETY: all vector loads/stores below stay inside [0, levels):
        // 16-lane min-reduce chunks are guarded by `i + 16 <= levels`; the
        // recurrence chunks cover dd..dd+16 with 1 <= dd <= levels - 17, so
        // the d±1 neighbour loads span [0, levels - 1] and the 16-byte cost
        // load ends before levels.
        unsafe {
            // Exact row minimum (min is associative, so lane order is free).
            let mut minv = _mm256_set1_epi16(-1); // u16::MAX
            let mut i = 0usize;
            while i + 16 <= levels {
                minv = _mm256_min_epu16(minv, _mm256_loadu_si256(prev.as_ptr().add(i).cast()));
                i += 16;
            }
            let mut lanes = [0u16; 16];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), minv);
            let mut prev_min = lanes.iter().copied().min().unwrap_or(u16::MAX);
            for &v in &prev[i..] {
                prev_min = prev_min.min(v);
            }

            let jump = prev_min.saturating_add(p2);
            let p1v = _mm256_set1_epi16(p1 as i16);
            let jv = _mm256_set1_epi16(jump as i16);
            let pmv = _mm256_set1_epi16(prev_min as i16);

            let interior_end = levels - 1;
            let mut d = 1usize;
            while d < interior_end {
                let dd = d.min(interior_end - 16);
                let same = _mm256_loadu_si256(prev.as_ptr().add(dd).cast());
                let minus =
                    _mm256_adds_epu16(_mm256_loadu_si256(prev.as_ptr().add(dd - 1).cast()), p1v);
                let plus =
                    _mm256_adds_epu16(_mm256_loadu_si256(prev.as_ptr().add(dd + 1).cast()), p1v);
                let best =
                    _mm256_min_epu16(_mm256_min_epu16(same, _mm256_min_epu16(minus, plus)), jv);
                let c = _mm256_cvtepu8_epi16(_mm_loadu_si128(cost.as_ptr().add(dd).cast()));
                let res = _mm256_adds_epu16(_mm256_subs_epu16(best, pmv), c);
                _mm256_storeu_si256(out.as_mut_ptr().add(dd).cast(), res);
                d = dd + 16;
            }

            // Boundary hypotheses (one-sided neighbourhood) stay scalar.
            let d0best = prev[0].min(prev[1].saturating_add(p1)).min(jump);
            out[0] = (d0best - prev_min).saturating_add(cost[0] as u16);
            let dl = levels - 1;
            let dlbest = prev[dl].min(prev[dl - 1].saturating_add(p1)).min(jump);
            out[dl] = (dlbest - prev_min).saturating_add(cost[dl] as u16);
        }
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{
    abs_diff_row_avx2, add_assign_rows_avx2, census_aggregate_span_avx2, census_row_u32_avx2,
    census_row_u64_avx2, hamming_row_u32_avx2, hamming_row_u32_popcnt, hamming_row_u64_avx2,
    hamming_row_u64_popcnt, hwindow_sums_avx2,
};

/// Scalar abs-diff over a sub-range of `out` (border handling shared by the
/// vector tiers).
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
fn abs_diff_row_scalar_range(
    lrow: &[f32],
    rrow: &[f32],
    d: usize,
    r: usize,
    out: &mut [f32],
    from: usize,
    to: usize,
) {
    let width = lrow.len();
    for (i, slot) in out.iter_mut().enumerate().take(to).skip(from) {
        let u = i as isize - r as isize;
        let lu = u.clamp(0, width as isize - 1) as usize;
        let ru = (u - d as isize).clamp(0, width as isize - 1) as usize;
        *slot = (lrow[lu] - rrow[ru]).abs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_names() {
        assert!(SimdLevel::Scalar < SimdLevel::Sse42);
        assert!(SimdLevel::Sse42 < SimdLevel::Avx2);
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
        let levels = available_levels();
        assert_eq!(levels[0], SimdLevel::Scalar);
        assert!(levels.contains(&detected_level()));
        assert!(active_level() <= detected_level());
    }

    #[test]
    fn hamming_tiers_agree_on_small_input() {
        let ldesc: Vec<u64> = (0..23u64)
            .map(|x| x.wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        let rdesc: Vec<u64> = (0..23u64)
            .map(|x| x.wrapping_mul(0xc2b2ae3d27d4eb4f))
            .collect();
        let levels = 9;
        let mut reference = vec![0u8; ldesc.len() * levels];
        hamming_row_u64(SimdLevel::Scalar, &ldesc, &rdesc, levels, &mut reference);
        for &level in available_levels() {
            let mut got = vec![0u8; reference.len()];
            hamming_row_u64(level, &ldesc, &rdesc, levels, &mut got);
            assert_eq!(got, reference, "level {}", level.name());
        }
    }

    #[test]
    fn aggregate_tiers_agree_on_small_input() {
        let levels = 33;
        let prev: Vec<u16> = (0..levels as u16).map(|d| (d * 7 + 3) % 64).collect();
        let cost: Vec<u8> = (0..levels as u8).map(|d| (d * 5 + 1) % 63).collect();
        let mut reference = vec![0u16; levels];
        census_aggregate_span(SimdLevel::Scalar, &prev, &cost, 2, 32, &mut reference);
        for &level in available_levels() {
            let mut got = vec![0u16; levels];
            census_aggregate_span(level, &prev, &cost, 2, 32, &mut got);
            assert_eq!(got, reference, "level {}", level.name());
        }
    }
}
