//! Census transform and Hamming-distance matching costs.
//!
//! The census transform (Zabih & Woodfill) replaces each pixel by a bit
//! string recording, for every neighbour in a small window, whether that
//! neighbour is darker than the centre. Matching two census descriptors is a
//! Hamming distance — XOR plus popcount — which turns the cost-volume fill
//! into pure integer bitwise arithmetic and shrinks the volume to one byte
//! per cell (4× smaller than the f32 SAD volume). This is the cost metric
//! real-time stereo FPGA systems use and the key-frame fast path behind
//! [`crate::CostMetric::Census`].
//!
//! All kernels dispatch through [`crate::simd`] (scalar / SSE4.2 / AVX2) and
//! are bit-identical across tiers. Buffers are retained in place, so
//! same-sized frames re-use storage and the streaming steady state performs
//! no allocation.

use crate::simd::{self, SimdLevel};
use asv_image::Image;
use serde::{Deserialize, Serialize};

/// Census comparison window. Larger windows give more robust descriptors at
/// the price of a wider border and more transform work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CensusWindow {
    /// 5×5 window, 24 comparison bits, `u32` descriptors.
    W5x5,
    /// 7×7 window, 48 comparison bits, `u64` descriptors (the usual
    /// accuracy/speed sweet spot; default).
    #[default]
    W7x7,
    /// 9×7 window, 62 comparison bits, `u64` descriptors.
    W9x7,
}

impl CensusWindow {
    /// Horizontal comparison radius.
    pub fn rx(self) -> usize {
        match self {
            CensusWindow::W5x5 => 2,
            CensusWindow::W7x7 => 3,
            CensusWindow::W9x7 => 4,
        }
    }

    /// Vertical comparison radius.
    pub fn ry(self) -> usize {
        match self {
            CensusWindow::W5x5 => 2,
            CensusWindow::W7x7 => 3,
            CensusWindow::W9x7 => 3,
        }
    }

    /// Number of comparison bits per descriptor.
    pub fn bits(self) -> usize {
        (2 * self.rx() + 1) * (2 * self.ry() + 1) - 1
    }

    /// Whether descriptors fit a `u32` (≤ 31 bits) or need a `u64`.
    pub fn uses_u32(self) -> bool {
        self.bits() <= 31
    }
}

/// Maximum window height across [`CensusWindow`] variants (stack buffer for
/// the per-row slice table).
const MAX_WINDOW_ROWS: usize = 7;

/// Per-pixel census descriptors of one image.
///
/// Storage lives in whichever of the two word vectors matches the window
/// (`u32` for 5×5, `u64` otherwise); both are retained across refills so the
/// steady state allocates nothing.
#[derive(Debug, Default)]
pub struct CensusDescriptors {
    width: usize,
    height: usize,
    window: CensusWindow,
    words32: Vec<u32>,
    words64: Vec<u64>,
}

impl CensusDescriptors {
    /// An empty descriptor plane (no storage until the first fill).
    pub fn new() -> Self {
        Self::default()
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The window the descriptors were computed with.
    pub fn window(&self) -> CensusWindow {
        self.window
    }

    /// Bytes currently retained by the descriptor storage.
    pub fn retained_bytes(&self) -> usize {
        self.words32.capacity() * std::mem::size_of::<u32>()
            + self.words64.capacity() * std::mem::size_of::<u64>()
    }

    /// Releases retained storage.
    pub fn trim(&mut self) {
        *self = Self::default();
    }

    /// Row `y` of `u32` descriptors (5×5 window only).
    pub fn row_u32(&self, y: usize) -> &[u32] {
        &self.words32[y * self.width..][..self.width]
    }

    /// Row `y` of `u64` descriptors (7×7 / 9×7 windows).
    pub fn row_u64(&self, y: usize) -> &[u64] {
        &self.words64[y * self.width..][..self.width]
    }

    /// Computes the census transform of `img`, reusing storage when the size
    /// matches the previous fill.
    pub fn fill_from(&mut self, img: &Image, window: CensusWindow, level: SimdLevel) {
        let width = img.width();
        let height = img.height();
        self.width = width;
        self.height = height;
        self.window = window;
        let cells = width * height;
        if window.uses_u32() {
            if self.words32.len() != cells {
                self.words32.clear();
                self.words32.resize(cells, 0);
            }
        } else if self.words64.len() != cells {
            self.words64.clear();
            self.words64.resize(cells, 0);
        }
        if cells == 0 {
            return;
        }
        let pixels = img.as_slice();
        let rx = window.rx();
        let ry = window.ry();

        // One output row at a time: gather the (row-clamped) source rows of
        // the window into a stack table, then run the row kernel.
        let row_table = |y: usize| -> ([&[f32]; MAX_WINDOW_ROWS], usize) {
            let mut rows: [&[f32]; MAX_WINDOW_ROWS] = [&[]; MAX_WINDOW_ROWS];
            let wh = 2 * ry + 1;
            for (i, slot) in rows.iter_mut().enumerate().take(wh) {
                let v =
                    (y as isize + i as isize - ry as isize).clamp(0, height as isize - 1) as usize;
                *slot = &pixels[v * width..][..width];
            }
            (rows, wh)
        };

        if window.uses_u32() {
            let fill_row = |y: usize, out: &mut [u32]| {
                let (rows, wh) = row_table(y);
                simd::census_row_u32(level, &rows[..wh], rx, out);
            };
            #[cfg(feature = "parallel")]
            {
                use rayon::prelude::*;
                self.words32
                    .par_chunks_mut(width)
                    .enumerate()
                    .for_each(|(y, out)| fill_row(y, out));
            }
            #[cfg(not(feature = "parallel"))]
            for (y, out) in self.words32.chunks_mut(width).enumerate() {
                fill_row(y, out);
            }
        } else {
            let fill_row = |y: usize, out: &mut [u64]| {
                let (rows, wh) = row_table(y);
                simd::census_row_u64(level, &rows[..wh], rx, out);
            };
            #[cfg(feature = "parallel")]
            {
                use rayon::prelude::*;
                self.words64
                    .par_chunks_mut(width)
                    .enumerate()
                    .for_each(|(y, out)| fill_row(y, out));
            }
            #[cfg(not(feature = "parallel"))]
            for (y, out) in self.words64.chunks_mut(width).enumerate() {
                fill_row(y, out);
            }
        }
    }
}

/// A dense Hamming-distance cost volume over census descriptors, one byte
/// per `(x, y, d)` cell in the same `[y][x][d]` layout as
/// [`crate::cost_volume::CostVolume`].
#[derive(Debug, Default)]
pub struct CensusCostVolume {
    width: usize,
    height: usize,
    max_disparity: usize,
    costs: Vec<u8>,
}

impl CensusCostVolume {
    /// An empty volume (no storage until the first fill).
    pub fn new() -> Self {
        Self::default()
    }

    /// Volume width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Volume height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Largest disparity hypothesis stored.
    pub fn max_disparity(&self) -> usize {
        self.max_disparity
    }

    /// Number of disparity hypotheses (`max_disparity + 1`).
    pub fn num_disparities(&self) -> usize {
        self.max_disparity + 1
    }

    /// Total number of stored cost cells.
    pub fn num_cells(&self) -> usize {
        self.costs.len()
    }

    /// Bytes currently retained by the cost storage.
    pub fn retained_bytes(&self) -> usize {
        self.costs.capacity()
    }

    /// Releases retained storage.
    pub fn trim(&mut self) {
        *self = Self::default();
    }

    /// Hamming cost of hypothesis `d` at pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates or disparity are out of range.
    #[inline]
    pub fn cost(&self, x: usize, y: usize, d: usize) -> u8 {
        assert!(x < self.width && y < self.height && d <= self.max_disparity);
        self.costs[(y * self.width + x) * self.num_disparities() + d]
    }

    /// The `levels`-long cost span of pixel `(x, y)`.
    #[inline]
    pub(crate) fn span(&self, x: usize, y: usize) -> &[u8] {
        let levels = self.num_disparities();
        &self.costs[(y * self.width + x) * levels..][..levels]
    }

    /// Fills the volume from a descriptor pair, reusing storage when sizes
    /// match. Out-of-range hypotheses (`d > x`) clamp to the first column,
    /// mirroring the SAD volume's border convention.
    ///
    /// # Panics
    ///
    /// Panics when the descriptor planes differ in size or window.
    pub fn fill_from_descriptors(
        &mut self,
        left: &CensusDescriptors,
        right: &CensusDescriptors,
        max_disparity: usize,
        level: SimdLevel,
    ) {
        assert_eq!(left.width(), right.width(), "descriptor width mismatch");
        assert_eq!(left.height(), right.height(), "descriptor height mismatch");
        assert_eq!(left.window(), right.window(), "descriptor window mismatch");
        let width = left.width();
        let height = left.height();
        self.width = width;
        self.height = height;
        self.max_disparity = max_disparity;
        let levels = max_disparity + 1;
        let cells = width * height * levels;
        if self.costs.len() != cells {
            self.costs.clear();
            self.costs.resize(cells, 0);
        }
        if cells == 0 {
            return;
        }
        let row_stride = width * levels;
        let use32 = left.window().uses_u32();
        let fill_row = |y: usize, out: &mut [u8]| {
            if use32 {
                simd::hamming_row_u32(level, left.row_u32(y), right.row_u32(y), levels, out);
            } else {
                simd::hamming_row_u64(level, left.row_u64(y), right.row_u64(y), levels, out);
            }
        };
        #[cfg(feature = "parallel")]
        {
            use rayon::prelude::*;
            self.costs
                .par_chunks_mut(row_stride)
                .enumerate()
                .for_each(|(y, out)| fill_row(y, out));
        }
        #[cfg(not(feature = "parallel"))]
        for (y, out) in self.costs.chunks_mut(row_stride).enumerate() {
            fill_row(y, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_geometry() {
        assert_eq!(CensusWindow::W5x5.bits(), 24);
        assert_eq!(CensusWindow::W7x7.bits(), 48);
        assert_eq!(CensusWindow::W9x7.bits(), 62);
        assert!(CensusWindow::W5x5.uses_u32());
        assert!(!CensusWindow::W7x7.uses_u32());
        assert!(!CensusWindow::W9x7.uses_u32());
        assert_eq!(CensusWindow::default(), CensusWindow::W7x7);
    }

    #[test]
    fn descriptor_bits_match_direct_comparison() {
        let img = Image::from_fn(11, 9, |x, y| ((x * 5 + y * 3) % 13) as f32 - 6.0);
        let window = CensusWindow::W7x7;
        let mut desc = CensusDescriptors::new();
        desc.fill_from(&img, window, SimdLevel::Scalar);
        let (rx, ry) = (window.rx() as isize, window.ry() as isize);
        for y in 0..9usize {
            for x in 0..11usize {
                let got = desc.row_u64(y)[x];
                let center = img.at(x, y);
                let mut expect = 0u64;
                let mut k = 0;
                for dy in -ry..=ry {
                    for dx in -rx..=rx {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        if img.at_clamped(x as isize + dx, y as isize + dy) < center {
                            expect |= 1 << k;
                        }
                        k += 1;
                    }
                }
                assert_eq!(got, expect, "pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn identical_images_have_zero_hamming_cost_at_zero_disparity() {
        let img = Image::from_fn(16, 8, |x, y| ((x * 7 + y * 11) % 17) as f32);
        let mut dl = CensusDescriptors::new();
        let mut dr = CensusDescriptors::new();
        dl.fill_from(&img, CensusWindow::W5x5, SimdLevel::Scalar);
        dr.fill_from(&img, CensusWindow::W5x5, SimdLevel::Scalar);
        let mut vol = CensusCostVolume::new();
        vol.fill_from_descriptors(&dl, &dr, 4, SimdLevel::Scalar);
        for y in 0..8 {
            for x in 0..16 {
                assert_eq!(vol.cost(x, y, 0), 0, "pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn shifted_pair_minimizes_cost_at_true_disparity() {
        let truth = 3usize;
        let right = Image::from_fn(32, 12, |x, y| ((x * 13 + y * 7) % 23) as f32);
        let left = Image::from_fn(32, 12, |x, y| {
            right.at_clamped(x as isize - truth as isize, y as isize)
        });
        let mut dl = CensusDescriptors::new();
        let mut dr = CensusDescriptors::new();
        dl.fill_from(&left, CensusWindow::W7x7, SimdLevel::Scalar);
        dr.fill_from(&right, CensusWindow::W7x7, SimdLevel::Scalar);
        let mut vol = CensusCostVolume::new();
        vol.fill_from_descriptors(&dl, &dr, 8, SimdLevel::Scalar);
        // Interior pixels away from borders and the clamp zone.
        for y in 4..8 {
            for x in 12..28 {
                let best = (0..vol.num_disparities())
                    .min_by_key(|&d| vol.cost(x, y, d))
                    .unwrap();
                assert_eq!(best, truth, "pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn refill_reuses_storage() {
        let img_a = Image::from_fn(12, 6, |x, y| (x + y) as f32);
        let img_b = Image::from_fn(12, 6, |x, y| (x * 2 + y) as f32);
        let mut desc = CensusDescriptors::new();
        desc.fill_from(&img_a, CensusWindow::W7x7, SimdLevel::Scalar);
        let ptr = desc.words64.as_ptr();
        desc.fill_from(&img_b, CensusWindow::W7x7, SimdLevel::Scalar);
        assert_eq!(desc.words64.as_ptr(), ptr, "storage must be reused");
    }
}
