//! Semi-global matching (SGM).
//!
//! SGM aggregates the local matching costs along several 1-D paths with a
//! smoothness prior, then picks the disparity with the lowest aggregated cost.
//! It is the algorithm behind the "SGBN" and "HH" classic baselines of Fig. 1
//! and — with sub-pixel interpolation and a left-right consistency check — it
//! is also the highest-accuracy classic matcher in this reproduction, which is
//! why the DNN surrogate in `asv-dnn` builds on it.

use crate::census::{CensusCostVolume, CensusDescriptors, CensusWindow};
use crate::cost_volume::CostVolume;
use crate::disparity::{DisparityMap, StereoError};
use crate::simd::{self, SimdLevel};
use crate::Result;
use asv_image::cost::BlockSpec;
use asv_image::Image;
use asv_mem::{BufferPool, U16Pool};
use asv_trace::{KernelTimings, Stage};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Matching-cost metric used by the semi-global matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CostMetric {
    /// `f32` sum-of-absolute-differences over a square block: the original
    /// metric of this reproduction, the reference for accuracy comparisons.
    #[default]
    Sad,
    /// Census transform + Hamming distance: integer bitwise costs (one byte
    /// per cell) aggregated by an integer SGM — the SIMD-friendly key-frame
    /// fast path used by real-time stereo hardware.
    Census,
}

impl CostMetric {
    /// Stable lowercase name (used in benchmark reports and session config).
    pub fn name(self) -> &'static str {
        match self {
            CostMetric::Sad => "sad",
            CostMetric::Census => "census",
        }
    }
}

/// Parameters of the semi-global matcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgmParams {
    /// Matching block half-width for the unary costs.
    pub block: BlockSpec,
    /// Largest disparity hypothesis.
    pub max_disparity: usize,
    /// Penalty for a one-pixel disparity change between neighbours.  The
    /// census path rounds this to the nearest integer.
    pub p1: f32,
    /// Penalty for a larger disparity change between neighbours.  The census
    /// path rounds this to the nearest integer.
    pub p2: f32,
    /// Enable parabolic sub-pixel refinement.
    pub subpixel: bool,
    /// Enable the left-right consistency check (invalidates inconsistent
    /// pixels, e.g. occlusions).
    pub left_right_check: bool,
    /// Maximum allowed left-right disparity difference when the check is
    /// enabled.
    pub lr_threshold: f32,
    /// Matching-cost metric (SAD block costs or census/Hamming).
    pub metric: CostMetric,
    /// Census comparison window (used when `metric` is
    /// [`CostMetric::Census`]).
    pub census_window: CensusWindow,
}

impl Default for SgmParams {
    fn default() -> Self {
        Self {
            block: BlockSpec::new(2),
            max_disparity: 64,
            p1: 2.0,
            p2: 32.0,
            subpixel: true,
            left_right_check: false,
            lr_threshold: 1.5,
            metric: CostMetric::Sad,
            census_window: CensusWindow::default(),
        }
    }
}

/// The four aggregation directions used by this implementation (left, right,
/// up, down).  Diagonals add accuracy but little insight; four paths keep the
/// runtime of the tests reasonable while preserving SGM's behaviour.
const DIRECTIONS: [(isize, isize); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];

/// Reusable scratch for [`semi_global_match_with`]: the cost volume, the
/// aggregation buffers (checked out of a size-keyed [`BufferPool`]) and the
/// mirrored images / right-reference map of the left-right check.
///
/// A fresh workspace performs no allocation; the first match sizes every
/// buffer and subsequent matches on same-sized pairs reuse them.  One
/// workspace serves any number of sequential matches (it is keyed by size,
/// not by content).
#[derive(Debug)]
pub struct SgmWorkspace {
    volume: CostVolume,
    pool: BufferPool,
    census_l: CensusDescriptors,
    census_r: CensusDescriptors,
    cvolume: CensusCostVolume,
    ipool: U16Pool,
    mirror_l: Image,
    mirror_r: Image,
    map_r: DisparityMap,
    /// Cost-fill / aggregation timings of the most recent
    /// [`semi_global_match_with`] call (two entries per pass; a left-right
    /// check doubles the passes), for harvesting into a frame tracer.
    timings: KernelTimings,
}

impl SgmWorkspace {
    /// Creates an empty workspace (no allocation until first use).
    pub fn new() -> Self {
        Self {
            volume: CostVolume::empty(),
            pool: BufferPool::new(),
            census_l: CensusDescriptors::new(),
            census_r: CensusDescriptors::new(),
            cvolume: CensusCostVolume::new(),
            ipool: U16Pool::new(),
            mirror_l: Image::default(),
            mirror_r: Image::default(),
            map_r: DisparityMap::invalid(0, 0),
            timings: KernelTimings::new(),
        }
    }

    /// Stage timings recorded by the most recent matching call.
    pub fn timings(&self) -> &KernelTimings {
        &self.timings
    }

    /// Bytes currently retained by the workspace (cost volumes, census
    /// descriptors, pooled aggregation buffers), e.g. for capacity planning
    /// of many concurrent sessions.
    pub fn retained_bytes(&self) -> usize {
        self.volume.num_cells() * std::mem::size_of::<f32>()
            + self.pool.retained_bytes()
            + self.census_l.retained_bytes()
            + self.census_r.retained_bytes()
            + self.cvolume.retained_bytes()
            + self.ipool.retained_bytes()
    }

    /// Releases all retained buffers (e.g. when a stream goes idle).
    pub fn trim(&mut self) {
        self.volume = CostVolume::empty();
        self.pool.trim();
        self.census_l.trim();
        self.census_r.trim();
        self.cvolume.trim();
        self.ipool.trim();
        self.mirror_l = Image::default();
        self.mirror_r = Image::default();
        self.map_r = DisparityMap::invalid(0, 0);
    }
}

impl Default for SgmWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregates the cost volume along one direction, writing into a reusable
/// buffer (resized to the volume; every cell is overwritten).
fn aggregate_direction_into(
    volume: &CostVolume,
    dir: (isize, isize),
    p1: f32,
    p2: f32,
    agg: &mut Vec<f32>,
) {
    let width = volume.width();
    let height = volume.height();
    let levels = volume.num_disparities();
    let cells = width * height * levels;
    if agg.len() != cells {
        agg.clear();
        agg.resize(cells, 0.0);
    }

    // Traversal order: along the direction, so the predecessor is already
    // computed.  For horizontal paths iterate x innermost; for vertical paths
    // the x order is irrelevant to correctness and mirrors the reference.
    for yi in 0..height {
        let y = if dir.1 > 0 { yi } else { height - 1 - yi };
        for xi in 0..width {
            let x = if dir.0 > 0 { xi } else { width - 1 - xi };
            let px = x as isize - dir.0;
            let py = y as isize - dir.1;
            let base = (y * width + x) * levels;
            if px < 0 || py < 0 || px >= width as isize || py >= height as isize {
                for d in 0..levels {
                    agg[base + d] = volume.cost(x, y, d);
                }
                continue;
            }
            let pbase = (py as usize * width + px as usize) * levels;
            let prev_min = (0..levels)
                .map(|d| agg[pbase + d])
                .fold(f32::INFINITY, f32::min);
            for d in 0..levels {
                let same = agg[pbase + d];
                let minus = if d > 0 {
                    agg[pbase + d - 1] + p1
                } else {
                    f32::INFINITY
                };
                let plus = if d + 1 < levels {
                    agg[pbase + d + 1] + p1
                } else {
                    f32::INFINITY
                };
                let jump = prev_min + p2;
                let best_prev = same.min(minus).min(plus).min(jump);
                agg[base + d] = volume.cost(x, y, d) + best_prev - prev_min;
            }
        }
    }
}

/// Runs SGM over an already-built cost volume, returning the aggregated
/// volume summed over all directions (the buffer is checked out of `pool`;
/// the caller returns it with [`BufferPool::put`] when done).
///
/// The four directional passes are independent; with the `parallel` feature
/// they run concurrently on the rayon pool and are reduced in direction
/// order, so the summation order matches the sequential build.
fn aggregate_all_pooled(volume: &CostVolume, p1: f32, p2: f32, pool: &mut BufferPool) -> Vec<f32> {
    let cells = volume.num_cells();
    let mut total = pool.take_zeroed(cells);
    let mut dirs: [Vec<f32>; 4] = std::array::from_fn(|_| pool.take_scratch(cells));

    #[cfg(feature = "parallel")]
    {
        let [d0, d1, d2, d3] = &mut dirs;
        rayon::join(
            || {
                rayon::join(
                    || aggregate_direction_into(volume, DIRECTIONS[0], p1, p2, d0),
                    || aggregate_direction_into(volume, DIRECTIONS[1], p1, p2, d1),
                )
            },
            || {
                rayon::join(
                    || aggregate_direction_into(volume, DIRECTIONS[2], p1, p2, d2),
                    || aggregate_direction_into(volume, DIRECTIONS[3], p1, p2, d3),
                )
            },
        );
    }
    #[cfg(not(feature = "parallel"))]
    for (agg, &dir) in dirs.iter_mut().zip(&DIRECTIONS) {
        aggregate_direction_into(volume, dir, p1, p2, agg);
    }

    for agg in dirs {
        for (t, a) in total.iter_mut().zip(&agg) {
            *t += a;
        }
        pool.put(agg);
    }
    total
}

/// Integer SGM aggregation along one direction over a census (Hamming) cost
/// volume.  Same traversal as [`aggregate_direction_into`]; the per-pixel
/// `min+penalty` inner loop runs at the given SIMD tier.
fn aggregate_census_direction_into(
    volume: &CensusCostVolume,
    dir: (isize, isize),
    p1: u16,
    p2: u16,
    agg: &mut Vec<u16>,
    level: SimdLevel,
) {
    let width = volume.width();
    let height = volume.height();
    let levels = volume.num_disparities();
    let cells = width * height * levels;
    if agg.len() != cells {
        agg.clear();
        agg.resize(cells, 0);
    }
    for yi in 0..height {
        let y = if dir.1 > 0 { yi } else { height - 1 - yi };
        for xi in 0..width {
            let x = if dir.0 > 0 { xi } else { width - 1 - xi };
            let px = x as isize - dir.0;
            let py = y as isize - dir.1;
            let base = (y * width + x) * levels;
            let costs = volume.span(x, y);
            if px < 0 || py < 0 || px >= width as isize || py >= height as isize {
                for (slot, &c) in agg[base..base + levels].iter_mut().zip(costs) {
                    *slot = c as u16;
                }
                continue;
            }
            let pbase = (py as usize * width + px as usize) * levels;
            // The predecessor and current spans never overlap (they are at
            // least one pixel, i.e. `levels` cells, apart).
            let (prev, out): (&[u16], &mut [u16]) = if pbase < base {
                let (lo, hi) = agg.split_at_mut(base);
                (&lo[pbase..pbase + levels], &mut hi[..levels])
            } else {
                let (lo, hi) = agg.split_at_mut(pbase);
                (&hi[..levels], &mut lo[base..base + levels])
            };
            simd::census_aggregate_span(level, prev, costs, p1, p2, out);
        }
    }
}

/// Census counterpart of [`aggregate_all_pooled`]: four `u16` directional
/// passes (parallel with the `parallel` feature) reduced in direction order
/// with saturating adds.
fn aggregate_census_all_pooled(
    volume: &CensusCostVolume,
    p1: u16,
    p2: u16,
    pool: &mut U16Pool,
    level: SimdLevel,
) -> Vec<u16> {
    let cells = volume.num_cells();
    let mut total = pool.take_zeroed(cells);
    let mut dirs: [Vec<u16>; 4] = std::array::from_fn(|_| pool.take_scratch(cells));

    #[cfg(feature = "parallel")]
    {
        let [d0, d1, d2, d3] = &mut dirs;
        rayon::join(
            || {
                rayon::join(
                    || aggregate_census_direction_into(volume, DIRECTIONS[0], p1, p2, d0, level),
                    || aggregate_census_direction_into(volume, DIRECTIONS[1], p1, p2, d1, level),
                )
            },
            || {
                rayon::join(
                    || aggregate_census_direction_into(volume, DIRECTIONS[2], p1, p2, d2, level),
                    || aggregate_census_direction_into(volume, DIRECTIONS[3], p1, p2, d3, level),
                )
            },
        );
    }
    #[cfg(not(feature = "parallel"))]
    for (agg, &dir) in dirs.iter_mut().zip(&DIRECTIONS) {
        aggregate_census_direction_into(volume, dir, p1, p2, agg, level);
    }

    for agg in dirs {
        for (t, a) in total.iter_mut().zip(&agg) {
            *t = t.saturating_add(*a);
        }
        pool.put(agg);
    }
    total
}

/// Winner-take-all over an integer aggregated volume; the sub-pixel parabola
/// is evaluated on exact `f32` conversions of the integer costs.
fn winner_take_all_u16_into(
    total: &[u16],
    width: usize,
    height: usize,
    levels: usize,
    subpixel: bool,
    out: &mut DisparityMap,
) {
    out.reshape_scratch(width, height);
    let dst = out.as_image_mut().as_mut_slice();
    for y in 0..height {
        for x in 0..width {
            let base = (y * width + x) * levels;
            let mut best_d = 0usize;
            let mut best_cost = u16::MAX;
            for (d, &c) in total[base..base + levels].iter().enumerate() {
                if c < best_cost {
                    best_cost = c;
                    best_d = d;
                }
            }
            let value = if !subpixel || best_d == 0 || best_d + 1 >= levels {
                best_d as f32
            } else {
                let c0 = f32::from(total[base + best_d - 1]);
                let c1 = f32::from(best_cost);
                let c2 = f32::from(total[base + best_d + 1]);
                let denom = c0 - 2.0 * c1 + c2;
                if denom.abs() < 1e-9 {
                    best_d as f32
                } else {
                    best_d as f32 + (0.5 * (c0 - c2) / denom).clamp(-0.5, 0.5)
                }
            };
            dst[y * width + x] = value;
        }
    }
}

/// Winner-take-all over an aggregated volume, writing into a reusable map.
fn winner_take_all_into(
    total: &[f32],
    width: usize,
    height: usize,
    levels: usize,
    subpixel: bool,
    out: &mut DisparityMap,
) {
    // Every pixel is assigned below, so the plane needs no fill.
    out.reshape_scratch(width, height);
    let dst = out.as_image_mut().as_mut_slice();
    for y in 0..height {
        for x in 0..width {
            let base = (y * width + x) * levels;
            let mut best_d = 0usize;
            let mut best_cost = f32::INFINITY;
            for d in 0..levels {
                if total[base + d] < best_cost {
                    best_cost = total[base + d];
                    best_d = d;
                }
            }
            let value = if !subpixel || best_d == 0 || best_d + 1 >= levels {
                best_d as f32
            } else {
                let c0 = total[base + best_d - 1];
                let c1 = best_cost;
                let c2 = total[base + best_d + 1];
                let denom = c0 - 2.0 * c1 + c2;
                if denom.abs() < 1e-9 {
                    best_d as f32
                } else {
                    best_d as f32 + (0.5 * (c0 - c2) / denom).clamp(-0.5, 0.5)
                }
            };
            dst[y * width + x] = value;
        }
    }
}

/// Horizontally mirrors `src` into a reusable output image.
fn mirror_into(src: &Image, out: &mut Image) {
    let width = src.width();
    let height = src.height();
    out.reshape_scratch(width, height);
    let dst = out.as_mut_slice();
    for y in 0..height {
        for x in 0..width {
            dst[y * width + x] = src.at(width - 1 - x, y);
        }
    }
}

/// One SAD-metric matching pass: `f32` cost volume, `f32` aggregation,
/// winner-take-all.
fn sad_pass(
    volume: &mut CostVolume,
    pool: &mut BufferPool,
    timings: &mut KernelTimings,
    left: &Image,
    right: &Image,
    params: &SgmParams,
    out: &mut DisparityMap,
) -> Result<()> {
    let fill_started = Instant::now();
    volume.fill_from_pair(left, right, params.max_disparity, params.block)?;
    timings.record(Stage::CostFill, fill_started, fill_started.elapsed(), 1);
    let levels = volume.num_disparities();
    let aggregate_started = Instant::now();
    let total = aggregate_all_pooled(volume, params.p1, params.p2, pool);
    timings.record(
        Stage::SgmAggregate,
        aggregate_started,
        aggregate_started.elapsed(),
        1,
    );
    winner_take_all_into(
        &total,
        volume.width(),
        volume.height(),
        levels,
        params.subpixel,
        out,
    );
    pool.put(total);
    Ok(())
}

/// One census-metric matching pass: census transform of both images, Hamming
/// cost volume, integer aggregation, winner-take-all.  All stages dispatch to
/// the active SIMD tier.
#[allow(clippy::too_many_arguments)]
fn census_pass(
    census_l: &mut CensusDescriptors,
    census_r: &mut CensusDescriptors,
    cvolume: &mut CensusCostVolume,
    ipool: &mut U16Pool,
    timings: &mut KernelTimings,
    left: &Image,
    right: &Image,
    params: &SgmParams,
    out: &mut DisparityMap,
) -> Result<()> {
    if left.width() != right.width() || left.height() != right.height() {
        // lint: alloc-ok(error path)
        return Err(StereoError::dimension_mismatch(format!(
            "{}x{} vs {}x{}",
            left.width(),
            left.height(),
            right.width(),
            right.height()
        )));
    }
    if left.is_empty() {
        return Err(StereoError::invalid_parameter(
            "cannot build a cost volume from empty images",
        ));
    }
    let level = simd::active_level();
    let fill_started = Instant::now();
    census_l.fill_from(left, params.census_window, level);
    census_r.fill_from(right, params.census_window, level);
    cvolume.fill_from_descriptors(census_l, census_r, params.max_disparity, level);
    timings.record(Stage::CostFill, fill_started, fill_started.elapsed(), 1);
    let p1 = params.p1.round().max(0.0) as u16;
    let p2 = params.p2.round().max(0.0) as u16;
    let levels = cvolume.num_disparities();
    let aggregate_started = Instant::now();
    let total = aggregate_census_all_pooled(cvolume, p1, p2, ipool, level);
    timings.record(
        Stage::SgmAggregate,
        aggregate_started,
        aggregate_started.elapsed(),
        1,
    );
    winner_take_all_u16_into(
        &total,
        cvolume.width(),
        cvolume.height(),
        levels,
        params.subpixel,
        out,
    );
    ipool.put(total);
    Ok(())
}

/// Semi-global stereo matching of a rectified pair.
///
/// # Errors
///
/// Returns [`StereoError::DimensionMismatch`] for mismatched image sizes and
/// [`StereoError::InvalidParameter`] for empty images or zero disparity
/// range.
pub fn semi_global_match(left: &Image, right: &Image, params: &SgmParams) -> Result<DisparityMap> {
    let mut ws = SgmWorkspace::new();
    let mut out = DisparityMap::invalid(0, 0);
    semi_global_match_with(&mut ws, left, right, params, &mut out)?;
    Ok(out)
}

/// [`semi_global_match`] threading a reusable [`SgmWorkspace`] and writing
/// the disparity map into a reusable output: identical output, zero heap
/// allocations once the workspace is warm (same-sized pairs).
///
/// # Errors
///
/// Same conditions as [`semi_global_match`]; on error the contents of `out`
/// are unspecified.
pub fn semi_global_match_with(
    ws: &mut SgmWorkspace,
    left: &Image,
    right: &Image,
    params: &SgmParams,
    out: &mut DisparityMap,
) -> Result<()> {
    if params.max_disparity == 0 {
        return Err(StereoError::invalid_parameter(
            "max_disparity must be non-zero",
        ));
    }
    // Destructure the workspace so the pass helpers can borrow the pooled
    // state mutably while the mirror images stay borrowable for the check.
    let SgmWorkspace {
        volume,
        pool,
        census_l,
        census_r,
        cvolume,
        ipool,
        mirror_l,
        mirror_r,
        map_r,
        timings,
    } = ws;
    timings.clear();
    match params.metric {
        CostMetric::Sad => sad_pass(volume, pool, timings, left, right, params, out)?,
        CostMetric::Census => {
            census_pass(
                census_l, census_r, cvolume, ipool, timings, left, right, params, out,
            )?;
        }
    }

    if params.left_right_check {
        // Match in the other direction by mirroring both images horizontally,
        // which converts right-reference matching into left-reference matching.
        mirror_into(left, mirror_l);
        mirror_into(right, mirror_r);
        match params.metric {
            CostMetric::Sad => sad_pass(volume, pool, timings, mirror_r, mirror_l, params, map_r)?,
            CostMetric::Census => {
                census_pass(
                    census_l, census_r, cvolume, ipool, timings, mirror_r, mirror_l, params, map_r,
                )?;
            }
        }
        let map_r = &*map_r;
        let width = out.width();
        for y in 0..out.height() {
            for x in 0..width {
                let Some(d) = out.get(x, y) else { continue };
                // Pixel (x, y) in the left image corresponds to (x - d, y) in
                // the right image, which is (width - 1 - (x - d), y) in the
                // mirrored right image.
                let rx = x as f32 - d;
                if rx < 0.0 {
                    out.invalidate(x, y);
                    continue;
                }
                let mx = (width as f32 - 1.0 - rx).round() as usize;
                if mx >= width {
                    out.invalidate(x, y);
                    continue;
                }
                match map_r.get(mx, y) {
                    Some(dr) if (dr - d).abs() <= params.lr_threshold => {}
                    _ => out.invalidate(x, y),
                }
            }
        }
    }
    Ok(())
}

/// Arithmetic operation count of SGM on a frame of the given size: cost-volume
/// construction plus path aggregation.  Used for the Fig. 1 frontier.
pub fn sgm_op_count(width: usize, height: usize, params: &SgmParams) -> u64 {
    let pixels = width as u64 * height as u64;
    let levels = params.max_disparity as u64 + 1;
    let volume = pixels * levels * asv_image::cost::sad_ops_per_block(params.block);
    // Each direction and disparity level costs ~5 ops (3 mins, 1 add, 1 sub).
    let aggregation = pixels * levels * DIRECTIONS.len() as u64 * 5;
    let factor = if params.left_right_check { 2 } else { 1 };
    (volume + aggregation) * factor
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rectified pair with two fronto-parallel planes: background at disparity
    /// `bg`, a central square at disparity `fg`.
    fn two_plane_pair(
        width: usize,
        height: usize,
        bg: usize,
        fg: usize,
    ) -> (Image, Image, DisparityMap) {
        let texture = |x: isize, y: isize| -> f32 {
            let xf = x as f32;
            let yf = y as f32;
            (xf * 0.61).sin() * (yf * 0.37).cos()
                + ((x.rem_euclid(5) * 3 + y.rem_euclid(7)) as f32) * 0.07
        };
        let truth = DisparityMap::from_fn(width, height, |x, y| {
            let inside = x > width / 3 && x < 2 * width / 3 && y > height / 3 && y < 2 * height / 3;
            if inside {
                fg as f32
            } else {
                bg as f32
            }
        });
        // Build the left image from the texture and synthesise the right image
        // by shifting each pixel by its disparity.
        let left = Image::from_fn(width, height, |x, y| texture(x as isize, y as isize));
        let right = Image::from_fn(width, height, |x, y| {
            // For the right image, a scene point visible at left x_l appears at
            // x_r = x_l - d; we render by sampling the texture at x + d for the
            // *background* and foreground layers with proper occlusion: the
            // nearer (larger-d) layer wins.
            let fg_left_x = x as isize + fg as isize;
            let inside_fg = fg_left_x > (width / 3) as isize
                && fg_left_x < (2 * width / 3) as isize
                && y > height / 3
                && y < 2 * height / 3;
            if inside_fg {
                texture(fg_left_x, y as isize)
            } else {
                texture(x as isize + bg as isize, y as isize)
            }
        });
        (left, right, truth)
    }

    #[test]
    fn sgm_recovers_two_plane_scene() {
        let (l, r, truth) = two_plane_pair(48, 32, 4, 10);
        let params = SgmParams {
            max_disparity: 16,
            ..Default::default()
        };
        let map = semi_global_match(&l, &r, &params).unwrap();
        let err = map.three_pixel_error(&truth).unwrap();
        assert!(err < 0.15, "three-pixel error {err}");
    }

    #[test]
    fn sgm_beats_or_matches_block_matching_on_textureless_regions() {
        // Flat (textureless) background: the smoothness prior of SGM keeps the
        // background coherent where local matching is ambiguous.
        let width = 48;
        let height = 32;
        let truth_d = 6usize;
        let left = Image::from_fn(width, height, |x, y| {
            if y > height / 2 {
                ((x * 13 + y * 7) % 19) as f32 * 0.1
            } else {
                0.5
            }
        });
        let right = Image::from_fn(width, height, |x, y| {
            left.at_clamped(x as isize + truth_d as isize, y as isize)
        });
        let truth = DisparityMap::constant(width, height, truth_d as f32);
        let sgm_map = semi_global_match(
            &left,
            &right,
            &SgmParams {
                max_disparity: 16,
                ..Default::default()
            },
        )
        .unwrap();
        let bm_map = crate::block_matching::block_match(
            &left,
            &right,
            &crate::block_matching::BlockMatchParams {
                max_disparity: 16,
                ..Default::default()
            },
        )
        .unwrap();
        let sgm_err = sgm_map.error_rate(&truth, 1.0).unwrap();
        let bm_err = bm_map.error_rate(&truth, 1.0).unwrap();
        assert!(sgm_err <= bm_err + 1e-9, "sgm {sgm_err} vs bm {bm_err}");
    }

    #[test]
    fn left_right_check_invalidates_occlusions() {
        let (l, r, _) = two_plane_pair(48, 32, 4, 10);
        let no_check = semi_global_match(
            &l,
            &r,
            &SgmParams {
                max_disparity: 16,
                left_right_check: false,
                ..Default::default()
            },
        )
        .unwrap();
        let with_check = semi_global_match(
            &l,
            &r,
            &SgmParams {
                max_disparity: 16,
                left_right_check: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(no_check.valid_fraction(), 1.0);
        assert!(with_check.valid_fraction() < 1.0);
        assert!(with_check.valid_fraction() > 0.5);
    }

    #[test]
    fn census_metric_recovers_two_plane_scene() {
        let (l, r, truth) = two_plane_pair(48, 32, 4, 10);
        for window in [CensusWindow::W5x5, CensusWindow::W7x7, CensusWindow::W9x7] {
            let params = SgmParams {
                max_disparity: 16,
                metric: CostMetric::Census,
                census_window: window,
                p1: 2.0,
                p2: 16.0,
                ..Default::default()
            };
            let map = semi_global_match(&l, &r, &params).unwrap();
            let err = map.three_pixel_error(&truth).unwrap();
            assert!(err < 0.15, "{window:?} three-pixel error {err}");
        }
    }

    #[test]
    fn census_metric_left_right_check_invalidates_occlusions() {
        let (l, r, _) = two_plane_pair(48, 32, 4, 10);
        let with_check = semi_global_match(
            &l,
            &r,
            &SgmParams {
                max_disparity: 16,
                metric: CostMetric::Census,
                p2: 16.0,
                left_right_check: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with_check.valid_fraction() < 1.0);
        assert!(with_check.valid_fraction() > 0.5);
    }

    #[test]
    fn census_workspace_reuse_matches_fresh_runs() {
        let (l, r, _) = two_plane_pair(40, 28, 3, 9);
        let params = SgmParams {
            max_disparity: 12,
            metric: CostMetric::Census,
            left_right_check: true,
            ..Default::default()
        };
        let fresh = semi_global_match(&l, &r, &params).unwrap();
        let mut ws = SgmWorkspace::new();
        let mut out = DisparityMap::invalid(0, 0);
        for _ in 0..3 {
            semi_global_match_with(&mut ws, &l, &r, &params, &mut out).unwrap();
            assert_eq!(out.as_image().as_slice(), fresh.as_image().as_slice());
        }
        assert!(ws.retained_bytes() > 0);
        ws.trim();
        assert_eq!(ws.retained_bytes(), 0);
    }

    #[test]
    fn zero_disparity_range_is_rejected() {
        let img = Image::filled(8, 8, 1.0);
        for metric in [CostMetric::Sad, CostMetric::Census] {
            let params = SgmParams {
                max_disparity: 0,
                metric,
                ..Default::default()
            };
            assert!(semi_global_match(&img, &img, &params).is_err());
        }
        let params = SgmParams {
            metric: CostMetric::Census,
            ..Default::default()
        };
        let empty = Image::default();
        assert!(semi_global_match(&empty, &empty, &params).is_err());
        let other = Image::filled(6, 8, 1.0);
        assert!(semi_global_match(&img, &other, &params).is_err());
    }

    #[test]
    fn op_count_scales_with_disparity_range() {
        let small = sgm_op_count(
            100,
            100,
            &SgmParams {
                max_disparity: 16,
                ..Default::default()
            },
        );
        let large = sgm_op_count(
            100,
            100,
            &SgmParams {
                max_disparity: 64,
                ..Default::default()
            },
        );
        assert!(large > 3 * small);
        let checked = sgm_op_count(
            100,
            100,
            &SgmParams {
                max_disparity: 64,
                left_right_check: true,
                ..Default::default()
            },
        );
        assert_eq!(checked, 2 * large);
    }
}
