//! Hardware resource description used by the scheduler and the accelerator
//! models.

use serde::{Deserialize, Serialize};

/// Resources of a systolic-array DNN accelerator (the `R*` of Eq. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwConfig {
    /// Processing-element rows.
    pub pe_rows: usize,
    /// Processing-element columns.
    pub pe_cols: usize,
    /// Unified on-chip buffer capacity in bytes (working + filling halves).
    pub buffer_bytes: u64,
    /// Sustained DRAM bandwidth in bytes per accelerator cycle.
    pub dram_bytes_per_cycle: f64,
    /// Accelerator clock frequency in hertz.
    pub frequency_hz: f64,
}

impl HwConfig {
    /// The ASV evaluation configuration (Sec. 6.1): 24×24 PEs at 1 GHz, a
    /// 1.5 MB unified SRAM and four LPDDR3-1600 channels (≈ 25.6 GB/s).
    pub fn asv_default() -> Self {
        Self {
            pe_rows: 24,
            pe_cols: 24,
            buffer_bytes: 3 * 512 * 1024, // 1.5 MB
            dram_bytes_per_cycle: 25.6,   // 25.6 GB/s at 1 GHz
            frequency_hz: 1.0e9,
        }
    }

    /// Returns the configuration with a different square PE array size.
    pub fn with_pe_array(mut self, rows: usize, cols: usize) -> Self {
        self.pe_rows = rows;
        self.pe_cols = cols;
        self
    }

    /// Returns the configuration with a different buffer capacity.
    pub fn with_buffer_bytes(mut self, bytes: u64) -> Self {
        self.buffer_bytes = bytes;
        self
    }

    /// Total number of PEs (`A*` in Eq. 6).
    pub fn pe_count(&self) -> u64 {
        (self.pe_rows * self.pe_cols) as u64
    }

    /// Peak multiply-accumulate throughput in operations per second.
    pub fn peak_macs_per_second(&self) -> f64 {
        self.pe_count() as f64 * self.frequency_hz
    }

    /// Capacity of one double-buffer half — the budget a single round's data
    /// must fit in (Eq. 10).
    pub fn round_buffer_bytes(&self) -> u64 {
        self.buffer_bytes / 2
    }

    /// Converts a cycle count into seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.frequency_hz
    }
}

impl Default for HwConfig {
    fn default() -> Self {
        Self::asv_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_configuration() {
        let hw = HwConfig::asv_default();
        assert_eq!(hw.pe_count(), 576);
        assert_eq!(hw.buffer_bytes, 1_572_864);
        assert_eq!(hw.round_buffer_bytes(), 786_432);
        // 576 MACs/cycle at 1 GHz = 0.576 TMAC/s ⇒ 1.152 Tera ops/s counting
        // multiply and add separately, the paper's raw throughput figure.
        assert!((hw.peak_macs_per_second() * 2.0 - 1.152e12).abs() < 1e6);
    }

    #[test]
    fn builder_methods_modify_resources() {
        let hw = HwConfig::asv_default()
            .with_pe_array(8, 8)
            .with_buffer_bytes(512 * 1024);
        assert_eq!(hw.pe_count(), 64);
        assert_eq!(hw.buffer_bytes, 512 * 1024);
    }

    #[test]
    fn cycle_conversion() {
        let hw = HwConfig::asv_default();
        assert!((hw.cycles_to_seconds(1_000_000_000) - 1.0).abs() < 1e-12);
    }
}
