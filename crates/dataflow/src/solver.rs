//! Schedule generators: the generic static-partition baseline, the greedy
//! Knapsack optimizer (with and without inter-layer activation reuse) and an
//! exhaustive reference solver used to validate the greedy heuristic.

use crate::hw::HwConfig;
pub use crate::model::Round;
use crate::model::{fits_in_buffer, ifmap_tile_bytes, ofmap_bytes, round_cost};
use crate::workload::{LayerWorkload, SubKernel};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Which operand stays resident in the buffer across consecutive rounds — the
/// binary reuse-order variable `β` of Eq. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReuseOrder {
    /// The ifmap tile stays; filters are streamed (β = 0, `l_m:In`).
    IfmapStationary,
    /// The filters stay; ifmap tiles are streamed (β = 1, `l_m:W`).
    WeightStationary,
}

/// A complete per-layer schedule: the rounds in execution order plus the
/// reuse order that produced them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSchedule {
    /// Rounds in execution order.
    pub rounds: Vec<Round>,
    /// Reuse order chosen for the layer.
    pub reuse: ReuseOrder,
}

/// Accumulated cost of executing one layer (or one network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LayerCost {
    /// Total latency in cycles.
    pub cycles: u64,
    /// Total multiply-accumulates.
    pub macs: u64,
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// Bytes streamed through the on-chip SRAM.
    pub sram_bytes: u64,
    /// Number of rounds executed.
    pub rounds: u64,
    /// Rounds whose latency was bounded by compute rather than memory.
    pub compute_bound_rounds: u64,
}

impl LayerCost {
    /// Adds another cost to this one (layers execute back to back, Sec. 4.2's
    /// layer-wise execution model).
    pub fn accumulate(&mut self, other: &LayerCost) {
        self.cycles += other.cycles;
        self.macs += other.macs;
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.sram_bytes += other.sram_bytes;
        self.rounds += other.rounds;
        self.compute_bound_rounds += other.compute_bound_rounds;
    }

    /// Total DRAM traffic (read + write).
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Prices a full schedule.
pub fn schedule_cost(
    workload: &LayerWorkload,
    hw: &HwConfig,
    schedule: &LayerSchedule,
) -> LayerCost {
    let mut cost = LayerCost::default();
    for round in &schedule.rounds {
        let rc = round_cost(workload, hw, round);
        cost.cycles += rc.cycles;
        cost.macs += rc.macs;
        cost.dram_read_bytes += rc.dram_read_bytes;
        cost.dram_write_bytes += rc.dram_write_bytes;
        cost.sram_bytes += rc.sram_bytes;
        cost.rounds += 1;
        if rc.compute_cycles >= rc.memory_cycles {
            cost.compute_bound_rounds += 1;
        }
    }
    cost
}

/// Splits `total` into `parts` nearly equal chunks (first chunks larger).
fn split_even(total: u64, parts: u64) -> Vec<u64> {
    if parts == 0 {
        return Vec::new();
    }
    let base = total / parts;
    let extra = (total % parts) as usize;
    (0..parts as usize)
        .map(|i| base + if i < extra { 1 } else { 0 })
        .collect()
}

/// Generic static-partition schedule: the on-chip buffer is statically split
/// into equal thirds for ifmap, weights and ofmap, a partition searched
/// offline and shared by all layers (the paper's baseline, Sec. 6.2).  Each
/// sub-kernel is processed independently; filters are held across the ifmap
/// strips of their group but the ifmap is re-streamed for every filter group.
pub fn generic_schedule(workload: &LayerWorkload, hw: &HwConfig) -> LayerSchedule {
    let mut rounds = Vec::new();
    if workload.sub_kernels.is_empty() || workload.out_channels == 0 {
        return LayerSchedule {
            rounds,
            reuse: ReuseOrder::WeightStationary,
        };
    }
    let third = (hw.buffer_bytes / 3).max(1);
    let total_positions = workload.ifmap_positions().max(1);

    for k in 0..workload.sub_kernels.len() {
        // Filters per group limited by the static weight partition.
        let per_filter_bytes = workload.filter_bytes(k).max(1);
        let group = (third / per_filter_bytes).clamp(1, workload.out_channels as u64);
        let n_groups = (workload.out_channels as u64).div_ceil(group);
        let filter_groups = split_even(workload.out_channels as u64, n_groups);

        for &filters_in_group in &filter_groups {
            // Ifmap strip limited by the static ifmap partition and by the
            // ofmap partition.
            let bytes_per_position = (workload.in_channels as u64 * 2).max(1);
            let mut strip = (third / bytes_per_position).clamp(1, total_positions);
            // Shrink the strip until its ofmap slice also fits its partition.
            while strip > 1 && ofmap_bytes(workload, strip, filters_in_group) > third {
                strip /= 2;
            }
            let n_strips = total_positions.div_ceil(strip);
            let strips = split_even(total_positions, n_strips);
            for (s, &positions) in strips.iter().enumerate() {
                let mut filters = vec![0u64; workload.sub_kernels.len()];
                filters[k] = filters_in_group;
                rounds.push(Round {
                    positions,
                    filters,
                    load_ifmap: true,
                    load_weights: s == 0,
                });
            }
        }
    }
    LayerSchedule {
        rounds,
        reuse: ReuseOrder::WeightStationary,
    }
}

/// Builds the filter groups of one ifmap-tile size using the paper's greedy
/// Knapsack heuristic: every filter of every sub-kernel is an item whose
/// weight is its buffer footprint (weights + ofmap slice) and whose value is
/// its MAC count; filters from large sub-kernels are packed first, and the
/// solver is re-applied until every filter has been placed (all items must be
/// consumed, unlike 0/1 Knapsack).
fn pack_filter_groups(
    workload: &LayerWorkload,
    capacity: u64,
    positions: u64,
) -> Option<Vec<Vec<u64>>> {
    let n = workload.sub_kernels.len();
    // Remaining filters per sub-kernel.
    let mut remaining: Vec<u64> = vec![workload.out_channels as u64; n];
    // Order sub-kernels by descending volume (value density) — the greedy
    // priority the paper describes.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&k| std::cmp::Reverse(workload.sub_kernels[k].volume()));

    let mut groups = Vec::new();
    while remaining.iter().any(|&r| r > 0) {
        let mut group = vec![0u64; n];
        let mut used = 0u64;
        let mut placed_any = false;
        for &k in &order {
            if remaining[k] == 0 {
                continue;
            }
            let per_filter = workload.filter_bytes(k) + ofmap_bytes(workload, positions, 1);
            if per_filter == 0 {
                group[k] += remaining[k];
                remaining[k] = 0;
                placed_any = true;
                continue;
            }
            let fits = (capacity.saturating_sub(used)) / per_filter;
            let take = fits.min(remaining[k]);
            if take > 0 {
                group[k] += take;
                remaining[k] -= take;
                used += take * per_filter;
                placed_any = true;
            }
        }
        if !placed_any {
            // Not even a single filter fits with this tile size.
            return None;
        }
        groups.push(group);
    }
    Some(groups)
}

/// Candidate ifmap-tile sizes: power-of-two fractions of the full ifmap.
fn tile_candidates(workload: &LayerWorkload, hw: &HwConfig) -> Vec<u64> {
    let total = workload.ifmap_positions().max(1);
    let mut candidates = Vec::new();
    let mut frac = 1u64;
    loop {
        let positions = (total / frac).max(1);
        // Keep only tiles whose ifmap slice leaves at least some room for
        // filters in the round buffer.
        if ifmap_tile_bytes(workload, positions) <= hw.round_buffer_bytes().saturating_sub(64) {
            candidates.push(positions);
        }
        if positions == 1 || frac > total {
            break;
        }
        frac *= 2;
    }
    if candidates.is_empty() {
        candidates.push(1);
    }
    candidates.dedup();
    candidates
}

/// Builds the rounds of one (tile size, filter groups, reuse order) choice.
fn build_rounds(
    workload: &LayerWorkload,
    tile: u64,
    groups: &[Vec<u64>],
    reuse: ReuseOrder,
) -> Vec<Round> {
    let total = workload.ifmap_positions().max(1);
    let n_tiles = total.div_ceil(tile);
    let tiles = split_even(total, n_tiles);
    let mut rounds = Vec::new();
    match reuse {
        ReuseOrder::WeightStationary => {
            // Outer loop over filter groups, inner over ifmap tiles: the
            // filters stay resident, tiles are re-streamed per group.
            for group in groups {
                for (s, &positions) in tiles.iter().enumerate() {
                    rounds.push(Round {
                        positions,
                        filters: group.clone(),
                        load_ifmap: true,
                        load_weights: s == 0,
                    });
                }
            }
        }
        ReuseOrder::IfmapStationary => {
            // Outer loop over ifmap tiles, inner over filter groups: each tile
            // is loaded once, the filters are re-streamed per tile.
            for &positions in tiles.iter() {
                for (g, group) in groups.iter().enumerate() {
                    rounds.push(Round {
                        positions,
                        filters: group.clone(),
                        load_ifmap: g == 0,
                        load_weights: true,
                    });
                }
            }
        }
    }
    rounds
}

/// Cache key of one solved layer: the workload *shape* (everything except
/// the layer name, which never affects the schedule) plus the hardware
/// configuration.  Floats are keyed by their bit patterns — the workloads
/// and configurations in one process are either identical or genuinely
/// different, never "equal up to rounding".
///
/// The optimization levels need no explicit key component: Baseline/DCT use
/// the (cheap, uncached) generic schedule, while ConvR and ILAR reach this
/// solver with structurally different workloads (single-sub-kernel slices vs
/// the joint multi-sub-kernel layer), so the shape already distinguishes
/// them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ScheduleKey {
    in_channels: usize,
    out_channels: usize,
    ifmap: (usize, usize, usize),
    sub_kernels: Vec<(usize, usize, usize)>,
    ofmap_per_position_bits: u64,
    from_deconv: bool,
    pe: (usize, usize),
    buffer_bytes: u64,
    dram_bytes_per_cycle_bits: u64,
    frequency_hz_bits: u64,
}

impl ScheduleKey {
    fn new(workload: &LayerWorkload, hw: &HwConfig) -> Self {
        Self {
            in_channels: workload.in_channels,
            out_channels: workload.out_channels,
            ifmap: (workload.ifmap_d, workload.ifmap_h, workload.ifmap_w),
            sub_kernels: workload
                .sub_kernels
                .iter()
                .map(|&SubKernel { kd, kh, kw }| (kd, kh, kw))
                .collect(),
            ofmap_per_position_bits: workload.ofmap_per_position.to_bits(),
            from_deconv: workload.from_deconv,
            pe: (hw.pe_rows, hw.pe_cols),
            buffer_bytes: hw.buffer_bytes,
            dram_bytes_per_cycle_bits: hw.dram_bytes_per_cycle.to_bits(),
            frequency_hz_bits: hw.frequency_hz.to_bits(),
        }
    }
}

/// Process-wide memo of solved (workload shape, hardware) pairs.
///
/// The exhaustive tile/packing/reuse sweep of [`optimized_schedule`] is by
/// far the hottest part of the analytical experiments, and the same layer
/// shapes recur constantly: networks repeat layer shapes internally, the
/// figure generators sweep the same networks under several optimization
/// levels, and ConvR re-solves every sub-kernel slice per layer.  Solving
/// each distinct shape once turns the Fig. 10/11/12 sweeps from minutes into
/// seconds.
fn schedule_cache() -> &'static Mutex<HashMap<ScheduleKey, (LayerSchedule, LayerCost)>> {
    static CACHE: OnceLock<Mutex<HashMap<ScheduleKey, (LayerSchedule, LayerCost)>>> =
        OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of distinct (workload shape, hardware) pairs solved so far in this
/// process; exposed for cache-behaviour tests and capacity planning.
pub fn schedule_cache_len() -> usize {
    schedule_cache()
        .lock()
        .expect("schedule cache poisoned")
        .len()
}

/// Empties the solver memo.  Benchmarks that want to time the actual tiling
/// sweep (not a cache hit) call this between iterations; long-lived
/// processes sweeping unbounded families of layer shapes can use it to cap
/// memory.
pub fn schedule_cache_clear() {
    schedule_cache()
        .lock()
        .expect("schedule cache poisoned")
        .clear();
}

/// The constrained-optimization scheduler of Sec. 4.2: picks the ifmap tile
/// size, the per-round filter packing (greedy Knapsack) and the reuse order
/// `β` that minimise the layer latency under the buffer constraint, breaking
/// latency ties in favour of less DRAM traffic.
///
/// Results are memoized per (workload shape, hardware) key — see
/// [`schedule_cache`] — so repeated layers and repeated experiment sweeps pay
/// for the search once per process.
///
/// Returns the chosen schedule and its cost.
pub fn optimized_schedule(workload: &LayerWorkload, hw: &HwConfig) -> (LayerSchedule, LayerCost) {
    let key = ScheduleKey::new(workload, hw);
    if let Some(hit) = schedule_cache()
        .lock()
        .expect("schedule cache poisoned")
        .get(&key)
    {
        return hit.clone();
    }
    let solved = optimized_schedule_uncached(workload, hw);
    schedule_cache()
        .lock()
        .expect("schedule cache poisoned")
        .insert(key, solved.clone());
    solved
}

/// The actual tile/packing/reuse sweep behind [`optimized_schedule`].
fn optimized_schedule_uncached(
    workload: &LayerWorkload,
    hw: &HwConfig,
) -> (LayerSchedule, LayerCost) {
    if workload.sub_kernels.is_empty() || workload.out_channels == 0 {
        let schedule = LayerSchedule {
            rounds: Vec::new(),
            reuse: ReuseOrder::IfmapStationary,
        };
        let cost = LayerCost::default();
        return (schedule, cost);
    }
    let mut best: Option<(LayerSchedule, LayerCost)> = None;
    for tile in tile_candidates(workload, hw) {
        let capacity = hw
            .round_buffer_bytes()
            .saturating_sub(ifmap_tile_bytes(workload, tile));
        let Some(groups) = pack_filter_groups(workload, capacity, tile) else {
            continue;
        };
        // Safety check: every group must satisfy Eq. 10.
        debug_assert!(groups.iter().all(|g| fits_in_buffer(workload, hw, tile, g)));
        for reuse in [ReuseOrder::WeightStationary, ReuseOrder::IfmapStationary] {
            let rounds = build_rounds(workload, tile, &groups, reuse);
            let schedule = LayerSchedule { rounds, reuse };
            let cost = schedule_cost(workload, hw, &schedule);
            let better = match &best {
                None => true,
                Some((_, b)) => {
                    cost.cycles < b.cycles
                        || (cost.cycles == b.cycles && cost.dram_bytes() < b.dram_bytes())
                }
            };
            if better {
                best = Some((schedule, cost));
            }
        }
    }
    best.unwrap_or_else(|| {
        // Fall back to the generic schedule when nothing fits (pathological
        // buffer sizes).
        let schedule = generic_schedule(workload, hw);
        let cost = schedule_cost(workload, hw, &schedule);
        (schedule, cost)
    })
}

/// The conventional-reuse variant (`ConvR` in Fig. 11): sub-kernels are
/// scheduled as independent layers, so the shared ifmap is re-fetched for
/// each of them, but each sub-convolution individually enjoys the optimized
/// tiling.
pub fn convr_cost(workload: &LayerWorkload, hw: &HwConfig) -> LayerCost {
    if workload.sub_kernels.len() <= 1 {
        return optimized_schedule(workload, hw).1;
    }
    let mut total = LayerCost::default();
    for k in 0..workload.sub_kernels.len() {
        let single = LayerWorkload {
            name: format!("{}#sub{k}", workload.name),
            sub_kernels: vec![workload.sub_kernels[k]],
            ..workload.clone()
        };
        let (_, cost) = optimized_schedule(&single, hw);
        total.accumulate(&cost);
    }
    total
}

/// The full optimizer with inter-layer activation reuse (`ILAR` in Fig. 11):
/// all sub-kernels are scheduled jointly so each ifmap tile is fetched once
/// and shared.
pub fn ilar_cost(workload: &LayerWorkload, hw: &HwConfig) -> LayerCost {
    optimized_schedule(workload, hw).1
}

/// Exhaustive reference solver over uniform tilings; only viable for tiny
/// layers, used to validate the greedy solver in tests.
pub fn exhaustive_schedule(workload: &LayerWorkload, hw: &HwConfig) -> Option<LayerCost> {
    if workload.sub_kernels.is_empty() || workload.out_channels == 0 {
        return Some(LayerCost::default());
    }
    let total = workload.ifmap_positions().max(1);
    let channels = workload.out_channels as u64;
    let mut best: Option<LayerCost> = None;
    for n_tiles in 1..=total.min(16) {
        let tile = total.div_ceil(n_tiles);
        for group in 1..=channels {
            let filters_template: Vec<u64> = vec![group; workload.sub_kernels.len()];
            if !fits_in_buffer(workload, hw, tile, &filters_template) {
                continue;
            }
            let n_groups = channels.div_ceil(group);
            let groups: Vec<Vec<u64>> = (0..n_groups)
                .map(|g| {
                    let count = if g == n_groups - 1 {
                        channels - group * (n_groups - 1)
                    } else {
                        group
                    };
                    vec![count; workload.sub_kernels.len()]
                })
                .collect();
            for reuse in [ReuseOrder::WeightStationary, ReuseOrder::IfmapStationary] {
                let rounds = build_rounds(workload, tile, &groups, reuse);
                let schedule = LayerSchedule { rounds, reuse };
                let cost = schedule_cost(workload, hw, &schedule);
                if best.as_ref().is_none_or(|b| cost.cycles < b.cycles) {
                    best = Some(cost);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_dnn::{LayerSpec, Stage};

    fn deconv_workload() -> LayerWorkload {
        let spec = LayerSpec::deconv2d("d", Stage::DisparityRefinement, 64, 32, 24, 32, 4, 2, 1);
        LayerWorkload::transformed(&spec)
    }

    fn conv_workload() -> LayerWorkload {
        let spec = LayerSpec::conv2d("c", Stage::FeatureExtraction, 32, 64, 48, 64, 3, 1, 1);
        LayerWorkload::naive(&spec)
    }

    #[test]
    fn schedules_execute_every_filter_exactly_once() {
        let wl = deconv_workload();
        let hw = HwConfig::asv_default();
        for schedule in [generic_schedule(&wl, &hw), optimized_schedule(&wl, &hw).0] {
            // Constraint of Eq. 11: summed over rounds, each sub-kernel's
            // filters × tile positions must cover channels × total positions.
            let total_positions = wl.ifmap_positions();
            for k in 0..wl.sub_kernels.len() {
                let covered: u64 = schedule
                    .rounds
                    .iter()
                    .map(|r| r.filters[k] * r.positions)
                    .sum();
                assert_eq!(
                    covered,
                    wl.out_channels as u64 * total_positions,
                    "sub-kernel {k} not fully covered"
                );
            }
        }
    }

    #[test]
    fn optimized_rounds_respect_the_buffer_constraint() {
        let wl = deconv_workload();
        let hw = HwConfig::asv_default().with_buffer_bytes(256 * 1024);
        let (schedule, _) = optimized_schedule(&wl, &hw);
        for round in &schedule.rounds {
            assert!(fits_in_buffer(&wl, &hw, round.positions, &round.filters));
        }
    }

    #[test]
    fn optimizer_beats_or_matches_generic_schedule() {
        let hw = HwConfig::asv_default();
        for wl in [deconv_workload(), conv_workload()] {
            let generic = schedule_cost(&wl, &hw, &generic_schedule(&wl, &hw));
            let (_, optimized) = optimized_schedule(&wl, &hw);
            assert!(optimized.cycles <= generic.cycles, "{}", wl.name);
            assert!(
                optimized.dram_bytes() <= generic.dram_bytes(),
                "{}",
                wl.name
            );
            assert_eq!(
                optimized.macs, generic.macs,
                "MACs must not change, only scheduling"
            );
        }
    }

    #[test]
    fn ilar_reduces_dram_traffic_relative_to_convr() {
        let wl = deconv_workload();
        let hw = HwConfig::asv_default();
        let convr = convr_cost(&wl, &hw);
        let ilar = ilar_cost(&wl, &hw);
        assert!(ilar.dram_bytes() <= convr.dram_bytes());
        assert_eq!(ilar.macs, convr.macs);
        // Latency is similar or better (the paper observes comparable speedup).
        assert!(ilar.cycles <= convr.cycles);
    }

    #[test]
    fn convr_equals_ilar_for_single_kernel_layers() {
        let wl = conv_workload();
        let hw = HwConfig::asv_default();
        assert_eq!(convr_cost(&wl, &hw), ilar_cost(&wl, &hw));
    }

    #[test]
    fn greedy_is_close_to_exhaustive_on_small_layers() {
        let spec = LayerSpec::deconv2d("small", Stage::DisparityRefinement, 4, 6, 6, 6, 3, 2, 1);
        let wl = LayerWorkload::transformed(&spec);
        let hw = HwConfig::asv_default().with_buffer_bytes(8 * 1024);
        let greedy = optimized_schedule(&wl, &hw).1;
        let exhaustive = exhaustive_schedule(&wl, &hw).expect("exhaustive solver found a schedule");
        assert!(
            greedy.cycles as f64 <= exhaustive.cycles as f64 * 1.25,
            "greedy {} vs exhaustive {}",
            greedy.cycles,
            exhaustive.cycles
        );
    }

    #[test]
    fn memoized_solver_ignores_layer_names_and_is_stable() {
        let wl = deconv_workload();
        let hw = HwConfig::asv_default();
        let first = optimized_schedule(&wl, &hw);
        // Same shape under a different name must hit the same cache entry
        // (ConvR relies on this when it renames sub-kernel slices).
        let renamed = LayerWorkload {
            name: "renamed#sub0".to_owned(),
            ..wl.clone()
        };
        let second = optimized_schedule(&renamed, &hw);
        assert_eq!(first, second);
        assert!(schedule_cache_len() >= 1);
        // A cached result is identical to a fresh solve.
        assert_eq!(first, optimized_schedule_uncached(&wl, &hw));
        // A different hardware configuration is a different key, not a stale
        // hit.
        let small_hw = hw.with_buffer_bytes(32 * 1024);
        let (_, small_cost) = optimized_schedule(&wl, &small_hw);
        assert!(small_cost.rounds >= first.1.rounds);
    }

    #[test]
    fn tiny_buffer_falls_back_to_many_rounds() {
        let wl = deconv_workload();
        let hw = HwConfig::asv_default().with_buffer_bytes(16 * 1024);
        let (schedule, cost) = optimized_schedule(&wl, &hw);
        assert!(schedule.rounds.len() > 4);
        assert!(cost.cycles > 0);
    }

    #[test]
    fn pointwise_workloads_cost_nothing() {
        let spec = LayerSpec::pointwise("relu", Stage::Other, 8, 1, 8, 8, 1);
        let wl = LayerWorkload::naive(&spec);
        let hw = HwConfig::asv_default();
        assert_eq!(optimized_schedule(&wl, &hw).1, LayerCost::default());
        assert_eq!(generic_schedule(&wl, &hw).rounds.len(), 0);
    }

    #[test]
    fn layer_cost_accumulation() {
        let mut a = LayerCost {
            cycles: 10,
            macs: 5,
            ..Default::default()
        };
        let b = LayerCost {
            cycles: 7,
            macs: 3,
            dram_read_bytes: 11,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.cycles, 17);
        assert_eq!(a.macs, 8);
        assert_eq!(a.dram_bytes(), 11);
    }

    #[test]
    fn split_even_covers_total() {
        assert_eq!(split_even(10, 3), vec![4, 3, 3]);
        assert_eq!(split_even(9, 3), vec![3, 3, 3]);
        assert!(split_even(5, 0).is_empty());
    }
}
