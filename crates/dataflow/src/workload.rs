//! Per-layer workloads as seen by the scheduler.
//!
//! A [`LayerWorkload`] is the scheduler's view of one layer: the ifmap volume
//! it must stream, the list of (sub-)kernels that consume that ifmap, and how
//! many output elements each filter produces per ifmap position.  Dense
//! convolutions have exactly one entry in the sub-kernel list; transformed
//! deconvolutions have `2^N` entries sharing the same ifmap — which is
//! precisely the structure inter-layer activation reuse (ILAR) exploits.

use asv_deconv::decompose::sub_kernel_shapes;
use asv_dnn::{LayerOp, LayerSpec};
use serde::{Deserialize, Serialize};

/// Bytes per activation/weight element (16-bit fixed point).
pub const ELEMENT_BYTES: u64 = 2;

/// One (sub-)kernel consuming the workload's ifmap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubKernel {
    /// Kernel depth (1 for 2-D layers).
    pub kd: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
}

impl SubKernel {
    /// Spatial volume of the sub-kernel.
    pub fn volume(&self) -> u64 {
        (self.kd * self.kh * self.kw) as u64
    }
}

/// The scheduler's view of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWorkload {
    /// Layer name (propagated from the network description).
    pub name: String,
    /// Input channels (`I` in Eq. 6).
    pub in_channels: usize,
    /// Output channels per sub-kernel (`C` in Eq. 11).
    pub out_channels: usize,
    /// Ifmap depth (1 for 2-D layers).
    pub ifmap_d: usize,
    /// Ifmap height.
    pub ifmap_h: usize,
    /// Ifmap width.
    pub ifmap_w: usize,
    /// Sub-kernels sharing this ifmap (1 for a dense convolution, `2^N` for a
    /// transformed deconvolution).
    pub sub_kernels: Vec<SubKernel>,
    /// Output positions produced per ifmap position per filter (1/s² for a
    /// stride-`s` convolution, ≈ 1 for transformed-deconvolution
    /// sub-convolutions).
    pub ofmap_per_position: f64,
    /// Whether this workload came from a deconvolution layer.
    pub from_deconv: bool,
}

impl LayerWorkload {
    /// Total ifmap positions (`D × H × W`).
    pub fn ifmap_positions(&self) -> u64 {
        (self.ifmap_d * self.ifmap_h * self.ifmap_w) as u64
    }

    /// Total ifmap bytes.
    pub fn ifmap_bytes(&self) -> u64 {
        self.ifmap_positions() * self.in_channels as u64 * ELEMENT_BYTES
    }

    /// Bytes of one filter of sub-kernel `k` (all input channels).
    pub fn filter_bytes(&self, k: usize) -> u64 {
        self.sub_kernels[k].volume() * self.in_channels as u64 * ELEMENT_BYTES
    }

    /// Total weight bytes across every sub-kernel and filter.
    pub fn total_weight_bytes(&self) -> u64 {
        (0..self.sub_kernels.len())
            .map(|k| self.filter_bytes(k) * self.out_channels as u64)
            .sum()
    }

    /// Total ofmap bytes produced by the layer.
    pub fn total_ofmap_bytes(&self) -> u64 {
        let per_kernel = (self.ifmap_positions() as f64 * self.ofmap_per_position).ceil() as u64
            * self.out_channels as u64;
        per_kernel * self.sub_kernels.len() as u64 * ELEMENT_BYTES
    }

    /// Multiply-accumulates of the whole layer.
    pub fn total_macs(&self) -> u64 {
        self.sub_kernels
            .iter()
            .map(|sk| {
                (self.ifmap_positions() as f64
                    * self.ofmap_per_position
                    * self.in_channels as f64
                    * self.out_channels as f64
                    * sk.volume() as f64)
                    .ceil() as u64
            })
            .sum()
    }

    /// MACs performed by one filter of sub-kernel `k` on an ifmap tile of
    /// `positions` ifmap positions.
    pub fn macs_per_filter(&self, k: usize, positions: u64) -> u64 {
        (positions as f64
            * self.ofmap_per_position
            * self.in_channels as f64
            * self.sub_kernels[k].volume() as f64)
            .ceil() as u64
    }

    /// Builds the workload of a dense convolution or of a *naive* (untransformed)
    /// deconvolution, which a conventional accelerator executes as a dense
    /// convolution over the zero-upsampled ifmap.
    pub fn naive(spec: &LayerSpec) -> Self {
        match spec.op {
            LayerOp::Conv2d { kh, kw, stride, .. } => {
                let (_, oh, ow) = spec.output_dims();
                let ratio = if spec.in_h * spec.in_w == 0 {
                    0.0
                } else {
                    (oh * ow) as f64 / (spec.in_h * spec.in_w) as f64
                };
                Self {
                    name: spec.name.clone(),
                    in_channels: spec.in_channels,
                    out_channels: spec.out_channels,
                    ifmap_d: 1,
                    ifmap_h: spec.in_h,
                    ifmap_w: spec.in_w,
                    sub_kernels: vec![SubKernel { kd: 1, kh, kw }],
                    ofmap_per_position: ratio,
                    from_deconv: false,
                }
                .validated(stride)
            }
            LayerOp::Conv3d {
                kd, kh, kw, stride, ..
            } => {
                let (od, oh, ow) = spec.output_dims();
                let in_vol = spec.in_d * spec.in_h * spec.in_w;
                let ratio = if in_vol == 0 {
                    0.0
                } else {
                    (od * oh * ow) as f64 / in_vol as f64
                };
                Self {
                    name: spec.name.clone(),
                    in_channels: spec.in_channels,
                    out_channels: spec.out_channels,
                    ifmap_d: spec.in_d,
                    ifmap_h: spec.in_h,
                    ifmap_w: spec.in_w,
                    sub_kernels: vec![SubKernel { kd, kh, kw }],
                    ofmap_per_position: ratio,
                    from_deconv: false,
                }
                .validated(stride)
            }
            LayerOp::Deconv2d { kh, kw, .. } => {
                // Naive execution convolves the upsampled ifmap; the workload
                // therefore streams (and tiles over) the output-sized map.
                let (_, oh, ow) = spec.output_dims();
                Self {
                    name: spec.name.clone(),
                    in_channels: spec.in_channels,
                    out_channels: spec.out_channels,
                    ifmap_d: 1,
                    ifmap_h: oh,
                    ifmap_w: ow,
                    sub_kernels: vec![SubKernel { kd: 1, kh, kw }],
                    ofmap_per_position: 1.0,
                    from_deconv: true,
                }
            }
            LayerOp::Deconv3d { kd, kh, kw, .. } => {
                let (od, oh, ow) = spec.output_dims();
                Self {
                    name: spec.name.clone(),
                    in_channels: spec.in_channels,
                    out_channels: spec.out_channels,
                    ifmap_d: od,
                    ifmap_h: oh,
                    ifmap_w: ow,
                    sub_kernels: vec![SubKernel { kd, kh, kw }],
                    ofmap_per_position: 1.0,
                    from_deconv: true,
                }
            }
            LayerOp::Pointwise { .. } => Self {
                name: spec.name.clone(),
                in_channels: spec.in_channels,
                out_channels: spec.out_channels,
                ifmap_d: spec.in_d,
                ifmap_h: spec.in_h,
                ifmap_w: spec.in_w,
                sub_kernels: Vec::new(),
                ofmap_per_position: 1.0,
                from_deconv: false,
            },
        }
    }

    fn validated(self, _stride: usize) -> Self {
        self
    }

    /// Builds the workload of a layer after the deconvolution transformation:
    /// deconvolutions become a set of sub-kernels sharing the original
    /// (small) ifmap; other layers are unchanged.
    pub fn transformed(spec: &LayerSpec) -> Self {
        match spec.op {
            LayerOp::Deconv2d { kh, kw, .. } => {
                let shapes = sub_kernel_shapes(&[kh, kw]);
                Self {
                    name: spec.name.clone(),
                    in_channels: spec.in_channels,
                    out_channels: spec.out_channels,
                    ifmap_d: 1,
                    ifmap_h: spec.in_h,
                    ifmap_w: spec.in_w,
                    sub_kernels: shapes
                        .into_iter()
                        .filter(|s| s.iter().all(|&d| d > 0))
                        .map(|s| SubKernel {
                            kd: 1,
                            kh: s[0],
                            kw: s[1],
                        })
                        .collect(),
                    ofmap_per_position: 1.0,
                    from_deconv: true,
                }
            }
            LayerOp::Deconv3d { kd, kh, kw, .. } => {
                let shapes = sub_kernel_shapes(&[kd, kh, kw]);
                Self {
                    name: spec.name.clone(),
                    in_channels: spec.in_channels,
                    out_channels: spec.out_channels,
                    ifmap_d: spec.in_d,
                    ifmap_h: spec.in_h,
                    ifmap_w: spec.in_w,
                    sub_kernels: shapes
                        .into_iter()
                        .filter(|s| s.iter().all(|&d| d > 0))
                        .map(|s| SubKernel {
                            kd: s[0],
                            kh: s[1],
                            kw: s[2],
                        })
                        .collect(),
                    ofmap_per_position: 1.0,
                    from_deconv: true,
                }
            }
            _ => Self::naive(spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_dnn::Stage;

    #[test]
    fn conv_workload_matches_layer_spec_macs() {
        let spec = LayerSpec::conv2d("c", Stage::FeatureExtraction, 16, 32, 64, 64, 3, 1, 1);
        let wl = LayerWorkload::naive(&spec);
        assert_eq!(wl.sub_kernels.len(), 1);
        // Same-resolution conv: workload MACs equal the spec's MACs exactly.
        assert_eq!(wl.total_macs(), spec.effective_macs());
        assert_eq!(wl.ifmap_bytes(), spec.ifmap_bytes());
        assert_eq!(wl.total_weight_bytes(), spec.weight_bytes());
        assert!(!wl.from_deconv);
    }

    #[test]
    fn strided_conv_reduces_ofmap_ratio() {
        let spec = LayerSpec::conv2d("c", Stage::FeatureExtraction, 16, 32, 64, 64, 3, 2, 1);
        let wl = LayerWorkload::naive(&spec);
        assert!(wl.ofmap_per_position < 0.3);
        // MAC counts agree with the layer spec to within rounding.
        let a = wl.total_macs() as f64;
        let b = spec.effective_macs() as f64;
        assert!((a - b).abs() / b < 0.05, "{a} vs {b}");
    }

    #[test]
    fn naive_deconv_streams_output_sized_map() {
        let spec = LayerSpec::deconv2d("d", Stage::DisparityRefinement, 64, 32, 30, 40, 4, 2, 1);
        let wl = LayerWorkload::naive(&spec);
        let (_, oh, ow) = spec.output_dims();
        assert_eq!((wl.ifmap_h, wl.ifmap_w), (oh, ow));
        assert!(wl.from_deconv);
        // Naive MACs are ~4x the transformed MACs for stride-2 2-D deconvolution.
        let transformed = LayerWorkload::transformed(&spec);
        let ratio = wl.total_macs() as f64 / transformed.total_macs() as f64;
        assert!(ratio > 3.5 && ratio < 4.5, "ratio {ratio}");
    }

    #[test]
    fn transformed_deconv_has_four_sub_kernels_sharing_ifmap() {
        let spec = LayerSpec::deconv2d("d", Stage::DisparityRefinement, 64, 32, 30, 40, 4, 2, 1);
        let wl = LayerWorkload::transformed(&spec);
        assert_eq!(wl.sub_kernels.len(), 4);
        assert_eq!((wl.ifmap_h, wl.ifmap_w), (30, 40));
        // 4x4 kernel decomposes into four 2x2 sub-kernels: total weight volume
        // preserved.
        assert_eq!(wl.total_weight_bytes(), spec.weight_bytes());
        // Transformed MACs match the spec's effective (non-zero) MACs closely.
        let a = wl.total_macs() as f64;
        let b = spec.effective_macs() as f64;
        assert!((a - b).abs() / b < 0.05, "{a} vs {b}");
    }

    #[test]
    fn transformed_3d_deconv_has_eight_sub_kernels() {
        let spec = LayerSpec::deconv3d(
            "d3",
            Stage::DisparityRefinement,
            32,
            16,
            12,
            20,
            24,
            3,
            2,
            1,
        );
        let wl = LayerWorkload::transformed(&spec);
        assert_eq!(wl.sub_kernels.len(), 8);
        assert_eq!(wl.total_weight_bytes(), spec.weight_bytes());
        let naive = LayerWorkload::naive(&spec);
        let ratio = naive.total_macs() as f64 / wl.total_macs() as f64;
        assert!(ratio > 6.0 && ratio < 9.0, "ratio {ratio}");
    }

    #[test]
    fn filter_bytes_and_macs_per_filter() {
        let spec = LayerSpec::deconv2d("d", Stage::DisparityRefinement, 8, 4, 10, 10, 3, 2, 1);
        let wl = LayerWorkload::transformed(&spec);
        // Largest sub-kernel of a 3x3 kernel is 2x2.
        let largest = wl
            .sub_kernels
            .iter()
            .enumerate()
            .max_by_key(|(_, sk)| sk.volume())
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(wl.sub_kernels[largest].volume(), 4);
        assert_eq!(wl.filter_bytes(largest), 4 * 8 * ELEMENT_BYTES);
        assert_eq!(wl.macs_per_filter(largest, 100), 100 * 8 * 4);
    }

    #[test]
    fn pointwise_layers_have_no_sub_kernels() {
        let spec = LayerSpec::pointwise("relu", Stage::Other, 16, 1, 8, 8, 1);
        let wl = LayerWorkload::naive(&spec);
        assert!(wl.sub_kernels.is_empty());
        assert_eq!(wl.total_macs(), 0);
        assert_eq!(LayerWorkload::transformed(&spec), wl);
    }
}
