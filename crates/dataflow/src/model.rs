//! Round-level latency and traffic model (Eqs. 5–10 of the paper).
//!
//! A layer executes in rounds; in each round the accelerator computes with
//! the data in the working half of the double buffer while the filling half
//! is loaded, so the round's latency is `max(compute, memory)` (Eq. 5).  The
//! model prices one round from the ifmap-tile size, the per-sub-kernel filter
//! counts and which of the operands actually need to be (re)loaded from DRAM
//! this round.

use crate::hw::HwConfig;
use crate::workload::{LayerWorkload, ELEMENT_BYTES};
use serde::{Deserialize, Serialize};

/// One scheduled round: an ifmap tile plus a set of filters, with flags for
/// which operands must be fetched from DRAM (operands already resident from
/// the previous round are not re-fetched — this is the reuse order `β` of
/// Eq. 7 made explicit).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Round {
    /// Number of ifmap positions (pixels/voxels) in this round's tile.
    pub positions: u64,
    /// Filters of each sub-kernel processed this round (`C_k^i` in Eq. 6).
    pub filters: Vec<u64>,
    /// Whether the ifmap tile must be loaded from DRAM this round.
    pub load_ifmap: bool,
    /// Whether the filters must be loaded from DRAM this round.
    pub load_weights: bool,
}

/// Cost of one round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundCost {
    /// Latency in cycles (`max(compute, memory)`).
    pub cycles: u64,
    /// Compute cycles (Eq. 6).
    pub compute_cycles: u64,
    /// Memory cycles (Eqs. 7–9).
    pub memory_cycles: u64,
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// Bytes streamed through the on-chip SRAM (reads + writes).
    pub sram_bytes: u64,
    /// Multiply-accumulates performed.
    pub macs: u64,
}

/// Ofmap bytes produced by `filters` filters over `positions` ifmap positions.
pub fn ofmap_bytes(workload: &LayerWorkload, positions: u64, filters: u64) -> u64 {
    (positions as f64 * workload.ofmap_per_position).ceil() as u64 * filters * ELEMENT_BYTES
}

/// Ifmap bytes of a tile with `positions` positions.
pub fn ifmap_tile_bytes(workload: &LayerWorkload, positions: u64) -> u64 {
    positions * workload.in_channels as u64 * ELEMENT_BYTES
}

/// Checks the buffer constraint of Eq. 10 for one round: the ifmap tile, the
/// loaded filters and the produced ofmap tile must fit in one double-buffer
/// half.
pub fn fits_in_buffer(
    workload: &LayerWorkload,
    hw: &HwConfig,
    positions: u64,
    filters: &[u64],
) -> bool {
    let mut total = ifmap_tile_bytes(workload, positions);
    for (k, &count) in filters.iter().enumerate() {
        total += workload.filter_bytes(k) * count;
        total += ofmap_bytes(workload, positions, count);
    }
    total <= hw.round_buffer_bytes()
}

/// Prices one round (Eqs. 5–9).
pub fn round_cost(workload: &LayerWorkload, hw: &HwConfig, round: &Round) -> RoundCost {
    // Compute time: each sub-kernel occupies the array in turn (Eq. 6's ceil
    // per sub-kernel — sub-kernels of different shapes cannot share the
    // array).
    let mut compute_cycles = 0u64;
    let mut macs = 0u64;
    let mut weight_bytes = 0u64;
    let mut ofmap_total = 0u64;
    for (k, &count) in round.filters.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let kernel_macs = workload.macs_per_filter(k, round.positions) * count;
        macs += kernel_macs;
        compute_cycles += kernel_macs.div_ceil(hw.pe_count());
        weight_bytes += workload.filter_bytes(k) * count;
        ofmap_total += ofmap_bytes(workload, round.positions, count);
    }

    let ifmap_bytes = ifmap_tile_bytes(workload, round.positions);
    let mut dram_read = 0u64;
    if round.load_ifmap {
        dram_read += ifmap_bytes;
    }
    if round.load_weights {
        dram_read += weight_bytes;
    }
    // Newly computed ofmap elements are always written back (Appendix B).
    let dram_write = ofmap_total;
    let memory_cycles = ((dram_read + dram_write) as f64 / hw.dram_bytes_per_cycle).ceil() as u64;

    // SRAM traffic: the ifmap tile and the active filters are streamed into
    // the array once per round and the ofmap tile is written once.
    let sram_bytes = ifmap_bytes + weight_bytes + ofmap_total;

    RoundCost {
        cycles: compute_cycles.max(memory_cycles),
        compute_cycles,
        memory_cycles,
        dram_read_bytes: dram_read,
        dram_write_bytes: dram_write,
        sram_bytes,
        macs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_dnn::{LayerSpec, Stage};

    fn workload() -> LayerWorkload {
        let spec = LayerSpec::deconv2d("d", Stage::DisparityRefinement, 16, 8, 20, 20, 4, 2, 1);
        LayerWorkload::transformed(&spec)
    }

    #[test]
    fn compute_bound_round_latency_is_compute() {
        let wl = workload();
        let hw = HwConfig::asv_default();
        let round = Round {
            positions: wl.ifmap_positions(),
            filters: vec![8, 8, 8, 8],
            load_ifmap: true,
            load_weights: true,
        };
        let cost = round_cost(&wl, &hw, &round);
        assert_eq!(cost.cycles, cost.compute_cycles.max(cost.memory_cycles));
        assert!(cost.macs > 0);
        assert!(cost.dram_read_bytes > 0);
        assert!(cost.dram_write_bytes > 0);
        assert!(cost.sram_bytes >= cost.dram_read_bytes);
    }

    #[test]
    fn skipping_loads_reduces_dram_traffic_only() {
        let wl = workload();
        let hw = HwConfig::asv_default();
        let base = Round {
            positions: wl.ifmap_positions(),
            filters: vec![8, 8, 8, 8],
            load_ifmap: true,
            load_weights: true,
        };
        let reuse = Round {
            load_ifmap: false,
            ..base.clone()
        };
        let a = round_cost(&wl, &hw, &base);
        let b = round_cost(&wl, &hw, &reuse);
        assert!(b.dram_read_bytes < a.dram_read_bytes);
        assert_eq!(a.compute_cycles, b.compute_cycles);
        assert_eq!(a.macs, b.macs);
    }

    #[test]
    fn empty_filter_groups_cost_nothing_to_compute() {
        let wl = workload();
        let hw = HwConfig::asv_default();
        let round = Round {
            positions: 100,
            filters: vec![0, 0, 0, 0],
            load_ifmap: true,
            load_weights: true,
        };
        let cost = round_cost(&wl, &hw, &round);
        assert_eq!(cost.compute_cycles, 0);
        assert_eq!(cost.macs, 0);
        assert!(cost.memory_cycles > 0); // the ifmap load still costs
    }

    #[test]
    fn buffer_constraint_detects_overflow() {
        let wl = workload();
        let hw = HwConfig::asv_default().with_buffer_bytes(4096);
        // The whole ifmap plus all filters cannot fit a 4 KB buffer.
        assert!(!fits_in_buffer(
            &wl,
            &hw,
            wl.ifmap_positions(),
            &[8, 8, 8, 8]
        ));
        // A tiny tile with a single filter fits.
        assert!(fits_in_buffer(&wl, &hw, 8, &[1, 0, 0, 0]));
    }

    #[test]
    fn per_sub_kernel_ceiling_penalises_small_kernels() {
        // Eq. 6 applies the ceiling per sub-kernel: four tiny sub-kernels can
        // cost more cycles than one kernel with the same total MACs.
        let spec = LayerSpec::deconv2d("d", Stage::DisparityRefinement, 1, 1, 4, 4, 2, 2, 0);
        let wl = LayerWorkload::transformed(&spec);
        let hw = HwConfig::asv_default();
        let round = Round {
            positions: wl.ifmap_positions(),
            filters: vec![1; wl.sub_kernels.len()],
            load_ifmap: true,
            load_weights: true,
        };
        let cost = round_cost(&wl, &hw, &round);
        // Four sub-kernels -> at least four cycles even though the MAC count
        // is far below the PE count.
        assert!(cost.compute_cycles >= wl.sub_kernels.len() as u64);
    }
}
