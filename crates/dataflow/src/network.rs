//! Whole-network scheduling under the optimization levels compared in
//! Fig. 10 and Fig. 11.

use crate::hw::HwConfig;
use crate::solver::{convr_cost, generic_schedule, ilar_cost, schedule_cost, LayerCost};
use crate::workload::LayerWorkload;
use asv_dnn::NetworkSpec;
use serde::{Deserialize, Serialize};

/// How aggressively the software stack optimizes the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptLevel {
    /// No deconvolution transformation, static buffer partition (the
    /// conventional-accelerator baseline of Sec. 6.2).
    Baseline,
    /// Deconvolution-to-convolution transformation only (DCT in Fig. 11).
    Dct,
    /// DCT plus the per-layer data-reuse optimizer, without inter-layer
    /// activation reuse (ConvR).
    ConvR,
    /// The full ASV software stack: DCT plus the reuse optimizer exploiting
    /// ILAR (ILAR).
    Ilar,
}

impl OptLevel {
    /// All levels in ascending order of sophistication.
    pub fn all() -> [OptLevel; 4] {
        [
            OptLevel::Baseline,
            OptLevel::Dct,
            OptLevel::ConvR,
            OptLevel::Ilar,
        ]
    }

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            OptLevel::Baseline => "baseline",
            OptLevel::Dct => "DCT",
            OptLevel::ConvR => "ConvR",
            OptLevel::Ilar => "ILAR",
        }
    }
}

/// Cost of one layer within a scheduled network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Whether the layer is a deconvolution.
    pub is_deconv: bool,
    /// The layer's cost.
    pub cost: LayerCost,
}

/// Cost of a whole network under one optimization level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkCost {
    /// Network name.
    pub network: String,
    /// Optimization level used.
    pub level: OptLevel,
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerReport>,
    /// Total latency in cycles.
    pub total_cycles: u64,
    /// Total multiply-accumulates.
    pub total_macs: u64,
    /// Total DRAM traffic in bytes.
    pub total_dram_bytes: u64,
    /// Total SRAM traffic in bytes.
    pub total_sram_bytes: u64,
}

impl NetworkCost {
    /// Summed cost of deconvolution layers only (the basis of Fig. 11a).
    pub fn deconv_cost(&self) -> LayerCost {
        let mut total = LayerCost::default();
        for layer in self.layers.iter().filter(|l| l.is_deconv) {
            total.accumulate(&layer.cost);
        }
        total
    }

    /// Summed cost of every layer.
    pub fn total_cost(&self) -> LayerCost {
        let mut total = LayerCost::default();
        for layer in &self.layers {
            total.accumulate(&layer.cost);
        }
        total
    }
}

/// Picks the cheaper of two layer costs (cycles first, DRAM traffic as the
/// tie breaker).
fn better_of(a: LayerCost, b: LayerCost) -> LayerCost {
    if a.cycles < b.cycles || (a.cycles == b.cycles && a.dram_bytes() <= b.dram_bytes()) {
        a
    } else {
        b
    }
}

/// Schedules every layer of `network` on `hw` at the given optimization
/// level and returns the accumulated cost.
pub fn schedule_network(network: &NetworkSpec, hw: &HwConfig, level: OptLevel) -> NetworkCost {
    let mut layers = Vec::with_capacity(network.layers.len());
    let mut total = LayerCost::default();
    for spec in &network.layers {
        let is_deconv = spec.op.is_deconv();
        let cost = match level {
            OptLevel::Baseline => {
                let wl = LayerWorkload::naive(spec);
                schedule_cost(&wl, hw, &generic_schedule(&wl, hw))
            }
            OptLevel::Dct => {
                let wl = LayerWorkload::transformed(spec);
                schedule_cost(&wl, hw, &generic_schedule(&wl, hw))
            }
            OptLevel::ConvR => {
                // The reuse optimizer never selects a schedule worse than the
                // generic one it starts from.
                let wl = LayerWorkload::transformed(spec);
                let generic = schedule_cost(&wl, hw, &generic_schedule(&wl, hw));
                better_of(convr_cost(&wl, hw), generic)
            }
            OptLevel::Ilar => {
                // ILAR's search space strictly contains ConvR's (it may simply
                // choose not to share the ifmap), so keep whichever is better.
                let wl = LayerWorkload::transformed(spec);
                let generic = schedule_cost(&wl, hw, &generic_schedule(&wl, hw));
                better_of(ilar_cost(&wl, hw), better_of(convr_cost(&wl, hw), generic))
            }
        };
        total.accumulate(&cost);
        layers.push(LayerReport {
            name: spec.name.clone(),
            is_deconv,
            cost,
        });
    }
    NetworkCost {
        network: network.name.clone(),
        level,
        layers,
        total_cycles: total.cycles,
        total_macs: total.macs,
        total_dram_bytes: total.dram_bytes(),
        total_sram_bytes: total.sram_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_dnn::zoo;

    fn small_suite() -> Vec<asv_dnn::NetworkSpec> {
        zoo::suite(96, 192, 48)
    }

    #[test]
    fn optimization_levels_improve_monotonically() {
        let hw = HwConfig::asv_default();
        for net in small_suite() {
            let costs: Vec<NetworkCost> = OptLevel::all()
                .iter()
                .map(|&lvl| schedule_network(&net, &hw, lvl))
                .collect();
            // Cycles: baseline ≥ DCT ≥ ConvR ≥ ILAR.
            for pair in costs.windows(2) {
                assert!(
                    pair[1].total_cycles <= pair[0].total_cycles,
                    "{}: {} ({}) vs {} ({})",
                    net.name,
                    pair[0].level.label(),
                    pair[0].total_cycles,
                    pair[1].level.label(),
                    pair[1].total_cycles
                );
            }
            // DRAM traffic: ILAR no worse than ConvR.
            assert!(
                costs[3].total_dram_bytes <= costs[2].total_dram_bytes,
                "{}",
                net.name
            );
        }
    }

    #[test]
    fn dct_speedup_on_deconv_layers_matches_sparsity() {
        // The transformation removes the zero-operand MACs: deconvolution-only
        // MACs drop by ~4x for 2-D networks and ~8x for 3-D networks.
        let hw = HwConfig::asv_default();
        for net in small_suite() {
            let baseline = schedule_network(&net, &hw, OptLevel::Baseline);
            let dct = schedule_network(&net, &hw, OptLevel::Dct);
            let ratio = baseline.deconv_cost().macs as f64 / dct.deconv_cost().macs as f64;
            if net.is_3d {
                assert!(ratio > 5.0, "{}: mac ratio {ratio}", net.name);
            } else {
                assert!(
                    ratio > 3.0 && ratio < 5.0,
                    "{}: mac ratio {ratio}",
                    net.name
                );
            }
        }
    }

    #[test]
    fn whole_network_speedup_is_in_paper_band() {
        // Fig. 11b: deconvolution optimizations alone speed up the whole
        // network by roughly 1.4x - 1.6x on average.
        let hw = HwConfig::asv_default();
        let mut speedups = Vec::new();
        for net in small_suite() {
            let baseline = schedule_network(&net, &hw, OptLevel::Baseline);
            let ilar = schedule_network(&net, &hw, OptLevel::Ilar);
            speedups.push(baseline.total_cycles as f64 / ilar.total_cycles as f64);
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!(avg > 1.15 && avg < 3.0, "average DCO speedup {avg}");
    }

    #[test]
    fn deconv_cost_covers_only_deconv_layers() {
        let hw = HwConfig::asv_default();
        let net = zoo::dispnet(96, 192);
        let cost = schedule_network(&net, &hw, OptLevel::Ilar);
        let deconv = cost.deconv_cost();
        let total = cost.total_cost();
        assert!(deconv.cycles < total.cycles);
        assert!(deconv.macs > 0);
        assert_eq!(total.cycles, cost.total_cycles);
        assert_eq!(total.dram_bytes(), cost.total_dram_bytes);
    }

    #[test]
    fn level_labels_are_stable() {
        assert_eq!(OptLevel::Baseline.label(), "baseline");
        assert_eq!(OptLevel::Ilar.label(), "ILAR");
        assert_eq!(OptLevel::all().len(), 4);
    }
}
