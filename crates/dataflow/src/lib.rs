//! Systolic-array dataflow optimizer: tiling, data reuse and the
//! constrained-optimization scheduler of Sec. 4.2.
//!
//! The ASV software stack lowers every layer — dense convolutions and the
//! sub-convolutions produced by the deconvolution transformation — onto a
//! systolic-array accelerator with a unified, double-buffered on-chip buffer.
//! Because the buffer cannot hold a whole layer, the layer executes in
//! *rounds*; each round loads an ifmap tile and a subset of filters, and the
//! round's latency is the maximum of its compute time and its DRAM transfer
//! time (Eq. 5).  Choosing the tile shape, the per-sub-kernel filter counts
//! and the reuse order (`β`, Eq. 7) is the constrained optimization the paper
//! solves with an iterated greedy/Knapsack heuristic.
//!
//! Modules:
//!
//! * [`hw`] — hardware resource description ([`HwConfig`]): PE array, buffer,
//!   DRAM bandwidth.
//! * [`workload`] — per-layer workload extracted from `asv-dnn` layer specs,
//!   including the sub-kernel list of transformed deconvolutions.
//! * [`model`] — the round latency/traffic model (Eqs. 5–10).
//! * [`solver`] — schedule generators: a generic low-reuse baseline, the
//!   greedy Knapsack optimizer with and without inter-layer activation reuse
//!   (ILAR), and an exhaustive reference used to validate the greedy solver
//!   on small layers.
//! * [`network`] — whole-network scheduling under the four optimization
//!   levels compared in Fig. 11 (baseline, DCT, ConvR, ILAR).
//!
//! # Example
//!
//! ```
//! use asv_dataflow::{hw::HwConfig, network::{schedule_network, OptLevel}};
//! use asv_dnn::zoo;
//!
//! let net = zoo::flownetc(96, 192);
//! let hw = HwConfig::asv_default();
//! let baseline = schedule_network(&net, &hw, OptLevel::Baseline);
//! let ilar = schedule_network(&net, &hw, OptLevel::Ilar);
//! assert!(ilar.total_cycles < baseline.total_cycles);
//! ```

pub mod hw;
pub mod model;
pub mod network;
pub mod solver;
pub mod workload;

pub use hw::HwConfig;
pub use network::{schedule_network, NetworkCost, OptLevel};
pub use solver::{LayerCost, LayerSchedule, ReuseOrder, Round};
pub use workload::LayerWorkload;
