//! The async ingestion front-end: a bounded submission queue with admission
//! control between producers and the (cluster of) scheduler(s).
//!
//! # Why a front-end
//!
//! [`crate::SessionHandle::submit`] under the default `Block` policy couples
//! a producer to its shard: a camera thread stalls whenever its session's
//! inbox is full.  Network ingestion cannot afford that — an accept loop
//! must hand a frame off in microseconds and move to the next socket.  The
//! [`Ingest`] layer decouples the two sides: producers enqueue into a
//! bounded submission queue and return immediately; a small pool of
//! *forwarder* threads drains the queue and performs the (possibly
//! blocking) shard submits.
//!
//! # Admission control
//!
//! Two limits guard the queue, both enforced at enqueue time:
//!
//! * a **global capacity** ([`IngestConfig::queue_capacity`]) bounding total
//!   buffered frames, and
//! * a **per-session quota** ([`IngestConfig::session_quota`]) so one hot
//!   session can occupy at most `session_quota` of those slots — a
//!   misbehaving camera cannot starve the cluster's intake.
//!
//! When either limit is hit the configured [`ShedPolicy`] applies: `Block`
//! parks the producer, `Reject` returns [`AsvError::Saturated`], and
//! `DropOldest` displaces the *submitting session's own* oldest queued frame
//! (it never steals another session's slot; if the global queue is full
//! exclusively with other sessions' frames, `DropOldest` blocks like
//! `Block`, which only happens when `queue_capacity` is undersized for the
//! session count).
//!
//! # Ordering
//!
//! Frames of one session are forwarded strictly FIFO: each route is marked
//! busy while a forwarder carries its frame, so two forwarders never race on
//! the same session.  Routes are drained round-robin, mirroring the
//! scheduler's fairness.  This preserves the end-to-end determinism property
//! (see [`crate::sim`]).

use crate::scheduler::{SessionHandle, ShedPolicy};
use asv::AsvError;
use asv_image::Image;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Tuning knobs of the ingestion front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Total frames the submission queue may buffer across all routes
    /// (clamped to at least 1).
    pub queue_capacity: usize,
    /// Frames one route may hold in the submission queue (clamped to at
    /// least 1); the anti-starvation quota.
    pub session_quota: usize,
    /// Forwarder threads draining the queue into the shards (clamped to at
    /// least 1).
    pub forwarders: usize,
    /// What `submit` does when a limit is hit.
    pub policy: ShedPolicy,
}

impl IngestConfig {
    /// Returns the configuration with a different global capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Returns the configuration with a different per-session quota.
    pub fn with_session_quota(mut self, quota: usize) -> Self {
        self.session_quota = quota;
        self
    }

    /// Returns the configuration with a different forwarder count.
    pub fn with_forwarders(mut self, forwarders: usize) -> Self {
        self.forwarders = forwarders;
        self
    }

    /// Returns the configuration with a different load-shedding policy.
    pub fn with_policy(mut self, policy: ShedPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            session_quota: 8,
            forwarders: 2,
            policy: ShedPolicy::Block,
        }
    }
}

/// One registered downstream session and its slice of the submission queue.
#[derive(Debug)]
struct Route {
    sink: SessionHandle,
    queued: VecDeque<(Image, Image)>,
    /// A forwarder is currently carrying a frame of this route; no other
    /// forwarder may touch it (preserves per-session FIFO order).
    busy: bool,
    error: Option<AsvError>,
    accepted: u64,
    forwarded: u64,
    shed: u64,
    discarded: u64,
}

/// Mutable front-end state shared by producers and forwarders.
#[derive(Debug)]
struct FrontEnd {
    routes: Vec<Route>,
    queued_total: usize,
    cursor: usize,
    shutdown: bool,
    in_flight: usize,
}

impl FrontEnd {
    /// Picks the next route with a deliverable frame, round-robin, and
    /// marks it busy.
    fn dispatch_next(&mut self) -> Option<(usize, Image, Image)> {
        let n = self.routes.len();
        for k in 0..n {
            let idx = (self.cursor + k) % n;
            let route = &mut self.routes[idx];
            if !route.busy && route.error.is_none() {
                if let Some((left, right)) = route.queued.pop_front() {
                    route.busy = true;
                    self.cursor = (idx + 1) % n;
                    self.queued_total -= 1;
                    self.in_flight += 1;
                    return Some((idx, left, right));
                }
            }
        }
        None
    }

    fn drained(&self) -> bool {
        self.shutdown && self.in_flight == 0 && self.queued_total == 0
    }
}

#[derive(Debug)]
struct Shared {
    front: Mutex<FrontEnd>,
    /// Forwarders park here when no route has a deliverable frame.
    work: Condvar,
    /// Producers park here when a limit is hit under the `Block` policy.
    space: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, FrontEnd> {
        self.front.lock().expect("ingest front-end lock poisoned")
    }
}

/// Final per-route accounting, part of [`IngestStats`].
#[derive(Debug, Clone)]
pub struct RouteStats {
    /// Frames accepted into the submission queue.
    pub accepted: u64,
    /// Frames successfully handed to the downstream session.
    pub forwarded: u64,
    /// Frames shed by admission control (rejected or displaced).
    pub shed: u64,
    /// Frames refused at the edge because the route was already torn down
    /// (front-end shut down, or the downstream session had failed).
    pub discarded: u64,
    /// The downstream error that poisoned the route, if any.
    pub error: Option<AsvError>,
}

/// Final accounting of one [`Ingest`] front-end, returned by
/// [`Ingest::join`].
#[derive(Debug, Clone)]
pub struct IngestStats {
    /// Per-route accounting in registration order.
    pub routes: Vec<RouteStats>,
}

impl IngestStats {
    /// Total frames accepted across all routes.
    pub fn accepted(&self) -> u64 {
        self.routes.iter().map(|r| r.accepted).sum()
    }

    /// Total frames forwarded downstream across all routes.
    pub fn forwarded(&self) -> u64 {
        self.routes.iter().map(|r| r.forwarded).sum()
    }

    /// Total frames shed by admission control across all routes.
    pub fn shed(&self) -> u64 {
        self.routes.iter().map(|r| r.shed).sum()
    }

    /// Total frames refused at the edge after route teardown.
    pub fn discarded(&self) -> u64 {
        self.routes.iter().map(|r| r.discarded).sum()
    }
}

/// The ingestion front-end: producers submit asynchronously, forwarder
/// threads deliver to the downstream [`SessionHandle`]s.
///
/// See the module documentation for the admission-control and ordering
/// model.
#[derive(Debug)]
pub struct Ingest {
    shared: Arc<Shared>,
    forwarders: Vec<JoinHandle<()>>,
    config: IngestConfig,
}

/// Producer-side handle of one registered route; cheap to clone and `Send`.
#[derive(Debug, Clone)]
pub struct RouteHandle {
    shared: Arc<Shared>,
    index: usize,
    config: IngestConfig,
    /// The downstream session, kept out of the front-end lock: the sink is
    /// immutable after registration, and the recycling path must not
    /// contend with the forwarders.
    sink: SessionHandle,
}

impl Ingest {
    /// Starts the front-end with its forwarder pool running.
    pub fn new(config: IngestConfig) -> Self {
        let shared = Arc::new(Shared {
            front: Mutex::new(FrontEnd {
                routes: Vec::new(),
                queued_total: 0,
                cursor: 0,
                shutdown: false,
                in_flight: 0,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        });
        let forwarders = (0..config.forwarders.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || forwarder_loop(&shared))
            })
            .collect();
        Self {
            shared,
            forwarders,
            config,
        }
    }

    /// Registers a downstream session (e.g.
    /// [`crate::ClusterSessionHandle::handle`]) and returns the producer's
    /// route handle.
    pub fn register(&self, sink: SessionHandle) -> RouteHandle {
        let mut front = self.shared.lock();
        let index = front.routes.len();
        front.routes.push(Route {
            sink: sink.clone(),      // lint: alloc-ok(route registration, once per session)
            queued: VecDeque::new(), // lint: alloc-ok(route registration, once per session)
            busy: false,
            error: None,
            accepted: 0,
            forwarded: 0,
            shed: 0,
            discarded: 0,
        });
        RouteHandle {
            shared: Arc::clone(&self.shared), // lint: alloc-ok(route registration, once per session)
            index,
            config: self.config,
            sink,
        }
    }

    /// Stops accepting submissions, drains the queue through the
    /// forwarders, joins them and returns the accounting.
    ///
    /// Call `join` on the ingest layer *before* joining the downstream
    /// scheduler/cluster, so every buffered frame reaches its shard first.
    pub fn join(mut self) -> IngestStats {
        self.signal_shutdown();
        for handle in self.forwarders.drain(..) {
            handle.join().expect("ingest forwarder panicked");
        }
        let mut front = self.shared.lock();
        let routes = front
            .routes
            .drain(..)
            .map(|r| RouteStats {
                accepted: r.accepted,
                forwarded: r.forwarded,
                shed: r.shed,
                discarded: r.discarded,
                error: r.error,
            })
            .collect();
        IngestStats { routes }
    }

    fn signal_shutdown(&self) {
        let mut front = self.shared.lock();
        front.shutdown = true;
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        drop(front);
    }
}

impl Drop for Ingest {
    fn drop(&mut self) {
        // `join` drains `forwarders`; this path only runs when the front-end
        // is dropped without joining and must not leave threads running.
        if !self.forwarders.is_empty() {
            self.signal_shutdown();
            for handle in self.forwarders.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl RouteHandle {
    /// Submits one stereo frame into the submission queue and returns
    /// without waiting for the shard (unless admission control blocks under
    /// the `Block` policy).
    ///
    /// # Errors
    ///
    /// Returns the route's stored downstream error if forwarding previously
    /// failed, [`AsvError::Shutdown`] after [`Ingest::join`], or
    /// [`AsvError::Saturated`] under the `Reject` policy when a limit is
    /// hit.
    pub fn submit(&self, left: Image, right: Image) -> Result<(), AsvError> {
        self.submit_recoverable(left, right)
            .map_err(|(error, _, _)| error)
    }

    /// [`RouteHandle::submit`] returning the frame planes alongside the
    /// error, so a supervisor reacting to a downstream shard failure can
    /// re-deliver the exact frame to the session's new placement instead of
    /// losing it.  Refused submits (front-end shut down, route poisoned by
    /// a downstream failure) count into the route's `discarded` statistic.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RouteHandle::submit`], with the frame returned.
    #[allow(clippy::result_large_err)]
    pub fn submit_recoverable(
        &self,
        left: Image,
        right: Image,
    ) -> Result<(), (AsvError, Image, Image)> {
        let mut front = self.shared.lock();
        loop {
            if front.shutdown {
                // `join` may have drained the route table already.
                if let Some(route) = front.routes.get_mut(self.index) {
                    route.discarded += 1;
                }
                return Err((AsvError::Shutdown, left, right));
            }
            // lint: alloc-ok(failed-route error propagation)
            if let Some(error) = front.routes[self.index].error.clone() {
                front.routes[self.index].discarded += 1;
                return Err((error, left, right));
            }
            let over_quota =
                front.routes[self.index].queued.len() >= self.config.session_quota.max(1);
            let over_capacity = front.queued_total >= self.config.queue_capacity.max(1);
            if over_quota || over_capacity {
                match self.config.policy {
                    ShedPolicy::Reject => {
                        let route = &mut front.routes[self.index];
                        route.shed += 1;
                        return Err((
                            AsvError::saturated(format!("ingest queue (route {})", self.index)), // lint: alloc-ok(error path on shed)
                            left,
                            right,
                        ));
                    }
                    ShedPolicy::DropOldest if !front.routes[self.index].queued.is_empty() => {
                        // Displace this session's own oldest frame; other
                        // sessions' slots are never touched.
                        let route = &mut front.routes[self.index];
                        route.queued.pop_front();
                        route.shed += 1;
                        front.queued_total -= 1;
                    }
                    // `Block`, or `DropOldest` with nothing of ours queued
                    // (global queue full of other sessions' frames).
                    _ => {
                        front = self
                            .shared
                            .space
                            .wait(front)
                            .expect("ingest front-end lock poisoned");
                        continue;
                    }
                }
            }
            let route = &mut front.routes[self.index];
            route.queued.push_back((left, right));
            route.accepted += 1;
            front.queued_total += 1;
            self.shared.work.notify_all();
            return Ok(());
        }
    }

    /// Frames of this route currently buffered in the submission queue
    /// (excludes the frame a forwarder may be carrying).
    pub fn queued(&self) -> usize {
        self.shared.lock().routes[self.index].queued.len()
    }

    /// Checks a `width x height` frame out of the downstream scheduler's
    /// recycling pool (see [`SessionHandle::recycled_frame`]): already-
    /// processed frame planes flow back through the ingest edge so a
    /// steady-state producer submits without allocating.  Contents are
    /// unspecified — overwrite every pixel before submitting.  Does not
    /// touch the front-end lock, so recycling never contends with the
    /// forwarders.
    pub fn recycled_frame(&self, width: usize, height: usize) -> Image {
        self.sink.recycled_frame(width, height)
    }
}

/// Body of one forwarder thread: pop round-robin, deliver outside the lock,
/// repeat until drained.
fn forwarder_loop(shared: &Shared) {
    let mut front = shared.lock();
    loop {
        if let Some((idx, left, right)) = front.dispatch_next() {
            let sink = front.routes[idx].sink.clone();
            drop(front);
            // A queue slot was freed: blocked producers can move.
            shared.space.notify_all();

            // May block on the shard's own backpressure — by design, the
            // bounded hand-off happens here, off the producer's thread.
            let outcome = sink.submit(left, right);

            front = shared.lock();
            front.in_flight -= 1;
            let route = &mut front.routes[idx];
            route.busy = false;
            match outcome {
                Ok(()) => route.forwarded += 1,
                Err(error) => {
                    // Poison the route and shed whatever it still buffered.
                    let pending = route.queued.len();
                    route.queued.clear();
                    route.shed += pending as u64;
                    route.error = Some(error);
                    front.queued_total -= pending;
                }
            }
            shared.work.notify_all();
            shared.space.notify_all();
        } else if front.drained() {
            return;
        } else {
            front = shared
                .work
                .wait(front)
                .expect("ingest front-end lock poisoned");
        }
    }
}
