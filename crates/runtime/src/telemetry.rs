//! Runtime observability: latency histograms, queue-depth gauges and
//! per-session / aggregate counters.
//!
//! Everything here is plain data updated under the scheduler's lock — no
//! atomics, no background collector thread.  Each [`crate::StreamSession`]
//! owns one [`SessionTelemetry`]; [`AggregateTelemetry`] folds them together
//! when the scheduler shuts down (or whenever a snapshot is requested).

use crate::net::TransportErrorKind;
use crate::qos::{QosAction, QosTelemetry};
use asv::trace::Stage;
use asv::FrameKind;
use std::time::Duration;

/// Number of power-of-two latency buckets; bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds, so 40 buckets span sub-microsecond to
/// roughly twelve days.
const BUCKETS: usize = 40;

/// A fixed-size log₂-bucketed latency histogram.
///
/// Recording is O(1) and the memory footprint is constant, so the histogram
/// can run for the lifetime of a long-lived serving process.  Quantiles are
/// answered from the bucket counts with linear interpolation inside the
/// crossing bucket; the true minimum and maximum are tracked exactly.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(us: u64) -> usize {
        (us.max(1).ilog2() as usize).min(BUCKETS - 1)
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples in microseconds (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Per-bucket counts as `(upper_bound_us, count)` pairs in ascending
    /// bucket order; bucket `i` covers `[2^i, 2^(i+1))` µs, so its inclusive
    /// upper bound is `2^(i+1) - 1`.  Used by the Prometheus renderer.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| ((1u64 << (i + 1)) - 1, c))
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample in microseconds (0 when empty).
    pub fn min_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_us
        }
    }

    /// Largest recorded sample in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The latency (µs) below which a `q` fraction of samples fall;
    /// `q` is clamped to `[0, 1]`.  Returns 0 for an empty histogram.
    ///
    /// The endpoints are exact: `q = 0` returns the smallest and `q = 1` the
    /// largest recorded sample, both tracked outside the buckets.  Interior
    /// quantiles interpolate linearly inside the bucket where the cumulative
    /// count crosses `q · total`, clamped to the exact observed min/max so
    /// tiny sample counts do not report impossible values.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min_us;
        }
        if q >= 1.0 {
            return self.max_us;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = 1u64 << i;
                let hi = lo << 1;
                let within = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + within * (hi - lo) as f64;
                return (est as u64).clamp(self.min_us, self.max_us);
            }
            seen += c;
        }
        self.max_us
    }

    /// Median latency in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 95th-percentile latency in microseconds.
    pub fn p95_us(&self) -> u64 {
        self.quantile_us(0.95)
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Folds another histogram into this one (used for aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

/// Instantaneous and peak depth of one session's inbox.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueDepthGauge {
    /// Frames currently queued (waiting for a worker).
    pub current: usize,
    /// Largest depth ever observed.
    pub peak: usize,
}

impl QueueDepthGauge {
    /// Sets the current depth, updating the peak.
    pub fn observe(&mut self, depth: usize) {
        self.current = depth;
        self.peak = self.peak.max(depth);
    }
}

/// Per-pipeline-stage latency histograms, fed from the spans the frame
/// tracer records during [`IsmState::step_with`] (one total per stage per
/// frame).  A stage that did not run in a frame (e.g. `dnn_infer` on a
/// non-key frame) records nothing for that frame.
///
/// [`IsmState::step_with`]: asv::ism::IsmState::step_with
#[derive(Debug, Clone, Default)]
pub struct StageTelemetry {
    histograms: [LatencyHistogram; Stage::COUNT],
}

impl StageTelemetry {
    /// Records one frame's per-stage totals (nanoseconds, indexed by
    /// [`Stage::index`], as produced by `FrameTrace::stage_totals`).
    /// Zero totals — stages that did not run — are skipped.
    pub fn record_frame_totals(&mut self, totals: &[u64; Stage::COUNT]) {
        for (stage, &ns) in Stage::ALL.iter().zip(totals.iter()) {
            if ns > 0 {
                self.histograms[stage.index()].record(Duration::from_nanos(ns));
            }
        }
    }

    /// The latency histogram of one stage.
    pub fn histogram(&self, stage: Stage) -> &LatencyHistogram {
        &self.histograms[stage.index()]
    }

    /// Iterates `(stage, histogram)` in stable stage order.
    pub fn stages(&self) -> impl Iterator<Item = (Stage, &LatencyHistogram)> {
        Stage::ALL
            .iter()
            .map(move |&stage| (stage, &self.histograms[stage.index()]))
    }

    /// Folds another stage telemetry into this one.
    pub fn merge(&mut self, other: &StageTelemetry) {
        for (a, b) in self.histograms.iter_mut().zip(other.histograms.iter()) {
            a.merge(b);
        }
    }
}

/// Telemetry of one stream session.
#[derive(Debug, Clone, Default)]
pub struct SessionTelemetry {
    /// Frames fully processed (key + non-key).
    pub frames_processed: u64,
    /// Frames processed as key frames (DNN inference).
    pub key_frames: u64,
    /// Frames processed as non-key frames (propagation + refinement).
    pub non_key_frames: u64,
    /// Frames submitted to the session's inbox.
    pub frames_submitted: u64,
    /// Frames discarded outside admission control: submitted after the
    /// session failed or the scheduler shut down, or still queued when the
    /// engine drained.
    pub frames_dropped: u64,
    /// Frames rejected or displaced by admission control (load shedding).
    pub frames_shed: u64,
    /// Service time per frame: dequeue to finished disparity map.
    pub service_latency: LatencyHistogram,
    /// Queue wait per frame: submit to dequeue.
    pub queue_wait: LatencyHistogram,
    /// Inbox depth gauge.
    pub queue_depth: QueueDepthGauge,
    /// Per-pipeline-stage service latency (empty while tracing is off).
    pub stage_latency: StageTelemetry,
    /// State of the session's QoS control loop (all zeros — and
    /// `enabled = false` — for sessions registered without an SLO).
    pub qos: QosTelemetry,
}

impl SessionTelemetry {
    /// Records one processed frame.
    pub fn record_frame(&mut self, kind: FrameKind, service: Duration, wait: Duration) {
        self.frames_processed += 1;
        match kind {
            FrameKind::KeyFrame => self.key_frames += 1,
            FrameKind::NonKeyFrame => self.non_key_frames += 1,
        }
        self.service_latency.record(service);
        self.queue_wait.record(wait);
    }

    /// Fraction of processed frames that ran the full DNN (0 when no frame
    /// was processed yet).
    pub fn key_frame_ratio(&self) -> f64 {
        if self.frames_processed == 0 {
            0.0
        } else {
            self.key_frames as f64 / self.frames_processed as f64
        }
    }
}

/// Whole-engine telemetry: the fold of every session plus wall-clock
/// throughput.
#[derive(Debug, Clone, Default)]
pub struct AggregateTelemetry {
    /// Sessions folded into this aggregate.
    pub sessions: usize,
    /// Frames fully processed across all sessions.
    pub frames_processed: u64,
    /// Key frames across all sessions.
    pub key_frames: u64,
    /// Non-key frames across all sessions.
    pub non_key_frames: u64,
    /// Frames submitted across all sessions.
    pub frames_submitted: u64,
    /// Frames discarded across all sessions.
    pub frames_dropped: u64,
    /// Frames shed by admission control across all sessions.
    pub frames_shed: u64,
    /// Merged service-time histogram.
    pub service_latency: LatencyHistogram,
    /// Merged queue-wait histogram.
    pub queue_wait: LatencyHistogram,
    /// Largest inbox depth observed on any session.
    pub peak_queue_depth: usize,
    /// Sum of the current inbox depths at snapshot time (0 after shutdown).
    pub current_queue_depth: usize,
    /// Merged per-pipeline-stage latency histograms.
    pub stage_latency: StageTelemetry,
    /// SLO-violation evaluations across all QoS-managed sessions.
    pub qos_slo_violations: u64,
    /// QoS actuations across all sessions, indexed by [`QosAction::index`].
    pub qos_actuations: [u64; QosAction::COUNT],
    /// Current QoS degradation level of every SLO-managed session, keyed by
    /// session name (the registration label, or `session-{index}`).  Feeds
    /// the per-session `asv_qos_level` gauge in the Prometheus export.
    pub qos_sessions: Vec<QosSessionSample>,
    /// Sessions migrated *away* from this shard after it failed (stamped by
    /// the cluster from its supervisor-fed counters, zero for standalone
    /// schedulers).  Feeds `asv_sessions_migrated_total{shard}`.
    pub sessions_migrated: u64,
    /// Transport errors of the cluster's network edge by
    /// [`TransportErrorKind::index`].  A cluster-wide counter set carried on
    /// the first shard's snapshot (the exporter sums across shards); feeds
    /// `asv_transport_errors_total{kind}`.
    pub transport_errors: [u64; TransportErrorKind::COUNT],
    /// Wall-clock time the engine ran, seconds.
    pub wall_seconds: f64,
}

/// One SLO-managed session's QoS level at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QosSessionSample {
    /// Session name: the registration label, or `session-{index}`.
    pub session: String,
    /// Degradation level (0 = full quality).
    pub level: u8,
}

impl AggregateTelemetry {
    /// Folds one session's telemetry into the aggregate, without a
    /// per-session identity ([`AggregateTelemetry::absorb_named`] keeps
    /// one): QoS counters still add up, but the session contributes no
    /// `asv_qos_level` gauge.
    pub fn absorb(&mut self, session: &SessionTelemetry) {
        self.sessions += 1;
        self.frames_processed += session.frames_processed;
        self.key_frames += session.key_frames;
        self.non_key_frames += session.non_key_frames;
        self.frames_submitted += session.frames_submitted;
        self.frames_dropped += session.frames_dropped;
        self.frames_shed += session.frames_shed;
        self.service_latency.merge(&session.service_latency);
        self.queue_wait.merge(&session.queue_wait);
        self.peak_queue_depth = self.peak_queue_depth.max(session.queue_depth.peak);
        self.current_queue_depth += session.queue_depth.current;
        self.stage_latency.merge(&session.stage_latency);
        self.qos_slo_violations += session.qos.slo_violations;
        for (total, &n) in self
            .qos_actuations
            .iter_mut()
            .zip(session.qos.actuations.iter())
        {
            *total += n;
        }
    }

    /// Folds one session's telemetry into the aggregate under its session
    /// name; a QoS-managed session additionally contributes its current
    /// degradation level to [`AggregateTelemetry::qos_sessions`].
    pub fn absorb_named(&mut self, session: &SessionTelemetry, name: &str) {
        self.absorb(session);
        if session.qos.enabled {
            self.qos_sessions.push(QosSessionSample {
                session: name.to_owned(),
                level: session.qos.level,
            });
        }
    }

    /// Folds another aggregate into this one (cross-shard merge).
    ///
    /// Counters and histograms add, peaks take the maximum, and
    /// `wall_seconds` takes the maximum because shards run concurrently —
    /// the cluster was up for as long as its longest-running shard, so
    /// summing would undercount [`AggregateTelemetry::frames_per_second`].
    pub fn merge(&mut self, other: &AggregateTelemetry) {
        self.sessions += other.sessions;
        self.frames_processed += other.frames_processed;
        self.key_frames += other.key_frames;
        self.non_key_frames += other.non_key_frames;
        self.frames_submitted += other.frames_submitted;
        self.frames_dropped += other.frames_dropped;
        self.frames_shed += other.frames_shed;
        self.service_latency.merge(&other.service_latency);
        self.queue_wait.merge(&other.queue_wait);
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.current_queue_depth += other.current_queue_depth;
        self.stage_latency.merge(&other.stage_latency);
        self.qos_slo_violations += other.qos_slo_violations;
        for (total, &n) in self
            .qos_actuations
            .iter_mut()
            .zip(other.qos_actuations.iter())
        {
            *total += n;
        }
        self.qos_sessions.extend(other.qos_sessions.iter().cloned());
        self.sessions_migrated += other.sessions_migrated;
        for (total, &n) in self
            .transport_errors
            .iter_mut()
            .zip(other.transport_errors.iter())
        {
            *total += n;
        }
        self.wall_seconds = self.wall_seconds.max(other.wall_seconds);
    }

    /// Aggregate throughput in frames per second (0 before any wall time
    /// elapsed).
    pub fn frames_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.frames_processed as f64 / self.wall_seconds
        }
    }

    /// Fraction of processed frames that ran the full DNN.
    pub fn key_frame_ratio(&self) -> f64 {
        if self.frames_processed == 0 {
            0.0
        } else {
            self.key_frames as f64 / self.frames_processed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for us in [100u64, 200, 300, 400, 500, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min_us(), 100);
        assert_eq!(h.max_us(), 10_000);
        let (p50, p95, p99) = (h.p50_us(), h.p95_us(), h.p99_us());
        assert!(p50 > 0);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= 10_000);
        assert!(h.mean_us() > 100.0 && h.mean_us() < 10_000.0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_us(), 0);
        assert_eq!(h.min_us(), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_micros(1_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_us(), 10);
        assert_eq!(a.max_us(), 1_000);
    }

    #[test]
    fn gauge_tracks_peak() {
        let mut g = QueueDepthGauge::default();
        g.observe(2);
        g.observe(5);
        g.observe(1);
        assert_eq!(g.current, 1);
        assert_eq!(g.peak, 5);
    }

    #[test]
    fn session_counters_split_by_kind() {
        let mut t = SessionTelemetry::default();
        t.record_frame(
            FrameKind::KeyFrame,
            Duration::from_millis(5),
            Duration::from_micros(50),
        );
        t.record_frame(
            FrameKind::NonKeyFrame,
            Duration::from_millis(2),
            Duration::from_micros(20),
        );
        t.record_frame(
            FrameKind::NonKeyFrame,
            Duration::from_millis(2),
            Duration::from_micros(20),
        );
        assert_eq!(t.frames_processed, 3);
        assert_eq!(t.key_frames, 1);
        assert_eq!(t.non_key_frames, 2);
        assert!((t.key_frame_ratio() - 1.0 / 3.0).abs() < 1e-12);

        let mut agg = AggregateTelemetry::default();
        agg.absorb(&t);
        agg.absorb(&t);
        assert_eq!(agg.sessions, 2);
        assert_eq!(agg.frames_processed, 6);
        assert_eq!(agg.service_latency.count(), 6);
        agg.wall_seconds = 3.0;
        assert!((agg.frames_per_second() - 2.0).abs() < 1e-12);
    }
}
