//! `asv-runtime`: the concurrent streaming frame-serving engine on top of
//! the ISM pipeline.
//!
//! The paper's whole point is *continuous* vision: ISM amortizes DNN cost
//! across a stream of frames (Sec. 3).  The batch entry point
//! ([`asv::IsmPipeline::process_sequence`]) is how experiments run, but real
//! deployments ingest frames one at a time from many cameras concurrently.
//! This crate turns the incremental core ([`asv::IsmState`]) into a serving
//! engine:
//!
//! * [`Scheduler`] — a fixed `std::thread` worker pool multiplexing many
//!   sessions, with round-robin fairness and bounded-inbox backpressure
//!   (see the [`scheduler`] module docs for the full model);
//! * [`StreamSession`] / [`SessionHandle`] — one camera stream = one ISM
//!   state; producers submit frames and block when they outrun the engine;
//! * [`telemetry`] — per-session and aggregate counters, key/non-key frame
//!   ratios, log-bucketed latency histograms (p50/p95/p99) and queue-depth
//!   gauges;
//! * [`serve_sequences`] — drive whole [`asv_scene::StereoSequence`]s as
//!   simulated live feeds (one feeder thread per stream);
//! * [`cluster`] — the scale-out layer: a [`Cluster`] of `N` independent
//!   scheduler shards with consistent-hash session placement (pinned
//!   override and least-loaded fallback);
//! * [`ingest`] — the async ingestion front-end: a bounded submission queue
//!   with per-session quotas and a configurable [`ShedPolicy`]
//!   (block / reject / drop-oldest) so a hot session cannot starve intake;
//! * [`export`] — [`render_prometheus`]: the telemetry in Prometheus text
//!   format, ready to serve from a `/metrics` endpoint;
//! * [`sim`] — the deterministic simulation harness proving that an
//!   `N`-shard cluster produces per-session results byte-identical to a
//!   single scheduler and to batch processing.
//!
//! Per-session output is byte-identical to batch processing: the scheduler
//! never reorders a session's frames and both paths execute the same
//! [`asv::IsmState::step`].
//!
//! # Example
//!
//! ```
//! use asv::system::{AsvConfig, AsvSystem};
//! use asv_runtime::{serve_sequences, SchedulerConfig};
//! use asv_scene::{SceneConfig, StereoSequence};
//!
//! // Two small synthetic camera streams.
//! let streams: Vec<StereoSequence> = (0..2)
//!     .map(|i| {
//!         let scene = SceneConfig::scene_flow_like(48, 32).with_seed(40 + i).with_objects(2);
//!         StereoSequence::generate(&scene, 3)
//!     })
//!     .collect();
//!
//! let system = AsvSystem::new(AsvConfig {
//!     frame_width: 48,
//!     frame_height: 32,
//!     ..AsvConfig::small()
//! })
//! .unwrap();
//! let outcome = serve_sequences(
//!     system.pipeline(),
//!     &streams,
//!     SchedulerConfig::per_core().with_workers(2),
//! )
//! .unwrap();
//!
//! assert_eq!(outcome.results.len(), 2);
//! assert_eq!(outcome.results[0].frames.len(), 3);
//! // Streaming output is identical to batch output.
//! let batch = system.process_sequence(&streams[0]).unwrap();
//! assert_eq!(batch.frames[2].disparity, outcome.results[0].frames[2].disparity);
//! assert!(outcome.aggregate.service_latency.p50_us() > 0);
//! ```

pub mod cluster;
pub mod export;
pub mod http;
pub mod ingest;
pub mod knobs;
pub mod net;
pub mod qos;
mod queue;
pub mod scheduler;
pub mod serve;
pub mod session;
pub mod sim;
pub mod supervisor;
pub mod telemetry;
pub mod wire;

pub use asv::trace::Stage;
pub use asv::CostMetric;
pub use cluster::{
    Cluster, ClusterConfig, ClusterObserver, ClusterReport, ClusterSessionHandle, Placement,
};
pub use export::{parse_scrape, render_prometheus, ScrapeSample};
pub use http::{HttpMetricsSource, MetricsServer};
pub use ingest::{Ingest, IngestConfig, IngestStats, RouteHandle, RouteStats};
pub use net::{
    Admit, ClientConfig, FrameClient, FrameServer, FrameSink, NetConfig, SequenceGate,
    TransportCounters, TransportErrorKind,
};
pub use qos::{
    qos_enabled_from_env, QosAction, QosConfig, QosController, QosKnobs, QosTelemetry,
    QosTransition, SessionSlo,
};
pub use scheduler::{
    RuntimeReport, Scheduler, SchedulerConfig, SchedulerObserver, SessionHandle, ShedPolicy,
};
pub use serve::{serve_sequences, ServeOutcome};
pub use session::{SessionId, SessionReport, StreamSession};
pub use sim::{
    run_chaos_transport_sim, run_failover_sim, run_overload_sim, ChaosConfig, ChaosReport,
    CostModel, FailoverConfig, FailoverReport, OverloadConfig, OverloadReport,
    OverloadSessionReport, SimConfig, SimReport, VirtualClock,
};
pub use supervisor::{Delivery, MigrationRecord, Supervisor};
pub use telemetry::{
    AggregateTelemetry, LatencyHistogram, QosSessionSample, QueueDepthGauge, SessionTelemetry,
    StageTelemetry,
};
