//! Deadline-aware adaptive QoS: the closed loop between per-session latency
//! telemetry and ASV's own accuracy-vs-compute knobs.
//!
//! # Why a controller
//!
//! The runtime's admission control (`ShedPolicy`) sheds overload *blindly*:
//! it drops or rejects whole frames without regard to what the session could
//! afford to give up instead.  But ASV's entire premise (Sec. 3 of the
//! paper) is that invariant-based motion compensation trades a sliver of
//! accuracy for large compute savings — the propagation window, the adaptive
//! key-frame threshold and the census-vs-SAD cost metric are all
//! runtime-selectable knobs on a live [`IsmState`].  A deadline-driven
//! deployment should therefore degrade *quality* before it degrades
//! *delivery*: serve every frame, just cheaper.
//!
//! # The control loop
//!
//! Each SLO-managed session owns one [`QosController`].  Every completed
//! frame feeds its end-to-end step latency (queue wait + service time) into
//! the controller's sliding window; the controller compares the windowed
//! p95 (and optionally the windowed throughput) against the session's
//! [`SessionSlo`] and walks a fixed degradation ladder:
//!
//! | level | actuation (cumulative)                                         |
//! |-------|----------------------------------------------------------------|
//! | 0     | baseline knobs — full quality                                  |
//! | 1     | key frames switch SAD → census (integer SGM fast path)         |
//! | 2     | propagation window widens to 2× baseline                       |
//! | 3     | window widens to 4× baseline, adaptive-motion threshold 4×     |
//!
//! Violations degrade *fast* (a couple of violating evaluations), recovery
//! is *slow and probing*: the controller steps back toward full quality only
//! after a long streak of samples comfortably inside the SLO
//! ([`QosConfig::recover_margin`]), and a failed probe retreats after the
//! next couple of violations.  The asymmetry plus the post-actuation
//! cooldown (the observation window refills before the next decision) is
//! what keeps the loop from oscillating.
//!
//! The controller is a pure state machine over `(completed_at_us, step_us)`
//! observations — no clocks, no threads — so the same code runs under the
//! real scheduler (fed from `Instant` measurements) and under the
//! deterministic virtual-time overload simulation in [`crate::sim`], which
//! is how CI proves the closed loop works.

use asv::ism::{IsmState, KeyFramePolicy};
use asv::CostMetric;

/// Highest degradation level of the ladder.
pub const MAX_QOS_LEVEL: u8 = 3;

/// Whether new QoS controllers are enabled at all; `ASV_QOS=off|0|false`
/// turns every controller registered afterwards into a no-op (sessions keep
/// their SLO config but never actuate), mirroring the `ASV_SIMD`/`ASV_TRACE`
/// debugging knobs.
pub fn qos_enabled_from_env() -> bool {
    crate::knobs::flag_enabled(crate::knobs::QOS)
}

/// The service-level objective of one session.  At least one target should
/// be set; a session violating *any* set target counts as an SLO violation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSlo {
    /// Target 95th-percentile end-to-end step latency (submit → finished
    /// disparity map) in microseconds, over the controller's sliding window.
    pub target_p95_step_us: u64,
    /// Optional minimum sustained throughput in frames per second, measured
    /// over the controller's sliding window (only evaluated once the window
    /// is full, so a stream that just started is not penalized).
    pub min_fps: Option<f64>,
}

impl SessionSlo {
    /// An SLO with only a p95 step-latency target.
    pub fn p95_step_us(target_p95_step_us: u64) -> Self {
        Self {
            target_p95_step_us,
            min_fps: None,
        }
    }

    /// Returns the SLO with a minimum-throughput target added.
    pub fn with_min_fps(mut self, min_fps: f64) -> Self {
        self.min_fps = Some(min_fps);
        self
    }
}

/// Tuning knobs of the per-session QoS control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosConfig {
    /// The objective the controller defends.
    pub slo: SessionSlo,
    /// Sliding-window size in frames over which p95 / fps are computed
    /// (clamped to at least 4).
    pub window: usize,
    /// Consecutive violating evaluations before the controller degrades one
    /// level (small = react fast).
    pub degrade_after: u32,
    /// Consecutive comfortably-healthy evaluations before the controller
    /// probes one level back toward full quality (large = probe rarely).
    pub recover_after: u32,
    /// "Comfortably healthy" means windowed p95 ≤ `recover_margin` × the
    /// p95 target (and the fps target, when set, is met).  Samples between
    /// the margin and the target are the hysteresis dead band: they reset
    /// both streaks and hold the current level.
    pub recover_margin: f64,
    /// Minimum frames between two actuations, on top of the window refill
    /// (the observation window is cleared on every actuation).
    pub cooldown_frames: u32,
    /// Deepest ladder level the controller may reach (clamped to
    /// [`MAX_QOS_LEVEL`]).
    pub max_level: u8,
}

impl QosConfig {
    /// A controller defending `slo` with the default loop dynamics:
    /// 16-frame window, degrade after 2 violations, probe recovery after 32
    /// comfortable evaluations at 70% of the target, full ladder depth.
    pub fn new(slo: SessionSlo) -> Self {
        Self {
            slo,
            window: 16,
            degrade_after: 2,
            recover_after: 32,
            recover_margin: 0.7,
            cooldown_frames: 8,
            max_level: MAX_QOS_LEVEL,
        }
    }

    /// Returns the configuration with a different sliding-window size.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Returns the configuration with different degrade/recover streak
    /// lengths.
    pub fn with_streaks(mut self, degrade_after: u32, recover_after: u32) -> Self {
        self.degrade_after = degrade_after;
        self.recover_after = recover_after;
        self
    }

    /// Returns the configuration with a different recovery margin.
    pub fn with_recover_margin(mut self, recover_margin: f64) -> Self {
        self.recover_margin = recover_margin;
        self
    }

    /// Returns the configuration with a different maximum ladder level.
    pub fn with_max_level(mut self, max_level: u8) -> Self {
        self.max_level = max_level;
        self
    }
}

/// The accuracy-vs-compute knobs the controller actuates, snapshotted from a
/// session's [`IsmState`] at registration (the "full quality" baseline) and
/// re-derived per ladder level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosKnobs {
    /// ISM propagation window (frames per key frame).
    pub propagation_window: usize,
    /// Key-frame selection policy.
    pub key_frame_policy: KeyFramePolicy,
    /// Key-frame matching-cost metric.
    pub metric: CostMetric,
}

impl QosKnobs {
    /// Snapshots the baseline knobs of a live session state.
    pub fn from_state(state: &IsmState) -> Self {
        let config = state.config();
        Self {
            propagation_window: config.propagation_window.max(1),
            key_frame_policy: config.key_frame_policy,
            metric: config.surrogate.metric,
        }
    }

    /// The knob values of ladder level `level`, derived from this baseline.
    /// Level 0 is the baseline itself; deeper levels are cumulative (census
    /// metric, then a 2× window, then a 4× window plus a 4× adaptive-motion
    /// threshold).
    pub fn at_level(&self, level: u8) -> QosKnobs {
        let mut knobs = *self;
        if level >= 1 {
            knobs.metric = CostMetric::Census;
        }
        if level >= 2 {
            knobs.propagation_window = self.propagation_window.saturating_mul(2);
        }
        if level >= 3 {
            knobs.propagation_window = self.propagation_window.saturating_mul(4);
            if let KeyFramePolicy::AdaptiveMotion {
                max_median_motion_px,
            } = self.key_frame_policy
            {
                knobs.key_frame_policy = KeyFramePolicy::AdaptiveMotion {
                    max_median_motion_px: max_median_motion_px * 4.0,
                };
            }
        }
        knobs
    }

    /// Applies the knob values to a live session state (takes effect from
    /// the stream's next frame).
    pub fn apply(&self, state: &mut IsmState) {
        state.set_propagation_window(self.propagation_window);
        state.set_key_frame_policy(self.key_frame_policy);
        state.set_cost_metric(self.metric);
    }
}

/// The kind of one controller actuation, exported as the `action` label of
/// `asv_qos_actuations_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosAction {
    /// Degraded to level 1: key frames switched SAD → census.
    CensusMetric,
    /// Degraded to level 2: propagation window widened to 2× baseline.
    WidenWindow,
    /// Degraded to level 3: window to 4×, adaptive-motion threshold relaxed.
    RelaxMotion,
    /// Stepped one level back toward full quality.
    Recover,
}

impl QosAction {
    /// Number of action kinds.
    pub const COUNT: usize = 4;

    /// Every action in stable export order.
    pub const ALL: [QosAction; QosAction::COUNT] = [
        QosAction::CensusMetric,
        QosAction::WidenWindow,
        QosAction::RelaxMotion,
        QosAction::Recover,
    ];

    /// Stable lowercase name (the Prometheus `action` label value).
    pub fn name(self) -> &'static str {
        match self {
            QosAction::CensusMetric => "census_metric",
            QosAction::WidenWindow => "widen_window",
            QosAction::RelaxMotion => "relax_motion",
            QosAction::Recover => "recover",
        }
    }

    /// Dense index of the action (its slot in the actuation counters).
    pub fn index(self) -> usize {
        match self {
            QosAction::CensusMetric => 0,
            QosAction::WidenWindow => 1,
            QosAction::RelaxMotion => 2,
            QosAction::Recover => 3,
        }
    }

    /// The action performed when degrading *to* `level`.
    fn for_degrade_to(level: u8) -> QosAction {
        match level {
            0 | 1 => QosAction::CensusMetric,
            2 => QosAction::WidenWindow,
            _ => QosAction::RelaxMotion,
        }
    }
}

/// Counters and gauges of one session's QoS loop, embedded in
/// [`crate::SessionTelemetry`] and folded into the aggregate for the
/// Prometheus export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QosTelemetry {
    /// Whether this session runs a QoS controller at all.
    pub enabled: bool,
    /// Current degradation level (0 = full quality).
    pub level: u8,
    /// Deepest level the controller ever reached.
    pub max_level_reached: u8,
    /// Evaluations that found the SLO violated.
    pub slo_violations: u64,
    /// Actuations performed, indexed by [`QosAction::index`].
    pub actuations: [u64; QosAction::COUNT],
}

impl QosTelemetry {
    /// Total actuations across all action kinds.
    pub fn actuations_total(&self) -> u64 {
        self.actuations.iter().sum()
    }
}

/// What [`QosController::observe_step`] decided for this frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosTransition {
    /// The controller degraded one level; the caller must apply
    /// [`QosController::knobs`] to the session state.
    Degraded {
        /// The new (deeper) level.
        to: u8,
        /// Which knob was turned.
        action: QosAction,
    },
    /// The controller stepped one level back toward full quality; the caller
    /// must apply [`QosController::knobs`].
    Recovered {
        /// The new (shallower) level.
        to: u8,
    },
}

/// One observed frame completion in the sliding window.
#[derive(Debug, Clone, Copy)]
struct StepSample {
    /// Completion time on the caller's monotonic µs clock.
    completed_us: u64,
    /// End-to-end step latency (queue wait + service) in µs.
    step_us: u64,
}

/// The per-session QoS control loop: a pure state machine from step-latency
/// observations to knob-ladder transitions.  See the module documentation
/// for the control model.
#[derive(Debug, Clone)]
pub struct QosController {
    config: QosConfig,
    baseline: QosKnobs,
    level: u8,
    /// Sliding window of recent completions (ring buffer).
    samples: Vec<StepSample>,
    /// Next ring slot to overwrite once the window is full.
    next_slot: usize,
    violation_streak: u32,
    healthy_streak: u32,
    frames_since_actuation: u32,
    /// Scratch reused by the windowed-quantile computation.
    sorted_scratch: Vec<u64>,
    telemetry: QosTelemetry,
}

impl QosController {
    /// Creates a controller defending `config.slo` for a session whose
    /// full-quality knobs are `baseline`.
    pub fn new(config: QosConfig, baseline: QosKnobs) -> Self {
        let window = config.window.max(4);
        Self {
            config: QosConfig { window, ..config },
            baseline,
            level: 0,
            samples: Vec::with_capacity(window),
            next_slot: 0,
            violation_streak: 0,
            healthy_streak: 0,
            // Saturated high: the cooldown only gates *re*-actuation.
            frames_since_actuation: u32::MAX,
            sorted_scratch: Vec::with_capacity(window),
            telemetry: QosTelemetry {
                enabled: true,
                ..QosTelemetry::default()
            },
        }
    }

    /// Creates a controller for a live session, snapshotting its current
    /// knobs as the full-quality baseline.
    pub fn for_state(config: QosConfig, state: &IsmState) -> Self {
        Self::new(config, QosKnobs::from_state(state))
    }

    /// The controller's loop configuration.
    pub fn config(&self) -> &QosConfig {
        &self.config
    }

    /// The snapshotted full-quality knobs.
    pub fn baseline(&self) -> QosKnobs {
        self.baseline
    }

    /// Current degradation level (0 = full quality).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// The knob values of the current level.
    pub fn knobs(&self) -> QosKnobs {
        self.baseline.at_level(self.level)
    }

    /// A copy of the controller's telemetry counters.
    pub fn telemetry(&self) -> QosTelemetry {
        self.telemetry
    }

    /// Windowed 95th-percentile step latency, or `None` while the window
    /// holds fewer samples than the evaluation threshold.
    pub fn windowed_p95_us(&self) -> Option<u64> {
        if self.samples.len() < self.min_samples() {
            return None;
        }
        Some(quantile_of(
            &mut self.sorted_scratch.clone(),
            &self.samples,
            0.95,
        ))
    }

    /// Windowed throughput in frames per second, or `None` until the window
    /// is full (or while it spans no time).
    pub fn windowed_fps(&self) -> Option<f64> {
        if self.samples.len() < self.config.window {
            return None;
        }
        let oldest = self.samples.iter().map(|s| s.completed_us).min()?;
        let newest = self.samples.iter().map(|s| s.completed_us).max()?;
        if newest <= oldest {
            return None;
        }
        Some((self.samples.len() as f64 - 1.0) / ((newest - oldest) as f64 / 1e6))
    }

    /// Evaluations need at least half a window of fresh samples; this also
    /// implements the post-actuation cooldown, because every actuation
    /// clears the window.
    fn min_samples(&self) -> usize {
        (self.config.window / 2).max(2)
    }

    /// Feeds one completed frame (`completed_us` on any monotonic µs clock,
    /// `step_us` = queue wait + service time) and runs one evaluation.
    /// Returns the ladder transition the caller must apply to the session's
    /// [`IsmState`], if any.
    pub fn observe_step(&mut self, completed_us: u64, step_us: u64) -> Option<QosTransition> {
        let sample = StepSample {
            completed_us,
            step_us,
        };
        if self.samples.len() < self.config.window {
            self.samples.push(sample);
        } else {
            self.samples[self.next_slot] = sample;
            self.next_slot = (self.next_slot + 1) % self.config.window;
        }
        self.frames_since_actuation = self.frames_since_actuation.saturating_add(1);
        if self.samples.len() < self.min_samples() {
            return None;
        }

        let p95 = quantile_of(&mut self.sorted_scratch, &self.samples, 0.95);
        let fps = self.windowed_fps();
        let slo = self.config.slo;
        let fps_violated = matches!((slo.min_fps, fps), (Some(min), Some(got)) if got < min);
        let violated = p95 > slo.target_p95_step_us || fps_violated;
        // "Comfortably healthy" applies the recovery margin to the latency
        // target; the dead band between margin and target holds the level.
        let margin_target = (slo.target_p95_step_us as f64 * self.config.recover_margin) as u64;
        let comfortable = !violated && p95 <= margin_target;

        if violated {
            self.telemetry.slo_violations += 1;
            self.violation_streak += 1;
            self.healthy_streak = 0;
        } else if comfortable {
            self.healthy_streak += 1;
            self.violation_streak = 0;
        } else {
            self.violation_streak = 0;
            self.healthy_streak = 0;
        }

        let cooled = self.frames_since_actuation >= self.config.cooldown_frames;
        let max_level = self.config.max_level.min(MAX_QOS_LEVEL);
        if violated && self.violation_streak >= self.config.degrade_after {
            if self.level < max_level && cooled {
                self.level += 1;
                let action = QosAction::for_degrade_to(self.level);
                self.actuated(action);
                return Some(QosTransition::Degraded {
                    to: self.level,
                    action,
                });
            }
            return None;
        }
        if comfortable
            && self.healthy_streak >= self.config.recover_after
            && self.level > 0
            && cooled
        {
            self.level -= 1;
            self.actuated(QosAction::Recover);
            return Some(QosTransition::Recovered { to: self.level });
        }
        None
    }

    /// Bookkeeping of one actuation: counters, streak reset and window
    /// clear (samples observed under the old knobs must not drive the next
    /// decision).
    fn actuated(&mut self, action: QosAction) {
        self.telemetry.actuations[action.index()] += 1;
        self.telemetry.level = self.level;
        self.telemetry.max_level_reached = self.telemetry.max_level_reached.max(self.level);
        self.violation_streak = 0;
        self.healthy_streak = 0;
        self.frames_since_actuation = 0;
        self.samples.clear();
        self.next_slot = 0;
    }
}

/// The `q`-quantile of the window's step latencies (nearest-rank on a sorted
/// copy kept in `scratch`).
fn quantile_of(scratch: &mut Vec<u64>, samples: &[StepSample], q: f64) -> u64 {
    scratch.clear();
    scratch.extend(samples.iter().map(|s| s.step_us));
    scratch.sort_unstable();
    let rank = ((q * scratch.len() as f64).ceil() as usize).clamp(1, scratch.len());
    scratch[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> QosKnobs {
        QosKnobs {
            propagation_window: 2,
            key_frame_policy: KeyFramePolicy::AdaptiveMotion {
                max_median_motion_px: 1.5,
            },
            metric: CostMetric::Sad,
        }
    }

    fn config() -> QosConfig {
        QosConfig::new(SessionSlo::p95_step_us(10_000))
            .with_window(8)
            .with_streaks(2, 6)
    }

    /// Feeds `n` frames of constant latency at a fixed cadence, returning
    /// every transition.
    fn feed(c: &mut QosController, clock: &mut u64, n: usize, step_us: u64) -> Vec<QosTransition> {
        let mut transitions = Vec::new();
        for _ in 0..n {
            *clock += 5_000;
            if let Some(t) = c.observe_step(*clock, step_us) {
                transitions.push(t);
            }
        }
        transitions
    }

    #[test]
    fn healthy_stream_never_actuates() {
        let mut c = QosController::new(config(), baseline());
        let mut clock = 0;
        let transitions = feed(&mut c, &mut clock, 200, 2_000);
        assert!(transitions.is_empty());
        assert_eq!(c.level(), 0);
        assert_eq!(c.telemetry().slo_violations, 0);
        assert_eq!(c.telemetry().actuations_total(), 0);
        assert_eq!(c.knobs(), baseline());
    }

    #[test]
    fn violations_walk_the_ladder_in_order() {
        // Sustained 5x-over-target latency must walk census -> window ->
        // motion, in that order, one level per (min_samples + degrade_after)
        // evaluations.
        let mut c = QosController::new(config(), baseline());
        let mut clock = 0;
        let transitions = feed(&mut c, &mut clock, 60, 50_000);
        let actions: Vec<QosAction> = transitions
            .iter()
            .filter_map(|t| match t {
                QosTransition::Degraded { action, .. } => Some(*action),
                QosTransition::Recovered { .. } => None,
            })
            .collect();
        assert_eq!(
            actions,
            vec![
                QosAction::CensusMetric,
                QosAction::WidenWindow,
                QosAction::RelaxMotion
            ]
        );
        assert_eq!(c.level(), MAX_QOS_LEVEL);
        assert!(c.telemetry().slo_violations > 0);

        // The ladder is cumulative.
        let knobs = c.knobs();
        assert_eq!(knobs.metric, CostMetric::Census);
        assert_eq!(knobs.propagation_window, 8);
        match knobs.key_frame_policy {
            KeyFramePolicy::AdaptiveMotion {
                max_median_motion_px,
            } => assert!((max_median_motion_px - 6.0).abs() < 1e-6),
            other => panic!("expected relaxed adaptive policy, got {other:?}"),
        }
    }

    #[test]
    fn intermediate_levels_change_only_their_knobs() {
        let base = baseline();
        let l1 = base.at_level(1);
        assert_eq!(l1.metric, CostMetric::Census);
        assert_eq!(l1.propagation_window, base.propagation_window);
        assert_eq!(l1.key_frame_policy, base.key_frame_policy);
        let l2 = base.at_level(2);
        assert_eq!(l2.metric, CostMetric::Census);
        assert_eq!(l2.propagation_window, base.propagation_window * 2);
        assert_eq!(l2.key_frame_policy, base.key_frame_policy);
        // A static-policy baseline keeps its policy at every level.
        let static_base = QosKnobs {
            key_frame_policy: KeyFramePolicy::Static,
            ..base
        };
        assert_eq!(
            static_base.at_level(3).key_frame_policy,
            KeyFramePolicy::Static
        );
    }

    #[test]
    fn recovery_requires_a_long_comfortable_streak() {
        let mut c = QosController::new(config(), baseline());
        let mut clock = 0;
        feed(&mut c, &mut clock, 30, 50_000);
        assert!(c.level() > 0);
        let degraded = c.level();

        // Latency inside the dead band (between margin and target) holds the
        // level indefinitely: no recovery, no further degradation.
        let transitions = feed(&mut c, &mut clock, 100, 9_000);
        assert!(transitions.is_empty(), "dead band must hold the level");
        assert_eq!(c.level(), degraded);

        // Comfortable latency (below 70% of target) recovers one level per
        // recover_after-long streak, stepping all the way back to 0.
        let transitions = feed(&mut c, &mut clock, 200, 2_000);
        let recoveries = transitions
            .iter()
            .filter(|t| matches!(t, QosTransition::Recovered { .. }))
            .count();
        assert_eq!(recoveries, degraded as usize);
        assert_eq!(c.level(), 0);
        assert_eq!(c.knobs(), baseline());
        assert_eq!(
            c.telemetry().actuations[QosAction::Recover.index()],
            degraded as u64
        );
        assert_eq!(c.telemetry().max_level_reached, degraded);
    }

    #[test]
    fn hysteresis_prevents_oscillation_on_alternating_load() {
        // Load flapping every 4 frames between great and terrible: the
        // windowed p95 stays violated, so the controller must ratchet down
        // and stay down — never bounce back up between bursts.
        let mut c = QosController::new(config(), baseline());
        let mut clock = 0;
        let mut level_drops = 0;
        for burst in 0..40 {
            let step = if burst % 2 == 0 { 1_000 } else { 80_000 };
            for t in feed(&mut c, &mut clock, 4, step) {
                if matches!(t, QosTransition::Recovered { .. }) {
                    level_drops += 1;
                }
            }
        }
        assert!(c.level() > 0, "alternating overload must degrade");
        assert_eq!(level_drops, 0, "no recovery while violations keep coming");
    }

    #[test]
    fn fps_target_alone_can_violate() {
        // Latency is fine, but the 5 ms cadence (200 fps) violates a 300 fps
        // floor once the window fills.
        let slo = SessionSlo::p95_step_us(1_000_000).with_min_fps(300.0);
        let mut c = QosController::new(
            QosConfig::new(slo).with_window(8).with_streaks(2, 6),
            baseline(),
        );
        let mut clock = 0;
        let transitions = feed(&mut c, &mut clock, 40, 100);
        assert!(
            transitions
                .iter()
                .any(|t| matches!(t, QosTransition::Degraded { .. })),
            "fps violation must degrade"
        );
        assert!(c.telemetry().slo_violations > 0);
    }

    #[test]
    fn max_level_caps_the_ladder() {
        let cfg = config().with_max_level(1);
        let mut c = QosController::new(cfg, baseline());
        let mut clock = 0;
        feed(&mut c, &mut clock, 200, 50_000);
        assert_eq!(c.level(), 1);
        assert_eq!(c.telemetry().actuations[QosAction::WidenWindow.index()], 0);
    }

    #[test]
    fn env_knob_parses_disabling_values() {
        // Only inspects the parser contract indirectly: the function reads
        // the live environment, so just assert it returns a bool without
        // panicking under the current environment.
        let _ = qos_enabled_from_env();
    }
}
