//! The multi-session scheduler: a fixed worker pool multiplexing many
//! camera streams over bounded inboxes.
//!
//! # Execution model
//!
//! One [`Scheduler`] owns `N` OS worker threads (`std::thread`) and a table
//! of [`StreamSession`]s.  All shared state lives behind a single engine
//! mutex; the heavy per-frame kernel work (DNN surrogate, optical flow,
//! refinement) runs *outside* the lock, so the lock is only held for
//! queue/table bookkeeping that costs microseconds.
//!
//! # Ordering
//!
//! A session's ISM state is physically *taken out* of the table while a
//! worker steps one of its frames, so a session is never advanced by two
//! workers at once.  Combined with FIFO inboxes this guarantees that each
//! session's results appear in exactly the order its frames were submitted —
//! the property that makes streaming output byte-identical to batch
//! [`asv::IsmPipeline::process_sequence`].
//!
//! # Backpressure
//!
//! Every session has a bounded inbox ([`SchedulerConfig::inbox_capacity`]).
//! What happens when an inbox is full is the scheduler's [`ShedPolicy`]:
//! under the default `Block`, [`SessionHandle::submit`] parks the producer
//! on a condition variable until a worker drains a slot; `Reject` fails the
//! submit with [`AsvError::Saturated`]; `DropOldest` displaces the oldest
//! queued frame of the same session.  In every case a slow consumer costs
//! only its own producer — memory per session stays bounded by
//! `inbox_capacity` frames — while other sessions keep flowing.
//!
//! # Fairness
//!
//! Idle workers scan the session table round-robin from a shared rotating
//! cursor: after dispatching from session `i` the next scan starts at
//! `i + 1`, so a session that always has queued frames cannot starve the
//! others; with `S` backlogged sessions each gets every `S`-th dispatch.
//! There is no priority mechanism — streams are peers, as camera feeds
//! typically are.
//!
//! # Failure
//!
//! A frame that fails ([`asv::AsvError`]) poisons only its own session: the
//! error is stored, queued frames are dropped (counted in telemetry), and
//! later submits to that session return the error.  Other sessions are
//! unaffected.

use crate::qos::{qos_enabled_from_env, QosConfig, QosController};
use crate::queue::QueuedFrame;
use crate::session::{SessionId, SessionReport, StreamSession};
use crate::telemetry::AggregateTelemetry;
use asv::ism::{IsmResult, IsmState};
use asv::trace::chrome::ChromeTrace;
use asv::trace::TraceMode;
use asv::{AsvError, Workspace};
use asv_image::Image;
use asv_mem::BufferPool;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// What [`SessionHandle::submit`] does when the session's inbox is full.
///
/// The policy trades latency for loss: `Block` is lossless (the producer
/// waits), `Reject` pushes the decision back to the producer, and
/// `DropOldest` keeps only the freshest frames — the natural choice for a
/// live camera where a stale frame is worthless once a newer one exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Park the producer until a worker drains a slot (lossless
    /// backpressure; the default, and the PR-2 behaviour).
    #[default]
    Block,
    /// Return [`AsvError::Saturated`] immediately; the frame is shed and
    /// counted in the session's `frames_shed` telemetry.
    Reject,
    /// Displace the oldest queued frame of the same session to make room;
    /// the displaced frame is counted in `frames_shed` and the new frame is
    /// accepted.  Never blocks and never fails on a full inbox.
    DropOldest,
}

impl ShedPolicy {
    /// Whether the policy can lose frames (everything but `Block`).
    pub fn is_lossy(&self) -> bool {
        !matches!(self, ShedPolicy::Block)
    }
}

/// Tuning knobs of the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Worker threads in the pool.  `0` is allowed and means *manual mode*:
    /// no worker threads are spawned, inboxes only fill, and [`Scheduler::join`]
    /// discards whatever is still queued (deterministic admission-control
    /// tests rely on this).
    pub workers: usize,
    /// Bounded inbox capacity per session, in frames (clamped to at least
    /// 1).
    pub inbox_capacity: usize,
    /// What `submit` does when a session's inbox is full.
    pub shed_policy: ShedPolicy,
}

impl SchedulerConfig {
    /// A pool with one worker per available core, a small default inbox and
    /// lossless blocking backpressure.
    pub fn per_core() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            inbox_capacity: 4,
            shed_policy: ShedPolicy::Block,
        }
    }

    /// Returns the configuration with a different worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns the configuration with a different inbox capacity.
    pub fn with_inbox_capacity(mut self, capacity: usize) -> Self {
        self.inbox_capacity = capacity;
        self
    }

    /// Returns the configuration with a different load-shedding policy.
    pub fn with_shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed_policy = policy;
        self
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self::per_core()
    }
}

/// Mutable engine state shared by workers and producers.
#[derive(Debug)]
struct Engine {
    sessions: Vec<StreamSession>,
    /// Round-robin scan start for the next dispatch.
    cursor: usize,
    /// Set by [`Scheduler::join`] (and by drop): no new submissions are
    /// accepted, workers drain the inboxes and exit.
    shutdown: bool,
    /// Frames currently being processed outside the lock.
    in_flight: usize,
    /// Set when the shard has failed (injected fault via [`Scheduler::trip`]
    /// or a poisoned engine lock): every session is dead, submissions fail
    /// with [`AsvError::ShardDown`] and a supervisor may re-place the
    /// sessions on surviving shards.
    failed: Option<String>,
}

impl Engine {
    /// Picks the next (session, frame) pair round-robin and marks the
    /// session busy by taking its state and workspace out.
    fn dispatch_next(&mut self) -> Option<(usize, QueuedFrame, IsmState, Workspace)> {
        let n = self.sessions.len();
        if n == 0 {
            return None;
        }
        for k in 0..n {
            let idx = (self.cursor + k) % n;
            if self.sessions[idx].dispatchable() {
                self.cursor = (idx + 1) % n;
                let slot = &mut self.sessions[idx];
                let frame = slot.inbox.pop().expect("dispatchable inbox is non-empty");
                slot.telemetry.queue_depth.observe(slot.inbox.len());
                let (state, workspace) = slot.take_work();
                return Some((idx, frame, state, workspace));
            }
        }
        None
    }

    /// Whether the workers may exit: shutdown requested, nothing queued and
    /// nothing mid-frame.
    fn drained(&self) -> bool {
        self.shutdown && self.in_flight == 0 && self.sessions.iter().all(|s| s.inbox.is_empty())
    }
}

/// Condvar-equipped shared engine.
#[derive(Debug)]
struct Shared {
    engine: Mutex<Engine>,
    /// Workers park here when no session is dispatchable.
    work: Condvar,
    /// Producers park here when their session's inbox is full.
    space: Condvar,
    /// Planes of already-processed frames, recycled back to producers
    /// through [`SessionHandle::recycled_frame`] so the ingest edge can
    /// build new frames without fresh allocations.  A separate lock from the
    /// engine: recycling never contends with scheduling.
    frames: Mutex<BufferPool>,
    /// Engine start time; workers timestamp QoS observations against it so
    /// per-session controllers share one monotonic µs clock.
    started: Instant,
}

impl Shared {
    /// Locks the engine, recovering from a poisoned mutex by marking the
    /// shard failed instead of propagating the panic: producers then get
    /// [`AsvError::ShardDown`] and a supervisor can re-place the sessions,
    /// rather than the whole process cascading.
    fn lock(&self) -> MutexGuard<'_, Engine> {
        match self.engine.lock() {
            Ok(guard) => guard,
            Err(poisoned) => self.mark_poisoned(poisoned.into_inner()),
        }
    }

    /// Parks on `condvar` with the same poison recovery as [`Shared::lock`].
    fn wait_on<'a>(
        &self,
        condvar: &Condvar,
        guard: MutexGuard<'a, Engine>,
    ) -> MutexGuard<'a, Engine> {
        match condvar.wait(guard) {
            Ok(guard) => guard,
            Err(poisoned) => self.mark_poisoned(poisoned.into_inner()),
        }
    }

    fn mark_poisoned<'a>(&self, mut guard: MutexGuard<'a, Engine>) -> MutexGuard<'a, Engine> {
        if guard.failed.is_none() {
            let context = "engine lock poisoned by a panicked thread".to_owned(); // lint: alloc-ok(shard-failure path)
            for slot in &mut guard.sessions {
                let dropped = slot.inbox.clear();
                slot.telemetry.frames_dropped += dropped as u64;
                if slot.error.is_none() {
                    slot.error = Some(AsvError::shard_down(context.clone())); // lint: alloc-ok(shard-failure path)
                }
            }
            guard.failed = Some(context);
            // Wake parked producers (to fail their submits) and workers.
            self.work.notify_all();
            self.space.notify_all();
        }
        guard
    }
}

/// The streaming frame-serving engine: a fixed worker pool serving many
/// [`StreamSession`]s concurrently with bounded memory.
///
/// See the module documentation for the scheduling, backpressure and
/// fairness model.
#[derive(Debug)]
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    inbox_capacity: usize,
    shed_policy: ShedPolicy,
    started: Instant,
}

/// Producer-side handle of one registered session; cheap to clone and
/// `Send`, so a camera/feeder thread can own one.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    shared: Arc<Shared>,
    id: SessionId,
    shed_policy: ShedPolicy,
}

/// Everything the engine produced, returned by [`Scheduler::join`].
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Per-session reports, indexed by [`SessionId::index`] in registration
    /// order.
    pub sessions: Vec<SessionReport>,
    /// The fold of every session's telemetry plus wall-clock throughput.
    pub aggregate: AggregateTelemetry,
}

impl RuntimeReport {
    /// Converts every session into the batch result type, in registration
    /// order.
    ///
    /// # Errors
    ///
    /// Returns the first session error encountered.
    pub fn into_ism_results(self) -> Result<Vec<IsmResult>, AsvError> {
        self.sessions
            .into_iter()
            .map(SessionReport::into_ism_result)
            .collect()
    }
}

impl Scheduler {
    /// Starts a scheduler with its worker pool running (idle until sessions
    /// get frames).
    pub fn new(config: SchedulerConfig) -> Self {
        let started = Instant::now();
        let shared = Arc::new(Shared {
            engine: Mutex::new(Engine {
                sessions: Vec::new(),
                cursor: 0,
                shutdown: false,
                in_flight: 0,
                failed: None,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            frames: Mutex::new(BufferPool::new()),
            started,
        });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            workers,
            inbox_capacity: config.inbox_capacity.max(1),
            shed_policy: config.shed_policy,
            started,
        }
    }

    /// Registers a new stream around a fresh ISM state (one per camera) and
    /// returns its producer handle.  Sessions may be added while the engine
    /// is serving.
    pub fn add_session(&self, state: IsmState) -> SessionHandle {
        self.add_session_labeled(state, None)
    }

    /// Registers a new stream with a per-session key-frame cost metric (the
    /// [`asv::CostMetric`] override takes effect from the stream's first key
    /// frame), leaving other streams on their own metrics.
    pub fn add_session_with_metric(
        &self,
        mut state: IsmState,
        metric: asv::CostMetric,
    ) -> SessionHandle {
        state.set_cost_metric(metric);
        self.add_session(state)
    }

    /// Registers a new stream carrying a human-readable label (e.g. the
    /// cluster routing key) that shows up in the session's final report.
    pub fn add_session_labeled(&self, state: IsmState, label: Option<String>) -> SessionHandle {
        self.register(state, label, None)
    }

    /// Registers a new stream under an SLO: the session gets a
    /// [`crate::qos::QosController`] that watches its end-to-end step
    /// latency and actuates the stream's ISM knobs (cost metric,
    /// propagation window, adaptive-motion threshold) when the SLO is
    /// violated, recovering with hysteresis when load drops.  The session's
    /// current knobs are snapshotted as the full-quality baseline.
    ///
    /// `ASV_QOS=off` disables the controller process-wide: the session is
    /// registered normally and never degrades.
    pub fn add_session_qos(
        &self,
        state: IsmState,
        label: Option<String>,
        qos: QosConfig,
    ) -> SessionHandle {
        let controller = qos_enabled_from_env().then(|| QosController::for_state(qos, &state));
        self.register(state, label, controller)
    }

    fn register(
        &self,
        state: IsmState,
        label: Option<String>,
        qos: Option<QosController>,
    ) -> SessionHandle {
        let mut engine = self.shared.lock();
        let id = SessionId(engine.sessions.len());
        let mut session = StreamSession::new(id, state, self.inbox_capacity, label).with_qos(qos);
        if let Some(context) = &engine.failed {
            // Registering on a failed shard yields a dead-on-arrival session
            // whose first submit reports the failure instead of queueing.
            session.error = Some(AsvError::shard_down(context.clone())); // lint: alloc-ok(session registration, once per stream)
        }
        engine.sessions.push(session);
        SessionHandle {
            shared: Arc::clone(&self.shared), // lint: alloc-ok(session registration, once per stream)
            id,
            shed_policy: self.shed_policy,
        }
    }

    /// Number of registered sessions.
    pub fn session_count(&self) -> usize {
        self.shared.lock().sessions.len()
    }

    /// Kills this shard: every session is marked dead with
    /// [`AsvError::ShardDown`], queued frames are dropped (and counted) and
    /// every future submit fails immediately.  Parked producers are woken so
    /// a lost shard never wedges a feeder.  This is both the fault-injection
    /// entry point of the failover sim and what the runtime itself invokes
    /// when it detects a poisoned engine lock.
    pub fn trip(&self, context: impl std::fmt::Display) {
        let mut engine = self.shared.lock();
        if engine.failed.is_some() {
            return;
        }
        let context = context.to_string();
        for slot in &mut engine.sessions {
            let dropped = slot.inbox.clear();
            slot.telemetry.frames_dropped += dropped as u64;
            if dropped > 0 {
                slot.telemetry.queue_depth.observe(0);
            }
            if slot.error.is_none() {
                slot.error = Some(AsvError::shard_down(context.clone()));
            }
        }
        engine.failed = Some(context);
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }

    /// Whether this shard has failed (tripped or poisoned).
    pub fn is_failed(&self) -> bool {
        self.shared.lock().failed.is_some()
    }

    /// Instantaneous load: frames queued in every inbox plus frames being
    /// processed right now.  The cluster's least-loaded placement reads
    /// this.
    pub fn load(&self) -> usize {
        let engine = self.shared.lock();
        engine.in_flight + engine.sessions.iter().map(|s| s.inbox.len()).sum::<usize>()
    }

    /// Whether every registered session's inbox is full (vacuously false
    /// with no sessions).  The cluster treats a saturated shard as
    /// unplaceable and falls back to the least-loaded shard.
    pub fn is_saturated(&self) -> bool {
        let engine = self.shared.lock();
        !engine.sessions.is_empty() && engine.sessions.iter().all(|s| s.inbox.is_full())
    }

    /// A live fold of every session's telemetry (scrape path): the same
    /// aggregate [`Scheduler::join`] returns, computed without shutting the
    /// engine down.
    pub fn telemetry_snapshot(&self) -> AggregateTelemetry {
        let engine = self.shared.lock();
        let mut aggregate = AggregateTelemetry::default();
        for (index, session) in engine.sessions.iter().enumerate() {
            aggregate.absorb_named(&session.telemetry, &session_name(&session.label, index));
        }
        aggregate.wall_seconds = self.started.elapsed().as_secs_f64();
        aggregate
    }

    /// Stops accepting submissions, drains every inbox, joins the worker
    /// pool and returns everything produced.
    ///
    /// Producers still blocked in [`SessionHandle::submit`] are woken and
    /// receive an error; call `join` after the feeders finished to process
    /// every frame.
    pub fn join(mut self) -> RuntimeReport {
        self.signal_shutdown();
        for handle in self.workers.drain(..) {
            handle.join().expect("runtime worker panicked");
        }
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let mut engine = self.shared.lock();
        let sessions: Vec<SessionReport> = engine
            .sessions
            .drain(..)
            .map(|mut s| {
                // With zero workers (manual mode) frames may still be
                // queued; they are discarded now and accounted for.
                let leftover = s.inbox.clear();
                s.telemetry.frames_dropped += leftover as u64;
                s.telemetry.queue_depth.observe(0);
                let id = s.id();
                SessionReport {
                    id,
                    label: s.label,
                    frames: s.results,
                    telemetry: s.telemetry,
                    error: s.error,
                }
            })
            .collect();
        drop(engine);
        let mut aggregate = AggregateTelemetry::default();
        for (index, session) in sessions.iter().enumerate() {
            aggregate.absorb_named(&session.telemetry, &session_name(&session.label, index));
        }
        aggregate.wall_seconds = wall_seconds;
        RuntimeReport {
            sessions,
            aggregate,
        }
    }

    fn signal_shutdown(&self) {
        let mut engine = self.shared.lock();
        engine.shutdown = true;
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }

    /// A detached observation handle for serving live telemetry (e.g. from
    /// the HTTP endpoint): it reads the engine without being able to submit,
    /// shut down or otherwise perturb it, and stays valid for the engine's
    /// lifetime (snapshots after [`Scheduler::join`] see zero sessions).
    pub fn observer(&self) -> SchedulerObserver {
        SchedulerObserver {
            shared: Arc::clone(&self.shared),
            started: self.started,
        }
    }
}

/// Read-only observation handle of one scheduler shard; cheap to clone and
/// `Send`, created by [`Scheduler::observer`].
#[derive(Debug, Clone)]
pub struct SchedulerObserver {
    shared: Arc<Shared>,
    started: Instant,
}

impl SchedulerObserver {
    /// Whether the observed shard has failed (tripped or poisoned).
    pub fn is_failed(&self) -> bool {
        self.shared.lock().failed.is_some()
    }

    /// Whether the observed shard is shutting down (its `join` has begun)
    /// or has already drained.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.lock().shutdown
    }

    /// A live fold of every session's telemetry, identical to
    /// [`Scheduler::telemetry_snapshot`].
    pub fn telemetry_snapshot(&self) -> AggregateTelemetry {
        let engine = self.shared.lock();
        let mut aggregate = AggregateTelemetry::default();
        for (index, session) in engine.sessions.iter().enumerate() {
            aggregate.absorb_named(&session.telemetry, &session_name(&session.label, index));
        }
        aggregate.wall_seconds = self.started.elapsed().as_secs_f64();
        aggregate
    }

    /// Appends every session's captured frame traces to a Chrome trace
    /// document: `pid` identifies this shard, one `tid` per session (named
    /// after the session label).  Ring mode contributes the retained ring
    /// plus any slow-frame forensics not already in it; full mode
    /// contributes the complete capture.  Sessions whose workspace is
    /// checked out by a worker mid-frame are skipped — the next scrape
    /// catches them.
    pub fn add_chrome_trace(&self, trace: &mut ChromeTrace, pid: u32) {
        let engine = self.shared.lock();
        for (index, session) in engine.sessions.iter().enumerate() {
            let Some(workspace) = session.resident_workspace() else {
                continue;
            };
            let tracer = &workspace.tracer;
            if tracer.frames_recorded() == 0 {
                continue;
            }
            let tid = index as u32;
            match &session.label {
                Some(label) => trace.add_thread_name(pid, tid, label),
                None => trace.add_thread_name(pid, tid, &format!("session-{index}")),
            }
            if tracer.config().mode == TraceMode::Full {
                for frame in tracer.full_frames() {
                    trace.add_frame(pid, tid, frame);
                }
            } else {
                let ring: Vec<u64> = tracer.frames().map(|f| f.frame_index).collect();
                for frame in tracer.frames() {
                    trace.add_frame(pid, tid, frame);
                }
                for frame in tracer.slow_frames() {
                    if !ring.contains(&frame.frame_index) {
                        trace.add_frame(pid, tid, frame);
                    }
                }
            }
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        // `join` drains `workers`; this path only runs when the scheduler is
        // dropped without joining (tests, panics) and must not leave worker
        // threads running.
        if !self.workers.is_empty() {
            self.signal_shutdown();
            for handle in self.workers.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl SessionHandle {
    /// The session this handle feeds.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Submits one stereo frame.  What happens when the session's inbox is
    /// full depends on the scheduler's [`ShedPolicy`]: `Block` parks the
    /// producer (the backpressure path), `Reject` fails with
    /// [`AsvError::Saturated`], and `DropOldest` displaces the oldest queued
    /// frame of this session.
    ///
    /// # Errors
    ///
    /// Returns the session's stored error if a previous frame failed,
    /// [`AsvError::ShardDown`] if the shard has failed,
    /// [`AsvError::Shutdown`] if the scheduler has been shut down, or
    /// [`AsvError::Saturated`] under the `Reject` policy when the inbox is
    /// full.  A frame that is not accepted is counted in the session's
    /// `frames_dropped` (failure/shutdown) or `frames_shed` (admission
    /// control) telemetry.
    pub fn submit(&self, left: Image, right: Image) -> Result<(), AsvError> {
        self.submit_recoverable(left, right)
            .map_err(|(error, _, _)| error)
    }

    /// [`SessionHandle::submit`] that hands the frame back on failure, so a
    /// supervisor can re-place the session on a surviving shard and resubmit
    /// the same planes without cloning them.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SessionHandle::submit`], with the rejected
    /// planes attached.
    #[allow(clippy::result_large_err)]
    pub fn submit_recoverable(
        &self,
        left: Image,
        right: Image,
    ) -> Result<(), (AsvError, Image, Image)> {
        let mut engine = self.shared.lock();
        loop {
            if let Some(context) = &engine.failed {
                let error = AsvError::shard_down(context.clone()); // lint: alloc-ok(error path)
                if let Some(slot) = engine.sessions.get_mut(self.id.0) {
                    slot.telemetry.frames_dropped += 1;
                }
                return Err((error, left, right));
            }
            if engine.shutdown {
                // The session table may already be drained by `join`.
                if let Some(slot) = engine.sessions.get_mut(self.id.0) {
                    slot.telemetry.frames_dropped += 1;
                }
                return Err((AsvError::Shutdown, left, right));
            }
            let slot = &mut engine.sessions[self.id.0];
            if let Some(error) = &slot.error {
                let error = error.clone(); // lint: alloc-ok(error path)
                slot.telemetry.frames_dropped += 1;
                return Err((error, left, right));
            }
            if slot.inbox.is_full() {
                match self.shed_policy {
                    ShedPolicy::Block => {
                        engine = self.shared.wait_on(&self.shared.space, engine);
                        continue;
                    }
                    ShedPolicy::Reject => {
                        slot.telemetry.frames_shed += 1;
                        return Err((
                            AsvError::saturated(format!("{} inbox", self.id)), // lint: alloc-ok(error path on shed)
                            left,
                            right,
                        ));
                    }
                    ShedPolicy::DropOldest => {
                        slot.inbox.pop();
                        slot.telemetry.frames_shed += 1;
                    }
                }
            }
            slot.telemetry.frames_submitted += 1;
            slot.inbox.push(QueuedFrame {
                left,
                right,
                queued_at: Instant::now(),
            });
            let depth = slot.inbox.len();
            slot.telemetry.queue_depth.observe(depth);
            self.shared.work.notify_all();
            return Ok(());
        }
    }

    /// Current inbox depth of the session (a point-in-time gauge; 0 after
    /// the scheduler was joined).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .lock()
            .sessions
            .get(self.id.0)
            .map_or(0, |s| s.inbox.len())
    }

    /// Releases the session's retained kernel scratch (hundreds of
    /// megabytes at qHD — see `asv::Workspace::retained_bytes`) if no
    /// worker is currently stepping a frame of this session.  Returns
    /// whether the trim ran; call it when a camera goes idle, the next
    /// frame re-warms the buffers.
    pub fn trim_workspace(&self) -> bool {
        self.shared
            .lock()
            .sessions
            .get_mut(self.id.0)
            // lint: lock-ok(this is Slot::trim_workspace on the already-
            // guarded entry, not SessionHandle::trim_workspace)
            .is_some_and(|s| s.trim_workspace())
    }

    /// Checks a `width x height` frame out of the scheduler's recycling
    /// pool: the plane of an already-processed frame when one of the right
    /// size is available (contents unspecified — overwrite every pixel), a
    /// fresh zeroed image otherwise.  Submitting recycled frames closes the
    /// ingest allocation loop under steady-state streaming.
    pub fn recycled_frame(&self, width: usize, height: usize) -> Image {
        let data = self
            .shared
            .frames
            .lock()
            .expect("frame recycling pool lock poisoned")
            .take_scratch(width * height);
        Image::from_vec(width, height, data).expect("pool buffer has exactly width * height pixels")
    }
}

/// The session name used in per-session exports: the registration label, or
/// the dense `session-{index}` fallback.
fn session_name(label: &Option<String>, index: usize) -> String {
    label.clone().unwrap_or_else(|| format!("session-{index}"))
}

/// Body of one worker thread: dispatch round-robin, step the frame outside
/// the lock, commit the result, repeat until drained.
fn worker_loop(shared: &Shared) {
    let mut engine = shared.lock();
    loop {
        if let Some((idx, frame, state, workspace)) = engine.dispatch_next() {
            engine.in_flight += 1;
            drop(engine);
            // A slot was freed: a producer blocked on this inbox can refill
            // it while we run the kernels.
            shared.space.notify_all();

            let waited = frame.queued_at.elapsed();
            let started = Instant::now();
            // The kernels run inside `catch_unwind` so a panicking stereo
            // step kills only its own session (state and workspace are lost,
            // the error is stored) instead of poisoning the engine lock and
            // taking the whole shard down with it.
            let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let mut state = state;
                let mut workspace = workspace;
                let outcome = state.step_with(&mut workspace, &frame.left, &frame.right);
                (state, workspace, frame, outcome)
            }));
            let service = started.elapsed();
            let (state, workspace, frame, outcome) = match step {
                Ok(parts) => parts,
                Err(panic) => {
                    let reason = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".to_owned());
                    engine = shared.lock();
                    engine.in_flight -= 1;
                    let slot = &mut engine.sessions[idx];
                    let dropped = slot.inbox.clear();
                    // The panicked frame plus everything queued behind it.
                    slot.telemetry.frames_dropped += dropped as u64 + 1;
                    slot.telemetry.queue_depth.observe(0);
                    if slot.error.is_none() {
                        slot.error =
                            Some(AsvError::config(format!("stereo step panicked: {reason}")));
                    }
                    shared.work.notify_all();
                    shared.space.notify_all();
                    continue;
                }
            };
            // Harvest the per-stage totals the frame tracer just recorded
            // (outside the lock; `None` while tracing is off).
            let stage_totals = workspace
                .tracer
                .last_frame()
                .map(|trace| trace.stage_totals());

            // Both planes of the stepped frame are recycled into the
            // scheduler-wide pool that producers drain through
            // `SessionHandle::recycled_frame`: a producer that checks out
            // two planes per frame gets both back, so the ingest loop runs
            // without fresh allocations.  The one steady-state allocation
            // left in the engine is the retained result map itself (results
            // accumulate until `join`, so their planes cannot be reused).
            {
                let mut frames = shared
                    .frames
                    .lock()
                    .expect("frame recycling pool lock poisoned");
                frames.put(frame.left.into_vec());
                frames.put(frame.right.into_vec());
            }

            engine = shared.lock();
            engine.in_flight -= 1;
            let slot = &mut engine.sessions[idx];
            slot.put_back(state, workspace);
            match outcome {
                Ok(result) => {
                    slot.telemetry.record_frame(result.kind, service, waited);
                    if let Some(totals) = stage_totals {
                        slot.telemetry.stage_latency.record_frame_totals(&totals);
                    }
                    slot.results.push(result);
                    // The session's QoS loop senses the frame's end-to-end
                    // step latency (queue wait + service) and may retune the
                    // just-returned ISM state before the next dispatch.
                    let completed_us = shared.started.elapsed().as_micros() as u64;
                    let step_us = (waited + service).as_micros() as u64;
                    slot.observe_qos(completed_us, step_us);
                }
                Err(error) => {
                    let dropped = slot.inbox.clear();
                    slot.telemetry.frames_dropped += dropped as u64;
                    slot.telemetry.queue_depth.observe(0);
                    // A trip may have stored `ShardDown` while this frame
                    // was mid-step; the first error wins.
                    if slot.error.is_none() {
                        slot.error = Some(error);
                    }
                }
            }
            // The session became dispatchable again (its state is back) and
            // its producer may have been waiting on either condvar.
            shared.work.notify_all();
            shared.space.notify_all();
        } else if engine.drained() {
            return;
        } else {
            engine = shared.wait_on(&shared.work, engine);
        }
    }
}
