//! The multi-session scheduler: a fixed worker pool multiplexing many
//! camera streams over bounded inboxes.
//!
//! # Execution model
//!
//! One [`Scheduler`] owns `N` OS worker threads (`std::thread`) and a table
//! of [`StreamSession`]s.  All shared state lives behind a single engine
//! mutex; the heavy per-frame kernel work (DNN surrogate, optical flow,
//! refinement) runs *outside* the lock, so the lock is only held for
//! queue/table bookkeeping that costs microseconds.
//!
//! # Ordering
//!
//! A session's ISM state is physically *taken out* of the table while a
//! worker steps one of its frames, so a session is never advanced by two
//! workers at once.  Combined with FIFO inboxes this guarantees that each
//! session's results appear in exactly the order its frames were submitted —
//! the property that makes streaming output byte-identical to batch
//! [`asv::IsmPipeline::process_sequence`].
//!
//! # Backpressure
//!
//! Every session has a bounded inbox ([`SchedulerConfig::inbox_capacity`]).
//! [`SessionHandle::submit`] blocks the producer on a condition variable
//! while its session's inbox is full and wakes when a worker drains a slot.
//! A slow consumer therefore throttles exactly its own producer — memory per
//! session is bounded by `inbox_capacity` frames — while other sessions keep
//! flowing.
//!
//! # Fairness
//!
//! Idle workers scan the session table round-robin from a shared rotating
//! cursor: after dispatching from session `i` the next scan starts at
//! `i + 1`, so a session that always has queued frames cannot starve the
//! others; with `S` backlogged sessions each gets every `S`-th dispatch.
//! There is no priority mechanism — streams are peers, as camera feeds
//! typically are.
//!
//! # Failure
//!
//! A frame that fails ([`asv::AsvError`]) poisons only its own session: the
//! error is stored, queued frames are dropped (counted in telemetry), and
//! later submits to that session return the error.  Other sessions are
//! unaffected.

use crate::queue::QueuedFrame;
use crate::session::{SessionId, SessionReport, StreamSession};
use crate::telemetry::AggregateTelemetry;
use asv::ism::{IsmResult, IsmState};
use asv::AsvError;
use asv_image::Image;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs of the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Worker threads in the pool (clamped to at least 1).
    pub workers: usize,
    /// Bounded inbox capacity per session, in frames (clamped to at least
    /// 1); producers block once their session's inbox is full.
    pub inbox_capacity: usize,
}

impl SchedulerConfig {
    /// A pool with one worker per available core and a small default inbox.
    pub fn per_core() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            inbox_capacity: 4,
        }
    }

    /// Returns the configuration with a different worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns the configuration with a different inbox capacity.
    pub fn with_inbox_capacity(mut self, capacity: usize) -> Self {
        self.inbox_capacity = capacity;
        self
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self::per_core()
    }
}

/// Mutable engine state shared by workers and producers.
#[derive(Debug)]
struct Engine {
    sessions: Vec<StreamSession>,
    /// Round-robin scan start for the next dispatch.
    cursor: usize,
    /// Set by [`Scheduler::join`] (and by drop): no new submissions are
    /// accepted, workers drain the inboxes and exit.
    shutdown: bool,
    /// Frames currently being processed outside the lock.
    in_flight: usize,
}

impl Engine {
    /// Picks the next (session, frame) pair round-robin and marks the
    /// session busy by taking its state out.
    fn dispatch_next(&mut self) -> Option<(usize, QueuedFrame, IsmState)> {
        let n = self.sessions.len();
        if n == 0 {
            return None;
        }
        for k in 0..n {
            let idx = (self.cursor + k) % n;
            if self.sessions[idx].dispatchable() {
                self.cursor = (idx + 1) % n;
                let slot = &mut self.sessions[idx];
                let frame = slot.inbox.pop().expect("dispatchable inbox is non-empty");
                slot.telemetry.queue_depth.observe(slot.inbox.len());
                let state = slot.take_state();
                return Some((idx, frame, state));
            }
        }
        None
    }

    /// Whether the workers may exit: shutdown requested, nothing queued and
    /// nothing mid-frame.
    fn drained(&self) -> bool {
        self.shutdown && self.in_flight == 0 && self.sessions.iter().all(|s| s.inbox.is_empty())
    }
}

/// Condvar-equipped shared engine.
#[derive(Debug)]
struct Shared {
    engine: Mutex<Engine>,
    /// Workers park here when no session is dispatchable.
    work: Condvar,
    /// Producers park here when their session's inbox is full.
    space: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Engine> {
        self.engine.lock().expect("runtime engine lock poisoned")
    }
}

/// The streaming frame-serving engine: a fixed worker pool serving many
/// [`StreamSession`]s concurrently with bounded memory.
///
/// See the module documentation for the scheduling, backpressure and
/// fairness model.
#[derive(Debug)]
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    inbox_capacity: usize,
    started: Instant,
}

/// Producer-side handle of one registered session; cheap to clone and
/// `Send`, so a camera/feeder thread can own one.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    shared: Arc<Shared>,
    id: SessionId,
}

/// Everything the engine produced, returned by [`Scheduler::join`].
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Per-session reports, indexed by [`SessionId::index`] in registration
    /// order.
    pub sessions: Vec<SessionReport>,
    /// The fold of every session's telemetry plus wall-clock throughput.
    pub aggregate: AggregateTelemetry,
}

impl RuntimeReport {
    /// Converts every session into the batch result type, in registration
    /// order.
    ///
    /// # Errors
    ///
    /// Returns the first session error encountered.
    pub fn into_ism_results(self) -> Result<Vec<IsmResult>, AsvError> {
        self.sessions
            .into_iter()
            .map(SessionReport::into_ism_result)
            .collect()
    }
}

impl Scheduler {
    /// Starts a scheduler with its worker pool running (idle until sessions
    /// get frames).
    pub fn new(config: SchedulerConfig) -> Self {
        let shared = Arc::new(Shared {
            engine: Mutex::new(Engine {
                sessions: Vec::new(),
                cursor: 0,
                shutdown: false,
                in_flight: 0,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            workers,
            inbox_capacity: config.inbox_capacity.max(1),
            started: Instant::now(),
        }
    }

    /// Registers a new stream around a fresh ISM state (one per camera) and
    /// returns its producer handle.  Sessions may be added while the engine
    /// is serving.
    pub fn add_session(&self, state: IsmState) -> SessionHandle {
        let mut engine = self.shared.lock();
        let id = SessionId(engine.sessions.len());
        engine
            .sessions
            .push(StreamSession::new(id, state, self.inbox_capacity));
        SessionHandle {
            shared: Arc::clone(&self.shared),
            id,
        }
    }

    /// Number of registered sessions.
    pub fn session_count(&self) -> usize {
        self.shared.lock().sessions.len()
    }

    /// Stops accepting submissions, drains every inbox, joins the worker
    /// pool and returns everything produced.
    ///
    /// Producers still blocked in [`SessionHandle::submit`] are woken and
    /// receive an error; call `join` after the feeders finished to process
    /// every frame.
    pub fn join(mut self) -> RuntimeReport {
        self.signal_shutdown();
        for handle in self.workers.drain(..) {
            handle.join().expect("runtime worker panicked");
        }
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let mut engine = self.shared.lock();
        let sessions: Vec<SessionReport> = engine
            .sessions
            .drain(..)
            .map(|s| {
                let id = s.id();
                SessionReport {
                    id,
                    frames: s.results,
                    telemetry: s.telemetry,
                    error: s.error,
                }
            })
            .collect();
        drop(engine);
        let mut aggregate = AggregateTelemetry::default();
        for session in &sessions {
            aggregate.absorb(&session.telemetry);
        }
        aggregate.wall_seconds = wall_seconds;
        RuntimeReport {
            sessions,
            aggregate,
        }
    }

    fn signal_shutdown(&self) {
        let mut engine = self.shared.lock();
        engine.shutdown = true;
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        // `join` drains `workers`; this path only runs when the scheduler is
        // dropped without joining (tests, panics) and must not leave worker
        // threads running.
        if !self.workers.is_empty() {
            self.signal_shutdown();
            for handle in self.workers.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl SessionHandle {
    /// The session this handle feeds.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Submits one stereo frame, blocking while the session's inbox is full
    /// (the backpressure path).
    ///
    /// # Errors
    ///
    /// Returns the session's stored error if a previous frame failed, or a
    /// configuration error if the scheduler has been shut down.  In both
    /// cases the submitted frame is dropped and counted in the session's
    /// `frames_dropped` telemetry.
    pub fn submit(&self, left: Image, right: Image) -> Result<(), AsvError> {
        let mut engine = self.shared.lock();
        loop {
            if engine.shutdown {
                // The session table may already be drained by `join`.
                if let Some(slot) = engine.sessions.get_mut(self.id.0) {
                    slot.telemetry.frames_dropped += 1;
                }
                return Err(AsvError::config("scheduler is shut down"));
            }
            let slot = &mut engine.sessions[self.id.0];
            if let Some(error) = &slot.error {
                let error = error.clone();
                slot.telemetry.frames_dropped += 1;
                return Err(error);
            }
            if !slot.inbox.is_full() {
                slot.telemetry.frames_submitted += 1;
                slot.inbox.push(QueuedFrame {
                    left,
                    right,
                    queued_at: Instant::now(),
                });
                let depth = slot.inbox.len();
                slot.telemetry.queue_depth.observe(depth);
                self.shared.work.notify_all();
                return Ok(());
            }
            engine = self
                .shared
                .space
                .wait(engine)
                .expect("runtime engine lock poisoned");
        }
    }

    /// Current inbox depth of the session (a point-in-time gauge; 0 after
    /// the scheduler was joined).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .lock()
            .sessions
            .get(self.id.0)
            .map_or(0, |s| s.inbox.len())
    }
}

/// Body of one worker thread: dispatch round-robin, step the frame outside
/// the lock, commit the result, repeat until drained.
fn worker_loop(shared: &Shared) {
    let mut engine = shared.lock();
    loop {
        if let Some((idx, frame, mut state)) = engine.dispatch_next() {
            engine.in_flight += 1;
            drop(engine);
            // A slot was freed: a producer blocked on this inbox can refill
            // it while we run the kernels.
            shared.space.notify_all();

            let waited = frame.queued_at.elapsed();
            let started = Instant::now();
            let outcome = state.step(&frame.left, &frame.right);
            let service = started.elapsed();

            engine = shared.lock();
            engine.in_flight -= 1;
            let slot = &mut engine.sessions[idx];
            slot.put_back(state);
            match outcome {
                Ok(result) => {
                    slot.telemetry.record_frame(result.kind, service, waited);
                    slot.results.push(result);
                }
                Err(error) => {
                    let dropped = slot.inbox.clear();
                    slot.telemetry.frames_dropped += dropped as u64;
                    slot.telemetry.queue_depth.observe(0);
                    slot.error = Some(error);
                }
            }
            // The session became dispatchable again (its state is back) and
            // its producer may have been waiting on either condvar.
            shared.work.notify_all();
            shared.space.notify_all();
        } else if engine.drained() {
            return;
        } else {
            engine = shared
                .work
                .wait(engine)
                .expect("runtime engine lock poisoned");
        }
    }
}
