//! Stream sessions: one camera stream = one incremental ISM state plus its
//! inbox, accumulated results and telemetry.

use crate::qos::QosController;
use crate::queue::Inbox;
use crate::telemetry::SessionTelemetry;
use asv::ism::{FrameResult, IsmResult, IsmState};
use asv::{AsvError, Workspace};

/// Identifier of one stream session within a scheduler, assigned densely in
/// registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub(crate) usize);

impl SessionId {
    /// The dense index of the session (also its position in the scheduler's
    /// session table and final report).
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// One camera stream being served: the carried ISM state, the bounded inbox
/// of frames waiting for a worker, the results produced so far and the
/// session's telemetry.
///
/// Sessions are owned by the scheduler and mutated only under its engine
/// lock; the ISM state is temporarily *taken out* by the worker processing a
/// frame, which both releases the lock during the heavy kernel work and
/// guarantees at most one worker ever advances a given stream (preserving
/// per-session frame ordering).
#[derive(Debug)]
pub struct StreamSession {
    id: SessionId,
    /// Optional human-readable label (the cluster routing key), carried
    /// into the final [`SessionReport`] and the Prometheus export.
    pub(crate) label: Option<String>,
    /// `None` exactly while a worker is stepping this session's frame.
    state: Option<IsmState>,
    /// The session's reusable kernel scratch, taken out together with the
    /// state.  Owning one per session keeps the steady state of every
    /// stream allocation-free and keeps concurrent sessions off the global
    /// allocator.
    workspace: Option<Workspace>,
    pub(crate) inbox: Inbox,
    pub(crate) results: Vec<FrameResult>,
    pub(crate) telemetry: SessionTelemetry,
    pub(crate) error: Option<AsvError>,
    /// The session's adaptive QoS loop, present only when the session was
    /// registered with an SLO (and QoS is not disabled via `ASV_QOS`).
    pub(crate) qos: Option<QosController>,
}

impl StreamSession {
    /// Creates a session around a fresh ISM state.
    pub(crate) fn new(
        id: SessionId,
        state: IsmState,
        inbox_capacity: usize,
        label: Option<String>,
    ) -> Self {
        Self {
            id,
            label,
            state: Some(state),
            workspace: Some(Workspace::new()),
            inbox: Inbox::new(inbox_capacity),
            results: Vec::new(), // lint: alloc-ok(session construction, once per stream)
            telemetry: SessionTelemetry::default(),
            error: None,
            qos: None,
        }
    }

    /// Attaches a QoS controller to a freshly created session.
    pub(crate) fn with_qos(mut self, qos: Option<QosController>) -> Self {
        if let Some(controller) = &qos {
            self.telemetry.qos = controller.telemetry();
        }
        self.qos = qos;
        self
    }

    /// Feeds one completed frame into the session's QoS loop (a no-op for
    /// sessions without one) and applies any resulting knob change to the
    /// resident ISM state.  Called under the engine lock right after
    /// [`StreamSession::put_back`], so the state is guaranteed resident.
    pub(crate) fn observe_qos(&mut self, completed_us: u64, step_us: u64) {
        let Some(controller) = &mut self.qos else {
            return;
        };
        if controller.observe_step(completed_us, step_us).is_some() {
            let knobs = controller.knobs();
            let state = self
                .state
                .as_mut()
                .expect("state resident when observing qos");
            knobs.apply(state);
        }
        self.telemetry.qos = controller.telemetry();
    }

    /// The session identifier.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Whether the session can be dispatched right now: it has a queued
    /// frame, its state is resident (no worker is mid-frame) and it has not
    /// failed.
    pub(crate) fn dispatchable(&self) -> bool {
        self.state.is_some() && !self.inbox.is_empty() && self.error.is_none()
    }

    /// Takes the ISM state and the session's workspace out for processing
    /// (the session shows as busy until [`StreamSession::put_back`]).
    pub(crate) fn take_work(&mut self) -> (IsmState, Workspace) {
        (
            self.state.take().expect("session state already taken"),
            self.workspace
                .take()
                .expect("session workspace already taken"),
        )
    }

    /// Returns the ISM state and workspace after a worker finished its
    /// frame.
    pub(crate) fn put_back(&mut self, state: IsmState, workspace: Workspace) {
        debug_assert!(self.state.is_none(), "session state returned twice");
        self.state = Some(state);
        self.workspace = Some(workspace);
    }

    /// The session's workspace, when resident (`None` while a worker is
    /// mid-frame with it).  The trace endpoint reads the tracer's captured
    /// frames through this without blocking the worker.
    pub(crate) fn resident_workspace(&self) -> Option<&Workspace> {
        self.workspace.as_ref()
    }

    /// Releases the workspace's retained kernel scratch if it is resident
    /// (not taken by a worker right now).  Returns whether the trim ran.
    pub(crate) fn trim_workspace(&mut self) -> bool {
        match &mut self.workspace {
            Some(ws) => {
                ws.trim();
                true
            }
            None => false,
        }
    }
}

/// Everything one session produced, extracted when the scheduler shuts
/// down.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The session identifier.
    pub id: SessionId,
    /// The label the session was registered under (e.g. the cluster routing
    /// key), if any.
    pub label: Option<String>,
    /// Per-frame results in submission order.
    pub frames: Vec<FrameResult>,
    /// The session's telemetry.
    pub telemetry: SessionTelemetry,
    /// The first error the session hit, if any (frames submitted after it
    /// were dropped and counted in `telemetry.frames_dropped`).
    pub error: Option<AsvError>,
}

impl SessionReport {
    /// Converts the report into the batch-pipeline result type, surfacing
    /// the session error if one occurred.
    ///
    /// # Errors
    ///
    /// Returns the session's stored [`AsvError`] when the stream failed
    /// mid-flight.
    pub fn into_ism_result(self) -> Result<IsmResult, AsvError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(IsmResult {
                frames: self.frames,
            }),
        }
    }
}
