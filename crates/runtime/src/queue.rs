//! The bounded per-session inbox.
//!
//! An [`Inbox`] is a plain bounded FIFO of undecoded stereo frames.  It does
//! no locking of its own: every inbox lives inside the scheduler's single
//! engine lock, and *backpressure* is implemented by the scheduler refusing
//! to enqueue into a full inbox and parking the producer on a condition
//! variable until a worker drains a slot (see `crate::scheduler`).

use asv_image::Image;
use std::collections::VecDeque;
use std::time::Instant;

/// One stereo frame waiting in a session's inbox.
#[derive(Debug, Clone)]
pub(crate) struct QueuedFrame {
    /// Left (reference) camera image.
    pub left: Image,
    /// Right (matching) camera image.
    pub right: Image,
    /// When the frame was accepted into the inbox (for queue-wait
    /// telemetry).
    pub queued_at: Instant,
}

/// A bounded FIFO of frames awaiting processing.
#[derive(Debug)]
pub(crate) struct Inbox {
    frames: VecDeque<QueuedFrame>,
    capacity: usize,
}

impl Inbox {
    /// Creates an empty inbox holding at most `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        Self {
            frames: VecDeque::with_capacity(capacity), // lint: alloc-ok(inbox construction, once per session)
            capacity: capacity.max(1),
        }
    }

    /// Number of queued frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frame is queued.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether the inbox has reached its capacity.
    pub fn is_full(&self) -> bool {
        self.frames.len() >= self.capacity
    }

    /// Enqueues a frame; the caller must have checked [`Inbox::is_full`]
    /// under the engine lock (enforced here in debug builds).
    pub fn push(&mut self, frame: QueuedFrame) {
        debug_assert!(!self.is_full(), "push into a full inbox");
        self.frames.push_back(frame);
    }

    /// Dequeues the oldest frame.
    pub fn pop(&mut self) -> Option<QueuedFrame> {
        self.frames.pop_front()
    }

    /// Discards every queued frame, returning how many were dropped.
    pub fn clear(&mut self) -> usize {
        let dropped = self.frames.len();
        self.frames.clear();
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> QueuedFrame {
        QueuedFrame {
            left: Image::zeros(2, 2),
            right: Image::zeros(2, 2),
            queued_at: Instant::now(),
        }
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut inbox = Inbox::new(2);
        assert!(inbox.is_empty());
        inbox.push(frame());
        inbox.push(frame());
        assert!(inbox.is_full());
        assert_eq!(inbox.len(), 2);
        assert!(inbox.pop().is_some());
        assert!(!inbox.is_full());
        assert_eq!(inbox.clear(), 1);
        assert!(inbox.pop().is_none());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut inbox = Inbox::new(0);
        inbox.push(frame());
        assert!(inbox.is_full());
    }
}
