//! Shard-failure supervision: detect a dead shard, re-place its sessions,
//! re-key their streams.
//!
//! # The failure model
//!
//! A shard [`crate::Scheduler`] dies in one of two ways: a worker panics
//! while holding the engine lock (poisoning it), or an operator/fault
//! injector trips it explicitly ([`crate::Cluster::trip_shard`]).  Either
//! way every session on the shard starts failing submits with
//! [`AsvError::ShardDown`] and its queued frames are dropped — the shard
//! never recovers.
//!
//! # Re-placement and re-keying
//!
//! The [`Supervisor`] owns the reaction.  On the first `ShardDown` a
//! session's submit reports (or proactively via [`Supervisor::check`]), it
//!
//! 1. asks the cluster for a new home via the *failure-aware* consistent
//!    hash walk ([`crate::Cluster::add_session_live`]), so re-placement is
//!    deterministic and skips every failed shard;
//! 2. registers the session there with a **fresh** [`IsmState`] from the
//!    supervisor's state factory — the next frame is necessarily a key
//!    frame, so the stream's output re-converges with batch processing from
//!    the re-key point onward (carried temporal state died with the shard
//!    and must not be guessed at);
//! 3. bumps the source shard's `asv_sessions_migrated_total` counter and
//!    appends a [`MigrationRecord`] for the harness to audit;
//! 4. re-delivers the frame whose submit observed the failure, so the
//!    producer never sees the migration — only a [`Delivery::Migrated`]
//!    receipt.
//!
//! Frames that were queued on the dead shard are lost (counted in its
//! `asv_frames_dropped_total`); the determinism contract is byte-identical
//! output *from the re-key point*, which `crates/runtime/src/sim.rs` locks
//! down under seeded fault injection.

use crate::cluster::{Cluster, ClusterSessionHandle};
use crate::ingest::{Ingest, IngestConfig, IngestStats, RouteHandle};
use crate::net::FrameSink;
use asv::ism::IsmState;
use asv::AsvError;
use asv_image::Image;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Builds the fresh per-session [`IsmState`] a re-keyed (or brand-new)
/// session starts from; the key is passed so heterogeneous fleets can vary
/// configuration per stream.
pub type StateFactory = Box<dyn Fn(&str) -> IsmState + Send + Sync>;

/// What [`Supervisor::submit`] did with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered to the session's current shard.
    Delivered,
    /// The session's shard had failed: the session was re-placed and
    /// re-keyed, and this frame was delivered as the first (key) frame of
    /// its new incarnation.
    Migrated {
        /// Shard the session left.
        from: usize,
        /// Shard now serving the session.
        to: usize,
    },
}

/// One audited session re-placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationRecord {
    /// The session's routing key.
    pub key: String,
    /// Shard the session left.
    pub from: usize,
    /// Shard now serving the session.
    pub to: usize,
}

/// One supervised session: its current cluster placement and, in ingest
/// mode, the front-end route feeding it.
#[derive(Debug, Clone)]
struct Entry {
    handle: ClusterSessionHandle,
    route: Option<RouteHandle>,
}

/// The shard-failure supervisor: routes frames to their sessions' shards
/// and reacts to [`AsvError::ShardDown`] by re-placing the session on a
/// surviving shard with a fresh (re-keyed) state.
///
/// Two delivery modes:
///
/// * [`Supervisor::new`] submits straight into the shard schedulers —
///   synchronous backpressure, synchronous failure detection (the mode the
///   deterministic failover sim uses);
/// * [`Supervisor::with_ingest`] routes through an owned [`Ingest`]
///   front-end — producers decouple from shard backpressure, failures are
///   detected on the next submit after a forwarder hits the dead shard.
///
/// The supervisor is the natural [`FrameSink`] for a [`crate::FrameServer`]:
/// frames arriving over TCP land on live shards even while shards die.
pub struct Supervisor {
    cluster: Arc<Cluster>,
    make_state: StateFactory,
    ingest: Option<Ingest>,
    sessions: Mutex<HashMap<String, Entry>>,
    migrations: Mutex<Vec<MigrationRecord>>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("cluster", &self.cluster)
            .field("ingest", &self.ingest)
            .field("migrations", &self.migrations)
            .finish_non_exhaustive()
    }
}

impl Supervisor {
    /// A supervisor submitting straight into the shard schedulers.
    pub fn new(
        cluster: Arc<Cluster>,
        make_state: impl Fn(&str) -> IsmState + Send + Sync + 'static,
    ) -> Self {
        Self {
            cluster,
            make_state: Box::new(make_state),
            ingest: None,
            sessions: Mutex::new(HashMap::new()),
            migrations: Mutex::new(Vec::new()),
        }
    }

    /// A supervisor routing every frame through an owned [`Ingest`]
    /// front-end (admission control + forwarder threads) before the shards.
    pub fn with_ingest(
        cluster: Arc<Cluster>,
        config: IngestConfig,
        make_state: impl Fn(&str) -> IsmState + Send + Sync + 'static,
    ) -> Self {
        Self {
            ingest: Some(Ingest::new(config)),
            ..Self::new(cluster, make_state)
        }
    }

    fn lock_sessions(&self) -> MutexGuard<'_, HashMap<String, Entry>> {
        self.sessions
            .lock()
            .expect("supervisor session table lock poisoned")
    }

    /// The session's current target, creating (and placing) it on first
    /// use.
    ///
    /// # Errors
    ///
    /// [`AsvError::ShardDown`] when a new session cannot be placed because
    /// every shard has failed.
    fn target(&self, key: &str) -> Result<Entry, AsvError> {
        let mut sessions = self.lock_sessions();
        if let Some(entry) = sessions.get(key) {
            return Ok(entry.clone()); // lint: alloc-ok(per-frame Entry clone: short key + Arc bumps, keeps the session lock narrow)
        }
        let handle = self.cluster.add_session_live(key, (self.make_state)(key))?;
        let route = self
            .ingest
            .as_ref()
            .map(|ingest| ingest.register(handle.handle().clone())); // lint: alloc-ok(once per new session)
        let entry = Entry { handle, route };
        sessions.insert(key.to_owned(), entry.clone()); // lint: alloc-ok(once per new session)
        Ok(entry)
    }

    /// Re-places `key` away from failed shard `from`: fresh state (re-key),
    /// failure-aware placement, audit trail.  Returns the new shard.  When
    /// another thread already migrated the session off `from`, returns the
    /// existing placement instead of migrating twice.
    fn replace(&self, key: &str, from: usize) -> Result<usize, AsvError> {
        let mut sessions = self.lock_sessions();
        if let Some(entry) = sessions.get(key) {
            if entry.handle.shard() != from {
                return Ok(entry.handle.shard());
            }
        }
        let handle = self.cluster.add_session_live(key, (self.make_state)(key))?;
        let to = handle.shard();
        let route = self
            .ingest
            .as_ref()
            .map(|ingest| ingest.register(handle.handle().clone())); // lint: alloc-ok(failover re-placement path)
        sessions.insert(key.to_owned(), Entry { handle, route }); // lint: alloc-ok(failover re-placement path)
        drop(sessions);
        self.cluster.record_migration(from);
        self.migrations
            .lock()
            .expect("supervisor migration log lock poisoned")
            .push(MigrationRecord {
                key: key.to_owned(), // lint: alloc-ok(failover re-placement path)
                from,
                to,
            });
        Ok(to)
    }

    /// Delivers one stereo frame to `key`'s session, creating the session
    /// on first use and migrating it to a surviving shard if its current
    /// shard has failed.  The frame that observes a failure is re-delivered
    /// to the new placement, so no accepted frame is ever lost to a
    /// migration.
    ///
    /// # Errors
    ///
    /// [`AsvError::ShardDown`] when every shard has failed; otherwise the
    /// underlying submit error (e.g. [`AsvError::Saturated`] under a
    /// `Reject` shed policy, or a stored per-session failure).
    pub fn submit(&self, key: &str, left: Image, right: Image) -> Result<Delivery, AsvError> {
        let mut frame = (left, right);
        let mut migrated: Option<(usize, usize)> = None;
        // Each failed attempt removes a shard from the live set, so one
        // attempt per shard (plus the first) always terminates.
        for _ in 0..=self.cluster.shard_count() {
            let entry = self.target(key)?;
            let (left, right) = frame;
            let outcome = match &entry.route {
                Some(route) => route.submit_recoverable(left, right),
                None => entry.handle.handle().submit_recoverable(left, right),
            };
            match outcome {
                Ok(()) => {
                    return Ok(match migrated {
                        Some((from, to)) => Delivery::Migrated { from, to },
                        None => Delivery::Delivered,
                    });
                }
                Err((AsvError::ShardDown { .. }, left, right)) => {
                    frame = (left, right);
                    let from = entry.handle.shard();
                    let to = self.replace(key, from)?;
                    migrated = Some((migrated.map_or(from, |(first, _)| first), to));
                }
                Err((error, _, _)) => return Err(error),
            }
        }
        // lint: alloc-ok(error path; no shard survived)
        Err(AsvError::shard_down(format!(
            "session {key}: no surviving shard accepted the frame"
        )))
    }

    /// Proactive failure sweep: migrates every supervised session whose
    /// shard has failed, without waiting for its next frame.  Returns the
    /// number of sessions moved.
    ///
    /// # Errors
    ///
    /// [`AsvError::ShardDown`] when a session cannot be re-placed because
    /// every shard has failed.
    pub fn check(&self) -> Result<usize, AsvError> {
        let stranded: Vec<(String, usize)> = {
            let sessions = self.lock_sessions();
            sessions
                .iter()
                .filter(|(_, entry)| self.cluster.shard_is_failed(entry.handle.shard()))
                .map(|(key, entry)| (key.clone(), entry.handle.shard()))
                .collect()
        };
        let moved = stranded.len();
        for (key, from) in stranded {
            self.replace(&key, from)?;
        }
        Ok(moved)
    }

    /// The shard currently serving `key`, if the session exists.
    pub fn session_shard(&self, key: &str) -> Option<usize> {
        self.lock_sessions().get(key).map(|e| e.handle.shard())
    }

    /// Every migration performed so far, in order.
    pub fn migrations(&self) -> Vec<MigrationRecord> {
        self.migrations
            .lock()
            .expect("supervisor migration log lock poisoned")
            .clone()
    }

    /// Shuts the supervisor down: drains and joins the owned ingest
    /// front-end (if any) so every buffered frame reaches its shard, and
    /// drops all session handles.  Call before joining the cluster.
    pub fn finish(self) -> Option<IngestStats> {
        self.lock_sessions().clear();
        self.ingest.map(Ingest::join)
    }
}

impl FrameSink for Supervisor {
    fn deliver(&self, key: &str, _seq: u64, left: Image, right: Image) -> Result<(), AsvError> {
        self.submit(key, left, right).map(|_| ())
    }

    fn recycled_frame(&self, key: &str, width: usize, height: usize) -> Image {
        let entry = self.lock_sessions().get(key).cloned();
        match entry {
            Some(Entry {
                route: Some(route), ..
            }) => route.recycled_frame(width, height),
            Some(Entry { handle, .. }) => handle.handle().recycled_frame(width, height),
            None => Image::zeros(width, height),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::scheduler::SchedulerConfig;
    use asv::ism::{IsmConfig, IsmPipeline};
    use asv_dnn::{zoo, SurrogateParams, SurrogateStereoDnn};
    use asv_scene::{SceneConfig, StereoSequence};
    use asv_stereo::block_matching::BlockMatchParams;

    fn pipeline() -> IsmPipeline {
        let config = IsmConfig {
            propagation_window: 2,
            refine: BlockMatchParams {
                max_disparity: 16,
                refine_radius: 2,
                ..Default::default()
            },
            surrogate: SurrogateParams {
                max_disparity: 16,
                ..Default::default()
            },
            ..Default::default()
        };
        IsmPipeline::new(
            config,
            SurrogateStereoDnn::new(zoo::dispnet(24, 32), config.surrogate),
        )
    }

    fn small_cluster(shards: usize) -> Arc<Cluster> {
        Arc::new(Cluster::new(
            ClusterConfig::new(shards)
                .with_shard_config(SchedulerConfig::per_core().with_workers(1)),
        ))
    }

    #[test]
    fn first_submit_creates_the_session() {
        let cluster = small_cluster(2);
        let pipeline = pipeline();
        let supervisor = Supervisor::new(Arc::clone(&cluster), move |_| pipeline.state());
        let scene = SceneConfig::scene_flow_like(32, 24).with_seed(7);
        let seq = StereoSequence::generate(&scene, 1);
        let frame = &seq.frames()[0];
        let delivery = supervisor
            .submit("cam-0", frame.left.clone(), frame.right.clone())
            .expect("submit");
        assert_eq!(delivery, Delivery::Delivered);
        assert!(supervisor.session_shard("cam-0").is_some());
        assert!(supervisor.migrations().is_empty());
    }

    #[test]
    fn shard_failure_migrates_and_redelivers() {
        let cluster = small_cluster(2);
        let pipeline = pipeline();
        let supervisor = Supervisor::new(Arc::clone(&cluster), move |_| pipeline.state());
        let scene = SceneConfig::scene_flow_like(32, 24).with_seed(11);
        let seq = StereoSequence::generate(&scene, 2);
        let frames = seq.frames();
        supervisor
            .submit("cam-0", frames[0].left.clone(), frames[0].right.clone())
            .expect("first submit");
        let from = supervisor.session_shard("cam-0").expect("placed");
        cluster.trip_shard(from, "test kill");
        let delivery = supervisor
            .submit("cam-0", frames[1].left.clone(), frames[1].right.clone())
            .expect("submit after kill");
        let to = supervisor.session_shard("cam-0").expect("still placed");
        assert_eq!(delivery, Delivery::Migrated { from, to });
        assert_ne!(from, to, "re-placement must leave the dead shard");
        assert_eq!(
            supervisor.migrations(),
            vec![MigrationRecord {
                key: "cam-0".into(),
                from,
                to
            }]
        );
    }

    #[test]
    fn total_cluster_failure_is_an_error_not_a_hang() {
        let cluster = small_cluster(1);
        let pipeline = pipeline();
        let supervisor = Supervisor::new(Arc::clone(&cluster), move |_| pipeline.state());
        cluster.trip_shard(0, "test kill");
        let scene = SceneConfig::scene_flow_like(32, 24).with_seed(3);
        let seq = StereoSequence::generate(&scene, 1);
        let frame = &seq.frames()[0];
        let error = supervisor
            .submit("cam-0", frame.left.clone(), frame.right.clone())
            .expect_err("no shard can serve");
        assert!(matches!(error, AsvError::ShardDown { .. }), "{error}");
    }
}
