//! A dependency-free HTTP observability endpoint over
//! [`std::net::TcpListener`].
//!
//! [`MetricsServer`] serves three read-only routes from any
//! [`HttpMetricsSource`] (typically a [`ClusterObserver`] or a single
//! [`SchedulerObserver`](crate::SchedulerObserver)):
//!
//! | Route          | Body                                                   |
//! |----------------|--------------------------------------------------------|
//! | `GET /metrics` | Prometheus text format (`text/plain; version=0.0.4`)   |
//! | `GET /trace`   | Chrome trace-event JSON (load in `chrome://tracing`)   |
//! | `GET /healthz` | `ok` with status 200, or 503 when the source is down   |
//!
//! The implementation is deliberately minimal — blocking accept loop on one
//! thread, one request per connection, `Connection: close` — because a
//! scrape every few seconds is the entire expected load.  It exists so the
//! runtime can be observed *live* without adding an HTTP framework
//! dependency (the build environment is offline; see `shims/README.md`).
//!
//! [`ClusterObserver`]: crate::ClusterObserver

use crate::cluster::ClusterObserver;
use crate::scheduler::SchedulerObserver;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection may dribble its request before being dropped;
/// protects the single accept thread from a stalled client.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Pause after a failed `accept()` before retrying.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(50);

/// What the endpoint serves.  Implemented by the cluster and scheduler
/// observers; implement it yourself to serve any other telemetry source.
pub trait HttpMetricsSource: Send + Sync {
    /// The `/metrics` body (Prometheus text format).
    fn metrics(&self) -> String;

    /// The `/trace` body (Chrome trace-event JSON).
    fn trace_json(&self) -> String;

    /// Whether `/healthz` should answer 200 (the default) or 503.
    fn healthy(&self) -> bool {
        true
    }
}

impl HttpMetricsSource for ClusterObserver {
    fn metrics(&self) -> String {
        self.render_prometheus()
    }

    fn trace_json(&self) -> String {
        self.chrome_trace_json()
    }

    /// Healthy while the cluster is serving: once it begins draining
    /// ([`crate::Cluster::begin_drain`] or `join`) or every shard has
    /// failed, `/healthz` flips to 503 so load balancers stop routing —
    /// `/metrics` keeps answering throughout the drain.
    fn healthy(&self) -> bool {
        !self.is_draining() && self.live_shard_count() > 0
    }
}

impl HttpMetricsSource for SchedulerObserver {
    fn metrics(&self) -> String {
        crate::export::render_prometheus(&[self.telemetry_snapshot()])
    }

    fn trace_json(&self) -> String {
        let mut trace = asv::trace::chrome::ChromeTrace::new();
        trace.add_process_name(0, "shard-0");
        self.add_chrome_trace(&mut trace, 0);
        trace.finish()
    }

    /// Healthy until the shard fails or begins shutting down.
    fn healthy(&self) -> bool {
        !self.is_shutting_down() && !self.is_failed()
    }
}

/// The live observability endpoint: binds a TCP listener and serves
/// `/metrics`, `/trace` and `/healthz` from a background thread until
/// dropped or [`MetricsServer::shutdown`].
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (use port 0 for an ephemeral port, then read
    /// [`MetricsServer::local_addr`]) and starts serving `source`.
    ///
    /// # Errors
    ///
    /// Returns the bind error (e.g. the port is taken or privileged).
    pub fn serve(
        addr: impl ToSocketAddrs,
        source: Arc<dyn HttpMetricsSource>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stop_flag.load(Ordering::Acquire) {
                            break;
                        }
                        // Serve inline: scrape traffic is one request every
                        // few seconds, and a stalled client is cut off by
                        // the read timeout.
                        handle_connection(stream, source.as_ref());
                    }
                    Err(_) => {
                        if stop_flag.load(Ordering::Acquire) {
                            break;
                        }
                        // A persistent accept failure (EMFILE, ENFILE, ...)
                        // would otherwise busy-spin this thread at 100% CPU;
                        // transient per-connection errors (ECONNABORTED) just
                        // pay one tick.
                        std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                    }
                }
            }
        });
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The accept loop is parked in `accept`; a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Reads one request, routes it and writes one response.  All I/O errors
/// are swallowed: a client that hangs up mid-request costs nothing.
fn handle_connection(stream: TcpStream, source: &dyn HttpMetricsSource) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    match reader.read_line(&mut request_line) {
        // EOF before any request line — the shutdown wake-up connect, port
        // scans, load-balancer TCP probes.  The peer is gone (or never
        // spoke); answering 400 would write into a closed socket.
        Ok(0) => return,
        Ok(_) if request_line.trim().is_empty() => return,
        Ok(_) => {}
        Err(_) => return,
    }
    // Drain the headers so well-behaved clients see the response after a
    // complete request/response cycle; contents are irrelevant.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let mut stream = reader.into_inner();

    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(method), Some(path)) => (method, path),
        _ => {
            respond(
                &mut stream,
                "400 Bad Request",
                "text/plain",
                "bad request\n",
            );
            return;
        }
    };
    if method != "GET" {
        respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
        return;
    }
    // Ignore any query string: `/metrics?foo=1` scrapes like `/metrics`.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4",
            &source.metrics(),
        ),
        "/trace" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &source.trace_json(),
        ),
        "/healthz" => {
            if source.healthy() {
                respond(&mut stream, "200 OK", "text/plain", "ok\n");
            } else {
                respond(
                    &mut stream,
                    "503 Service Unavailable",
                    "text/plain",
                    "unhealthy\n",
                );
            }
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    struct StubSource {
        healthy: bool,
    }

    impl HttpMetricsSource for StubSource {
        fn metrics(&self) -> String {
            "asv_stub 1\n".to_string()
        }

        fn trace_json(&self) -> String {
            "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n".to_string()
        }

        fn healthy(&self) -> bool {
            self.healthy
        }
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    #[test]
    fn routes_respond_with_the_documented_statuses() {
        let server = MetricsServer::serve("127.0.0.1:0", Arc::new(StubSource { healthy: true }))
            .expect("bind");
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.ends_with("asv_stub 1\n"));

        let trace = get(addr, "/trace");
        assert!(trace.contains("application/json"));
        assert!(trace.contains("traceEvents"));

        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(get(addr, "/healthz?verbose=1").starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404 Not Found\r\n"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));

        server.shutdown();
    }

    #[test]
    fn eof_connection_gets_no_response() {
        let server = MetricsServer::serve("127.0.0.1:0", Arc::new(StubSource { healthy: true }))
            .expect("bind");
        let addr = server.local_addr();

        // Connect and immediately half-close without sending a byte — the
        // probe pattern (port scans, LB health checks, the shutdown
        // wake-up).  The server must hang up silently instead of writing
        // `400 Bad Request` into the dead socket.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("read until close");
        assert!(
            response.is_empty(),
            "EOF probe received {} unexpected bytes: {:?}",
            response.len(),
            String::from_utf8_lossy(&response)
        );

        // A blank request line (stray CRLF then close) is equally silent.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"\r\n").expect("send blank line");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("read until close");
        assert!(response.is_empty(), "blank request line must get no bytes");

        // The endpoint still serves real requests afterwards.
        assert!(get(addr, "/healthz").starts_with("HTTP/1.1 200 OK\r\n"));
        server.shutdown();
    }

    #[test]
    fn unhealthy_source_answers_503() {
        let server = MetricsServer::serve("127.0.0.1:0", Arc::new(StubSource { healthy: false }))
            .expect("bind");
        assert!(get(server.local_addr(), "/healthz")
            .starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
    }
}
