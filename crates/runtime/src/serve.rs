//! High-level driving helpers: run whole stereo sequences through the
//! engine as if they were live camera feeds.

use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::telemetry::{AggregateTelemetry, SessionTelemetry};
use asv::ism::{IsmPipeline, IsmResult};
use asv::AsvError;
use asv_scene::StereoSequence;

/// Results and telemetry of one [`serve_sequences`] run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Per-stream results in input order, identical to what
    /// [`IsmPipeline::process_sequence`] would produce for each sequence.
    pub results: Vec<IsmResult>,
    /// Per-stream telemetry in input order.
    pub telemetry: Vec<SessionTelemetry>,
    /// Whole-engine telemetry (throughput, merged histograms).
    pub aggregate: AggregateTelemetry,
}

/// Serves every sequence as one concurrent camera stream: one session and
/// one feeder thread per sequence, frames submitted in order under
/// backpressure, all streams multiplexed over the scheduler's worker pool.
///
/// # Errors
///
/// Returns the first per-session [`AsvError`] if any stream failed.
pub fn serve_sequences(
    pipeline: &IsmPipeline,
    sequences: &[StereoSequence],
    config: SchedulerConfig,
) -> Result<ServeOutcome, AsvError> {
    let scheduler = Scheduler::new(config);
    let handles: Vec<_> = sequences
        .iter()
        .enumerate()
        .map(|(i, _)| scheduler.add_session_labeled(pipeline.state(), Some(format!("stream-{i}"))))
        .collect();
    std::thread::scope(|scope| {
        for (sequence, handle) in sequences.iter().zip(&handles) {
            let handle = handle.clone();
            scope.spawn(move || {
                for frame in sequence.frames() {
                    // A failed session rejects further frames; stop feeding.
                    if handle
                        .submit(frame.left.clone(), frame.right.clone())
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
    });
    let report = scheduler.join();
    let telemetry: Vec<SessionTelemetry> = report
        .sessions
        .iter()
        .map(|s| s.telemetry.clone())
        .collect();
    let aggregate = report.aggregate.clone();
    let results = report.into_ism_results()?;
    Ok(ServeOutcome {
        results,
        telemetry,
        aggregate,
    })
}
