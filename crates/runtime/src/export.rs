//! Prometheus text-format export of runtime telemetry.
//!
//! [`render_prometheus`] turns one [`AggregateTelemetry`] per shard into the
//! [Prometheus text exposition format]: counters for frame totals, gauges
//! for queue depths and throughput, and cumulative histograms for the
//! service-latency and queue-wait distributions, every sample labelled with
//! its shard index.  The output is scrape-ready — serve it verbatim from an
//! HTTP `/metrics` endpoint.
//!
//! The metric names and label keys below are a stable contract, locked by a
//! golden integration test; extend the set rather than renaming.
//!
//! [Prometheus text exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::net::TransportErrorKind;
use crate::qos::QosAction;
use crate::telemetry::{AggregateTelemetry, LatencyHistogram};
use std::fmt::Write;

/// Emits the per-stage latency histogram family: the same cumulative
/// `_bucket`/`_sum`/`_count` scheme with a `stage` label next to `shard`.
/// Stages that never recorded a sample on a shard are omitted (the family
/// header is always present), so a run with tracing off renders headers
/// only.
fn stage_histogram_family(out: &mut String, shards: &[AggregateTelemetry]) {
    let name = "asv_stage_latency_microseconds";
    Family {
        name,
        kind: "histogram",
        help: "Per-frame latency of each ISM pipeline stage.",
    }
    .header(out);
    for (shard, telemetry) in shards.iter().enumerate() {
        for (stage, histogram) in telemetry.stage_latency.stages() {
            if histogram.count() == 0 {
                continue;
            }
            let stage = stage.name();
            let mut cumulative = 0u64;
            for (upper_us, count) in histogram.buckets() {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{shard=\"{shard}\",stage=\"{stage}\",le=\"{upper_us}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{{shard=\"{shard}\",stage=\"{stage}\",le=\"+Inf\"}} {}",
                histogram.count()
            );
            let _ = writeln!(
                out,
                "{name}_sum{{shard=\"{shard}\",stage=\"{stage}\"}} {}",
                histogram.sum_us()
            );
            let _ = writeln!(
                out,
                "{name}_count{{shard=\"{shard}\",stage=\"{stage}\"}} {}",
                histogram.count()
            );
        }
    }
}

/// Emits the QoS actuation counters: one sample per shard per action kind,
/// zeros included, so dashboards see every action label from the first
/// scrape.
fn qos_actuations_family(out: &mut String, shards: &[AggregateTelemetry]) {
    let name = "asv_qos_actuations_total";
    Family {
        name,
        kind: "counter",
        help: "QoS knob actuations, by action.",
    }
    .header(out);
    for (shard, telemetry) in shards.iter().enumerate() {
        for action in QosAction::ALL {
            let _ = writeln!(
                out,
                "{name}{{shard=\"{shard}\",action=\"{}\"}} {}",
                action.name(),
                telemetry.qos_actuations[action.index()]
            );
        }
    }
}

/// Emits the per-session QoS degradation-level gauge: one sample per
/// SLO-managed session (0 = full quality); sessions without a controller
/// render nothing under the family header.
fn qos_level_family(out: &mut String, shards: &[AggregateTelemetry]) {
    let name = "asv_qos_level";
    Family {
        name,
        kind: "gauge",
        help: "QoS degradation level of each SLO-managed session (0 = full quality).",
    }
    .header(out);
    for (shard, telemetry) in shards.iter().enumerate() {
        for sample in &telemetry.qos_sessions {
            let _ = writeln!(
                out,
                "{name}{{shard=\"{shard}\",session=\"{}\"}} {}",
                sample.session, sample.level
            );
        }
    }
}

/// Emits the transport-error counter: one sample per error kind, summed
/// across every shard (transport faults are a cluster-edge property, so the
/// family intentionally carries no `shard` label).
fn transport_errors_family(out: &mut String, shards: &[AggregateTelemetry]) {
    let name = "asv_transport_errors_total";
    Family {
        name,
        kind: "counter",
        help: "Frames rejected at the transport edge, by failure kind.",
    }
    .header(out);
    for kind in TransportErrorKind::ALL {
        let total: u64 = shards
            .iter()
            .map(|telemetry| telemetry.transport_errors[kind.index()])
            .sum();
        let _ = writeln!(out, "{name}{{kind=\"{}\"}} {total}", kind.name());
    }
}

/// One metric family: name, type and help string.
struct Family {
    name: &'static str,
    kind: &'static str,
    help: &'static str,
}

impl Family {
    fn header(&self, out: &mut String) {
        let _ = writeln!(out, "# HELP {} {}", self.name, self.help);
        let _ = writeln!(out, "# TYPE {} {}", self.name, self.kind);
    }
}

fn sample(out: &mut String, name: &str, shard: usize, value: impl std::fmt::Display) {
    let _ = writeln!(out, "{name}{{shard=\"{shard}\"}} {value}");
}

/// Emits one family with a single per-shard value extracted by `get`.
fn scalar_family(
    out: &mut String,
    family: &Family,
    shards: &[AggregateTelemetry],
    get: impl Fn(&AggregateTelemetry) -> String,
) {
    family.header(out);
    for (shard, telemetry) in shards.iter().enumerate() {
        sample(out, family.name, shard, get(telemetry));
    }
}

/// Emits one histogram family in cumulative `_bucket`/`_sum`/`_count` form.
fn histogram_family(
    out: &mut String,
    name: &'static str,
    help: &'static str,
    shards: &[AggregateTelemetry],
    get: impl Fn(&AggregateTelemetry) -> &LatencyHistogram,
) {
    Family {
        name,
        kind: "histogram",
        help,
    }
    .header(out);
    for (shard, telemetry) in shards.iter().enumerate() {
        let histogram = get(telemetry);
        let mut cumulative = 0u64;
        for (upper_us, count) in histogram.buckets() {
            cumulative += count;
            let _ = writeln!(
                out,
                "{name}_bucket{{shard=\"{shard}\",le=\"{upper_us}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{shard=\"{shard}\",le=\"+Inf\"}} {}",
            histogram.count()
        );
        let _ = writeln!(
            out,
            "{name}_sum{{shard=\"{shard}\"}} {}",
            histogram.sum_us()
        );
        let _ = writeln!(
            out,
            "{name}_count{{shard=\"{shard}\"}} {}",
            histogram.count()
        );
    }
}

/// Renders one telemetry aggregate per shard as a Prometheus text-format
/// scrape body.  A single-`Scheduler` deployment passes a one-element slice;
/// the cluster passes one aggregate per shard.
pub fn render_prometheus(shards: &[AggregateTelemetry]) -> String {
    let mut out = String::new();
    Family {
        name: "asv_cluster_shards",
        kind: "gauge",
        help: "Number of scheduler shards in the cluster.",
    }
    .header(&mut out);
    let _ = writeln!(out, "asv_cluster_shards {}", shards.len());

    scalar_family(
        &mut out,
        &Family {
            name: "asv_sessions",
            kind: "gauge",
            help: "Registered stream sessions per shard.",
        },
        shards,
        |t| t.sessions.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_frames_submitted_total",
            kind: "counter",
            help: "Frames accepted into session inboxes.",
        },
        shards,
        |t| t.frames_submitted.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_frames_processed_total",
            kind: "counter",
            help: "Frames fully processed (key + non-key).",
        },
        shards,
        |t| t.frames_processed.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_key_frames_total",
            kind: "counter",
            help: "Frames processed with full DNN inference.",
        },
        shards,
        |t| t.key_frames.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_non_key_frames_total",
            kind: "counter",
            help: "Frames processed by motion propagation + refinement.",
        },
        shards,
        |t| t.non_key_frames.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_frames_dropped_total",
            kind: "counter",
            help: "Frames discarded after a session failure or shutdown.",
        },
        shards,
        |t| t.frames_dropped.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_frames_shed_total",
            kind: "counter",
            help: "Frames rejected or displaced by admission control.",
        },
        shards,
        |t| t.frames_shed.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_queue_depth",
            kind: "gauge",
            help: "Frames currently queued across the shard's inboxes.",
        },
        shards,
        |t| t.current_queue_depth.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_queue_depth_peak",
            kind: "gauge",
            help: "Largest inbox depth ever observed on the shard.",
        },
        shards,
        |t| t.peak_queue_depth.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_uptime_seconds",
            kind: "gauge",
            help: "Wall-clock seconds the shard has been serving.",
        },
        shards,
        |t| format!("{:.6}", t.wall_seconds),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_frames_per_second",
            kind: "gauge",
            help: "Aggregate processed-frame throughput of the shard.",
        },
        shards,
        |t| format!("{:.6}", t.frames_per_second()),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_qos_slo_violations_total",
            kind: "counter",
            help: "QoS evaluations that found a session violating its SLO.",
        },
        shards,
        |t| t.qos_slo_violations.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_sessions_migrated_total",
            kind: "counter",
            help: "Sessions re-placed off this shard after it failed.",
        },
        shards,
        |t| t.sessions_migrated.to_string(),
    );
    transport_errors_family(&mut out, shards);
    qos_actuations_family(&mut out, shards);
    qos_level_family(&mut out, shards);
    histogram_family(
        &mut out,
        "asv_service_latency_microseconds",
        "Per-frame service time: dequeue to finished disparity map.",
        shards,
        |t| &t.service_latency,
    );
    histogram_family(
        &mut out,
        "asv_queue_wait_microseconds",
        "Per-frame queue wait: submit to dequeue.",
        shards,
        |t| &t.queue_wait,
    );
    stage_histogram_family(&mut out, shards);
    out
}

/// One parsed sample line of a Prometheus text-format scrape.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapeSample {
    /// Metric name (for histograms, includes the `_bucket`/`_sum`/`_count`
    /// suffix).
    pub name: String,
    /// Label pairs in the order they appeared.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl ScrapeSample {
    /// The value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(text: &str) -> Option<f64> {
    match text {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

fn parse_labels(body: &str, line: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {line}"))?;
        let key = &rest[..eq];
        if !valid_metric_name(key) {
            return Err(format!("invalid label name {key:?}: {line}"));
        }
        let after_eq = &rest[eq + 1..];
        let value = after_eq
            .strip_prefix('"')
            .ok_or_else(|| format!("unquoted label value: {line}"))?;
        let close = value
            .find('"')
            .ok_or_else(|| format!("unterminated label value: {line}"))?;
        // The renderer never emits escapes inside label values; reject them
        // so a regression is caught instead of mis-parsed.
        if value[..close].contains('\\') {
            return Err(format!("escaped label value unsupported: {line}"));
        }
        labels.push((key.to_string(), value[..close].to_string()));
        rest = &value[close + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {line}"));
        }
    }
    Ok(labels)
}

/// Parses and validates a Prometheus text-format scrape body as produced by
/// [`render_prometheus`]: `# HELP` / `# TYPE` comments with known metric
/// kinds, and `name{labels} value` samples.  Returns every sample, or a
/// description of the first malformed line.
///
/// This is the validation half of the contract: the integration tests and
/// the CI scrape of the live `/metrics` endpoint both run every line
/// through it, so a renderer regression fails loudly.
///
/// # Errors
///
/// Returns a message naming the offending line for any lexical violation:
/// bad metric or label names, unquoted or escaped label values, missing or
/// unparsable values, or an unknown `# TYPE` kind.
pub fn parse_scrape(text: &str) -> Result<Vec<ScrapeSample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            return Err("empty line in scrape body".to_string());
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            let keyword = parts.next().unwrap_or_default();
            let name = parts.next().unwrap_or_default();
            let rest = parts.next().unwrap_or_default();
            match keyword {
                "HELP" if valid_metric_name(name) && !rest.is_empty() => {}
                "TYPE"
                    if valid_metric_name(name)
                        && matches!(rest, "counter" | "gauge" | "histogram" | "summary") => {}
                _ => return Err(format!("malformed comment line: {line}")),
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample without value: {line}"))?;
        let value = parse_value(value).ok_or_else(|| format!("unparsable value: {line}"))?;
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unterminated label set: {line}"))?;
                (name, parse_labels(body, line)?)
            }
            None => (series, Vec::new()),
        };
        if !valid_metric_name(name) {
            return Err(format!("invalid metric name {name:?}: {line}"));
        }
        samples.push(ScrapeSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv::FrameKind;
    use std::time::Duration;

    #[test]
    fn renders_every_family_per_shard() {
        let mut a = crate::telemetry::SessionTelemetry::default();
        a.record_frame(
            FrameKind::KeyFrame,
            Duration::from_micros(900),
            Duration::from_micros(40),
        );
        let mut shard = AggregateTelemetry::default();
        shard.absorb(&a);
        shard.wall_seconds = 2.0;
        let text = render_prometheus(&[shard.clone(), shard]);
        assert!(text.contains("asv_cluster_shards 2"));
        assert!(text.contains("asv_frames_processed_total{shard=\"0\"} 1"));
        assert!(text.contains("asv_frames_processed_total{shard=\"1\"} 1"));
        assert!(text.contains("asv_service_latency_microseconds_bucket{shard=\"0\",le=\"+Inf\"} 1"));
        assert!(text.contains("asv_service_latency_microseconds_sum{shard=\"1\"} 900"));
        assert!(text.contains("asv_frames_per_second{shard=\"0\"} 0.500000"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines() {
            assert!(!line.is_empty());
            if !line.starts_with('#') {
                assert_eq!(line.split(' ').count(), 2, "malformed line: {line}");
            }
        }
    }

    #[test]
    fn stage_histograms_render_with_stage_labels() {
        use asv::trace::Stage;
        let mut session = crate::telemetry::SessionTelemetry::default();
        let mut totals = [0u64; Stage::COUNT];
        totals[Stage::FlowLeft.index()] = 900_000;
        totals[Stage::Refine.index()] = 150_000;
        session.stage_latency.record_frame_totals(&totals);
        let mut shard = AggregateTelemetry::default();
        shard.absorb(&session);
        let text = render_prometheus(&[shard]);
        assert!(text.contains("# TYPE asv_stage_latency_microseconds histogram"));
        assert!(text
            .contains("asv_stage_latency_microseconds_count{shard=\"0\",stage=\"flow_left\"} 1"));
        assert!(
            text.contains("asv_stage_latency_microseconds_sum{shard=\"0\",stage=\"refine\"} 150")
        );
        // Silent stages are omitted entirely.
        assert!(!text.contains("stage=\"dnn_infer\""));
        let samples = parse_scrape(&text).expect("scrape parses");
        assert!(samples
            .iter()
            .any(|s| s.name == "asv_stage_latency_microseconds_bucket"
                && s.label("stage") == Some("flow_left")
                && s.label("le") == Some("+Inf")
                && s.value == 1.0));
    }

    #[test]
    fn parser_accepts_the_renderer_and_rejects_malformed_lines() {
        let shard = AggregateTelemetry::default();
        let text = render_prometheus(&[shard]);
        let samples = parse_scrape(&text).expect("renderer output parses");
        assert!(samples.iter().any(|s| s.name == "asv_cluster_shards"));
        assert!(samples
            .iter()
            .all(|s| s.name.is_empty() || valid_metric_name(&s.name)));

        for bad in [
            "asv_x{shard=0} 1",             // unquoted label value
            "asv_x{shard=\"0\"} ",          // missing value
            "asv_x{shard=\"0\" 1",          // unterminated label set
            "2asv_x 1",                     // invalid metric name
            "asv_x{shard=\"0\"} not_a_num", // unparsable value
            "# TYPE asv_x matrix",          // unknown kind
            "asv_x{shard=\"a\\\"b\"} 1",    // escaped label value
            "asv_x{shard=\"0\"}extra 1",    // junk after labels
        ] {
            assert!(parse_scrape(bad).is_err(), "accepted malformed: {bad}");
        }
    }
}
