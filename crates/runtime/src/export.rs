//! Prometheus text-format export of runtime telemetry.
//!
//! [`render_prometheus`] turns one [`AggregateTelemetry`] per shard into the
//! [Prometheus text exposition format]: counters for frame totals, gauges
//! for queue depths and throughput, and cumulative histograms for the
//! service-latency and queue-wait distributions, every sample labelled with
//! its shard index.  The output is scrape-ready — serve it verbatim from an
//! HTTP `/metrics` endpoint.
//!
//! The metric names and label keys below are a stable contract, locked by a
//! golden integration test; extend the set rather than renaming.
//!
//! [Prometheus text exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::telemetry::{AggregateTelemetry, LatencyHistogram};
use std::fmt::Write;

/// One metric family: name, type and help string.
struct Family {
    name: &'static str,
    kind: &'static str,
    help: &'static str,
}

impl Family {
    fn header(&self, out: &mut String) {
        let _ = writeln!(out, "# HELP {} {}", self.name, self.help);
        let _ = writeln!(out, "# TYPE {} {}", self.name, self.kind);
    }
}

fn sample(out: &mut String, name: &str, shard: usize, value: impl std::fmt::Display) {
    let _ = writeln!(out, "{name}{{shard=\"{shard}\"}} {value}");
}

/// Emits one family with a single per-shard value extracted by `get`.
fn scalar_family(
    out: &mut String,
    family: &Family,
    shards: &[AggregateTelemetry],
    get: impl Fn(&AggregateTelemetry) -> String,
) {
    family.header(out);
    for (shard, telemetry) in shards.iter().enumerate() {
        sample(out, family.name, shard, get(telemetry));
    }
}

/// Emits one histogram family in cumulative `_bucket`/`_sum`/`_count` form.
fn histogram_family(
    out: &mut String,
    name: &'static str,
    help: &'static str,
    shards: &[AggregateTelemetry],
    get: impl Fn(&AggregateTelemetry) -> &LatencyHistogram,
) {
    Family {
        name,
        kind: "histogram",
        help,
    }
    .header(out);
    for (shard, telemetry) in shards.iter().enumerate() {
        let histogram = get(telemetry);
        let mut cumulative = 0u64;
        for (upper_us, count) in histogram.buckets() {
            cumulative += count;
            let _ = writeln!(
                out,
                "{name}_bucket{{shard=\"{shard}\",le=\"{upper_us}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{shard=\"{shard}\",le=\"+Inf\"}} {}",
            histogram.count()
        );
        let _ = writeln!(
            out,
            "{name}_sum{{shard=\"{shard}\"}} {}",
            histogram.sum_us()
        );
        let _ = writeln!(
            out,
            "{name}_count{{shard=\"{shard}\"}} {}",
            histogram.count()
        );
    }
}

/// Renders one telemetry aggregate per shard as a Prometheus text-format
/// scrape body.  A single-`Scheduler` deployment passes a one-element slice;
/// the cluster passes one aggregate per shard.
pub fn render_prometheus(shards: &[AggregateTelemetry]) -> String {
    let mut out = String::new();
    Family {
        name: "asv_cluster_shards",
        kind: "gauge",
        help: "Number of scheduler shards in the cluster.",
    }
    .header(&mut out);
    let _ = writeln!(out, "asv_cluster_shards {}", shards.len());

    scalar_family(
        &mut out,
        &Family {
            name: "asv_sessions",
            kind: "gauge",
            help: "Registered stream sessions per shard.",
        },
        shards,
        |t| t.sessions.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_frames_submitted_total",
            kind: "counter",
            help: "Frames accepted into session inboxes.",
        },
        shards,
        |t| t.frames_submitted.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_frames_processed_total",
            kind: "counter",
            help: "Frames fully processed (key + non-key).",
        },
        shards,
        |t| t.frames_processed.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_key_frames_total",
            kind: "counter",
            help: "Frames processed with full DNN inference.",
        },
        shards,
        |t| t.key_frames.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_non_key_frames_total",
            kind: "counter",
            help: "Frames processed by motion propagation + refinement.",
        },
        shards,
        |t| t.non_key_frames.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_frames_dropped_total",
            kind: "counter",
            help: "Frames discarded after a session failure or shutdown.",
        },
        shards,
        |t| t.frames_dropped.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_frames_shed_total",
            kind: "counter",
            help: "Frames rejected or displaced by admission control.",
        },
        shards,
        |t| t.frames_shed.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_queue_depth",
            kind: "gauge",
            help: "Frames currently queued across the shard's inboxes.",
        },
        shards,
        |t| t.current_queue_depth.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_queue_depth_peak",
            kind: "gauge",
            help: "Largest inbox depth ever observed on the shard.",
        },
        shards,
        |t| t.peak_queue_depth.to_string(),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_uptime_seconds",
            kind: "gauge",
            help: "Wall-clock seconds the shard has been serving.",
        },
        shards,
        |t| format!("{:.6}", t.wall_seconds),
    );
    scalar_family(
        &mut out,
        &Family {
            name: "asv_frames_per_second",
            kind: "gauge",
            help: "Aggregate processed-frame throughput of the shard.",
        },
        shards,
        |t| format!("{:.6}", t.frames_per_second()),
    );
    histogram_family(
        &mut out,
        "asv_service_latency_microseconds",
        "Per-frame service time: dequeue to finished disparity map.",
        shards,
        |t| &t.service_latency,
    );
    histogram_family(
        &mut out,
        "asv_queue_wait_microseconds",
        "Per-frame queue wait: submit to dequeue.",
        shards,
        |t| &t.queue_wait,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv::FrameKind;
    use std::time::Duration;

    #[test]
    fn renders_every_family_per_shard() {
        let mut a = crate::telemetry::SessionTelemetry::default();
        a.record_frame(
            FrameKind::KeyFrame,
            Duration::from_micros(900),
            Duration::from_micros(40),
        );
        let mut shard = AggregateTelemetry::default();
        shard.absorb(&a);
        shard.wall_seconds = 2.0;
        let text = render_prometheus(&[shard.clone(), shard]);
        assert!(text.contains("asv_cluster_shards 2"));
        assert!(text.contains("asv_frames_processed_total{shard=\"0\"} 1"));
        assert!(text.contains("asv_frames_processed_total{shard=\"1\"} 1"));
        assert!(text.contains("asv_service_latency_microseconds_bucket{shard=\"0\",le=\"+Inf\"} 1"));
        assert!(text.contains("asv_service_latency_microseconds_sum{shard=\"1\"} 900"));
        assert!(text.contains("asv_frames_per_second{shard=\"0\"} 0.500000"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines() {
            assert!(!line.is_empty());
            if !line.starts_with('#') {
                assert_eq!(line.split(' ').count(), 2, "malformed line: {line}");
            }
        }
    }
}
