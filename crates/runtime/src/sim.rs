//! Deterministic cluster simulation harness.
//!
//! The runtime's core correctness claim is *determinism*: a frame's
//! disparity map depends only on its session's frame history, never on how
//! many shards, workers or queue hops served it.  This module turns that
//! claim into an executable experiment:
//!
//! * a **seeded workload generator** ([`generate_streams`]) producing the
//!   same synthetic camera streams for the same [`SimConfig::seed`];
//! * **latency injection** — seeded per-frame submit jitter perturbs thread
//!   interleavings (different every shard count, reproducible for a seed)
//!   so the equality check is exercised under many real schedules, plus a
//!   [`VirtualClock`] for building *exactly* reproducible latency telemetry
//!   where wall time would be noise (the Prometheus golden test);
//! * [`run_cluster_sim`] — the proof harness: for each requested shard
//!   count it routes the workload through the full stack
//!   (ingest front-end → cluster → shard schedulers) and compares every
//!   session's results byte-for-byte against batch
//!   [`IsmPipeline::process_sequence`] and against a single
//!   [`crate::Scheduler`].
//!
//! CI runs this in both feature configurations; see
//! `crates/runtime/tests/cluster.rs`.

use crate::cluster::{Cluster, ClusterConfig};
use crate::ingest::{Ingest, IngestConfig};
use crate::net::{Admit, FrameSink, SequenceGate, TransportCounters, TransportErrorKind};
use crate::qos::{QosAction, QosConfig, QosController, QosKnobs, SessionSlo};
use crate::scheduler::{SchedulerConfig, ShedPolicy};
use crate::serve::serve_sequences;
use crate::supervisor::{Delivery, MigrationRecord, Supervisor};
use crate::wire;
use asv::ism::{FrameResult, IsmPipeline, IsmResult, KeyFramePolicy};
use asv::AsvError;
use asv::CostMetric;
use asv_scene::{SceneConfig, StereoSequence};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A deterministic logical clock, advancing only when told to.
///
/// Real `Instant`s make telemetry content non-reproducible; tests that need
/// bit-stable histograms (e.g. the Prometheus golden test) drive one of
/// these instead and inject the resulting durations.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualClock {
    now_us: u64,
}

impl VirtualClock {
    /// A clock at logical time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current logical time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Current logical time in seconds.
    pub fn now_seconds(&self) -> f64 {
        self.now_us as f64 / 1e6
    }

    /// Advances the clock by `us` microseconds and returns the elapsed
    /// duration — the injectable stand-in for "this step took `us` µs".
    pub fn advance_us(&mut self, us: u64) -> Duration {
        self.now_us += us;
        Duration::from_micros(us)
    }
}

/// Parameters of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Master seed: workload content and injected jitter both derive from
    /// it.
    pub seed: u64,
    /// Concurrent camera sessions.
    pub sessions: usize,
    /// Frames per session.
    pub frames_per_session: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Worker threads per scheduler shard.
    pub workers_per_shard: usize,
    /// Bounded inbox capacity per session.
    pub inbox_capacity: usize,
    /// Upper bound of the injected per-frame submit jitter, microseconds
    /// (0 disables injection).
    pub submit_jitter_us: u64,
}

impl SimConfig {
    /// A small configuration that keeps the full determinism sweep fast
    /// enough for CI.
    pub fn small() -> Self {
        Self {
            seed: 0xA5F,
            sessions: 3,
            frames_per_session: 4,
            width: 48,
            height: 36,
            workers_per_shard: 2,
            inbox_capacity: 2,
            submit_jitter_us: 300,
        }
    }

    /// Returns the configuration with a different master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with a different session count.
    pub fn with_sessions(mut self, sessions: usize) -> Self {
        self.sessions = sessions;
        self
    }

    /// Returns the configuration with a different per-session frame count.
    pub fn with_frames(mut self, frames: usize) -> Self {
        self.frames_per_session = frames;
        self
    }
}

/// The routing key of simulated session `index` (shared by the harness and
/// its tests).
pub fn session_key(index: usize) -> String {
    format!("sim-cam-{index}")
}

/// Generates the seeded synthetic camera streams of a simulation.
pub fn generate_streams(config: &SimConfig) -> Vec<StereoSequence> {
    (0..config.sessions)
        .map(|i| {
            let scene = SceneConfig::scene_flow_like(config.width, config.height)
                .with_seed(config.seed.wrapping_mul(1009).wrapping_add(i as u64))
                .with_objects(2);
            StereoSequence::generate(&scene, config.frames_per_session)
        })
        .collect()
}

/// Outcome of one [`run_cluster_sim`] sweep.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The shard counts the cluster was exercised at.
    pub shard_counts: Vec<usize>,
    /// Sessions per run.
    pub sessions: usize,
    /// Individual frame results compared against the batch baseline.
    pub frames_compared: u64,
    /// Human-readable descriptions of every divergence found (empty on
    /// success).
    pub mismatches: Vec<String>,
}

impl SimReport {
    /// Whether every compared frame was byte-identical to the batch
    /// baseline.
    pub fn is_deterministic(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Compares one session's streamed frames against the batch baseline,
/// recording any divergence.
fn compare_session(
    label: &str,
    expected: &IsmResult,
    actual: &[FrameResult],
    frames_compared: &mut u64,
    mismatches: &mut Vec<String>,
) {
    if expected.frames.len() != actual.len() {
        mismatches.push(format!(
            "{label}: {} frames, batch produced {}",
            actual.len(),
            expected.frames.len()
        ));
        return;
    }
    compare_frames(label, &expected.frames, actual, frames_compared, mismatches);
}

/// Byte-compares streamed frames against reference frames position by
/// position (the caller already aligned and length-checked the slices).
fn compare_frames(
    label: &str,
    expected: &[FrameResult],
    actual: &[FrameResult],
    frames_compared: &mut u64,
    mismatches: &mut Vec<String>,
) {
    for (frame, (e, a)) in expected.iter().zip(actual).enumerate() {
        *frames_compared += 1;
        if e.kind != a.kind {
            mismatches.push(format!(
                "{label} frame {frame}: kind {:?}, batch {:?}",
                a.kind, e.kind
            ));
        }
        if e.disparity != a.disparity {
            mismatches.push(format!(
                "{label} frame {frame}: disparity diverges from batch"
            ));
        }
    }
}

/// Runs the determinism experiment: the seeded workload is processed (a) by
/// batch [`IsmPipeline::process_sequence`], (b) by a single
/// [`crate::Scheduler`], and (c) by an [`Ingest`]-fronted [`Cluster`] at
/// every shard count in `shard_counts`, with seeded submit jitter
/// perturbing the interleavings.  Every per-session result is compared
/// byte-for-byte against the batch baseline.
///
/// # Errors
///
/// Returns the first [`AsvError`] if any serving path fails outright
/// (result *divergence* is not an error — it is recorded in
/// [`SimReport::mismatches`]).
pub fn run_cluster_sim(
    pipeline: &IsmPipeline,
    config: &SimConfig,
    shard_counts: &[usize],
) -> Result<SimReport, AsvError> {
    let streams = generate_streams(config);
    let mut frames_compared = 0u64;
    let mut mismatches = Vec::new();

    // (a) The batch baseline: the ground truth everything must match.
    let batch: Vec<IsmResult> = streams
        .iter()
        .map(|s| pipeline.process_sequence(s))
        .collect::<Result<_, _>>()?;

    // (b) A single scheduler (the PR-2 serving path).
    let shard_config = SchedulerConfig {
        workers: config.workers_per_shard.max(1),
        inbox_capacity: config.inbox_capacity,
        shed_policy: ShedPolicy::Block,
    };
    let single = serve_sequences(pipeline, &streams, shard_config)?;
    for (i, (expected, actual)) in batch.iter().zip(&single.results).enumerate() {
        compare_session(
            &format!("single-scheduler {}", session_key(i)),
            expected,
            &actual.frames,
            &mut frames_compared,
            &mut mismatches,
        );
    }

    // (c) The full stack at every requested shard count.
    for &shards in shard_counts {
        let cluster = Cluster::new(ClusterConfig::new(shards).with_shard_config(shard_config));
        // Lossless admission control: determinism requires `Block`.
        let ingest = Ingest::new(
            IngestConfig::default()
                .with_policy(ShedPolicy::Block)
                .with_queue_capacity((config.sessions * config.inbox_capacity).max(2))
                .with_session_quota(config.inbox_capacity.max(1)),
        );
        let routes: Vec<_> = (0..config.sessions)
            .map(|i| {
                let placed = cluster.add_session(&session_key(i), pipeline.state());
                (ingest.register(placed.handle().clone()), placed)
            })
            .collect();

        // Seeded jitter, distinct per shard count so each run explores a
        // different (but reproducible) interleaving.
        let mut rng = SmallRng::seed_from_u64(config.seed ^ (shards as u64).wrapping_mul(0x9E37));
        let jitter: Vec<Vec<u64>> = (0..config.sessions)
            .map(|_| {
                (0..config.frames_per_session)
                    .map(|_| {
                        if config.submit_jitter_us == 0 {
                            0
                        } else {
                            rng.gen_range(0..config.submit_jitter_us)
                        }
                    })
                    .collect()
            })
            .collect();

        let feed_errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (i, ((route, _), stream)) in routes.iter().zip(&streams).enumerate() {
                let route = route.clone();
                let delays = &jitter[i];
                let feed_errors = &feed_errors;
                scope.spawn(move || {
                    for (f, frame) in stream.frames().iter().enumerate() {
                        if delays[f] > 0 {
                            std::thread::sleep(Duration::from_micros(delays[f]));
                        }
                        if let Err(e) = route.submit(frame.left.clone(), frame.right.clone()) {
                            feed_errors
                                .lock()
                                .expect("sim feed-error lock poisoned")
                                .push(format!("{}: submit failed: {e}", session_key(i)));
                            break;
                        }
                    }
                });
            }
        });
        // Drain the front-end into the shards, then the shards themselves.
        ingest.join();
        let report = cluster.join();
        mismatches.extend(
            feed_errors
                .into_inner()
                .expect("sim feed-error lock poisoned"),
        );

        for (i, expected) in batch.iter().enumerate() {
            let key = session_key(i);
            let label = format!("{shards}-shard cluster {key}");
            match report.session_by_key(&key) {
                Some(session) => {
                    if let Some(error) = &session.error {
                        mismatches.push(format!("{label}: session failed: {error}"));
                    }
                    compare_session(
                        &label,
                        expected,
                        &session.frames,
                        &mut frames_compared,
                        &mut mismatches,
                    );
                }
                None => mismatches.push(format!("{label}: session missing from report")),
            }
        }
    }

    Ok(SimReport {
        shard_counts: shard_counts.to_vec(),
        sessions: config.sessions,
        frames_compared,
        mismatches,
    })
}

/// Deterministic per-frame service cost as a function of the session's QoS
/// knobs, used by [`run_overload_sim`].  The numbers mirror the real
/// pipeline's shape — census key frames are cheaper than SAD (integer SGM
/// fast path), propagated non-key frames are far cheaper than any key frame
/// — without paying for real kernels, so the control loop can be exercised
/// over thousands of virtual frames in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Service time of a SAD key frame, µs.
    pub key_sad_us: u64,
    /// Service time of a census key frame, µs.
    pub key_census_us: u64,
    /// Service time of a propagated non-key frame, µs.
    pub non_key_us: u64,
}

impl CostModel {
    fn service_us(&self, knobs: &QosKnobs, is_key: bool) -> u64 {
        if !is_key {
            self.non_key_us
        } else if knobs.metric == CostMetric::Census {
            self.key_census_us
        } else {
            self.key_sad_us
        }
    }
}

/// Parameters of one [`run_overload_sim`] experiment: `sessions` symmetric
/// camera streams arrive every `overload_interval_us` for `overload_frames`
/// frames (over worker-pool capacity at full quality), then relax to
/// `relaxed_interval_us` for `relaxed_frames` more frames (under capacity at
/// every level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Master seed of the per-session motion traces.
    pub seed: u64,
    /// Concurrent camera sessions.
    pub sessions: usize,
    /// Simulated worker threads shared by all sessions.
    pub workers: usize,
    /// Frames per session in the overload phase.
    pub overload_frames: usize,
    /// Frames per session in the relaxed phase.
    pub relaxed_frames: usize,
    /// Per-session frame arrival interval during overload, µs.
    pub overload_interval_us: u64,
    /// Per-session frame arrival interval after the load drops, µs.
    pub relaxed_interval_us: u64,
    /// The SLO every session is registered under.
    pub slo: SessionSlo,
    /// The per-frame service-cost model.
    pub cost: CostModel,
}

impl OverloadConfig {
    /// The CI scenario: four streams over the capacity of two workers at
    /// full quality (the ladder's resting level 3 is comfortably under),
    /// then a relaxed phase long enough for the slow hysteresis to walk all
    /// the way back to full quality.
    pub fn ci() -> Self {
        Self {
            seed: 0x0A57,
            sessions: 4,
            workers: 2,
            overload_frames: 140,
            relaxed_frames: 420,
            overload_interval_us: 10_000,
            relaxed_interval_us: 40_000,
            slo: SessionSlo::p95_step_us(40_000),
            cost: CostModel {
                key_sad_us: 18_000,
                key_census_us: 13_000,
                non_key_us: 1_500,
            },
        }
    }

    /// The QoS loop configuration the scenario registers sessions with: an
    /// 8-frame window reacts within a few frames of a violation; the
    /// 150-evaluation recovery streak makes quality probes slower than the
    /// overload phase itself, so the steady state degrades once and holds.
    pub fn qos(&self) -> QosConfig {
        QosConfig::new(self.slo)
            .with_window(8)
            .with_streaks(2, 150)
            .with_recover_margin(0.6)
    }

    /// The full-quality baseline knobs of every simulated session.
    pub fn baseline(&self) -> QosKnobs {
        QosKnobs {
            propagation_window: 2,
            key_frame_policy: KeyFramePolicy::AdaptiveMotion {
                max_median_motion_px: 1.5,
            },
            metric: CostMetric::Sad,
        }
    }

    fn frames_per_session(&self) -> usize {
        self.overload_frames + self.relaxed_frames
    }

    /// Arrival time of `session`'s frame `index` (sessions are phase-offset
    /// by 1 ms so dispatch order is deterministic but not lock-stepped).
    fn arrival_us(&self, session: usize, index: usize) -> u64 {
        let base = if index < self.overload_frames {
            index as u64 * self.overload_interval_us
        } else {
            self.overload_frames as u64 * self.overload_interval_us
                + (index - self.overload_frames) as u64 * self.relaxed_interval_us
        };
        base + session as u64 * 1_000
    }
}

/// What one session experienced in the overload experiment.
#[derive(Debug, Clone)]
pub struct OverloadSessionReport {
    /// The session's routing key.
    pub key: String,
    /// p95 step latency (µs) over the last half of the overload-phase
    /// arrivals — the steady state after the controller settled (or, with
    /// QoS off, after the queue collapse is in full swing).
    pub overload_p95_us: u64,
    /// p95 step latency (µs) over the last half of the relaxed-phase
    /// arrivals.
    pub relaxed_p95_us: u64,
    /// Deepest degradation level the session reached.
    pub max_level: u8,
    /// Degradation level at the end of the run.
    pub final_level: u8,
    /// SLO-violation evaluations counted by the session's controller.
    pub slo_violations: u64,
    /// Total knob actuations (degradations + recoveries).
    pub actuations: u64,
}

/// Outcome of one [`run_overload_sim`] run.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Whether sessions ran QoS controllers.
    pub qos_enabled: bool,
    /// Per-session outcomes, in session order.
    pub sessions: Vec<OverloadSessionReport>,
    /// Actuations across all sessions, indexed by [`QosAction::index`].
    pub total_actuations: [u64; QosAction::COUNT],
}

impl OverloadReport {
    /// Whether every session's steady-state overload p95 met the SLO.
    pub fn all_meet_slo(&self, slo: &SessionSlo) -> bool {
        self.sessions
            .iter()
            .all(|s| s.overload_p95_us <= slo.target_p95_step_us)
    }
}

/// Nearest-rank p95 of the last half of `samples` (arrival order).
fn last_half_p95(samples: &[u64]) -> u64 {
    let tail = &samples[samples.len() / 2..];
    if tail.is_empty() {
        return 0;
    }
    let mut sorted = tail.to_vec();
    sorted.sort_unstable();
    let rank = ((0.95 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs the deadline-vs-overload experiment in virtual time: a
/// discrete-event model of the scheduler (worker pool + per-session frame
/// serialization + FIFO order) serves the seeded workload, with every
/// session's *real* [`QosController`] in the loop when `qos_enabled` —
/// exactly the code the production scheduler runs, fed from a
/// [`VirtualClock`]-style timeline instead of `Instant`s.  Key-frame
/// selection mirrors ISM: a key every `propagation_window` frames, plus
/// seeded motion spikes that force re-keys whenever they exceed the
/// session's `AdaptiveMotion` threshold (so relaxing the threshold — the
/// level-3 actuation — visibly cheapens the stream).
///
/// Fully deterministic: same config, same report, no threads, no wall
/// clock.
pub fn run_overload_sim(config: &OverloadConfig, qos_enabled: bool) -> OverloadReport {
    let sessions = config.sessions.max(1);
    let frames = config.frames_per_session();
    let baseline = config.baseline();

    struct SimSession {
        next_frame: usize,
        free_us: u64,
        since_key: usize,
        knobs: QosKnobs,
        controller: Option<QosController>,
        motion: SmallRng,
        steps: Vec<u64>,
        max_level: u8,
    }

    let mut sim: Vec<SimSession> = (0..sessions)
        .map(|i| SimSession {
            next_frame: 0,
            free_us: 0,
            since_key: 0,
            knobs: baseline,
            controller: qos_enabled.then(|| QosController::new(config.qos(), baseline)),
            motion: SmallRng::seed_from_u64(
                config
                    .seed
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(i as u64),
            ),
            steps: Vec::with_capacity(frames),
            max_level: 0,
        })
        .collect();
    let mut workers = vec![0u64; config.workers.max(1)];

    for _ in 0..sessions * frames {
        // Dispatch the frame that can start earliest: FIFO per session, one
        // frame of a session in service at a time — the scheduler's model.
        let (idx, arrival) = sim
            .iter()
            .enumerate()
            .filter(|(_, s)| s.next_frame < frames)
            .map(|(i, s)| (i, config.arrival_us(i, s.next_frame), s.free_us))
            .min_by_key(|&(i, arrival, free)| (arrival.max(free), i))
            .map(|(i, arrival, _)| (i, arrival))
            .expect("frames remain");
        let worker = workers
            .iter_mut()
            .min()
            .expect("sim has at least one worker");
        let session = &mut sim[idx];

        // ISM key-frame selection under the session's current knobs.
        let threshold = match session.knobs.key_frame_policy {
            KeyFramePolicy::AdaptiveMotion {
                max_median_motion_px,
            } => max_median_motion_px,
            KeyFramePolicy::Static => f32::INFINITY,
        };
        let motion: f32 = session.motion.gen_range(0.0..3.0);
        let is_key = session.next_frame == 0
            || session.since_key >= session.knobs.propagation_window
            || motion > threshold;
        session.since_key = if is_key { 1 } else { session.since_key + 1 };

        let start = arrival.max(session.free_us).max(*worker);
        let complete = start + config.cost.service_us(&session.knobs, is_key);
        *worker = complete;
        session.free_us = complete;
        session.next_frame += 1;
        let step_us = complete - arrival;
        session.steps.push(step_us);

        if let Some(controller) = &mut session.controller {
            if controller.observe_step(complete, step_us).is_some() {
                session.knobs = controller.knobs();
            }
            session.max_level = session.max_level.max(controller.level());
        }
    }

    let mut total_actuations = [0u64; QosAction::COUNT];
    let reports = sim
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let telemetry = s
                .controller
                .as_ref()
                .map(QosController::telemetry)
                .unwrap_or_default();
            for (total, &n) in total_actuations.iter_mut().zip(telemetry.actuations.iter()) {
                *total += n;
            }
            OverloadSessionReport {
                key: session_key(i),
                overload_p95_us: last_half_p95(&s.steps[..config.overload_frames]),
                relaxed_p95_us: last_half_p95(&s.steps[config.overload_frames..]),
                max_level: s.max_level,
                final_level: s.controller.as_ref().map_or(0, QosController::level),
                slo_violations: telemetry.slo_violations,
                actuations: telemetry.actuations_total(),
            }
        })
        .collect();

    OverloadReport {
        qos_enabled,
        sessions: reports,
        total_actuations,
    }
}

/// Per-mille fault rates of the simulated lossy transport, plus the
/// retransmission budget.  Rates are rolled per delivery *attempt*, so a
/// frame can be dropped, corrupted and reordered on successive tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed of the fault roll (independent of the workload seed).
    pub seed: u64,
    /// Per-mille chance a message vanishes in flight.
    pub drop_per_mille: u16,
    /// Per-mille chance a message arrives with one byte flipped.
    pub corrupt_per_mille: u16,
    /// Per-mille chance a message arrives cut off mid-frame (the
    /// half-written-frame-on-disconnect case).
    pub truncate_per_mille: u16,
    /// Per-mille chance a delivered message is delivered twice.
    pub duplicate_per_mille: u16,
    /// Per-mille chance the *next* frame arrives before this one (the
    /// delayed/reordered-link case).
    pub reorder_per_mille: u16,
    /// Delivery attempts per frame before the link declares the session
    /// wedged (the assertion the harness exists to keep false).
    pub max_attempts: usize,
}

impl ChaosConfig {
    /// The CI scenario: every fault class well above real-link rates, with
    /// a retransmission budget that makes loss of progress astronomically
    /// unlikely while still bounding the sim.
    pub fn ci() -> Self {
        Self {
            seed: 0xC4_05,
            drop_per_mille: 150,
            corrupt_per_mille: 100,
            truncate_per_mille: 80,
            duplicate_per_mille: 120,
            reorder_per_mille: 120,
            max_attempts: 64,
        }
    }
}

/// Outcome of one [`run_chaos_transport_sim`] run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Frames accepted by the receiver exactly once.
    pub frames_delivered: u64,
    /// Messages the link dropped.
    pub frames_dropped: u64,
    /// Messages delivered with a flipped byte (all must be rejected).
    pub frames_corrupted: u64,
    /// Messages delivered cut off mid-frame (all must be rejected).
    pub frames_truncated: u64,
    /// Accepted messages the link delivered a second time (all must be
    /// deduplicated).
    pub frames_duplicated: u64,
    /// Messages that arrived ahead of order (all must be refused as gaps).
    pub frames_reordered: u64,
    /// Sender retransmissions forced by unacknowledged deliveries.
    pub retransmissions: u64,
    /// Total faults counted by the transport counters (every injected
    /// corruption/truncation/gap must appear here).
    pub transport_errors: u64,
    /// Frames byte-compared against the batch baseline.
    pub frames_compared: u64,
    /// Human-readable descriptions of every divergence (empty on success).
    pub mismatches: Vec<String>,
}

impl ChaosReport {
    /// Whether every session's output was byte-identical to batch and no
    /// session wedged.
    pub fn is_deterministic(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// What the simulated receiver did with one delivered message; mirrors the
/// accept/duplicate/reject split of the real TCP server's ack protocol.
enum Receipt {
    /// Validated, in order, delivered to the session: acknowledged.
    Accepted,
    /// A retransmission of an already-delivered frame: acknowledged
    /// without re-delivery.
    Duplicate,
    /// Rejected (decode fault or sequence gap): the sender must retry.
    Rejected,
}

/// The receive path of the chaos sim — the same validate → dedup → deliver
/// pipeline as [`crate::FrameServer`], minus the socket.
fn chaos_receive(
    bytes: &[u8],
    gate: &SequenceGate,
    counters: &TransportCounters,
    supervisor: &Supervisor,
) -> Result<Receipt, AsvError> {
    let frame = match wire::validate(bytes, wire::MAX_MESSAGE_BYTES) {
        Ok(frame) => frame,
        Err(error) => {
            if let AsvError::Wire { fault, .. } = &error {
                counters.record(TransportErrorKind::of_wire(*fault));
            }
            return Ok(Receipt::Rejected);
        }
    };
    let mut failure: Option<AsvError> = None;
    let admit = gate.admit(frame.key, frame.seq, || {
        let mut left = supervisor.recycled_frame(frame.key, frame.width, frame.height);
        let mut right = supervisor.recycled_frame(frame.key, frame.width, frame.height);
        if let Err(error) = frame.fill_planes(&mut left, &mut right) {
            failure = Some(error);
            return Err(());
        }
        match supervisor.submit(frame.key, left, right) {
            Ok(_) => Ok(()),
            Err(error) => {
                failure = Some(error);
                Err(())
            }
        }
    });
    match admit {
        Admit::Delivered => Ok(Receipt::Accepted),
        // The sim treats a pipeline failure as a hard error (the chaos
        // link only injects transport faults, never sink failures).
        Admit::Failed => Err(failure
            .unwrap_or_else(|| AsvError::transport("chaos delivery failed without an error"))),
        Admit::Duplicate => Ok(Receipt::Duplicate),
        Admit::Gap { .. } => {
            counters.record(TransportErrorKind::Gap);
            Ok(Receipt::Rejected)
        }
    }
}

/// Runs the lossy-transport determinism experiment: every session's frames
/// are wire-encoded and pushed through a seeded faulty link
/// (drop/corrupt/truncate/duplicate/reorder) into the real receive pipeline
/// — [`wire::validate`], a [`SequenceGate`], a [`Supervisor`]-fronted
/// [`Cluster`] — with at-least-once retransmission until each frame is
/// acknowledged.  Asserted downstream: every fault was counted, no session
/// wedged, and every session's output is byte-identical to batch.
///
/// Fully deterministic for a given config: single-threaded link, seeded
/// fault rolls.
///
/// # Errors
///
/// Returns the first [`AsvError`] if the serving path itself fails
/// (divergence is recorded in [`ChaosReport::mismatches`], not an error).
pub fn run_chaos_transport_sim(
    pipeline: &IsmPipeline,
    config: &SimConfig,
    chaos: &ChaosConfig,
) -> Result<ChaosReport, AsvError> {
    let streams = generate_streams(config);
    let batch: Vec<IsmResult> = streams
        .iter()
        .map(|s| pipeline.process_sequence(s))
        .collect::<Result<_, _>>()?;

    let shard_config = SchedulerConfig {
        workers: config.workers_per_shard.max(1),
        inbox_capacity: config.inbox_capacity,
        shed_policy: ShedPolicy::Block,
    };
    let cluster = Arc::new(Cluster::new(
        ClusterConfig::new(1).with_shard_config(shard_config),
    ));
    let counters = cluster.transport_counters();
    let state_pipeline = pipeline.clone();
    let supervisor = Supervisor::new(Arc::clone(&cluster), move |_| state_pipeline.state());

    let gate = SequenceGate::new();
    let mut report = ChaosReport {
        frames_delivered: 0,
        frames_dropped: 0,
        frames_corrupted: 0,
        frames_truncated: 0,
        frames_duplicated: 0,
        frames_reordered: 0,
        retransmissions: 0,
        transport_errors: 0,
        frames_compared: 0,
        mismatches: Vec::new(),
    };

    for (i, stream) in streams.iter().enumerate() {
        let key = session_key(i);
        let mut rng =
            SmallRng::seed_from_u64(chaos.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut pending: std::collections::VecDeque<(u64, Vec<u8>)> =
            std::collections::VecDeque::new();
        for (seq, frame) in stream.frames().iter().enumerate() {
            let mut bytes = Vec::new();
            wire::encode_frame_into(&mut bytes, &key, seq as u64, &frame.left, &frame.right)?;
            pending.push_back((seq as u64, bytes));
        }

        'frames: while let Some((seq, bytes)) = pending.pop_front() {
            for _attempt in 0..chaos.max_attempts.max(1) {
                let roll: u32 = rng.gen_range(0u32..1000);
                let drop_at = u32::from(chaos.drop_per_mille);
                let corrupt_at = drop_at + u32::from(chaos.corrupt_per_mille);
                let truncate_at = corrupt_at + u32::from(chaos.truncate_per_mille);
                let reorder_at = truncate_at + u32::from(chaos.reorder_per_mille);
                if roll < drop_at {
                    report.frames_dropped += 1;
                    report.retransmissions += 1;
                    continue;
                }
                if roll < corrupt_at {
                    let mut mangled = bytes.clone();
                    let at = rng.gen_range(0..mangled.len());
                    mangled[at] ^= 0x41;
                    if matches!(
                        chaos_receive(&mangled, &gate, &counters, &supervisor)?,
                        Receipt::Accepted | Receipt::Duplicate
                    ) {
                        report
                            .mismatches
                            .push(format!("{key} seq {seq}: corrupt message was accepted"));
                    }
                    report.frames_corrupted += 1;
                    report.retransmissions += 1;
                    continue;
                }
                if roll < truncate_at {
                    let keep = rng.gen_range(4..bytes.len());
                    if matches!(
                        chaos_receive(&bytes[..keep], &gate, &counters, &supervisor)?,
                        Receipt::Accepted | Receipt::Duplicate
                    ) {
                        report
                            .mismatches
                            .push(format!("{key} seq {seq}: truncated message was accepted"));
                    }
                    report.frames_truncated += 1;
                    report.retransmissions += 1;
                    continue;
                }
                if roll < reorder_at {
                    // The delayed-link case: the next frame overtakes this
                    // one.  The gate must refuse it (gap), keeping it
                    // pending for in-order delivery later.
                    if let Some((ahead_seq, ahead)) = pending.front() {
                        if matches!(
                            chaos_receive(ahead, &gate, &counters, &supervisor)?,
                            Receipt::Accepted | Receipt::Duplicate
                        ) {
                            report.mismatches.push(format!(
                                "{key} seq {ahead_seq}: out-of-order message was accepted"
                            ));
                        }
                        report.frames_reordered += 1;
                    }
                }
                match chaos_receive(&bytes, &gate, &counters, &supervisor)? {
                    Receipt::Accepted => report.frames_delivered += 1,
                    Receipt::Duplicate => {}
                    Receipt::Rejected => {
                        report.retransmissions += 1;
                        continue;
                    }
                }
                if roll >= 1000 - u32::from(chaos.duplicate_per_mille) {
                    if matches!(
                        chaos_receive(&bytes, &gate, &counters, &supervisor)?,
                        Receipt::Accepted
                    ) {
                        report
                            .mismatches
                            .push(format!("{key} seq {seq}: duplicate was re-delivered"));
                    }
                    report.frames_duplicated += 1;
                }
                continue 'frames;
            }
            report.mismatches.push(format!(
                "{key} seq {seq}: wedged after {} delivery attempts",
                chaos.max_attempts
            ));
        }
    }

    report.transport_errors = counters.total();
    supervisor.finish();
    let cluster = Arc::try_unwrap(cluster).expect("supervisor retained a cluster handle");
    let outcome = cluster.join();
    for (i, expected) in batch.iter().enumerate() {
        let key = session_key(i);
        let label = format!("chaos-transport {key}");
        match outcome.session_by_key(&key) {
            Some(session) => {
                if let Some(error) = &session.error {
                    report
                        .mismatches
                        .push(format!("{label}: session failed: {error}"));
                }
                compare_session(
                    &label,
                    expected,
                    &session.frames,
                    &mut report.frames_compared,
                    &mut report.mismatches,
                );
            }
            None => report
                .mismatches
                .push(format!("{label}: session missing from report")),
        }
    }
    Ok(report)
}

/// Parameters of one [`run_failover_sim`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverConfig {
    /// Workload shape (seed, sessions, frames, frame size, shard sizing).
    pub sim: SimConfig,
    /// Scheduler shards in the cluster.
    pub shards: usize,
    /// The shard to kill; `None` kills the shard serving session 0, which
    /// guarantees at least one migration.
    pub victim: Option<usize>,
    /// Frames per session delivered before the kill (must be at least 1).
    pub kill_after: usize,
}

impl FailoverConfig {
    /// The CI scenario: four sessions over three shards, shard killed
    /// mid-stream.
    pub fn ci() -> Self {
        Self {
            sim: SimConfig::small().with_sessions(4).with_frames(6),
            shards: 3,
            victim: None,
            kill_after: 3,
        }
    }
}

/// Outcome of one [`run_failover_sim`] run.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// The shard the sim killed.
    pub victim: usize,
    /// Every re-placement the supervisor performed.
    pub migrations: Vec<MigrationRecord>,
    /// Per session: the frame index that observed the failure and was
    /// re-delivered as the first (key) frame of the new incarnation
    /// (`None` for sessions the kill never touched).
    pub migration_frame: Vec<Option<usize>>,
    /// Frames byte-compared against their baselines.
    pub frames_compared: u64,
    /// Divergences from the byte-identical contract (empty on success).
    pub mismatches: Vec<String>,
    /// Sessions that failed a submit after the kill (must be empty: frame
    /// loss never wedges a session).
    pub wedged: Vec<String>,
    /// The final Prometheus scrape, containing the
    /// `asv_sessions_migrated_total` / `asv_transport_errors_total`
    /// families.
    pub scrape: String,
}

impl FailoverReport {
    /// Whether recovery was deterministic and every session survived.
    pub fn is_deterministic(&self) -> bool {
        self.mismatches.is_empty() && self.wedged.is_empty()
    }
}

/// Runs the shard-failure recovery experiment: the seeded workload streams
/// through a [`Supervisor`]-fronted multi-shard [`Cluster`]; mid-stream one
/// shard is killed ([`Cluster::trip_shard`]).  The supervisor must re-place
/// every session of the dead shard onto survivors with a key-frame re-key,
/// after which each migrated session's output must be byte-identical to a
/// fresh batch run over its post-migration frames — and untouched sessions
/// byte-identical to batch over their full stream.  No session may wedge.
///
/// Single-threaded frame feed: deterministic migration points for a given
/// config.
///
/// # Errors
///
/// Returns the first [`AsvError`] if baseline computation fails (recovery
/// failures are recorded in the report, not returned).
pub fn run_failover_sim(
    pipeline: &IsmPipeline,
    config: &FailoverConfig,
) -> Result<FailoverReport, AsvError> {
    let streams = generate_streams(&config.sim);
    let batch: Vec<IsmResult> = streams
        .iter()
        .map(|s| pipeline.process_sequence(s))
        .collect::<Result<_, _>>()?;

    let shard_config = SchedulerConfig {
        workers: config.sim.workers_per_shard.max(1),
        inbox_capacity: config.sim.inbox_capacity,
        shed_policy: ShedPolicy::Block,
    };
    let cluster = Arc::new(Cluster::new(
        ClusterConfig::new(config.shards.max(2)).with_shard_config(shard_config),
    ));
    let victim = config
        .victim
        .unwrap_or_else(|| cluster.shard_for_key(&session_key(0)));
    let state_pipeline = pipeline.clone();
    let supervisor = Supervisor::new(Arc::clone(&cluster), move |_| state_pipeline.state());

    let sessions = config.sim.sessions;
    let frames = config.sim.frames_per_session;
    let mut migration_frame: Vec<Option<usize>> = vec![None; sessions];
    let mut wedged = Vec::new();
    for f in 0..frames {
        if f == config.kill_after.max(1) {
            cluster.trip_shard(victim, "failover sim kill");
        }
        for (i, stream) in streams.iter().enumerate() {
            let frame = &stream.frames()[f];
            let key = session_key(i);
            match supervisor.submit(&key, frame.left.clone(), frame.right.clone()) {
                Ok(Delivery::Delivered) => {}
                Ok(Delivery::Migrated { .. }) => {
                    if migration_frame[i].is_none() {
                        migration_frame[i] = Some(f);
                    }
                }
                Err(error) => wedged.push(format!("{key} frame {f}: {error}")),
            }
        }
    }

    let migrations = supervisor.migrations();
    supervisor.finish();
    let cluster = Arc::try_unwrap(cluster).expect("supervisor retained a cluster handle");
    let outcome = cluster.join();
    let scrape = outcome.render_prometheus();

    let mut frames_compared = 0u64;
    let mut mismatches = Vec::new();
    for (i, expected) in batch.iter().enumerate() {
        let key = session_key(i);
        match migration_frame[i] {
            None => {
                let label = format!("failover untouched {key}");
                match outcome.session_by_key(&key) {
                    Some(session) => {
                        if let Some(error) = &session.error {
                            mismatches.push(format!("{label}: session failed: {error}"));
                        }
                        compare_session(
                            &label,
                            expected,
                            &session.frames,
                            &mut frames_compared,
                            &mut mismatches,
                        );
                    }
                    None => mismatches.push(format!("{label}: session missing from report")),
                }
            }
            Some(rekey) => {
                // The dead incarnation: whatever prefix it processed before
                // the kill must match the batch prefix byte for byte.
                let old = outcome.shards[victim]
                    .sessions
                    .iter()
                    .find(|s| s.label.as_deref() == Some(key.as_str()));
                match old {
                    Some(session) => {
                        if session.frames.len() > rekey {
                            mismatches.push(format!(
                                "failover dead-shard {key}: processed {} frames, only {rekey} \
                                 were delivered before the kill",
                                session.frames.len()
                            ));
                        } else {
                            compare_frames(
                                &format!("failover dead-shard {key}"),
                                &expected.frames[..session.frames.len()],
                                &session.frames,
                                &mut frames_compared,
                                &mut mismatches,
                            );
                        }
                    }
                    None => {
                        mismatches.push(format!("failover dead-shard {key}: incarnation missing"))
                    }
                }
                // The re-keyed incarnation: byte-identical to a fresh batch
                // run over the post-migration frames.
                let to = migrations
                    .iter()
                    .find(|m| m.key == key)
                    .map(|m| m.to)
                    .unwrap_or(victim);
                let label = format!("failover re-keyed {key}");
                let new = outcome.shards[to]
                    .sessions
                    .iter()
                    .find(|s| s.label.as_deref() == Some(key.as_str()));
                match new {
                    Some(session) => {
                        if let Some(error) = &session.error {
                            mismatches.push(format!("{label}: session failed: {error}"));
                        }
                        let mut state = pipeline.state();
                        let mut suffix = Vec::with_capacity(frames - rekey);
                        for frame in &streams[i].frames()[rekey..] {
                            suffix.push(state.step(&frame.left, &frame.right)?);
                        }
                        if suffix.len() != session.frames.len() {
                            mismatches.push(format!(
                                "{label}: {} frames, expected {} from the re-key point",
                                session.frames.len(),
                                suffix.len()
                            ));
                        } else {
                            compare_frames(
                                &label,
                                &suffix,
                                &session.frames,
                                &mut frames_compared,
                                &mut mismatches,
                            );
                        }
                    }
                    None => mismatches.push(format!("{label}: incarnation missing")),
                }
            }
        }
    }

    Ok(FailoverReport {
        victim,
        migrations,
        migration_frame,
        frames_compared,
        mismatches,
        wedged,
        scrape,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_deterministically() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now_us(), 0);
        let step = clock.advance_us(1_500);
        assert_eq!(step, Duration::from_micros(1_500));
        clock.advance_us(500);
        assert_eq!(clock.now_us(), 2_000);
        assert!((clock.now_seconds() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn workload_generation_is_seed_stable() {
        let config = SimConfig::small().with_sessions(2).with_frames(2);
        let a = generate_streams(&config);
        let b = generate_streams(&config);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            for (fx, fy) in x.frames().iter().zip(y.frames()) {
                assert_eq!(fx.left, fy.left);
                assert_eq!(fx.right, fy.right);
            }
        }
        let other = generate_streams(&config.with_seed(999));
        assert_ne!(
            a[0].frames()[0].left,
            other[0].frames()[0].left,
            "different seeds must produce different workloads"
        );
    }
}
