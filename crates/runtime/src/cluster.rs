//! The multi-scheduler cluster: N independent [`Scheduler`] shards behind
//! one placement layer.
//!
//! # Why shard
//!
//! A single [`Scheduler`] multiplexes many sessions over one worker pool and
//! one engine lock.  Past a few dozen busy streams that lock becomes the
//! contention point: every submit, dispatch and commit serializes on it.  A
//! [`Cluster`] runs `N` fully independent schedulers ("shards"), each with
//! its own lock, worker pool and session table, and only decides *placement*
//! — which shard owns a new session.  After placement the shards never talk
//! to each other, so cluster throughput scales with shard count until the
//! machine itself saturates.
//!
//! # Placement
//!
//! Sessions are placed by consistent hashing of their routing key over a
//! ring of virtual nodes ([`ClusterConfig::replicas`] per shard), so the
//! same key always lands on the same shard and adding shards moves only
//! `~1/N` of the keys.  Two escape hatches exist ([`Placement`]): an
//! explicit pinned shard, and a least-loaded fallback that placement
//! automatically takes when the hashed shard is saturated (every inbox
//! full).
//!
//! # Determinism
//!
//! Placement only chooses *where* a session lives; each session's frames
//! still flow through one shard's FIFO machinery.  Per-session results are
//! therefore byte-identical to a single scheduler and to batch
//! [`asv::IsmPipeline::process_sequence`] — the property the simulation
//! harness in [`crate::sim`] locks down.

use crate::export::render_prometheus;
use crate::net::TransportCounters;
use crate::qos::QosConfig;
use crate::scheduler::{
    RuntimeReport, Scheduler, SchedulerConfig, SchedulerObserver, SessionHandle,
};
use crate::session::SessionReport;
use crate::telemetry::AggregateTelemetry;
use asv::ism::IsmState;
use asv::trace::chrome::ChromeTrace;
use asv::AsvError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs of the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of scheduler shards (clamped to at least 1).
    pub shards: usize,
    /// Configuration every shard's scheduler is built with.
    pub shard: SchedulerConfig,
    /// Virtual nodes per shard on the consistent-hash ring (clamped to at
    /// least 1).  More replicas smooth the key distribution.
    pub replicas: usize,
}

impl ClusterConfig {
    /// A cluster of `shards` shards with per-core schedulers and 16 virtual
    /// nodes per shard.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            shard: SchedulerConfig::per_core(),
            replicas: 16,
        }
    }

    /// Returns the configuration with a different per-shard scheduler
    /// configuration.
    pub fn with_shard_config(mut self, shard: SchedulerConfig) -> Self {
        self.shard = shard;
        self
    }

    /// Returns the configuration with a different virtual-node count.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::new(2)
    }
}

/// How [`Cluster::add_session_with`] chooses a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Consistent hash of the routing key, falling back to the least-loaded
    /// shard when the hashed shard is saturated.  The default.
    Hashed,
    /// Pin the session to a specific shard index (explicit override).
    Pinned(usize),
    /// Ignore the key and place on the shard with the lowest instantaneous
    /// load.
    LeastLoaded,
}

/// 64-bit FNV-1a with a splitmix64 finalizer — deterministic across runs
/// and platforms, which is what a placement function must be (`std`'s
/// `DefaultHasher` explicitly is not).  Raw FNV-1a mixes the final byte
/// through only one multiply, so short keys differing in their last
/// characters ("cam-1", "cam-2", ...) cluster on the ring; the finalizer
/// restores full avalanche.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 30;
    hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hash ^= hash >> 27;
    hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
    hash ^ (hash >> 31)
}

/// The sharded serving engine: a consistent-hash placement layer over `N`
/// independent [`Scheduler`]s.
///
/// See the module documentation for the placement and determinism model.
#[derive(Debug)]
pub struct Cluster {
    shards: Vec<Scheduler>,
    /// Sorted `(hash, shard)` virtual nodes.
    ring: Vec<(u64, usize)>,
    /// Sessions re-placed *away* from each shard after it failed
    /// (`asv_sessions_migrated_total{shard}`); shared with observers.
    migrated: Arc<Vec<AtomicU64>>,
    /// Transport error counters of the cluster's network edge
    /// (`asv_transport_errors_total{kind}`); hand
    /// [`Cluster::transport_counters`] to servers/clients so their failures
    /// surface in this cluster's scrape.
    transport: Arc<TransportCounters>,
    /// Flipped by [`Cluster::begin_drain`] (and by `join`): `/healthz`
    /// answers 503 so load balancers stop routing before sessions drain.
    draining: Arc<AtomicBool>,
}

/// Producer-side handle of one cluster session: the shard's
/// [`SessionHandle`] plus where and under which key the session was placed.
#[derive(Debug, Clone)]
pub struct ClusterSessionHandle {
    shard: usize,
    key: String,
    handle: SessionHandle,
}

impl ClusterSessionHandle {
    /// Index of the shard serving this session.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The routing key the session was registered under.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The underlying per-shard session handle (e.g. to hand to the ingest
    /// layer).
    pub fn handle(&self) -> &SessionHandle {
        &self.handle
    }

    /// Submits one stereo frame to the session's shard; semantics are those
    /// of [`SessionHandle::submit`] under the shard's shed policy.
    ///
    /// # Errors
    ///
    /// Propagates the shard scheduler's error (session failure,
    /// [`AsvError::Shutdown`], or [`AsvError::Saturated`]).
    pub fn submit(&self, left: asv_image::Image, right: asv_image::Image) -> Result<(), AsvError> {
        self.handle.submit(left, right)
    }

    /// Current inbox depth of the session on its shard.
    pub fn queue_depth(&self) -> usize {
        self.handle.queue_depth()
    }
}

/// Everything the cluster produced, returned by [`Cluster::join`].
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-shard runtime reports, indexed by shard.
    pub shards: Vec<RuntimeReport>,
    /// Cross-shard merge of every shard's aggregate telemetry.
    pub aggregate: AggregateTelemetry,
}

impl ClusterReport {
    /// Looks a session report up by its routing key (label), searching all
    /// shards.
    pub fn session_by_key(&self, key: &str) -> Option<&SessionReport> {
        self.shards.iter().find_map(|shard| {
            shard
                .sessions
                .iter()
                .find(|s| s.label.as_deref() == Some(key))
        })
    }

    /// Renders the final per-shard telemetry in Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        let per_shard: Vec<AggregateTelemetry> =
            self.shards.iter().map(|s| s.aggregate.clone()).collect();
        render_prometheus(&per_shard)
    }
}

impl Cluster {
    /// Starts a cluster: `config.shards` independent schedulers, each with
    /// its own worker pool, plus the consistent-hash ring.
    pub fn new(config: ClusterConfig) -> Self {
        let shard_count = config.shards.max(1);
        let replicas = config.replicas.max(1);
        let shards = (0..shard_count)
            .map(|_| Scheduler::new(config.shard))
            .collect();
        let mut ring = Vec::with_capacity(shard_count * replicas);
        for shard in 0..shard_count {
            for replica in 0..replicas {
                ring.push((
                    fnv1a(format!("shard-{shard}/vnode-{replica}").as_bytes()),
                    shard,
                ));
            }
        }
        ring.sort_unstable();
        Self {
            shards,
            ring,
            migrated: Arc::new((0..shard_count).map(|_| AtomicU64::new(0)).collect()),
            transport: Arc::new(TransportCounters::new()),
            draining: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard the consistent-hash ring assigns to `key` (before any
    /// saturation fallback).
    pub fn shard_for_key(&self, key: &str) -> usize {
        let hash = fnv1a(key.as_bytes());
        // First virtual node clockwise from the key's hash, wrapping.
        let at = self.ring.partition_point(|&(h, _)| h < hash);
        self.ring[at % self.ring.len()].1
    }

    /// The shard with the lowest instantaneous load (ties go to the lowest
    /// index).
    pub fn least_loaded_shard(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.load())
            .map(|(i, _)| i)
            .expect("cluster has at least one shard")
    }

    /// Kills one shard (fault injection, or the supervisor reacting to a
    /// detected failure): every session on it dies with
    /// [`AsvError::ShardDown`], queued frames are dropped and counted, and
    /// subsequent placement skips the shard.  See [`Scheduler::trip`].
    pub fn trip_shard(&self, shard: usize, context: impl std::fmt::Display) {
        if let Some(scheduler) = self.shards.get(shard) {
            scheduler.trip(format!("shard {shard}: {context}"));
        }
    }

    /// Whether `shard` has failed (tripped or poisoned).
    pub fn shard_is_failed(&self, shard: usize) -> bool {
        self.shards.get(shard).is_some_and(Scheduler::is_failed)
    }

    /// Number of shards that have not failed.
    pub fn live_shard_count(&self) -> usize {
        self.shards.iter().filter(|s| !s.is_failed()).count()
    }

    /// The shard with the lowest instantaneous load among surviving shards.
    ///
    /// # Errors
    ///
    /// [`AsvError::ShardDown`] when every shard has failed.
    pub fn least_loaded_live_shard(&self) -> Result<usize, AsvError> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_failed())
            .min_by_key(|(_, s)| s.load())
            .map(|(i, _)| i)
            .ok_or_else(|| AsvError::shard_down("every shard in the cluster has failed"))
    }

    /// Failure-aware consistent hashing: walks the ring clockwise from the
    /// key's hash and returns the first virtual node on a surviving shard,
    /// so a key's placement is stable while its shard lives and moves
    /// deterministically when it dies.
    ///
    /// # Errors
    ///
    /// [`AsvError::ShardDown`] when every shard has failed.
    pub fn live_shard_for_key(&self, key: &str) -> Result<usize, AsvError> {
        let hash = fnv1a(key.as_bytes());
        let start = self.ring.partition_point(|&(h, _)| h < hash);
        for k in 0..self.ring.len() {
            let shard = self.ring[(start + k) % self.ring.len()].1;
            if !self.shards[shard].is_failed() {
                return Ok(shard);
            }
        }
        Err(AsvError::shard_down(
            "every shard in the cluster has failed",
        ))
    }

    /// Places a new session on a *surviving* shard: failure-aware
    /// consistent hashing with the least-loaded-live fallback under
    /// saturation.  This is the re-placement path a supervisor takes when a
    /// session's shard dies.
    ///
    /// # Errors
    ///
    /// [`AsvError::ShardDown`] when every shard has failed.
    pub fn add_session_live(
        &self,
        key: &str,
        state: IsmState,
    ) -> Result<ClusterSessionHandle, AsvError> {
        let hashed = self.live_shard_for_key(key)?;
        let shard = if self.shards[hashed].is_saturated() {
            self.least_loaded_live_shard()?
        } else {
            hashed
        };
        let handle = self.shards[shard].add_session_labeled(state, Some(key.to_owned())); // lint: alloc-ok(session placement, once per stream)
        Ok(ClusterSessionHandle {
            shard,
            key: key.to_owned(), // lint: alloc-ok(session placement, once per stream)
            handle,
        })
    }

    /// Records one session migrated away from `from_shard` (the supervisor
    /// calls this after a successful re-placement); exported as
    /// `asv_sessions_migrated_total{shard}`.
    pub fn record_migration(&self, from_shard: usize) {
        if let Some(counter) = self.migrated.get(from_shard) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The transport error counters folded into this cluster's telemetry;
    /// hand them to [`crate::FrameServer`] / [`crate::FrameClient`] so the
    /// network edge's failures appear in the scrape.
    pub fn transport_counters(&self) -> Arc<TransportCounters> {
        Arc::clone(&self.transport)
    }

    /// Marks the cluster as draining: `/healthz` (via [`ClusterObserver`])
    /// answers 503 from here on, while `/metrics` keeps serving.  Called
    /// automatically at the start of [`Cluster::join`]; call it earlier to
    /// give load balancers a head start.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Whether [`Cluster::begin_drain`] (or `join`) has run.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Places a new session by consistent hashing of `key` (with the
    /// least-loaded fallback when the hashed shard is saturated) and
    /// registers it there.
    pub fn add_session(&self, key: &str, state: IsmState) -> ClusterSessionHandle {
        self.add_session_with(Placement::Hashed, key, state)
            .expect("hashed placement cannot fail")
    }

    /// [`Cluster::add_session`] with a per-session key-frame cost metric:
    /// the [`asv::CostMetric`] override takes effect from the stream's first
    /// key frame, so differently-configured streams can share one cluster.
    pub fn add_session_with_metric(
        &self,
        key: &str,
        mut state: IsmState,
        metric: asv::CostMetric,
    ) -> ClusterSessionHandle {
        state.set_cost_metric(metric);
        self.add_session(key, state)
    }

    /// [`Cluster::add_session`] under an SLO: the session's shard attaches a
    /// QoS controller that degrades the stream's ISM knobs when the SLO is
    /// violated and recovers with hysteresis (see
    /// [`Scheduler::add_session_qos`]).  The session's current degradation
    /// level is exported per shard as `asv_qos_level{shard,session}`.
    pub fn add_session_qos(
        &self,
        key: &str,
        state: IsmState,
        qos: QosConfig,
    ) -> ClusterSessionHandle {
        let shard = {
            let hashed = self.shard_for_key(key);
            if self.shards[hashed].is_saturated() {
                self.least_loaded_shard()
            } else {
                hashed
            }
        };
        let handle = self.shards[shard].add_session_qos(state, Some(key.to_owned()), qos);
        ClusterSessionHandle {
            shard,
            key: key.to_owned(),
            handle,
        }
    }

    /// Places a new session with an explicit [`Placement`].
    ///
    /// # Errors
    ///
    /// Returns [`AsvError::Config`] when `Placement::Pinned` names a shard
    /// index out of range.
    pub fn add_session_with(
        &self,
        placement: Placement,
        key: &str,
        state: IsmState,
    ) -> Result<ClusterSessionHandle, AsvError> {
        let shard = match placement {
            Placement::Pinned(shard) => {
                if shard >= self.shards.len() {
                    return Err(AsvError::config(format!(
                        "pinned shard {shard} out of range (cluster has {} shards)",
                        self.shards.len()
                    )));
                }
                shard
            }
            Placement::LeastLoaded => self.least_loaded_shard(),
            Placement::Hashed => {
                let hashed = self.shard_for_key(key);
                if self.shards[hashed].is_saturated() {
                    self.least_loaded_shard()
                } else {
                    hashed
                }
            }
        };
        let handle = self.shards[shard].add_session_labeled(state, Some(key.to_owned()));
        Ok(ClusterSessionHandle {
            shard,
            key: key.to_owned(),
            handle,
        })
    }

    /// Live per-shard telemetry snapshots (the scrape path), including the
    /// cluster-level migration and transport-error counters.
    pub fn telemetry(&self) -> Vec<AggregateTelemetry> {
        let mut per_shard: Vec<AggregateTelemetry> = self
            .shards
            .iter()
            .map(Scheduler::telemetry_snapshot)
            .collect(); // lint: alloc-ok(telemetry snapshot, off the frame path)
        fold_cluster_counters(&mut per_shard, &self.migrated, &self.transport);
        per_shard
    }

    /// Live cross-shard merge of every shard's telemetry.
    pub fn merged_telemetry(&self) -> AggregateTelemetry {
        let mut merged = AggregateTelemetry::default();
        for shard in self.telemetry() {
            merged.merge(&shard);
        }
        merged
    }

    /// Renders the live per-shard telemetry in Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.telemetry())
    }

    /// A detached read-only observation handle over every shard, for the
    /// HTTP metrics endpoint: it can snapshot telemetry and collect frame
    /// traces but cannot place sessions or shut the cluster down.
    pub fn observer(&self) -> ClusterObserver {
        ClusterObserver {
            shards: self.shards.iter().map(Scheduler::observer).collect(),
            migrated: Arc::clone(&self.migrated),
            transport: Arc::clone(&self.transport),
            draining: Arc::clone(&self.draining),
        }
    }

    /// Shuts every shard down (draining its inboxes), joins all worker
    /// pools and returns the per-shard reports plus the cross-shard
    /// telemetry merge.  Flips the drain flag first, so a `/healthz` served
    /// from a still-live observer answers 503 during the drain.
    pub fn join(self) -> ClusterReport {
        self.begin_drain();
        let mut shards: Vec<RuntimeReport> = self.shards.into_iter().map(Scheduler::join).collect();
        for (report, counter) in shards.iter_mut().zip(self.migrated.iter()) {
            report.aggregate.sessions_migrated = counter.load(Ordering::Relaxed);
        }
        if let Some(first) = shards.first_mut() {
            first.aggregate.transport_errors = self.transport.snapshot();
        }
        let mut aggregate = AggregateTelemetry::default();
        for shard in &shards {
            aggregate.merge(&shard.aggregate);
        }
        ClusterReport { shards, aggregate }
    }
}

/// Stamps the cluster-level counters onto the per-shard aggregates:
/// migrations are attributed to the shard the sessions left; the transport
/// counters are a cluster-wide edge concern and ride on the first shard's
/// snapshot (the exporter sums across shards and emits them without a
/// `shard` label).
fn fold_cluster_counters(
    per_shard: &mut [AggregateTelemetry],
    migrated: &[AtomicU64],
    transport: &TransportCounters,
) {
    for (aggregate, counter) in per_shard.iter_mut().zip(migrated) {
        aggregate.sessions_migrated = counter.load(Ordering::Relaxed);
    }
    if let Some(first) = per_shard.first_mut() {
        first.transport_errors = transport.snapshot();
    }
}

/// Read-only cluster-wide observation handle created by
/// [`Cluster::observer`]; cheap to clone and `Send`, so the HTTP endpoint
/// can serve scrapes while the cluster runs.  Snapshots taken after the
/// cluster was joined see empty shards.
#[derive(Debug, Clone)]
pub struct ClusterObserver {
    shards: Vec<SchedulerObserver>,
    migrated: Arc<Vec<AtomicU64>>,
    transport: Arc<TransportCounters>,
    draining: Arc<AtomicBool>,
}

impl ClusterObserver {
    /// Number of shards observed.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether the observed cluster has begun draining (its `join` started
    /// or `begin_drain` ran): the `/healthz` 503 signal.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Number of observed shards that have not failed.
    pub fn live_shard_count(&self) -> usize {
        self.shards.iter().filter(|s| !s.is_failed()).count()
    }

    /// Live per-shard telemetry snapshots, including the cluster-level
    /// migration and transport-error counters.
    pub fn telemetry(&self) -> Vec<AggregateTelemetry> {
        let mut per_shard: Vec<AggregateTelemetry> = self
            .shards
            .iter()
            .map(SchedulerObserver::telemetry_snapshot)
            .collect(); // lint: alloc-ok(telemetry snapshot, off the frame path)
        fold_cluster_counters(&mut per_shard, &self.migrated, &self.transport);
        per_shard
    }

    /// Renders the live per-shard telemetry in Prometheus text format
    /// (the `/metrics` scrape body).
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.telemetry())
    }

    /// Collects every session's captured frame traces into one Chrome
    /// trace-event JSON document (the `/trace` body): one `pid` per shard,
    /// one named `tid` per session.
    pub fn chrome_trace_json(&self) -> String {
        let mut trace = ChromeTrace::new();
        for (pid, shard) in self.shards.iter().enumerate() {
            trace.add_process_name(pid as u32, &format!("shard-{pid}"));
            shard.add_chrome_trace(&mut trace, pid as u32);
        }
        trace.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_only_cluster(shards: usize) -> Cluster {
        // Zero-worker shards: cheap to build, nothing runs.
        Cluster::new(
            ClusterConfig::new(shards)
                .with_shard_config(SchedulerConfig::per_core().with_workers(0)),
        )
    }

    #[test]
    fn hashing_is_deterministic_and_total() {
        let cluster = ring_only_cluster(4);
        for key in ["cam-0", "cam-1", "warehouse/aisle-7", ""] {
            let shard = cluster.shard_for_key(key);
            assert!(shard < 4);
            assert_eq!(shard, cluster.shard_for_key(key), "stable for {key:?}");
        }
    }

    #[test]
    fn keys_spread_over_shards() {
        let cluster = ring_only_cluster(4);
        let mut hit = [0usize; 4];
        for i in 0..256 {
            hit[cluster.shard_for_key(&format!("camera-{i}"))] += 1;
        }
        assert!(
            hit.iter().all(|&h| h > 0),
            "every shard should own keys: {hit:?}"
        );
    }

    #[test]
    fn adding_a_shard_moves_only_some_keys() {
        let four = ring_only_cluster(4);
        let five = ring_only_cluster(5);
        let moved = (0..512)
            .filter(|i| {
                let key = format!("camera-{i}");
                four.shard_for_key(&key) != five.shard_for_key(&key)
            })
            .count();
        // Consistent hashing moves ~1/5 of keys; a modulo scheme moves ~4/5.
        assert!(
            moved < 512 / 2,
            "expected a minority of keys to move, got {moved}/512"
        );
    }
}
