//! The `ASV_*` environment-knob registry: the single in-code source of
//! truth for every environment variable the system reads.
//!
//! Each knob is declared once in [`REGISTRY`] with its accepted values,
//! default, and effect — the same columns as README's "Environment knobs"
//! table, which the `asv-analysis` lint (`ASV-R001`/`ASV-R002`) keeps in
//! sync with the code.  Runtime-owned knobs are *read* through this module
//! too ([`parse`], [`flag_enabled`]); the `ASV_SIMD` and `ASV_TRACE*`
//! readers live in `asv-stereo` / `asv-trace` (which cannot depend on this
//! crate) but their names are still registered here, and the lint
//! (`ASV-R007`) fails if any crate grows an env read this registry does
//! not list.

/// Caps the SIMD dispatch tier of the stereo kernels (read in
/// `asv-stereo`).
pub const SIMD: &str = "ASV_SIMD";
/// Span-recording mode of the tracer (read in `asv-trace`).
pub const TRACE: &str = "ASV_TRACE";
/// Slow-frame forensics threshold in microseconds (read in `asv-trace`).
pub const TRACE_SLOW_US: &str = "ASV_TRACE_SLOW_US";
/// Kill switch for the adaptive QoS controllers.
pub const QOS: &str = "ASV_QOS";
/// Per-operation deadline of the frame client, in milliseconds.
pub const NET_DEADLINE_MS: &str = "ASV_NET_DEADLINE_MS";
/// Maximum unacknowledged frames in flight before the client blocks.
pub const NET_WINDOW: &str = "ASV_NET_WINDOW";
/// Reconnect attempts per operation before the client gives up.
pub const NET_RETRIES: &str = "ASV_NET_RETRIES";
/// First reconnect backoff in milliseconds (doubles per failure).
pub const NET_BACKOFF_MS: &str = "ASV_NET_BACKOFF_MS";
/// Hard ceiling on one wire message, in bytes.
pub const NET_MAX_FRAME_BYTES: &str = "ASV_NET_MAX_FRAME_BYTES";
/// Server-side stall budget inside a message, in milliseconds.
pub const NET_READ_TIMEOUT_MS: &str = "ASV_NET_READ_TIMEOUT_MS";
/// Sessions tracked by the server's sequence gate before eviction.
pub const NET_MAX_SESSIONS: &str = "ASV_NET_MAX_SESSIONS";

/// One registered environment knob: the in-code mirror of a row of
/// README's "Environment knobs" table.
#[derive(Debug, Clone, Copy)]
pub struct Knob {
    /// The environment variable name (`ASV_*`).
    pub name: &'static str,
    /// Accepted values, human-readable.
    pub values: &'static str,
    /// Default when unset (or the value is unparseable).
    pub default: &'static str,
    /// What the knob does.
    pub effect: &'static str,
}

/// Every environment knob the system reads, across all crates.
pub const REGISTRY: &[Knob] = &[
    Knob {
        name: SIMD,
        values: "scalar | sse4.2 | avx2",
        default: "auto-detect",
        effect: "caps the SIMD dispatch tier of the stereo kernels",
    },
    Knob {
        name: TRACE,
        values: "off | ring | full",
        default: "ring",
        effect: "span recording mode of the per-stage tracer",
    },
    Knob {
        name: TRACE_SLOW_US,
        values: "integer microseconds",
        default: "unset",
        effect: "threshold above which a frame is copied into the slow-frame forensics ring",
    },
    Knob {
        name: QOS,
        values: "off | 0 | false disables",
        default: "enabled",
        effect: "kill switch for the adaptive QoS controllers",
    },
    Knob {
        name: NET_DEADLINE_MS,
        values: "integer milliseconds",
        default: "2000",
        effect: "per-operation deadline of the frame client",
    },
    Knob {
        name: NET_WINDOW,
        values: "integer >= 1",
        default: "4",
        effect: "maximum unacknowledged frames in flight",
    },
    Knob {
        name: NET_RETRIES,
        values: "integer",
        default: "5",
        effect: "reconnect attempts per operation",
    },
    Knob {
        name: NET_BACKOFF_MS,
        values: "integer milliseconds",
        default: "50",
        effect: "first reconnect backoff, doubling per consecutive failure",
    },
    Knob {
        name: NET_MAX_FRAME_BYTES,
        values: "integer bytes",
        default: "134217728",
        effect: "hard ceiling on one wire message",
    },
    Knob {
        name: NET_READ_TIMEOUT_MS,
        values: "integer milliseconds",
        default: "2000",
        effect: "server-side stall budget inside a message",
    },
    Knob {
        name: NET_MAX_SESSIONS,
        values: "integer >= 1",
        default: "4096",
        effect: "sessions tracked by the sequence gate before idle eviction",
    },
];

/// The registry entry for `name`, if registered.
pub fn spec(name: &str) -> Option<&'static Knob> {
    REGISTRY.iter().find(|k| k.name == name)
}

/// Reads and parses knob `name`; `None` when unset or unparseable (callers
/// keep their default).
pub fn parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    debug_assert!(spec(name).is_some(), "unregistered env knob {name}");
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Reads an on/off knob with the house convention: unset means enabled,
/// `off` / `0` / `false` (case-insensitive) disable, anything else keeps
/// the feature on.
pub fn flag_enabled(name: &str) -> bool {
    debug_assert!(spec(name).is_some(), "unregistered env knob {name}");
    flag_value_enabled(std::env::var(name).ok().as_deref())
}

/// Pure decision behind [`flag_enabled`].
fn flag_value_enabled(value: Option<&str>) -> bool {
    match value {
        Some(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false"
        ),
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_well_formed() {
        for (i, k) in REGISTRY.iter().enumerate() {
            assert!(
                k.name.starts_with("ASV_"),
                "{} lacks the ASV_ prefix",
                k.name
            );
            assert!(!k.effect.is_empty() && !k.values.is_empty() && !k.default.is_empty());
            assert!(
                REGISTRY[i + 1..].iter().all(|o| o.name != k.name),
                "duplicate registry entry {}",
                k.name
            );
        }
    }

    #[test]
    fn spec_finds_registered_knobs() {
        assert_eq!(spec(NET_WINDOW).expect("registered").default, "4");
        assert!(spec("ASV_NO_SUCH_KNOB").is_none());
    }

    #[test]
    fn flag_convention() {
        assert!(flag_value_enabled(None));
        assert!(flag_value_enabled(Some("on")));
        assert!(flag_value_enabled(Some("anything")));
        assert!(!flag_value_enabled(Some("off")));
        assert!(!flag_value_enabled(Some(" OFF ")));
        assert!(!flag_value_enabled(Some("0")));
        assert!(!flag_value_enabled(Some("false")));
    }
}
