//! Length-prefixed stereo-frame wire format for the networked ingest edge.
//!
//! A message carries one stereo frame (left + right `f32` planes) plus the
//! routing metadata the server needs: session key, per-session sequence
//! number and plane dimensions.  The layout is fixed little-endian:
//!
//! ```text
//! offset  size  field
//!      0     4  length prefix (bytes after this field)
//!      4     4  magic "ASVF"
//!      8     2  format version (currently 1)
//!     10     2  key length in bytes
//!     12     8  sequence number (per session, starting at 0)
//!     20     4  plane width in pixels
//!     24     4  plane height in pixels
//!     28     4  CRC-32 (IEEE) of every byte after the length prefix,
//!               with this field read as zero
//!     32     k  session key (UTF-8)
//!   32+k  4*w*h left plane, f32 little-endian row-major
//!          4*w*h right plane, f32 little-endian row-major
//! ```
//!
//! A second message kind, the session-resume **hello** (magic "ASVH"),
//! shares the same header layout with zero plane dimensions and no payload:
//! it asks the server which sequence number it expects next for the key, so
//! a restarted producer resumes where the session stands instead of being
//! silently deduplicated from 0.  [`validate_message`] distinguishes the
//! two by magic and returns a [`Message`].
//!
//! Design rules, in service of the robustness guarantees the runtime makes:
//!
//! * **No panics on hostile input.**  Every structural violation maps to a
//!   dedicated [`WireFault`] inside [`AsvError::Wire`] — truncated buffers,
//!   oversized length prefixes, bad magic, unsupported versions, checksum
//!   mismatches, invalid UTF-8 keys and inconsistent lengths are all errors,
//!   never indexing faults.
//! * **Allocation-free steady state.**  [`encode_frame_into`] reuses the
//!   caller's buffer and [`decode_frame`] fills planes checked out of a
//!   recycled [`BufferPool`], so a warm server decodes frames without
//!   touching the heap (proven by the counting-allocator test in
//!   `tests/wire.rs`).
//! * **Whole-message integrity.**  The CRC covers the header fields as well
//!   as the key and payload, so a bit flip anywhere after the length prefix
//!   is caught — a flipped length prefix itself is caught by the internal
//!   length consistency check.

use asv::error::WireFault;
use asv::AsvError;
use asv_image::Image;
use asv_mem::BufferPool;

/// The four magic bytes opening every message (after the length prefix).
pub const MAGIC: [u8; 4] = *b"ASVF";

/// The four magic bytes of a session-resume hello message.
pub const HELLO_MAGIC: [u8; 4] = *b"ASVH";

/// The wire-format version this build encodes and accepts.
pub const VERSION: u16 = 1;

/// Hard cap on a session key in bytes, enforced on encode *and* decode:
/// hostile peers cannot grow server-side per-session state (the sequence
/// gate keys on the session key) with multi-kilobyte keys.
pub const MAX_KEY_BYTES: usize = 1024;

/// Byte length of the fixed header, *including* the length prefix.
pub const HEADER_BYTES: usize = 32;

/// Default upper bound on one message (length prefix excluded): a 4K stereo
/// pair with key leaves ample headroom, while a corrupt length prefix can
/// never talk the server into a multi-gigabyte read.
pub const MAX_MESSAGE_BYTES: usize = 128 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time so the runtime carries no dependency.
const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 over multiple slices (state in, state out).
fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC of a full message body: everything after the length prefix, with the
/// four checksum bytes at `[28..32)` treated as zero.
fn message_crc(message: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF;
    crc = crc32_update(crc, &message[4..28]);
    crc = crc32_update(crc, &[0, 0, 0, 0]);
    crc = crc32_update(crc, &message[32..]);
    !crc
}

fn read_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([bytes[at], bytes[at + 1]])
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(raw)
}

/// Total message size (length prefix included) for one frame.
pub fn encoded_len(key: &str, width: usize, height: usize) -> usize {
    HEADER_BYTES + key.len() + 8 * width * height
}

/// Serializes one stereo frame into `out`, replacing its contents.
///
/// The buffer is cleared and refilled, so a caller that reuses the same
/// `Vec` across frames of one stream performs no steady-state allocations
/// (the first frame grows the buffer to its final size).
///
/// # Errors
///
/// [`AsvError::Wire`] with [`WireFault::Length`] when the planes disagree
/// in size, or [`WireFault::Key`] when the key exceeds [`MAX_KEY_BYTES`];
/// encoding performs no I/O and fails on nothing else.
pub fn encode_frame_into(
    out: &mut Vec<u8>,
    key: &str,
    seq: u64,
    left: &Image,
    right: &Image,
) -> Result<(), AsvError> {
    if left.width() != right.width() || left.height() != right.height() {
        return Err(AsvError::wire(
            WireFault::Length,
            format!(
                "left plane {}x{} vs right plane {}x{}",
                left.width(),
                left.height(),
                right.width(),
                right.height()
            ),
        ));
    }
    check_key_len(key.len())?;
    let width = left.width();
    let height = left.height();
    let total = encoded_len(key, width, height);
    out.clear();
    out.reserve(total);
    out.extend_from_slice(&u32::to_le_bytes((total - 4) as u32));
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(width as u32).to_le_bytes());
    out.extend_from_slice(&(height as u32).to_le_bytes());
    out.extend_from_slice(&[0, 0, 0, 0]); // CRC placeholder, patched below.
    out.extend_from_slice(key.as_bytes());
    for &px in left.as_slice() {
        out.extend_from_slice(&px.to_le_bytes());
    }
    for &px in right.as_slice() {
        out.extend_from_slice(&px.to_le_bytes());
    }
    let crc = message_crc(out);
    out[28..32].copy_from_slice(&crc.to_le_bytes());
    Ok(())
}

fn check_key_len(len: usize) -> Result<(), AsvError> {
    if len > MAX_KEY_BYTES {
        return Err(AsvError::wire(
            WireFault::Key,
            format!("session key of {len} bytes exceeds the {MAX_KEY_BYTES} byte cap"), // lint: alloc-ok(error path, frame already rejected)
        ));
    }
    Ok(())
}

/// Serializes a session-resume hello for `key` into `out`, replacing its
/// contents.  Same header layout as a frame, magic [`HELLO_MAGIC`], zero
/// plane dimensions, no payload.
///
/// # Errors
///
/// [`AsvError::Wire`] with [`WireFault::Key`] when the key exceeds
/// [`MAX_KEY_BYTES`].
pub fn encode_hello_into(out: &mut Vec<u8>, key: &str) -> Result<(), AsvError> {
    check_key_len(key.len())?;
    let total = HEADER_BYTES + key.len();
    out.clear();
    out.reserve(total);
    out.extend_from_slice(&u32::to_le_bytes((total - 4) as u32));
    out.extend_from_slice(&HELLO_MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes()); // sequence field, unused
    out.extend_from_slice(&0u32.to_le_bytes()); // width
    out.extend_from_slice(&0u32.to_le_bytes()); // height
    out.extend_from_slice(&[0, 0, 0, 0]); // CRC placeholder, patched below.
    out.extend_from_slice(key.as_bytes());
    let crc = message_crc(out);
    out[28..32].copy_from_slice(&crc.to_le_bytes());
    Ok(())
}

/// A validated view into an encoded message: header fields plus borrowed
/// plane bytes, produced by [`validate`] without touching the heap.
#[derive(Debug)]
pub struct FrameRef<'a> {
    /// Session key routing this frame.
    pub key: &'a str,
    /// Per-session sequence number.
    pub seq: u64,
    /// Plane width in pixels.
    pub width: usize,
    /// Plane height in pixels.
    pub height: usize,
    left_bytes: &'a [u8],
    right_bytes: &'a [u8],
}

impl FrameRef<'_> {
    /// Deserializes the two planes into `data` buffers of exactly
    /// `width * height` elements (checked), little-endian.
    fn fill_plane(bytes: &[u8], data: &mut [f32]) {
        for (dst, raw) in data.iter_mut().zip(bytes.chunks_exact(4)) {
            *dst = f32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]);
        }
    }

    /// Builds the left plane from a recycled pool buffer.
    pub fn left_into(&self, pool: &mut BufferPool) -> Image {
        let mut data = pool.take_scratch(self.width * self.height);
        Self::fill_plane(self.left_bytes, &mut data);
        Image::from_vec(self.width, self.height, data)
            .expect("pool buffer has exactly width * height pixels")
    }

    /// Builds the right plane from a recycled pool buffer.
    pub fn right_into(&self, pool: &mut BufferPool) -> Image {
        let mut data = pool.take_scratch(self.width * self.height);
        Self::fill_plane(self.right_bytes, &mut data);
        Image::from_vec(self.width, self.height, data)
            .expect("pool buffer has exactly width * height pixels")
    }

    /// Deserializes both planes into caller-provided images, which must
    /// already have this frame's dimensions (e.g. recycled from the target
    /// shard's frame pool) — the zero-allocation server path.
    ///
    /// # Errors
    ///
    /// [`AsvError::Wire`] with [`WireFault::Length`] when either image's
    /// dimensions disagree with the header.
    pub fn fill_planes(&self, left: &mut Image, right: &mut Image) -> Result<(), AsvError> {
        for (plane, image) in [(self.left_bytes, &mut *left), (self.right_bytes, right)] {
            if image.width() != self.width || image.height() != self.height {
                return Err(AsvError::wire(
                    WireFault::Length,
                    format!(
                        "provided {}x{} plane for a {}x{} frame",
                        image.width(),
                        image.height(),
                        self.width,
                        self.height
                    ),
                ));
            }
            Self::fill_plane(plane, image.as_mut_slice());
        }
        Ok(())
    }
}

/// One decoded stereo frame with owned planes (see [`decode_frame`]).
#[derive(Debug)]
pub struct WireFrame<'a> {
    /// Session key routing this frame (borrowed from the input buffer).
    pub key: &'a str,
    /// Per-session sequence number.
    pub seq: u64,
    /// Left plane.
    pub left: Image,
    /// Right plane.
    pub right: Image,
}

/// One structurally validated wire message.
#[derive(Debug)]
pub enum Message<'a> {
    /// A stereo frame.
    Frame(FrameRef<'a>),
    /// A session-resume hello: the peer asks which sequence number is
    /// expected next for this session key.
    Hello {
        /// Session key being resumed.
        key: &'a str,
    },
}

/// Structurally validates one complete message (length prefix included) and
/// returns a borrowed view of its fields — a frame or a hello, decided by
/// the magic bytes.  Performs every check of the format — length
/// consistency, magic, version, key cap, CRC, key UTF-8 — without
/// allocating.
///
/// # Errors
///
/// [`AsvError::Wire`] carrying the exact [`WireFault`]; see the module
/// documentation for the full list.
pub fn validate_message(bytes: &[u8], max_message_bytes: usize) -> Result<Message<'_>, AsvError> {
    if bytes.len() < 4 {
        return Err(AsvError::wire(
            WireFault::Truncated,
            format!("{} bytes cannot hold the length prefix", bytes.len()), // lint: alloc-ok(error path, frame already rejected)
        ));
    }
    let declared = read_u32(bytes, 0) as usize;
    if declared > max_message_bytes {
        return Err(AsvError::wire(
            WireFault::Oversized,
            format!("length prefix {declared} exceeds the {max_message_bytes} byte limit"), // lint: alloc-ok(error path, frame already rejected)
        ));
    }
    if bytes.len() < 4 + declared {
        return Err(AsvError::wire(
            WireFault::Truncated,
            format!("{} bytes for a declared {}", bytes.len(), 4 + declared), // lint: alloc-ok(error path, frame already rejected)
        ));
    }
    if bytes.len() > 4 + declared {
        return Err(AsvError::wire(
            WireFault::Length,
            // lint: alloc-ok(error path, frame already rejected)
            format!(
                "{} bytes but the prefix declares {}",
                bytes.len(),
                4 + declared
            ),
        ));
    }
    if declared < HEADER_BYTES - 4 {
        return Err(AsvError::wire(
            WireFault::Truncated,
            format!("declared body of {declared} bytes is shorter than the header"), // lint: alloc-ok(error path, frame already rejected)
        ));
    }
    let is_hello = if bytes[4..8] == MAGIC {
        false
    } else if bytes[4..8] == HELLO_MAGIC {
        true
    } else {
        return Err(AsvError::wire(
            WireFault::BadMagic,
            format!("{:02x?} is neither ASVF nor ASVH", &bytes[4..8]), // lint: alloc-ok(error path, frame already rejected)
        ));
    };
    let version = read_u16(bytes, 8);
    if version != VERSION {
        return Err(AsvError::wire(
            WireFault::Version,
            format!("version {version} (this build speaks {VERSION})"), // lint: alloc-ok(error path, frame already rejected)
        ));
    }
    let key_len = read_u16(bytes, 10) as usize;
    check_key_len(key_len)?;
    let seq = read_u64(bytes, 12);
    let width = read_u32(bytes, 20) as usize;
    let height = read_u32(bytes, 24) as usize;
    if is_hello && (width != 0 || height != 0) {
        return Err(AsvError::wire(
            WireFault::Length,
            format!("hello message declares {width}x{height} planes"), // lint: alloc-ok(error path, frame already rejected)
        ));
    }
    let pixels = width
        .checked_mul(height)
        .and_then(|p| p.checked_mul(8))
        .ok_or_else(|| {
            AsvError::wire(
                WireFault::Length,
                format!("plane {width}x{height} overflows"), // lint: alloc-ok(error path, frame already rejected)
            )
        })?;
    let expected = HEADER_BYTES - 4 + key_len + pixels;
    if declared != expected {
        return Err(AsvError::wire(
            WireFault::Length,
            // lint: alloc-ok(error path, frame already rejected)
            format!(
                "prefix declares {declared} bytes but key {key_len} + planes {width}x{height} \
                 need {expected}"
            ),
        ));
    }
    let stored_crc = read_u32(bytes, 28);
    let computed = message_crc(bytes);
    if stored_crc != computed {
        return Err(AsvError::wire(
            WireFault::Crc,
            format!("stored {stored_crc:#010x} vs computed {computed:#010x}"), // lint: alloc-ok(error path, frame already rejected)
        ));
    }
    let key = std::str::from_utf8(&bytes[HEADER_BYTES..HEADER_BYTES + key_len])
        .map_err(|e| AsvError::wire(WireFault::Key, format!("session key is not UTF-8: {e}")))?; // lint: alloc-ok(error path, frame already rejected)
    if is_hello {
        return Ok(Message::Hello { key });
    }
    let planes = &bytes[HEADER_BYTES + key_len..];
    let (left_bytes, right_bytes) = planes.split_at(pixels / 2);
    Ok(Message::Frame(FrameRef {
        key,
        seq,
        width,
        height,
        left_bytes,
        right_bytes,
    }))
}

/// [`validate_message`] narrowed to stereo frames: a structurally valid
/// hello is refused with [`WireFault::BadMagic`].
///
/// # Errors
///
/// Same conditions as [`validate_message`].
pub fn validate(bytes: &[u8], max_message_bytes: usize) -> Result<FrameRef<'_>, AsvError> {
    match validate_message(bytes, max_message_bytes)? {
        Message::Frame(frame) => Ok(frame),
        Message::Hello { .. } => Err(AsvError::wire(
            WireFault::BadMagic,
            "hello message where a stereo frame was required".to_owned(),
        )),
    }
}

/// [`validate`] plus plane deserialization into recycled pool buffers.
///
/// A warm pool (one that has absorbed the planes of a previous same-sized
/// frame) makes this completely allocation-free; the returned key borrows
/// from `bytes`.
///
/// # Errors
///
/// Same conditions as [`validate`].
pub fn decode_frame<'a>(
    bytes: &'a [u8],
    max_message_bytes: usize,
    pool: &mut BufferPool,
) -> Result<WireFrame<'a>, AsvError> {
    let frame = validate(bytes, max_message_bytes)?;
    let left = frame.left_into(pool);
    let right = frame.right_into(pool);
    Ok(WireFrame {
        key: frame.key,
        seq: frame.seq,
        left,
        right,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_the_ieee_reference_vector() {
        // The canonical check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(!crc32_update(0xFFFF_FFFF, b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encoded_layout_is_stable() {
        let left = Image::zeros(2, 1);
        let right = Image::zeros(2, 1);
        let mut out = Vec::new();
        encode_frame_into(&mut out, "cam", 7, &left, &right).unwrap();
        assert_eq!(out.len(), encoded_len("cam", 2, 1));
        assert_eq!(read_u32(&out, 0) as usize, out.len() - 4);
        assert_eq!(&out[4..8], b"ASVF");
        assert_eq!(read_u16(&out, 8), VERSION);
        assert_eq!(read_u16(&out, 10), 3);
        assert_eq!(read_u64(&out, 12), 7);
        assert_eq!(read_u32(&out, 20), 2);
        assert_eq!(read_u32(&out, 24), 1);
        assert_eq!(&out[32..35], b"cam");
    }

    #[test]
    fn mismatched_planes_refuse_to_encode() {
        let left = Image::zeros(2, 2);
        let right = Image::zeros(2, 3);
        let err = encode_frame_into(&mut Vec::new(), "cam", 0, &left, &right).unwrap_err();
        assert!(matches!(
            err,
            AsvError::Wire {
                fault: WireFault::Length,
                ..
            }
        ));
    }
}
