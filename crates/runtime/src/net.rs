//! Fault-tolerant TCP frame transport: the networked ingest edge.
//!
//! Mirrors the dependency-free style of [`crate::http`]: everything is
//! `std::net` + threads, no async runtime, no protocol crates.  Three
//! pieces:
//!
//! * [`FrameServer`] — a `TcpListener` accept loop; each connection reads
//!   length-prefixed [`crate::wire`] messages, validates them (magic,
//!   version, CRC, lengths), deduplicates by per-session sequence number
//!   ([`SequenceGate`]) and hands accepted frames to a [`FrameSink`]
//!   (typically a [`crate::Supervisor`] routing into the cluster).  A
//!   half-written message on disconnect is discarded whole — it can never
//!   reach a session — and every structural failure increments one
//!   [`TransportErrorKind`] counter.  Finished connection threads and
//!   their entries are reaped as clients churn.
//! * [`FrameClient`] — the camera side: per-session sequence numbering, a
//!   bounded in-flight window, per-operation deadline, and reconnect with
//!   exponential backoff + seeded jitter.  Unacknowledged frames are
//!   retransmitted on a fresh connection; the server's sequence gate turns
//!   at-least-once retransmission into exactly-once, in-order delivery by
//!   running admission and delivery as one per-session critical section
//!   and committing the sequence advance only after the sink accepts the
//!   frame.  A client with no sequence state for a key (first use, or a
//!   restarted producer) opens with a hello handshake and resumes at the
//!   server's expected sequence instead of being silently deduplicated.
//! * [`TransportCounters`] — lock-free error counters by kind, exported as
//!   the `asv_transport_errors_total{kind}` Prometheus family.
//!
//! Backpressure flows end-to-end: a slow shard blocks [`FrameSink::deliver`]
//! (under [`crate::ShedPolicy::Block`]), which stalls the connection thread,
//! which fills the TCP window, which parks the client in `write` — the same
//! lossless-by-default story as the in-process ingest path.
//!
//! The `ASV_NET_*` environment knobs (see [`ClientConfig::from_env`] and
//! [`NetConfig::from_env`]) configure deadlines, window, retry budget, the
//! maximum accepted message size and the tracked-session cap.

use crate::knobs;
use crate::wire;
use asv::error::WireFault;
use asv::AsvError;
use asv_image::Image;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Pause after a failed `accept()` before retrying (see [`crate::http`]).
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(50);

/// Acknowledgement magic byte, size and status codes: one fixed 10-byte
/// record `[b'K', status, value as u64 LE]` per accepted message, where
/// `value` is the frame's sequence number — or, for a hello reply
/// (`ACK_EXPECTED`), the next sequence number the server expects.
const ACK_MAGIC: u8 = b'K';
const ACK_BYTES: usize = 10;
const ACK_ACCEPTED: u8 = 0;
const ACK_DUPLICATE: u8 = 1;
const ACK_GAP: u8 = 2;
const ACK_ERROR: u8 = 3;
const ACK_EXPECTED: u8 = 4;

/// Why a transport operation failed; the `kind` label of
/// `asv_transport_errors_total`.  Wire faults map one-to-one; `Io` and
/// `Deadline` cover socket failures and missed per-frame deadlines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportErrorKind {
    /// Wire message with bad magic bytes.
    BadMagic,
    /// Wire message with an unsupported format version.
    Version,
    /// Message truncated: the connection died mid-frame.
    Truncated,
    /// Length prefix above the configured maximum message size.
    Oversized,
    /// Frame checksum mismatch.
    Crc,
    /// Session key not valid UTF-8.
    Key,
    /// Internally inconsistent message lengths.
    Length,
    /// A sequence-number gap: frames lost or reordered in flight.
    Gap,
    /// A socket-level failure (connect, read or write).
    Io,
    /// A per-frame deadline expired (connect, write or ack wait).
    Deadline,
}

impl TransportErrorKind {
    /// Number of kinds (the counter-array length).
    pub const COUNT: usize = 10;

    /// Every kind, in `index` order.
    pub const ALL: [TransportErrorKind; TransportErrorKind::COUNT] = [
        TransportErrorKind::BadMagic,
        TransportErrorKind::Version,
        TransportErrorKind::Truncated,
        TransportErrorKind::Oversized,
        TransportErrorKind::Crc,
        TransportErrorKind::Key,
        TransportErrorKind::Length,
        TransportErrorKind::Gap,
        TransportErrorKind::Io,
        TransportErrorKind::Deadline,
    ];

    /// Stable lower-case name (the Prometheus `kind` label value).
    pub fn name(self) -> &'static str {
        match self {
            TransportErrorKind::Io => "io",
            TransportErrorKind::Deadline => "deadline",
            other => other
                .as_wire_fault()
                .expect("every non-io kind maps to a wire fault")
                .name(),
        }
    }

    /// Position in [`TransportErrorKind::ALL`] and the counter array.
    pub fn index(self) -> usize {
        match self {
            TransportErrorKind::BadMagic => 0,
            TransportErrorKind::Version => 1,
            TransportErrorKind::Truncated => 2,
            TransportErrorKind::Oversized => 3,
            TransportErrorKind::Crc => 4,
            TransportErrorKind::Key => 5,
            TransportErrorKind::Length => 6,
            TransportErrorKind::Gap => 7,
            TransportErrorKind::Io => 8,
            TransportErrorKind::Deadline => 9,
        }
    }

    /// The [`WireFault`] this kind mirrors (`None` for `Io`/`Deadline`).
    pub fn as_wire_fault(self) -> Option<WireFault> {
        Some(match self {
            TransportErrorKind::BadMagic => WireFault::BadMagic,
            TransportErrorKind::Version => WireFault::Version,
            TransportErrorKind::Truncated => WireFault::Truncated,
            TransportErrorKind::Oversized => WireFault::Oversized,
            TransportErrorKind::Crc => WireFault::Crc,
            TransportErrorKind::Key => WireFault::Key,
            TransportErrorKind::Length => WireFault::Length,
            TransportErrorKind::Gap => WireFault::Gap,
            TransportErrorKind::Io | TransportErrorKind::Deadline => return None,
        })
    }

    /// Maps a decode fault to its counter kind.
    pub fn of_wire(fault: WireFault) -> Self {
        match fault {
            WireFault::BadMagic => TransportErrorKind::BadMagic,
            WireFault::Version => TransportErrorKind::Version,
            WireFault::Truncated => TransportErrorKind::Truncated,
            WireFault::Oversized => TransportErrorKind::Oversized,
            WireFault::Crc => TransportErrorKind::Crc,
            WireFault::Key => TransportErrorKind::Key,
            WireFault::Length => TransportErrorKind::Length,
            WireFault::Gap => TransportErrorKind::Gap,
        }
    }
}

/// Process-wide transport error counters, shared by servers, clients and
/// the cluster's telemetry fold (`asv_transport_errors_total{kind}`).
/// Lock-free: one relaxed atomic per kind.
#[derive(Debug, Default)]
pub struct TransportCounters {
    counts: [AtomicU64; TransportErrorKind::COUNT],
}

impl TransportCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments one kind.
    pub fn record(&self, kind: TransportErrorKind) {
        self.counts[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Current count of one kind.
    pub fn count(&self, kind: TransportErrorKind) -> u64 {
        self.counts[kind.index()].load(Ordering::Relaxed)
    }

    /// All counts, indexed like [`TransportErrorKind::ALL`].
    pub fn snapshot(&self) -> [u64; TransportErrorKind::COUNT] {
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }

    /// Sum over every kind.
    pub fn total(&self) -> u64 {
        self.snapshot().iter().sum()
    }
}

/// Default cap on sessions tracked by a [`SequenceGate`]; see
/// [`NetConfig::max_sessions`].
pub const DEFAULT_MAX_SESSIONS: usize = 4096;

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Per-session sequence bookkeeping turning at-least-once retransmission
/// into exactly-once, in-order delivery: each session's frames must arrive
/// in order (`0, 1, 2, ...`); already-delivered numbers are duplicates
/// (acked but not re-delivered), future numbers are gaps (lost or
/// reordered frames).
///
/// Admission and delivery form one critical section per session:
/// [`SequenceGate::admit`] runs the delivery closure while holding that
/// session's slot lock and commits the sequence advance only after the
/// closure succeeds.  Both halves are load-bearing for the byte-identical
/// determinism contract:
///
/// * two connections racing on one session (a deadline-reconnect whose
///   predecessor is still blocked inside a backpressured delivery) cannot
///   interleave — the successor waits on the slot until the predecessor's
///   outcome is decided, so the sink sees frames strictly in sequence
///   order;
/// * a failed delivery (e.g. a saturated shard under
///   [`crate::ShedPolicy::Reject`]) does not advance the sequence, so the
///   client's retransmission of that frame is delivered instead of being
///   misclassified as an already-delivered duplicate — no frame is ever
///   acknowledged-but-lost.
///
/// The gate tracks at most `max_sessions` sessions; beyond the cap the
/// least-recently-active *idle* session is evicted, so hostile or churny
/// key sets cannot grow server memory without bound.  An evicted session's
/// next frame is refused as an explicit gap, never silently misdelivered.
#[derive(Debug)]
pub struct SequenceGate {
    inner: Mutex<GateMap>,
    max_sessions: usize,
}

#[derive(Debug, Default)]
struct GateMap {
    sessions: HashMap<String, SessionEntry>,
    /// Monotonic touch stamp driving least-recently-active eviction.
    clock: u64,
}

#[derive(Debug)]
struct SessionEntry {
    /// The next expected sequence number, doubling as the per-session
    /// delivery lock.
    slot: Arc<Mutex<u64>>,
    touched: u64,
}

impl Default for SequenceGate {
    fn default() -> Self {
        Self::with_max_sessions(DEFAULT_MAX_SESSIONS)
    }
}

/// [`SequenceGate::admit`]'s verdict for one arriving frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// The expected next frame: delivered, sequence advanced.
    Delivered,
    /// The expected next frame, but delivery failed; the sequence was
    /// *not* advanced, so a retransmission will be delivered.
    Failed,
    /// Already delivered (a retransmission): acknowledge, do not deliver.
    Duplicate,
    /// Ahead of the expected number: frames in between are missing.
    Gap {
        /// The sequence number the gate expected.
        expected: u64,
    },
}

impl SequenceGate {
    /// An empty gate with the default session cap (every session starts at
    /// sequence 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty gate evicting idle sessions beyond `max_sessions` (≥ 1).
    pub fn with_max_sessions(max_sessions: usize) -> Self {
        Self {
            inner: Mutex::new(GateMap::default()),
            max_sessions: max_sessions.max(1),
        }
    }

    /// Fetches (or creates) `key`'s slot and stamps it most recently
    /// active, evicting the stalest idle sessions beyond the cap.  The map
    /// lock is held only here — never across a delivery.
    fn slot(&self, key: &str) -> Arc<Mutex<u64>> {
        let mut map = lock(&self.inner);
        map.clock += 1;
        let clock = map.clock;
        if let Some(entry) = map.sessions.get_mut(key) {
            entry.touched = clock;
            return Arc::clone(&entry.slot); // lint: alloc-ok(Arc refcount bump, no heap alloc)
        }
        while map.sessions.len() >= self.max_sessions {
            // An entry whose slot Arc is held only by the map has no
            // delivery in flight; evict the stalest such session.
            let stalest = map
                .sessions
                .iter()
                .filter(|(_, entry)| Arc::strong_count(&entry.slot) == 1)
                .min_by_key(|(_, entry)| entry.touched)
                .map(|(key, _)| key.clone()); // lint: alloc-ok(stale-session eviction, bounded by max_sessions)
            match stalest {
                Some(stale) => {
                    map.sessions.remove(&stale);
                }
                // Every tracked session is mid-delivery: overshoot rather
                // than evict live state.
                None => break,
            }
        }
        let slot = Arc::new(Mutex::new(0)); // lint: alloc-ok(new-session slot, once per stream)
        map.sessions.insert(
            key.to_owned(), // lint: alloc-ok(new-session slot, once per stream)
            SessionEntry {
                slot: Arc::clone(&slot), // lint: alloc-ok(new-session slot, once per stream)
                touched: clock,
            },
        );
        slot
    }

    /// Classifies `seq` for `key`; when it is the expected next frame,
    /// runs `deliver` while holding the session's delivery lock and
    /// advances the expected number only if it succeeds.  Concurrent calls
    /// for one session serialize here, so delivery order is sequence
    /// order.  Allocates only on a session's first frame.
    pub fn admit(&self, key: &str, seq: u64, deliver: impl FnOnce() -> Result<(), ()>) -> Admit {
        let slot = self.slot(key);
        let mut next = lock(&slot);
        if seq < *next {
            Admit::Duplicate
        } else if seq > *next {
            Admit::Gap { expected: *next }
        } else if deliver().is_ok() {
            *next += 1;
            Admit::Delivered
        } else {
            Admit::Failed
        }
    }

    /// The next sequence number expected for `key` (0 for unseen keys) —
    /// the hello reply.  Waits behind an in-flight delivery for `key`, so
    /// the answer reflects a committed state.
    pub fn expected(&self, key: &str) -> u64 {
        let slot = {
            let map = lock(&self.inner);
            match map.sessions.get(key) {
                Some(entry) => Arc::clone(&entry.slot),
                None => return 0,
            }
        };
        let next = *lock(&slot);
        next
    }

    /// Number of sessions currently tracked.
    pub fn sessions(&self) -> usize {
        lock(&self.inner).sessions.len()
    }
}

/// Where the server puts accepted frames.  Implemented by
/// [`crate::Supervisor`] (cluster routing with shard-failure re-placement);
/// implement it yourself to feed any other consumer.
pub trait FrameSink: Send + Sync {
    /// Delivers one deduplicated, validated frame.  May block (that is the
    /// backpressure path); an error is reported to the client as a rejected
    /// frame.
    ///
    /// # Errors
    ///
    /// Implementation-defined; the server acknowledges the frame as failed.
    fn deliver(&self, key: &str, seq: u64, left: Image, right: Image) -> Result<(), AsvError>;

    /// A `width x height` plane for the decoder to fill, ideally recycled
    /// from the target session's frame pool so the steady-state decode path
    /// performs no allocations.  The default allocates a zeroed plane.
    fn recycled_frame(&self, key: &str, width: usize, height: usize) -> Image {
        let _ = key;
        Image::zeros(width, height)
    }
}

/// Server-side transport configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Hard ceiling on one message's declared length; a corrupt length
    /// prefix can never talk the server into unbounded reads.
    pub max_message_bytes: usize,
    /// Read timeout while *inside* a message: a peer that stalls mid-frame
    /// for longer is cut off (the partial frame is discarded).
    pub read_timeout: Duration,
    /// Sessions tracked by the server's [`SequenceGate`] before the
    /// stalest idle session is evicted — bounds server memory against
    /// hostile or churny key sets.
    pub max_sessions: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_message_bytes: wire::MAX_MESSAGE_BYTES,
            read_timeout: Duration::from_secs(2),
            max_sessions: DEFAULT_MAX_SESSIONS,
        }
    }
}

impl NetConfig {
    /// Defaults overridden by `ASV_NET_MAX_FRAME_BYTES`,
    /// `ASV_NET_READ_TIMEOUT_MS` and `ASV_NET_MAX_SESSIONS`.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(bytes) = knobs::parse::<usize>(knobs::NET_MAX_FRAME_BYTES) {
            config.max_message_bytes = bytes;
        }
        if let Some(ms) = knobs::parse::<u64>(knobs::NET_READ_TIMEOUT_MS) {
            config.read_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(sessions) = knobs::parse::<usize>(knobs::NET_MAX_SESSIONS) {
            config.max_sessions = sessions.max(1);
        }
        config
    }
}

/// Client-side transport configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-operation deadline: connect, frame write and ack wait each get
    /// this budget; exceeding it counts a `deadline` transport error and
    /// triggers a reconnect.
    pub deadline: Duration,
    /// Maximum unacknowledged frames in flight before `send` blocks on
    /// acks — bounds client memory and caps the retransmission burst after
    /// a reconnect.
    pub window: usize,
    /// Reconnect attempts per operation before giving up with
    /// [`AsvError::Transport`].
    pub max_retries: u32,
    /// First reconnect backoff; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed of the jitter source (deterministic in tests).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(2),
            window: 4,
            max_retries: 5,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x5EED,
        }
    }
}

impl ClientConfig {
    /// Defaults overridden by `ASV_NET_DEADLINE_MS`, `ASV_NET_WINDOW`,
    /// `ASV_NET_RETRIES` and `ASV_NET_BACKOFF_MS`.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(ms) = knobs::parse::<u64>(knobs::NET_DEADLINE_MS) {
            config.deadline = Duration::from_millis(ms.max(1));
        }
        if let Some(window) = knobs::parse::<usize>(knobs::NET_WINDOW) {
            config.window = window.max(1);
        }
        if let Some(retries) = knobs::parse::<u32>(knobs::NET_RETRIES) {
            config.max_retries = retries;
        }
        if let Some(ms) = knobs::parse::<u64>(knobs::NET_BACKOFF_MS) {
            config.backoff_base = Duration::from_millis(ms.max(1));
        }
        config
    }
}

/// Exponential backoff with jitter: `min(cap, base * 2^attempt)` plus a
/// uniform jitter of up to one `base`, so a fleet of reconnecting cameras
/// does not thundering-herd the server.
pub fn backoff_delay(config: &ClientConfig, attempt: u32, rng: &mut SmallRng) -> Duration {
    let base = config.backoff_base.as_millis() as u64;
    let scaled = base.saturating_mul(1u64 << attempt.min(16));
    let capped = scaled.min(config.backoff_cap.as_millis() as u64);
    let jitter = rng.gen_range(0..base.max(1));
    Duration::from_millis(capped + jitter)
}

/// Outcome of filling a buffer from the socket.
enum ReadOutcome {
    /// Clean close at a message boundary (or server shutdown).
    Closed,
    /// Buffer filled.
    Data,
    /// The connection failed; counted under this kind.
    Failed(TransportErrorKind),
}

/// Fills `buf` completely.  At a message boundary (`boundary`), a clean EOF
/// or an idle read timeout is not an error; inside a message they are
/// `Truncated` / `Deadline` respectively.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    boundary: bool,
) -> ReadOutcome {
    let mut filled = 0;
    loop {
        if stop.load(Ordering::Acquire) {
            return ReadOutcome::Closed;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && boundary {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Failed(TransportErrorKind::Truncated)
                };
            }
            Ok(n) => {
                filled += n;
                if filled == buf.len() {
                    return ReadOutcome::Data;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if filled > 0 || !boundary {
                    return ReadOutcome::Failed(TransportErrorKind::Deadline);
                }
                // Idle at a message boundary: keep waiting (the loop re-checks
                // the stop flag each timeout tick).
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Failed(TransportErrorKind::Io),
        }
    }
}

/// The TCP frame-ingest server: accepts connections, decodes and validates
/// wire messages, deduplicates retransmissions and delivers frames to a
/// [`FrameSink`].  One thread per connection (camera links are few and
/// long-lived); backpressure propagates through blocking delivery.
#[derive(Debug)]
pub struct FrameServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    thread: Option<JoinHandle<()>>,
}

impl FrameServer {
    /// Binds `addr` (port 0 for ephemeral) and starts accepting.  Decode
    /// and transport failures increment `counters`; accepted frames go to
    /// `sink`.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn serve(
        addr: impl ToSocketAddrs,
        sink: Arc<dyn FrameSink>,
        counters: Arc<TransportCounters>,
        config: NetConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let gate = Arc::new(SequenceGate::with_max_sessions(config.max_sessions));
        let stop_flag = Arc::clone(&stop);
        let conn_table = Arc::clone(&conns);
        let thread = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            let mut next_conn_id = 0u64;
            while !stop_flag.load(Ordering::Acquire) {
                // Reap workers whose connections have closed, so a
                // long-running server with churny clients does not
                // accumulate handles without bound.
                let mut i = 0;
                while i < workers.len() {
                    if workers[i].is_finished() {
                        let _ = workers.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stop_flag.load(Ordering::Acquire) {
                            break;
                        }
                        let conn_id = next_conn_id;
                        next_conn_id += 1;
                        if let Ok(clone) = stream.try_clone() {
                            lock(&conn_table).insert(conn_id, clone);
                        }
                        let sink = Arc::clone(&sink);
                        let counters = Arc::clone(&counters);
                        let gate = Arc::clone(&gate);
                        let stop = Arc::clone(&stop_flag);
                        let table = Arc::clone(&conn_table);
                        workers.push(std::thread::spawn(move || {
                            handle_connection(stream, &*sink, &gate, &counters, config, &stop);
                            lock(&table).remove(&conn_id);
                        }));
                    }
                    Err(_) => {
                        if stop_flag.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                    }
                }
            }
            for worker in workers {
                let _ = worker.join();
            }
        });
        Ok(Self {
            addr,
            stop,
            conns,
            thread: Some(thread),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, severs live connections (any half-read message is
    /// discarded) and joins every connection thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        for (_, conn) in lock(&self.conns).drain() {
            // lint: lock-ok(this is TcpStream::shutdown — a syscall, not
            // FrameServer::shutdown — so no workspace lock is re-entered)
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // Wake the accept loop so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for FrameServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One connection's read-decode-deliver-ack loop.  Returns (closing the
/// connection) on clean EOF, shutdown, any transport failure or any wire
/// fault — the client reconnects and retransmits, and the sequence gate
/// (shared across connections) deduplicates and serializes per session.
fn handle_connection(
    mut stream: TcpStream,
    sink: &dyn FrameSink,
    gate: &SequenceGate,
    counters: &TransportCounters,
    config: NetConfig,
    stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    // Reused across messages: after the first frame of a steady stream,
    // reads resize within capacity and decode fills recycled planes — the
    // loop allocates nothing.
    let mut message: Vec<u8> = Vec::new();
    loop {
        let mut prefix = [0u8; 4];
        match read_full(&mut stream, &mut prefix, stop, true) {
            ReadOutcome::Closed => return,
            ReadOutcome::Failed(kind) => {
                counters.record(kind);
                return;
            }
            ReadOutcome::Data => {}
        }
        let declared = u32::from_le_bytes(prefix) as usize;
        if declared > config.max_message_bytes {
            counters.record(TransportErrorKind::Oversized);
            return;
        }
        message.resize(4 + declared, 0);
        message[..4].copy_from_slice(&prefix);
        match read_full(&mut stream, &mut message[4..], stop, false) {
            ReadOutcome::Closed => return,
            ReadOutcome::Failed(kind) => {
                // The half-read message dies here, in a connection-local
                // buffer: nothing of it was delivered, the next session (or
                // reconnect) starts from a clean boundary.
                counters.record(kind);
                return;
            }
            ReadOutcome::Data => {}
        }
        let parsed = match wire::validate_message(&message, config.max_message_bytes) {
            Ok(parsed) => parsed,
            Err(AsvError::Wire { fault, .. }) => {
                counters.record(TransportErrorKind::of_wire(fault));
                return;
            }
            Err(_) => {
                counters.record(TransportErrorKind::Io);
                return;
            }
        };
        let (status, value) = match parsed {
            // Session-resume hello: report the committed expected sequence
            // so a restarted producer picks up where the session stands.
            wire::Message::Hello { key } => (ACK_EXPECTED, gate.expected(key)),
            wire::Message::Frame(frame) => {
                // Admission and delivery run under the session's slot lock:
                // racing connections serialize, and the sequence advances
                // only once the sink has accepted the frame.  Delivery may
                // block — that is the backpressure path, and the client's
                // unsent frames queue in the TCP window.
                let admit = gate.admit(frame.key, frame.seq, || {
                    let mut left = sink.recycled_frame(frame.key, frame.width, frame.height);
                    let mut right = sink.recycled_frame(frame.key, frame.width, frame.height);
                    match frame.fill_planes(&mut left, &mut right) {
                        Ok(()) => sink
                            .deliver(frame.key, frame.seq, left, right)
                            .map_err(|_| ()),
                        Err(AsvError::Wire { fault, .. }) => {
                            counters.record(TransportErrorKind::of_wire(fault));
                            Err(())
                        }
                        Err(_) => Err(()),
                    }
                });
                let status = match admit {
                    Admit::Delivered => ACK_ACCEPTED,
                    Admit::Failed => ACK_ERROR,
                    Admit::Duplicate => ACK_DUPLICATE,
                    Admit::Gap { .. } => {
                        counters.record(TransportErrorKind::Gap);
                        ACK_GAP
                    }
                };
                (status, frame.seq)
            }
        };
        let mut ack = [0u8; ACK_BYTES];
        ack[0] = ACK_MAGIC;
        ack[1] = status;
        ack[2..].copy_from_slice(&value.to_le_bytes());
        if stream.write_all(&ack).is_err() {
            counters.record(TransportErrorKind::Io);
            return;
        }
    }
}

/// The camera-side sender: frames go out with per-session sequence numbers
/// over one TCP connection; on any failure the client reconnects with
/// exponential backoff + jitter and retransmits everything unacknowledged.
/// At most [`ClientConfig::window`] frames are in flight unacknowledged.
#[derive(Debug)]
pub struct FrameClient {
    addr: SocketAddr,
    config: ClientConfig,
    counters: Arc<TransportCounters>,
    rng: SmallRng,
    stream: Option<TcpStream>,
    next_seq: HashMap<String, u64>,
    /// Sent-but-unacknowledged messages, oldest first; retransmitted whole
    /// on reconnect (the server's gate discards duplicates).
    unacked: VecDeque<(u64, Vec<u8>)>,
    /// How many of `unacked` are on the current connection already.
    written: usize,
    /// Recycled encode buffers (acknowledged messages come back here), so
    /// a steady stream encodes without allocating.
    spare: Vec<Vec<u8>>,
}

impl FrameClient {
    /// Resolves `addr` and connects, retrying with backoff per `config`.
    ///
    /// # Errors
    ///
    /// [`AsvError::Transport`] when the address does not resolve or the
    /// connection cannot be established within the retry budget.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, AsvError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| AsvError::transport(format!("address resolution failed: {e}")))?
            .next()
            .ok_or_else(|| AsvError::transport("address resolved to nothing"))?;
        let mut client = Self {
            addr,
            rng: SmallRng::seed_from_u64(config.jitter_seed),
            config,
            counters: Arc::new(TransportCounters::new()),
            stream: None,
            next_seq: HashMap::new(),
            unacked: VecDeque::new(),
            written: 0,
            spare: Vec::new(),
        };
        client.drive(usize::MAX)?;
        Ok(client)
    }

    /// Shares `counters` (e.g. the cluster's) instead of the private set.
    pub fn with_counters(mut self, counters: Arc<TransportCounters>) -> Self {
        self.counters = counters;
        self
    }

    /// The transport error counters this client increments.
    pub fn counters(&self) -> Arc<TransportCounters> {
        Arc::clone(&self.counters)
    }

    /// Frames sent and not yet acknowledged.
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Sends one frame for `key`, assigning the next sequence number.
    /// Blocks while the in-flight window is full (waiting for acks) and
    /// transparently reconnects + retransmits on transport failures.
    ///
    /// The first frame of each key starts with a hello handshake: the
    /// client asks the server which sequence number the session stands at
    /// and resumes there, so a restarted producer keeps delivering instead
    /// of having every frame silently acknowledged as a duplicate.
    ///
    /// # Errors
    ///
    /// [`AsvError::Wire`] when the planes disagree in size or the key
    /// exceeds [`wire::MAX_KEY_BYTES`], and [`AsvError::Transport`] when
    /// the retry budget is exhausted or the server reports a protocol
    /// failure (sequence gap).
    pub fn send(&mut self, key: &str, left: &Image, right: &Image) -> Result<(), AsvError> {
        let seq = match self.next_seq.get(key) {
            Some(&seq) => seq,
            None => self.resume(key)?,
        };
        let mut buf = self.spare.pop().unwrap_or_default();
        wire::encode_frame_into(&mut buf, key, seq, left, right)?;
        self.next_seq.insert(key.to_owned(), seq + 1);
        self.unacked.push_back((seq, buf));
        let window = self.config.window.max(1);
        self.drive(window.saturating_sub(1))
    }

    /// The hello handshake for a key this client has no sequence state
    /// for: drains in-flight acks, then asks the server for the session's
    /// expected next sequence number, retrying with backoff like any other
    /// operation.
    fn resume(&mut self, key: &str) -> Result<u64, AsvError> {
        self.drive(0)?;
        let mut hello = self.spare.pop().unwrap_or_default();
        wire::encode_hello_into(&mut hello, key)?;
        let mut attempts = 0u32;
        let result = loop {
            match self.try_hello(&hello) {
                Ok(expected) => break Ok(expected),
                Err(e) => {
                    if let Err(fatal) = self.back_off(&e, &mut attempts) {
                        break Err(fatal);
                    }
                }
            }
        };
        hello.clear();
        self.spare.push(hello);
        result
    }

    /// One hello round-trip on the current (or a fresh) connection.
    fn try_hello(&mut self, hello: &[u8]) -> std::io::Result<u64> {
        let stream = self.ensure_connected()?;
        stream.write_all(hello)?;
        let mut ack = [0u8; ACK_BYTES];
        stream.read_exact(&mut ack)?;
        if ack[0] != ACK_MAGIC || ack[1] != ACK_EXPECTED {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bad hello reply",
            ));
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&ack[2..]);
        Ok(u64::from_le_bytes(raw))
    }

    /// Blocks until every sent frame is acknowledged.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FrameClient::send`].
    pub fn flush(&mut self) -> Result<(), AsvError> {
        self.drive(0)
    }

    /// Writes every pending message and reads acks until at most
    /// `target_unacked` remain in flight, reconnecting on failure.
    fn drive(&mut self, target_unacked: usize) -> Result<(), AsvError> {
        let mut attempts = 0u32;
        loop {
            let step = self.try_drive(target_unacked);
            match step {
                Ok(None) => return Ok(()),
                Ok(Some(error)) => return Err(error),
                Err(e) => self.back_off(&e, &mut attempts)?,
            }
        }
    }

    /// Connects (with deadline) if no connection is live, resetting the
    /// retransmission cursor.
    fn ensure_connected(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.config.deadline)?;
            stream.set_read_timeout(Some(self.config.deadline))?;
            stream.set_write_timeout(Some(self.config.deadline))?;
            let _ = stream.set_nodelay(true);
            self.stream = Some(stream);
            self.written = 0;
        }
        Ok(self.stream.as_mut().expect("connected above"))
    }

    /// One connection's worth of progress; `Ok(Some(_))` is a fatal
    /// protocol error, `Err` a retriable transport failure.
    fn try_drive(&mut self, target_unacked: usize) -> std::io::Result<Option<AsvError>> {
        self.ensure_connected()?;
        let stream = self.stream.as_mut().expect("connected above");
        while self.written < self.unacked.len() {
            stream.write_all(&self.unacked[self.written].1)?;
            self.written += 1;
        }
        while self.unacked.len() > target_unacked {
            let mut ack = [0u8; ACK_BYTES];
            stream.read_exact(&mut ack)?;
            if ack[0] != ACK_MAGIC {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "bad ack magic",
                ));
            }
            let mut seq_raw = [0u8; 8];
            seq_raw.copy_from_slice(&ack[2..]);
            let seq = u64::from_le_bytes(seq_raw);
            let Some(&(expected, _)) = self.unacked.front() else {
                break;
            };
            if seq != expected {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "ack out of order",
                ));
            }
            match ack[1] {
                ACK_ACCEPTED | ACK_DUPLICATE => {
                    let (_, mut buf) = self.unacked.pop_front().expect("front exists");
                    buf.clear();
                    self.spare.push(buf);
                    self.written = self.written.saturating_sub(1);
                }
                ACK_GAP => {
                    return Ok(Some(AsvError::transport(format!(
                        "server reported a sequence gap at frame {seq}"
                    ))));
                }
                // A rejected frame (sink failure) was *not* committed by
                // the server's gate; reconnect and retransmit it instead
                // of dropping it.
                _ => {
                    return Err(std::io::Error::other(format!(
                        "server rejected frame {seq}; retransmitting"
                    )));
                }
            }
        }
        Ok(None)
    }

    /// Counts the failure, drops the connection and sleeps the backoff;
    /// errors out when the retry budget is spent.
    fn back_off(&mut self, error: &std::io::Error, attempts: &mut u32) -> Result<(), AsvError> {
        let kind = if matches!(
            error.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            TransportErrorKind::Deadline
        } else {
            TransportErrorKind::Io
        };
        self.counters.record(kind);
        self.stream = None;
        self.written = 0;
        if *attempts >= self.config.max_retries {
            return Err(AsvError::transport(format!(
                "{} unreachable after {} attempts: {error}",
                self.addr,
                *attempts + 1
            )));
        }
        std::thread::sleep(backoff_delay(&self.config, *attempts, &mut self.rng));
        *attempts += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Delivery closure for admissions that must not deliver.
    fn refuse() -> Result<(), ()> {
        panic!("the gate must not run the delivery closure for this frame")
    }

    #[test]
    fn sequence_gate_delivers_in_order_and_flags_the_rest() {
        let gate = SequenceGate::new();
        assert_eq!(gate.admit("cam", 0, || Ok(())), Admit::Delivered);
        assert_eq!(gate.admit("cam", 1, || Ok(())), Admit::Delivered);
        assert_eq!(gate.admit("cam", 1, refuse), Admit::Duplicate);
        assert_eq!(gate.admit("cam", 0, refuse), Admit::Duplicate);
        assert_eq!(gate.admit("cam", 5, refuse), Admit::Gap { expected: 2 });
        assert_eq!(gate.admit("cam", 2, || Ok(())), Admit::Delivered);
        // Sessions are independent; a fresh key must start at 0.
        assert_eq!(gate.admit("other", 3, refuse), Admit::Gap { expected: 0 });
        assert_eq!(gate.admit("other", 0, || Ok(())), Admit::Delivered);
        assert_eq!(gate.expected("cam"), 3);
        assert_eq!(gate.expected("unseen"), 0);
    }

    /// The exactly-once commit rule: a failed delivery leaves the expected
    /// sequence untouched, so the client's retransmission of that frame is
    /// delivered rather than misclassified as a duplicate.
    #[test]
    fn failed_delivery_keeps_the_sequence_for_retransmission() {
        let gate = SequenceGate::new();
        assert_eq!(gate.admit("cam", 0, || Ok(())), Admit::Delivered);
        // The sink rejects frame 1 (e.g. a saturated shard)...
        assert_eq!(gate.admit("cam", 1, || Err(())), Admit::Failed);
        assert_eq!(gate.expected("cam"), 1, "failure must not advance");
        // ...so the retransmission is delivered, not deduplicated.
        assert_eq!(gate.admit("cam", 1, || Ok(())), Admit::Delivered);
        assert_eq!(gate.expected("cam"), 2);
    }

    /// The reconnect race: a new connection retransmits frame 0 and sends
    /// frame 1 while the old connection is still blocked inside frame 0's
    /// delivery.  The gate must serialize — no ack and no delivery for the
    /// newcomer until the in-flight outcome is decided, and the sink sees
    /// strict sequence order.
    #[test]
    fn concurrent_connections_deliver_one_session_in_order() {
        let gate = Arc::new(SequenceGate::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let slow = {
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                gate.admit("cam", 0, || {
                    entered_tx.send(()).expect("test alive");
                    release_rx.recv().expect("released"); // backpressured
                    lock(&order).push(0u64);
                    Ok(())
                })
            })
        };
        entered_rx.recv().expect("delivery entered");
        let fast = {
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let retransmit = gate.admit("cam", 0, || {
                    lock(&order).push(100);
                    Ok(())
                });
                let next = gate.admit("cam", 1, || {
                    lock(&order).push(1);
                    Ok(())
                });
                (retransmit, next)
            })
        };
        // The racing connection must be parked behind the in-flight
        // delivery, not admitted around it.
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            lock(&order).is_empty(),
            "no delivery may complete while frame 0 is in flight"
        );
        release_tx.send(()).expect("slow thread alive");
        assert_eq!(slow.join().expect("slow"), Admit::Delivered);
        let (retransmit, next) = fast.join().expect("fast");
        assert_eq!(retransmit, Admit::Duplicate, "deduplicated after commit");
        assert_eq!(next, Admit::Delivered);
        assert_eq!(*lock(&order), vec![0, 1], "sequence order preserved");
    }

    /// Hostile or churny key sets cannot grow the gate without bound: the
    /// stalest idle session is evicted at the cap, and its return is an
    /// explicit gap rather than a silent duplicate.
    #[test]
    fn gate_evicts_the_stalest_idle_session_beyond_the_cap() {
        let gate = SequenceGate::with_max_sessions(2);
        assert_eq!(gate.admit("a", 0, || Ok(())), Admit::Delivered);
        assert_eq!(gate.admit("b", 0, || Ok(())), Admit::Delivered);
        // Touch "a" so "b" is the stalest when "c" arrives.
        assert_eq!(gate.admit("a", 1, || Ok(())), Admit::Delivered);
        assert_eq!(gate.admit("c", 0, || Ok(())), Admit::Delivered);
        assert_eq!(gate.sessions(), 2);
        assert_eq!(gate.expected("a"), 2, "recently-active session survives");
        assert_eq!(gate.admit("b", 1, refuse), Admit::Gap { expected: 0 });
    }

    #[test]
    fn transport_error_kinds_have_stable_names_and_dense_indices() {
        for (i, kind) in TransportErrorKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        let names: Vec<_> = TransportErrorKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "bad_magic",
                "version",
                "truncated",
                "oversized",
                "crc",
                "key",
                "length",
                "gap",
                "io",
                "deadline"
            ]
        );
        let counters = TransportCounters::new();
        counters.record(TransportErrorKind::Crc);
        counters.record(TransportErrorKind::Crc);
        counters.record(TransportErrorKind::Io);
        assert_eq!(counters.count(TransportErrorKind::Crc), 2);
        assert_eq!(counters.total(), 3);
        assert_eq!(counters.snapshot()[TransportErrorKind::Io.index()], 1);
    }

    #[test]
    fn backoff_grows_exponentially_within_the_cap_plus_jitter() {
        let config = ClientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            jitter_seed: 7,
            ..ClientConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(config.jitter_seed);
        for attempt in 0..12 {
            let delay = backoff_delay(&config, attempt, &mut rng).as_millis() as u64;
            let floor = (10u64 << attempt.min(16)).min(200);
            assert!(delay >= floor, "attempt {attempt}: {delay} < {floor}");
            assert!(delay < floor + 10, "attempt {attempt}: jitter exceeds base");
        }
        // Deterministic for a fixed seed.
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        assert_eq!(
            backoff_delay(&config, 2, &mut a),
            backoff_delay(&config, 2, &mut b)
        );
    }
}
