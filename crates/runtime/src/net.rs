//! Fault-tolerant TCP frame transport: the networked ingest edge.
//!
//! Mirrors the dependency-free style of [`crate::http`]: everything is
//! `std::net` + threads, no async runtime, no protocol crates.  Three
//! pieces:
//!
//! * [`FrameServer`] — a `TcpListener` accept loop; each connection reads
//!   length-prefixed [`crate::wire`] messages, validates them (magic,
//!   version, CRC, lengths), deduplicates by per-session sequence number
//!   ([`SequenceGate`]) and hands accepted frames to a [`FrameSink`]
//!   (typically a [`crate::Supervisor`] routing into the cluster).  A
//!   half-written message on disconnect is discarded whole — it can never
//!   reach a session — and every structural failure increments one
//!   [`TransportErrorKind`] counter.
//! * [`FrameClient`] — the camera side: per-session sequence numbering, a
//!   bounded in-flight window, per-operation deadline, and reconnect with
//!   exponential backoff + seeded jitter.  Unacknowledged frames are
//!   retransmitted on a fresh connection; the server's sequence gate turns
//!   at-least-once retransmission into exactly-once delivery.
//! * [`TransportCounters`] — lock-free error counters by kind, exported as
//!   the `asv_transport_errors_total{kind}` Prometheus family.
//!
//! Backpressure flows end-to-end: a slow shard blocks [`FrameSink::deliver`]
//! (under [`crate::ShedPolicy::Block`]), which stalls the connection thread,
//! which fills the TCP window, which parks the client in `write` — the same
//! lossless-by-default story as the in-process ingest path.
//!
//! The `ASV_NET_*` environment knobs (see [`ClientConfig::from_env`] and
//! [`NetConfig::from_env`]) configure deadlines, window, retry budget and
//! the maximum accepted message size.

use crate::wire;
use asv::error::WireFault;
use asv::AsvError;
use asv_image::Image;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Pause after a failed `accept()` before retrying (see [`crate::http`]).
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(50);

/// Acknowledgement magic byte, size and status codes: one fixed 10-byte
/// record `[b'K', status, seq as u64 LE]` per accepted message.
const ACK_MAGIC: u8 = b'K';
const ACK_BYTES: usize = 10;
const ACK_ACCEPTED: u8 = 0;
const ACK_DUPLICATE: u8 = 1;
const ACK_GAP: u8 = 2;
const ACK_ERROR: u8 = 3;

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Why a transport operation failed; the `kind` label of
/// `asv_transport_errors_total`.  Wire faults map one-to-one; `Io` and
/// `Deadline` cover socket failures and missed per-frame deadlines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportErrorKind {
    /// Wire message with bad magic bytes.
    BadMagic,
    /// Wire message with an unsupported format version.
    Version,
    /// Message truncated: the connection died mid-frame.
    Truncated,
    /// Length prefix above the configured maximum message size.
    Oversized,
    /// Frame checksum mismatch.
    Crc,
    /// Session key not valid UTF-8.
    Key,
    /// Internally inconsistent message lengths.
    Length,
    /// A sequence-number gap: frames lost or reordered in flight.
    Gap,
    /// A socket-level failure (connect, read or write).
    Io,
    /// A per-frame deadline expired (connect, write or ack wait).
    Deadline,
}

impl TransportErrorKind {
    /// Number of kinds (the counter-array length).
    pub const COUNT: usize = 10;

    /// Every kind, in `index` order.
    pub const ALL: [TransportErrorKind; TransportErrorKind::COUNT] = [
        TransportErrorKind::BadMagic,
        TransportErrorKind::Version,
        TransportErrorKind::Truncated,
        TransportErrorKind::Oversized,
        TransportErrorKind::Crc,
        TransportErrorKind::Key,
        TransportErrorKind::Length,
        TransportErrorKind::Gap,
        TransportErrorKind::Io,
        TransportErrorKind::Deadline,
    ];

    /// Stable lower-case name (the Prometheus `kind` label value).
    pub fn name(self) -> &'static str {
        match self {
            TransportErrorKind::Io => "io",
            TransportErrorKind::Deadline => "deadline",
            other => other
                .as_wire_fault()
                .expect("every non-io kind maps to a wire fault")
                .name(),
        }
    }

    /// Position in [`TransportErrorKind::ALL`] and the counter array.
    pub fn index(self) -> usize {
        match self {
            TransportErrorKind::BadMagic => 0,
            TransportErrorKind::Version => 1,
            TransportErrorKind::Truncated => 2,
            TransportErrorKind::Oversized => 3,
            TransportErrorKind::Crc => 4,
            TransportErrorKind::Key => 5,
            TransportErrorKind::Length => 6,
            TransportErrorKind::Gap => 7,
            TransportErrorKind::Io => 8,
            TransportErrorKind::Deadline => 9,
        }
    }

    /// The [`WireFault`] this kind mirrors (`None` for `Io`/`Deadline`).
    pub fn as_wire_fault(self) -> Option<WireFault> {
        Some(match self {
            TransportErrorKind::BadMagic => WireFault::BadMagic,
            TransportErrorKind::Version => WireFault::Version,
            TransportErrorKind::Truncated => WireFault::Truncated,
            TransportErrorKind::Oversized => WireFault::Oversized,
            TransportErrorKind::Crc => WireFault::Crc,
            TransportErrorKind::Key => WireFault::Key,
            TransportErrorKind::Length => WireFault::Length,
            TransportErrorKind::Gap => WireFault::Gap,
            TransportErrorKind::Io | TransportErrorKind::Deadline => return None,
        })
    }

    /// Maps a decode fault to its counter kind.
    pub fn of_wire(fault: WireFault) -> Self {
        match fault {
            WireFault::BadMagic => TransportErrorKind::BadMagic,
            WireFault::Version => TransportErrorKind::Version,
            WireFault::Truncated => TransportErrorKind::Truncated,
            WireFault::Oversized => TransportErrorKind::Oversized,
            WireFault::Crc => TransportErrorKind::Crc,
            WireFault::Key => TransportErrorKind::Key,
            WireFault::Length => TransportErrorKind::Length,
            WireFault::Gap => TransportErrorKind::Gap,
        }
    }
}

/// Process-wide transport error counters, shared by servers, clients and
/// the cluster's telemetry fold (`asv_transport_errors_total{kind}`).
/// Lock-free: one relaxed atomic per kind.
#[derive(Debug, Default)]
pub struct TransportCounters {
    counts: [AtomicU64; TransportErrorKind::COUNT],
}

impl TransportCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments one kind.
    pub fn record(&self, kind: TransportErrorKind) {
        self.counts[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Current count of one kind.
    pub fn count(&self, kind: TransportErrorKind) -> u64 {
        self.counts[kind.index()].load(Ordering::Relaxed)
    }

    /// All counts, indexed like [`TransportErrorKind::ALL`].
    pub fn snapshot(&self) -> [u64; TransportErrorKind::COUNT] {
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }

    /// Sum over every kind.
    pub fn total(&self) -> u64 {
        self.snapshot().iter().sum()
    }
}

/// Per-session sequence bookkeeping turning at-least-once retransmission
/// into exactly-once delivery: each session's frames must arrive in order
/// (`0, 1, 2, ...`); already-seen numbers are duplicates (acked but not
/// re-delivered), future numbers are gaps (lost or reordered frames).
#[derive(Debug, Default)]
pub struct SequenceGate {
    next: HashMap<String, u64>,
}

/// [`SequenceGate::admit`]'s verdict for one arriving frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// The expected next frame: deliver it.
    Accept,
    /// Already delivered (a retransmission): acknowledge, do not deliver.
    Duplicate,
    /// Ahead of the expected number: frames in between are missing.
    Gap {
        /// The sequence number the gate expected.
        expected: u64,
    },
}

impl SequenceGate {
    /// An empty gate (every session starts at sequence 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies `seq` for `key` and advances the expected number on
    /// accept.  Allocates only on a session's first frame.
    pub fn admit(&mut self, key: &str, seq: u64) -> Admit {
        match self.next.get_mut(key) {
            Some(next) => {
                if seq < *next {
                    Admit::Duplicate
                } else if seq == *next {
                    *next += 1;
                    Admit::Accept
                } else {
                    Admit::Gap { expected: *next }
                }
            }
            None if seq == 0 => {
                self.next.insert(key.to_owned(), 1);
                Admit::Accept
            }
            None => Admit::Gap { expected: 0 },
        }
    }

    /// The next sequence number expected for `key` (0 for unseen keys).
    pub fn expected(&self, key: &str) -> u64 {
        self.next.get(key).copied().unwrap_or(0)
    }
}

/// Where the server puts accepted frames.  Implemented by
/// [`crate::Supervisor`] (cluster routing with shard-failure re-placement);
/// implement it yourself to feed any other consumer.
pub trait FrameSink: Send + Sync {
    /// Delivers one deduplicated, validated frame.  May block (that is the
    /// backpressure path); an error is reported to the client as a rejected
    /// frame.
    ///
    /// # Errors
    ///
    /// Implementation-defined; the server acknowledges the frame as failed.
    fn deliver(&self, key: &str, seq: u64, left: Image, right: Image) -> Result<(), AsvError>;

    /// A `width x height` plane for the decoder to fill, ideally recycled
    /// from the target session's frame pool so the steady-state decode path
    /// performs no allocations.  The default allocates a zeroed plane.
    fn recycled_frame(&self, key: &str, width: usize, height: usize) -> Image {
        let _ = key;
        Image::zeros(width, height)
    }
}

/// Server-side transport configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Hard ceiling on one message's declared length; a corrupt length
    /// prefix can never talk the server into unbounded reads.
    pub max_message_bytes: usize,
    /// Read timeout while *inside* a message: a peer that stalls mid-frame
    /// for longer is cut off (the partial frame is discarded).
    pub read_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_message_bytes: wire::MAX_MESSAGE_BYTES,
            read_timeout: Duration::from_secs(2),
        }
    }
}

impl NetConfig {
    /// Defaults overridden by `ASV_NET_MAX_FRAME_BYTES` and
    /// `ASV_NET_READ_TIMEOUT_MS`.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(bytes) = env_parse::<usize>("ASV_NET_MAX_FRAME_BYTES") {
            config.max_message_bytes = bytes;
        }
        if let Some(ms) = env_parse::<u64>("ASV_NET_READ_TIMEOUT_MS") {
            config.read_timeout = Duration::from_millis(ms.max(1));
        }
        config
    }
}

/// Client-side transport configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-operation deadline: connect, frame write and ack wait each get
    /// this budget; exceeding it counts a `deadline` transport error and
    /// triggers a reconnect.
    pub deadline: Duration,
    /// Maximum unacknowledged frames in flight before `send` blocks on
    /// acks — bounds client memory and caps the retransmission burst after
    /// a reconnect.
    pub window: usize,
    /// Reconnect attempts per operation before giving up with
    /// [`AsvError::Transport`].
    pub max_retries: u32,
    /// First reconnect backoff; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed of the jitter source (deterministic in tests).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(2),
            window: 4,
            max_retries: 5,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x5EED,
        }
    }
}

impl ClientConfig {
    /// Defaults overridden by `ASV_NET_DEADLINE_MS`, `ASV_NET_WINDOW`,
    /// `ASV_NET_RETRIES` and `ASV_NET_BACKOFF_MS`.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(ms) = env_parse::<u64>("ASV_NET_DEADLINE_MS") {
            config.deadline = Duration::from_millis(ms.max(1));
        }
        if let Some(window) = env_parse::<usize>("ASV_NET_WINDOW") {
            config.window = window.max(1);
        }
        if let Some(retries) = env_parse::<u32>("ASV_NET_RETRIES") {
            config.max_retries = retries;
        }
        if let Some(ms) = env_parse::<u64>("ASV_NET_BACKOFF_MS") {
            config.backoff_base = Duration::from_millis(ms.max(1));
        }
        config
    }
}

/// Exponential backoff with jitter: `min(cap, base * 2^attempt)` plus a
/// uniform jitter of up to one `base`, so a fleet of reconnecting cameras
/// does not thundering-herd the server.
pub fn backoff_delay(config: &ClientConfig, attempt: u32, rng: &mut SmallRng) -> Duration {
    let base = config.backoff_base.as_millis() as u64;
    let scaled = base.saturating_mul(1u64 << attempt.min(16));
    let capped = scaled.min(config.backoff_cap.as_millis() as u64);
    let jitter = rng.gen_range(0..base.max(1));
    Duration::from_millis(capped + jitter)
}

/// Outcome of filling a buffer from the socket.
enum ReadOutcome {
    /// Clean close at a message boundary (or server shutdown).
    Closed,
    /// Buffer filled.
    Data,
    /// The connection failed; counted under this kind.
    Failed(TransportErrorKind),
}

/// Fills `buf` completely.  At a message boundary (`boundary`), a clean EOF
/// or an idle read timeout is not an error; inside a message they are
/// `Truncated` / `Deadline` respectively.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    boundary: bool,
) -> ReadOutcome {
    let mut filled = 0;
    loop {
        if stop.load(Ordering::Acquire) {
            return ReadOutcome::Closed;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && boundary {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Failed(TransportErrorKind::Truncated)
                };
            }
            Ok(n) => {
                filled += n;
                if filled == buf.len() {
                    return ReadOutcome::Data;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if filled > 0 || !boundary {
                    return ReadOutcome::Failed(TransportErrorKind::Deadline);
                }
                // Idle at a message boundary: keep waiting (the loop re-checks
                // the stop flag each timeout tick).
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Failed(TransportErrorKind::Io),
        }
    }
}

/// The TCP frame-ingest server: accepts connections, decodes and validates
/// wire messages, deduplicates retransmissions and delivers frames to a
/// [`FrameSink`].  One thread per connection (camera links are few and
/// long-lived); backpressure propagates through blocking delivery.
#[derive(Debug)]
pub struct FrameServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    thread: Option<JoinHandle<()>>,
}

impl FrameServer {
    /// Binds `addr` (port 0 for ephemeral) and starts accepting.  Decode
    /// and transport failures increment `counters`; accepted frames go to
    /// `sink`.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn serve(
        addr: impl ToSocketAddrs,
        sink: Arc<dyn FrameSink>,
        counters: Arc<TransportCounters>,
        config: NetConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new(Mutex::new(SequenceGate::new()));
        let stop_flag = Arc::clone(&stop);
        let conn_table = Arc::clone(&conns);
        let thread = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !stop_flag.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stop_flag.load(Ordering::Acquire) {
                            break;
                        }
                        if let Ok(clone) = stream.try_clone() {
                            conn_table
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push(clone);
                        }
                        let sink = Arc::clone(&sink);
                        let counters = Arc::clone(&counters);
                        let gate = Arc::clone(&gate);
                        let stop = Arc::clone(&stop_flag);
                        workers.push(std::thread::spawn(move || {
                            handle_connection(stream, &*sink, &gate, &counters, config, &stop);
                        }));
                    }
                    Err(_) => {
                        if stop_flag.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                    }
                }
            }
            for worker in workers {
                let _ = worker.join();
            }
        });
        Ok(Self {
            addr,
            stop,
            conns,
            thread: Some(thread),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, severs live connections (any half-read message is
    /// discarded) and joins every connection thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // Wake the accept loop so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for FrameServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One connection's read-decode-deliver-ack loop.  Returns (closing the
/// connection) on clean EOF, shutdown, any transport failure or any wire
/// fault — the client reconnects and retransmits, and the sequence gate
/// (shared across connections) deduplicates.
fn handle_connection(
    mut stream: TcpStream,
    sink: &dyn FrameSink,
    gate: &Mutex<SequenceGate>,
    counters: &TransportCounters,
    config: NetConfig,
    stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    // Reused across messages: after the first frame of a steady stream,
    // reads resize within capacity and decode fills recycled planes — the
    // loop allocates nothing.
    let mut message: Vec<u8> = Vec::new();
    loop {
        let mut prefix = [0u8; 4];
        match read_full(&mut stream, &mut prefix, stop, true) {
            ReadOutcome::Closed => return,
            ReadOutcome::Failed(kind) => {
                counters.record(kind);
                return;
            }
            ReadOutcome::Data => {}
        }
        let declared = u32::from_le_bytes(prefix) as usize;
        if declared > config.max_message_bytes {
            counters.record(TransportErrorKind::Oversized);
            return;
        }
        message.resize(4 + declared, 0);
        message[..4].copy_from_slice(&prefix);
        match read_full(&mut stream, &mut message[4..], stop, false) {
            ReadOutcome::Closed => return,
            ReadOutcome::Failed(kind) => {
                // The half-read message dies here, in a connection-local
                // buffer: nothing of it was delivered, the next session (or
                // reconnect) starts from a clean boundary.
                counters.record(kind);
                return;
            }
            ReadOutcome::Data => {}
        }
        let frame = match wire::validate(&message, config.max_message_bytes) {
            Ok(frame) => frame,
            Err(AsvError::Wire { fault, .. }) => {
                counters.record(TransportErrorKind::of_wire(fault));
                return;
            }
            Err(_) => {
                counters.record(TransportErrorKind::Io);
                return;
            }
        };
        let admit = gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .admit(frame.key, frame.seq);
        let status = match admit {
            Admit::Duplicate => ACK_DUPLICATE,
            Admit::Gap { .. } => {
                counters.record(TransportErrorKind::Gap);
                ACK_GAP
            }
            Admit::Accept => {
                let mut left = sink.recycled_frame(frame.key, frame.width, frame.height);
                let mut right = sink.recycled_frame(frame.key, frame.width, frame.height);
                match frame.fill_planes(&mut left, &mut right) {
                    // Delivery may block: that is the backpressure path, and
                    // the client's unsent frames queue in the TCP window.
                    Ok(()) => match sink.deliver(frame.key, frame.seq, left, right) {
                        Ok(()) => ACK_ACCEPTED,
                        Err(_) => ACK_ERROR,
                    },
                    Err(AsvError::Wire { fault, .. }) => {
                        counters.record(TransportErrorKind::of_wire(fault));
                        ACK_ERROR
                    }
                    Err(_) => ACK_ERROR,
                }
            }
        };
        let mut ack = [0u8; ACK_BYTES];
        ack[0] = ACK_MAGIC;
        ack[1] = status;
        ack[2..].copy_from_slice(&frame.seq.to_le_bytes());
        if stream.write_all(&ack).is_err() {
            counters.record(TransportErrorKind::Io);
            return;
        }
    }
}

/// The camera-side sender: frames go out with per-session sequence numbers
/// over one TCP connection; on any failure the client reconnects with
/// exponential backoff + jitter and retransmits everything unacknowledged.
/// At most [`ClientConfig::window`] frames are in flight unacknowledged.
#[derive(Debug)]
pub struct FrameClient {
    addr: SocketAddr,
    config: ClientConfig,
    counters: Arc<TransportCounters>,
    rng: SmallRng,
    stream: Option<TcpStream>,
    next_seq: HashMap<String, u64>,
    /// Sent-but-unacknowledged messages, oldest first; retransmitted whole
    /// on reconnect (the server's gate discards duplicates).
    unacked: VecDeque<(u64, Vec<u8>)>,
    /// How many of `unacked` are on the current connection already.
    written: usize,
    /// Recycled encode buffers (acknowledged messages come back here), so
    /// a steady stream encodes without allocating.
    spare: Vec<Vec<u8>>,
}

impl FrameClient {
    /// Resolves `addr` and connects, retrying with backoff per `config`.
    ///
    /// # Errors
    ///
    /// [`AsvError::Transport`] when the address does not resolve or the
    /// connection cannot be established within the retry budget.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, AsvError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| AsvError::transport(format!("address resolution failed: {e}")))?
            .next()
            .ok_or_else(|| AsvError::transport("address resolved to nothing"))?;
        let mut client = Self {
            addr,
            rng: SmallRng::seed_from_u64(config.jitter_seed),
            config,
            counters: Arc::new(TransportCounters::new()),
            stream: None,
            next_seq: HashMap::new(),
            unacked: VecDeque::new(),
            written: 0,
            spare: Vec::new(),
        };
        client.drive(usize::MAX)?;
        Ok(client)
    }

    /// Shares `counters` (e.g. the cluster's) instead of the private set.
    pub fn with_counters(mut self, counters: Arc<TransportCounters>) -> Self {
        self.counters = counters;
        self
    }

    /// The transport error counters this client increments.
    pub fn counters(&self) -> Arc<TransportCounters> {
        Arc::clone(&self.counters)
    }

    /// Frames sent and not yet acknowledged.
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Sends one frame for `key`, assigning the next sequence number.
    /// Blocks while the in-flight window is full (waiting for acks) and
    /// transparently reconnects + retransmits on transport failures.
    ///
    /// # Errors
    ///
    /// [`AsvError::Wire`] when the planes disagree in size, and
    /// [`AsvError::Transport`] when the retry budget is exhausted or the
    /// server reports a protocol failure (sequence gap / session error).
    pub fn send(&mut self, key: &str, left: &Image, right: &Image) -> Result<(), AsvError> {
        let mut buf = self.spare.pop().unwrap_or_default();
        let seq = self.next_seq.get(key).copied().unwrap_or(0);
        wire::encode_frame_into(&mut buf, key, seq, left, right)?;
        self.next_seq.insert(key.to_owned(), seq + 1);
        self.unacked.push_back((seq, buf));
        let window = self.config.window.max(1);
        self.drive(window.saturating_sub(1))
    }

    /// Blocks until every sent frame is acknowledged.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FrameClient::send`].
    pub fn flush(&mut self) -> Result<(), AsvError> {
        self.drive(0)
    }

    /// Writes every pending message and reads acks until at most
    /// `target_unacked` remain in flight, reconnecting on failure.
    fn drive(&mut self, target_unacked: usize) -> Result<(), AsvError> {
        let mut attempts = 0u32;
        loop {
            let step = self.try_drive(target_unacked);
            match step {
                Ok(None) => return Ok(()),
                Ok(Some(error)) => return Err(error),
                Err(e) => self.back_off(&e, &mut attempts)?,
            }
        }
    }

    /// One connection's worth of progress; `Ok(Some(_))` is a fatal
    /// protocol error, `Err` a retriable transport failure.
    fn try_drive(&mut self, target_unacked: usize) -> std::io::Result<Option<AsvError>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.config.deadline)?;
            stream.set_read_timeout(Some(self.config.deadline))?;
            stream.set_write_timeout(Some(self.config.deadline))?;
            let _ = stream.set_nodelay(true);
            self.stream = Some(stream);
            self.written = 0;
        }
        let stream = self.stream.as_mut().expect("connected above");
        while self.written < self.unacked.len() {
            stream.write_all(&self.unacked[self.written].1)?;
            self.written += 1;
        }
        while self.unacked.len() > target_unacked {
            let mut ack = [0u8; ACK_BYTES];
            stream.read_exact(&mut ack)?;
            if ack[0] != ACK_MAGIC {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "bad ack magic",
                ));
            }
            let mut seq_raw = [0u8; 8];
            seq_raw.copy_from_slice(&ack[2..]);
            let seq = u64::from_le_bytes(seq_raw);
            let Some(&(expected, _)) = self.unacked.front() else {
                break;
            };
            if seq != expected {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "ack out of order",
                ));
            }
            match ack[1] {
                ACK_ACCEPTED | ACK_DUPLICATE => {
                    let (_, mut buf) = self.unacked.pop_front().expect("front exists");
                    buf.clear();
                    self.spare.push(buf);
                    self.written = self.written.saturating_sub(1);
                }
                ACK_GAP => {
                    return Ok(Some(AsvError::transport(format!(
                        "server reported a sequence gap at frame {seq}"
                    ))));
                }
                _ => {
                    return Ok(Some(AsvError::transport(format!(
                        "server rejected frame {seq} (session error)"
                    ))));
                }
            }
        }
        Ok(None)
    }

    /// Counts the failure, drops the connection and sleeps the backoff;
    /// errors out when the retry budget is spent.
    fn back_off(&mut self, error: &std::io::Error, attempts: &mut u32) -> Result<(), AsvError> {
        let kind = if matches!(
            error.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            TransportErrorKind::Deadline
        } else {
            TransportErrorKind::Io
        };
        self.counters.record(kind);
        self.stream = None;
        self.written = 0;
        if *attempts >= self.config.max_retries {
            return Err(AsvError::transport(format!(
                "{} unreachable after {} attempts: {error}",
                self.addr,
                *attempts + 1
            )));
        }
        std::thread::sleep(backoff_delay(&self.config, *attempts, &mut self.rng));
        *attempts += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_gate_accepts_in_order_and_flags_the_rest() {
        let mut gate = SequenceGate::new();
        assert_eq!(gate.admit("cam", 0), Admit::Accept);
        assert_eq!(gate.admit("cam", 1), Admit::Accept);
        assert_eq!(gate.admit("cam", 1), Admit::Duplicate);
        assert_eq!(gate.admit("cam", 0), Admit::Duplicate);
        assert_eq!(gate.admit("cam", 5), Admit::Gap { expected: 2 });
        assert_eq!(gate.admit("cam", 2), Admit::Accept);
        // Sessions are independent; a fresh key must start at 0.
        assert_eq!(gate.admit("other", 3), Admit::Gap { expected: 0 });
        assert_eq!(gate.admit("other", 0), Admit::Accept);
        assert_eq!(gate.expected("cam"), 3);
        assert_eq!(gate.expected("unseen"), 0);
    }

    #[test]
    fn transport_error_kinds_have_stable_names_and_dense_indices() {
        for (i, kind) in TransportErrorKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        let names: Vec<_> = TransportErrorKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "bad_magic",
                "version",
                "truncated",
                "oversized",
                "crc",
                "key",
                "length",
                "gap",
                "io",
                "deadline"
            ]
        );
        let counters = TransportCounters::new();
        counters.record(TransportErrorKind::Crc);
        counters.record(TransportErrorKind::Crc);
        counters.record(TransportErrorKind::Io);
        assert_eq!(counters.count(TransportErrorKind::Crc), 2);
        assert_eq!(counters.total(), 3);
        assert_eq!(counters.snapshot()[TransportErrorKind::Io.index()], 1);
    }

    #[test]
    fn backoff_grows_exponentially_within_the_cap_plus_jitter() {
        let config = ClientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            jitter_seed: 7,
            ..ClientConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(config.jitter_seed);
        for attempt in 0..12 {
            let delay = backoff_delay(&config, attempt, &mut rng).as_millis() as u64;
            let floor = (10u64 << attempt.min(16)).min(200);
            assert!(delay >= floor, "attempt {attempt}: {delay} < {floor}");
            assert!(delay < floor + 10, "attempt {attempt}: jitter exceeds base");
        }
        // Deterministic for a fixed seed.
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        assert_eq!(
            backoff_delay(&config, 2, &mut a),
            backoff_delay(&config, 2, &mut b)
        );
    }
}
